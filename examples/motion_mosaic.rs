//! Global motion estimation + mosaicing: a miniature of the paper's
//! Table 3 experiment (§4.3), on a down-scaled synthetic "Singapore"
//! sequence with known camera motion.
//!
//! The top-level GME stays on the host; every pixel pass is an
//! AddressLib call dispatched to the simulated AddressEngine. The
//! estimated motion is compared against the sequence's ground truth and
//! the mosaic is written as a PGM image.
//!
//! ```text
//! cargo run --release -p vip --example motion_mosaic
//! ```

use vip::gme::{EngineBackend, GmeConfig, SequenceRunner};
use vip::video::io::write_pgm;
use vip::video::TestSequence;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fast, down-scaled Singapore stand-in: 88×72, 12 frames.
    let seq = TestSequence::singapore().scaled(88, 72, 12);
    println!(
        "sequence: {} ({} frames of {})",
        seq.name(),
        seq.frame_count(),
        seq.dims()
    );

    let runner = SequenceRunner::new(GmeConfig::default()).with_mosaic(48.0, 24.0);
    let mut backend = EngineBackend::prototype();
    let report = runner.run(seq.frames(), &mut backend)?;

    println!("\nframe  est(dx, dy)      truth(dx, dy)    iters  residual");
    let mut err_sum = 0.0;
    for rec in &report.records {
        let (edx, edy) = rec.relative.translation_part();
        let truth = seq.script().ground_truth(rec.index - 1);
        let err = ((edx - truth.dx).powi(2) + (edy - truth.dy).powi(2)).sqrt();
        err_sum += err;
        println!(
            "{:>5}  ({:+6.2}, {:+6.2})  ({:+6.2}, {:+6.2})  {:>5}  {:8.2}",
            rec.index, edx, edy, truth.dx, truth.dy, rec.gme.iterations, rec.gme.residual
        );
    }
    let mean_err = err_sum / report.records.len() as f64;
    println!("\nmean translation error vs ground truth: {mean_err:.3} px");
    assert!(mean_err < 1.0, "estimator should track the scripted pan");

    println!(
        "AddressLib calls: {} ({} intra / {} inter), engine time {:.3} s",
        report.tally.total(),
        report.tally.intra,
        report.tally.inter,
        report.backend_seconds
    );

    let mosaic = report.mosaic.expect("mosaic requested");
    let path = std::env::temp_dir().join("vip_mosaic_singapore.pgm");
    write_pgm(mosaic.canvas(), &path)?;
    println!(
        "mosaic: {} canvas, {:.0} % covered → {}",
        mosaic.canvas().dims(),
        mosaic.coverage() * 100.0,
        path.display()
    );
    Ok(())
}
