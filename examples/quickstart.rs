//! Quickstart: run one AddressLib call on the simulated AddressEngine
//! and inspect its report.
//!
//! ```text
//! cargo run -p vip --example quickstart
//! ```

use vip::core::frame::Frame;
use vip::core::geometry::ImageFormat;
use vip::core::ops::filter::SobelGradient;
use vip::core::pixel::Pixel;
use vip::engine::{AddressEngine, EngineConfig, ResourceEstimate};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CIF frame with a vertical edge in the middle.
    let dims = ImageFormat::Cif.dims();
    let frame = Frame::from_fn(dims, |p| {
        Pixel::from_luma(if p.x < dims.width as i32 / 2 { 40 } else { 190 })
    });

    // The DATE 2005 prototype engine: 66 MHz PCI, six ZBT banks,
    // 16-line strips and intermediate memories.
    let mut engine = AddressEngine::new(EngineConfig::prototype())?;

    // One intra AddressLib call: Sobel gradient over the whole frame.
    let run = engine.run_intra(&frame, &SobelGradient::new())?;

    println!("== AddressEngine quickstart ==");
    println!("call     : {}", run.report.descriptor);
    println!("frame    : {dims} ({} pixels)", dims.pixel_count());
    println!("timeline : {}", run.report.timeline);
    println!(
        "memory   : software model {} accesses, hardware {} cycles ({:.0} % saved)",
        run.report.access_model.software_accesses,
        run.report.hardware_accesses,
        run.report.access_model.saving_of_software() * 100.0
    );

    // The edge shows up as a bright gradient column.
    let mid = vip::core::geometry::Point::new(dims.width as i32 / 2, dims.height as i32 / 2);
    println!("gradient at the edge: {}", run.output.get(mid).y);
    assert!(run.output.get(mid).y > 0);

    // The paper's Table 1 in one view: the design is tiny, BRAM-dominated
    // and comfortably meets the 66 MHz PCI clock.
    let resources = ResourceEstimate::for_config(engine.config());
    println!("\n{resources}");
    Ok(())
}
