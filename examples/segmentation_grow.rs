//! Segment addressing: region growing in order of geodesic distance —
//! the third addressing scheme of §2.1, which the v1 prototype defers to
//! future versions (§6) and the §5 outlook engine supports.
//!
//! Demonstrates both sides: the v1 engine *rejecting* a segment call and
//! the outlook-configured engine executing it, with per-segment
//! statistics gathered through segment-indexed addressing.
//!
//! ```text
//! cargo run -p vip --example segmentation_grow
//! ```

use vip::core::addressing::indexed::accumulate_segment_stats;
use vip::core::addressing::segment::SegmentOptions;
use vip::core::frame::Frame;
use vip::core::geometry::{Dims, Point};
use vip::core::neighborhood::Connectivity;
use vip::core::ops::segment_ops::HomogeneityCriterion;
use vip::core::pixel::Pixel;
use vip::engine::{AddressEngine, EngineConfig, EngineError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A frame with three homogeneous regions: dark sky, a mid-grey
    // building block, and a bright sun disc.
    let dims = Dims::new(96, 64);
    let frame = Frame::from_fn(dims, |p| {
        let in_building = p.x >= 20 && p.x < 60 && p.y >= 28 && p.y < 64;
        let dx = p.x - 78;
        let dy = p.y - 14;
        let in_sun = dx * dx + dy * dy < 81;
        let luma = if in_sun {
            230 + (p.x % 6) as u8
        } else if in_building {
            100 + ((p.x + p.y) % 9) as u8
        } else {
            30 + (p.y % 7) as u8
        };
        Pixel::from_luma(luma)
    });

    // The DATE 2005 prototype rejects segment calls…
    let mut v1 = AddressEngine::new(EngineConfig::prototype())?;
    let err = v1.run_segment(
        &frame,
        &[Point::new(40, 40)],
        &HomogeneityCriterion::luma(12),
        SegmentOptions::default(),
    );
    match err {
        Err(EngineError::UnsupportedCapability { capability }) => {
            println!("v1 engine: rejected as expected — {capability}");
        }
        other => panic!("v1 engine should reject segment calls, got {other:?}"),
    }

    // …while the §5 outlook configuration executes them.
    let mut v2 = AddressEngine::new(EngineConfig::outlook_v2())?;
    let mut labelled = frame.clone();
    let seeds = [
        ("sky", Point::new(2, 2), 1u16),
        ("building", Point::new(40, 40), 2),
        ("sun", Point::new(78, 14), 3),
    ];
    for (name, seed, label) in seeds {
        let run = v2.run_segment(
            &labelled,
            &[seed],
            &HomogeneityCriterion::luma(12),
            SegmentOptions {
                connectivity: Connectivity::Con8,
                label,
                ..SegmentOptions::default()
            },
        )?;
        println!(
            "{name:<9} seed {seed}: {} pixels, geodesic radius {}, call time {:.3} ms",
            run.result.segment.len(),
            run.result.max_distance(),
            run.report.timeline.total * 1e3,
        );
        // Carry the labels forward so later segments do not re-grow over
        // earlier ones (their alpha is non-zero already).
        labelled = run.result.output;
    }

    // Segment-indexed addressing: one table record per label.
    let table = accumulate_segment_stats(&labelled)?;
    println!("\nlabel  area   mean-luma  bbox");
    for (label, rec) in table.as_ref().iter().enumerate().skip(1) {
        if rec.area > 0 {
            println!(
                "{label:>5}  {:>5}  {:>9.1}  ({}, {})..({}, {})",
                rec.area,
                rec.mean_luma(),
                rec.min.0,
                rec.min.1,
                rec.max.0,
                rec.max.1
            );
        }
    }
    let building = &table.as_ref()[2];
    assert_eq!(building.area, 40 * 36, "building region fully grown");
    println!("\noutlook engine stats: {}", v2.stats());
    Ok(())
}
