//! Surveillance change detection: the inter-addressing workload the
//! paper's introduction motivates (*"video surveillance cameras"*, §1).
//!
//! A background frame is compared against a current frame with an
//! intruding object; the difference picture is thresholded into the
//! alpha channel (inter call), despeckled (intra call), and the change
//! region is walked with segment addressing to locate the intruder.
//!
//! ```text
//! cargo run -p vip --example surveillance_diff
//! ```

use vip::core::addressing::indexed::accumulate_segment_stats;
use vip::core::addressing::segment::{run_segment, SegmentOptions};
use vip::core::frame::Frame;
use vip::core::geometry::{Dims, Point, Rect};
use vip::core::ops::arith::ChangeMask;
use vip::core::ops::morph::AlphaMajority;
use vip::core::ops::segment_ops::AlphaMaskCriterion;
use vip::core::pixel::Pixel;
use vip::engine::{AddressEngine, EngineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = Dims::new(176, 144); // QCIF camera

    // Static background: a noisy car-park texture.
    let background = Frame::from_fn(dims, |p| {
        Pixel::from_luma((60 + (p.x * 13 + p.y * 7) % 40) as u8)
    });

    // Current frame: the same scene with a bright 24×40 "person" plus a
    // couple of single-pixel noise flickers.
    let person = Rect::new(90, 60, 24, 40);
    let mut current = background.clone();
    for p in person.points() {
        current.set(p, Pixel::from_luma(210));
    }
    current.set(Point::new(10, 10), Pixel::from_luma(250)); // noise
    current.set(Point::new(160, 130), Pixel::from_luma(0)); // noise

    let mut engine = AddressEngine::new(EngineConfig::prototype())?;

    // 1. Inter call: difference picture + threshold into alpha.
    let diff = engine.run_inter(&current, &background, &ChangeMask::new(25))?;
    println!("difference picture: {}", diff.report.timeline);

    // 2. Intra call: majority vote removes the single-pixel flickers.
    let cleaned = engine.run_intra(&diff.output, &AlphaMajority::new())?;
    let changed = cleaned
        .output
        .pixels()
        .iter()
        .filter(|p| p.alpha != 0)
        .count();
    println!("changed pixels after despeckle: {changed}");

    // 3. Segment addressing (software AddressLib — the v1 engine defers
    //    this scheme to future versions, §6): walk the change mask from
    //    its first set pixel.
    let seed = cleaned
        .output
        .enumerate()
        .find(|(_, px)| px.alpha != 0)
        .map(|(p, _)| p)
        .expect("intruder present");
    let segment = run_segment(
        &cleaned.output,
        &[seed],
        &AlphaMaskCriterion::new(),
        SegmentOptions::default(),
    )?;
    println!(
        "intruder segment: {} pixels, geodesic radius {}",
        segment.segment.len(),
        segment.max_distance()
    );

    // 4. Segment-indexed addressing: per-label statistics.
    let stats = accumulate_segment_stats(&segment.output)?;
    let intruder = &stats.as_ref()[1];
    println!(
        "bounding box: ({}, {})..({}, {}), {} pixels",
        intruder.min.0, intruder.min.1, intruder.max.0, intruder.max.1, intruder.area
    );
    assert!(intruder.area as usize >= person.area() * 8 / 10, "most of the intruder found");
    assert!(person.contains(Point::new(intruder.min.0, intruder.min.1)));

    println!(
        "\nengine stats: {} ({} s modelled)",
        engine.stats(),
        engine.stats().busy_seconds
    );
    Ok(())
}
