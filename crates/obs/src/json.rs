//! A small hand-rolled JSON writer (and validating parser for tests),
//! replacing serde_json in this no-network workspace.
//!
//! The writer is a push API: callers open objects/arrays, emit keys and
//! values, and the writer inserts commas. It never produces invalid JSON
//! for balanced call sequences; non-finite floats are written as `null`.
//!
//! # Examples
//!
//! ```
//! use vip_obs::json::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.key("name");
//! w.string("strip");
//! w.key("bytes");
//! w.u64(45_056);
//! w.end_object();
//! assert_eq!(w.finish(), r#"{"name":"strip","bytes":45056}"#);
//! ```

/// Incremental JSON writer.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once the first element has
    /// been written (so the next element needs a leading comma).
    stack: Vec<bool>,
    /// Set between `key()` and its value inside an object.
    pending_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// A writer with pre-reserved capacity for large documents.
    #[must_use]
    pub fn with_capacity(bytes: usize) -> Self {
        JsonWriter {
            out: String::with_capacity(bytes),
            ..JsonWriter::default()
        }
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
    }

    /// Opens an object.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens an array.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, key: &str) {
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
        escape_into(&mut self.out, key);
        self.out.push(':');
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn string(&mut self, value: &str) {
        self.before_value();
        escape_into(&mut self.out, value);
    }

    /// Writes an unsigned integer.
    pub fn u64(&mut self, value: u64) {
        self.before_value();
        self.out.push_str(&value.to_string());
    }

    /// Writes a signed integer.
    pub fn i64(&mut self, value: i64) {
        self.before_value();
        self.out.push_str(&value.to_string());
    }

    /// Writes a float; non-finite values become `null` (JSON has no
    /// NaN/Infinity).
    pub fn f64(&mut self, value: f64) {
        self.before_value();
        if value.is_finite() {
            let text = format!("{value}");
            self.out.push_str(&text);
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a pre-formatted JSON number verbatim. The caller guarantees
    /// `text` is a valid JSON number — used for exact decimal timestamps
    /// that would lose precision through an `f64` round-trip.
    pub fn raw_number(&mut self, text: &str) {
        debug_assert!(
            text.parse::<f64>().is_ok(),
            "raw_number must receive a numeric literal, got {text:?}"
        );
        self.before_value();
        self.out.push_str(text);
    }

    /// Writes a boolean.
    pub fn bool(&mut self, value: bool) {
        self.before_value();
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Writes `null`.
    pub fn null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// Returns the accumulated document.
    ///
    /// # Panics
    ///
    /// Panics if containers are still open or a key awaits its value —
    /// those are caller bugs that would yield invalid JSON.
    #[must_use]
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty() && !self.pending_key,
            "unbalanced JsonWriter: {} open container(s), pending key: {}",
            self.stack.len(),
            self.pending_key
        );
        self.out
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Validates that `text` is a single well-formed JSON value.
///
/// A recursive-descent recogniser — it builds no values, just checks the
/// grammar. Used by the exporter tests and `vipctl trace` as a sanity
/// check on emitted documents.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                match bytes.get(*pos + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 2..*pos + 6);
                        match hex {
                            Some(h) if h.iter().all(u8::is_ascii_hexdigit) => *pos += 6,
                            _ => return Err(format!("bad \\u escape at byte {pos}")),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    // Reject leading zeros like "042" (but allow "0", "0.5", "-0").
    let text = &bytes[start..*pos];
    let unsigned = if text.first() == Some(&b'-') {
        &text[1..]
    } else {
        text
    };
    if unsigned.len() > 1 && unsigned[0] == b'0' && unsigned[1].is_ascii_digit() {
        return Err(format!("leading zero in number at byte {start}"));
    }
    Ok(())
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

/// A parsed JSON value — the reading half of [`JsonWriter`], used by the
/// trace-diff and bench-gate tooling to consume the documents this crate
/// writes. Object members keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which is lossless for the
    /// magnitudes this workspace writes).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered `(key, value)` members.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a single JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error; the grammar accepted is exactly [`validate`]'s.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        validate(text)?;
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = build_value(bytes, &mut pos);
        skip_ws(bytes, &mut pos);
        debug_assert_eq!(pos, bytes.len(), "validate admitted trailing data");
        Ok(value)
    }

    /// Member `key` of an object (`None` for other variants or a missing
    /// key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Builds a value from input that [`validate`] already accepted, so no
/// syntax errors can occur here (enforced by the `parse` entry point).
fn build_value(bytes: &[u8], pos: &mut usize) -> JsonValue {
    match bytes[*pos] {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            while bytes[*pos] != b'}' {
                skip_ws(bytes, pos);
                let key = build_string(bytes, pos);
                skip_ws(bytes, pos);
                *pos += 1; // ':'
                skip_ws(bytes, pos);
                members.push((key, build_value(bytes, pos)));
                skip_ws(bytes, pos);
                if bytes[*pos] == b',' {
                    *pos += 1;
                    skip_ws(bytes, pos);
                }
            }
            *pos += 1; // '}'
            JsonValue::Object(members)
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            while bytes[*pos] != b']' {
                items.push(build_value(bytes, pos));
                skip_ws(bytes, pos);
                if bytes[*pos] == b',' {
                    *pos += 1;
                    skip_ws(bytes, pos);
                }
            }
            *pos += 1; // ']'
            JsonValue::Array(items)
        }
        b'"' => JsonValue::String(build_string(bytes, pos)),
        b't' => {
            *pos += 4;
            JsonValue::Bool(true)
        }
        b'f' => {
            *pos += 5;
            JsonValue::Bool(false)
        }
        b'n' => {
            *pos += 4;
            JsonValue::Null
        }
        _ => {
            let start = *pos;
            let _ = parse_number(bytes, pos);
            let text = core::str::from_utf8(&bytes[start..*pos]).expect("validated ascii");
            JsonValue::Number(text.parse().expect("validated number"))
        }
    }
}

/// Unescapes a validated string starting at the opening quote.
fn build_string(bytes: &[u8], pos: &mut usize) -> String {
    *pos += 1; // opening '"'
    let mut out = String::new();
    loop {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return out;
            }
            b'\\' => {
                match bytes[*pos + 1] {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = core::str::from_utf8(&bytes[*pos + 2..*pos + 6])
                            .expect("validated hex");
                        let code = u32::from_str_radix(hex, 16).expect("validated hex");
                        // Lone surrogates cannot round-trip; the writer
                        // never emits them, so substitute on read.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => unreachable!("validated escape {other}"),
                }
                *pos += 2;
            }
            _ => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let len = utf8_len(bytes[*pos]);
                let text =
                    core::str::from_utf8(&bytes[*pos..*pos + len]).expect("input was &str");
                out.push_str(text);
                *pos += len;
            }
        }
    }
}

/// Byte length of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b < 0xe0 => 2,
        b if b < 0xf0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("list");
        w.begin_array();
        w.u64(1);
        w.i64(-2);
        w.f64(2.5);
        w.bool(true);
        w.null();
        w.string("a \"b\"\n\t\\");
        w.end_array();
        w.key("empty");
        w.begin_object();
        w.end_object();
        w.end_object();
        let doc = w.finish();
        assert_eq!(
            doc,
            r#"{"list":[1,-2,2.5,true,null,"a \"b\"\n\t\\"],"empty":{}}"#
        );
        validate(&doc).unwrap();
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.f64(1.0);
        w.end_array();
        let doc = w.finish();
        assert_eq!(doc, "[null,null,1]");
        validate(&doc).unwrap();
    }

    #[test]
    fn control_chars_escape() {
        let mut out = String::new();
        escape_into(&mut out, "\u{1}x");
        assert_eq!(out, "\"\\u0001x\"");
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_finish_panics() {
        let mut w = JsonWriter::new();
        w.begin_object();
        let _ = w.finish();
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            " false ",
            "0",
            "-0.5e+10",
            "\"ok \\u00e9\"",
            "[]",
            "[1, [2, {\"a\": null}]]",
            "{\"a\": {\"b\": [1.5, \"x\"]}}",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "042",
            "1.2.3",
            "nul",
            "[1] trailing",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1e",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn validator_rejects_runaway_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate(&deep).is_err());
    }

    #[test]
    fn value_parser_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string("strip \"x\"\n");
        w.key("n");
        w.u64(42);
        w.key("speed");
        w.f64(3.766);
        w.key("ok");
        w.bool(true);
        w.key("none");
        w.null();
        w.key("list");
        w.begin_array();
        w.i64(-1);
        w.u64(2);
        w.end_array();
        w.end_object();
        let doc = w.finish();
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("strip \"x\"\n"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("speed").unwrap().as_f64(), Some(3.766));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        let list = v.get("list").unwrap().as_array().unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].as_f64(), Some(-1.0));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_object().unwrap().len(), 6);
    }

    #[test]
    fn value_parser_handles_escapes_and_whitespace() {
        let v = JsonValue::parse(" { \"k\" : [ \"\\u00e9\\t/\" , 1e2 ] } ").unwrap();
        let items = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_str(), Some("é\t/"));
        assert_eq!(items[1].as_f64(), Some(100.0));
    }

    #[test]
    fn value_parser_rejects_what_validate_rejects() {
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn value_accessors_are_variant_strict() {
        let v = JsonValue::parse("[1]").unwrap();
        assert_eq!(v.get("x"), None);
        assert_eq!(v.as_f64(), None);
        assert_eq!(v.as_str(), None);
        assert_eq!(v.as_object(), None);
        assert!(JsonValue::parse("3").unwrap().as_array().is_none());
    }
}
