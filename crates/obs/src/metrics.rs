//! Metrics registry: named counters, gauges, and fixed-bucket histograms
//! with percentile summaries.
//!
//! Everything is hand-rolled on `BTreeMap` so tables render in stable
//! alphabetical order and the crate needs no dependencies.
//!
//! # Examples
//!
//! ```
//! use vip_obs::Registry;
//!
//! let mut reg = Registry::new();
//! reg.inc("engine.calls.intra", 1);
//! reg.observe("call.ms", &[1.0, 2.0, 5.0, 10.0], 3.2);
//! assert_eq!(reg.counter("engine.calls.intra"), 1);
//! let h = reg.histogram("call.ms").unwrap();
//! assert_eq!(h.count(), 1);
//! ```

use core::fmt::Write as _;
use std::collections::BTreeMap;

/// A fixed-bucket histogram over `f64` samples.
///
/// Buckets are defined by sorted upper bounds; a sample lands in the first
/// bucket whose bound is ≥ the sample, or in the implicit overflow bucket.
/// Percentiles are estimated by linear interpolation inside the bucket
/// containing the target rank, clamped to the observed min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Sorted upper bounds, one per finite bucket.
    bounds: Vec<f64>,
    /// Per-bucket counts; one extra slot for the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A condensed histogram summary: count, extrema, mean, and the
/// p50/p95/p99 percentile estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl Histogram {
    /// A histogram with the given bucket upper bounds (sorted and
    /// de-duplicated; non-finite bounds are dropped).
    #[must_use]
    pub fn with_bounds(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// `n` geometrically spaced bounds starting at `start` with the given
    /// `factor` — the usual latency-histogram shape.
    #[must_use]
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::with_bounds(&bounds)
    }

    /// Records one sample. Non-finite samples are ignored.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .partition_point(|b| *b < value)
            .min(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Per-bucket `(upper_bound, count)` pairs; the overflow bucket is
    /// reported with an infinite bound.
    #[must_use]
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(core::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
            .collect()
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by interpolating
    /// within the bucket containing the target rank. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (idx, &bucket_count) in self.counts.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            let next = cumulative + bucket_count;
            if (next as f64) >= target {
                let lower = if idx == 0 {
                    self.min
                } else {
                    self.bounds[idx - 1].max(self.min)
                };
                let upper = if idx < self.bounds.len() {
                    self.bounds[idx].min(self.max)
                } else {
                    self.max
                };
                let within = ((target - cumulative as f64) / bucket_count as f64).clamp(0.0, 1.0);
                return (lower + (upper - lower) * within).clamp(self.min, self.max);
            }
            cumulative = next;
        }
        self.max
    }

    /// Folds another histogram into this one, combining per-thread
    /// recorders from `vip-par` sweeps. Counts add bucket-wise; extrema
    /// and sums combine exactly, so merging is order-independent.
    ///
    /// # Panics
    ///
    /// Panics when the bucket bounds differ — samples cannot be
    /// re-bucketed after the fact, so merging such histograms would
    /// silently misplace counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        // Raw extrema start at ±infinity, so empty sides are identities.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The condensed summary.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `by` to the named counter (created at zero on first use).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Current value of a counter (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        if let Some(v) = self.gauges.get_mut(name) {
            *v = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Adds `delta` to a gauge (created at zero on first use).
    pub fn add_gauge(&mut self, name: &str, delta: f64) {
        if let Some(v) = self.gauges.get_mut(name) {
            *v += delta;
        } else {
            self.gauges.insert(name.to_string(), delta);
        }
    }

    /// Raises a gauge to `value` if it is higher than the current value.
    pub fn max_gauge(&mut self, name: &str, value: f64) {
        if let Some(v) = self.gauges.get_mut(name) {
            *v = v.max(value);
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Current value of a gauge (0 if never set).
    #[must_use]
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Records `value` into the named histogram, creating it with
    /// `bounds` on first use (later calls ignore `bounds`).
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::with_bounds(bounds);
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// The named histogram, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry into this one: counters and gauges add,
    /// histograms merge bucket-wise (see [`Histogram::merge`]). Used to
    /// combine the per-thread registries of a `vip-par` sweep.
    ///
    /// # Panics
    ///
    /// Panics when a histogram present on both sides was created with
    /// different bucket bounds.
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in other.counters() {
            self.inc(name, value);
        }
        for (name, value) in other.gauges() {
            self.add_gauge(name, value);
        }
        for (name, theirs) in other.histograms() {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge(theirs);
            } else {
                self.histograms.insert(name.to_string(), theirs.clone());
            }
        }
    }

    /// Removes every metric.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Whether the registry holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serialises the registry as one JSON object with `counters`,
    /// `gauges` and `histograms` members — the machine-readable twin of
    /// [`Registry::text_table`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = crate::json::JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Writes the registry into an open [`crate::json::JsonWriter`]
    /// (one value).
    pub fn write_json(&self, w: &mut crate::json::JsonWriter) {
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (name, value) in self.counters() {
            w.key(name);
            w.u64(value);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (name, value) in self.gauges() {
            w.key(name);
            w.f64(value);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in self.histograms() {
            let s = h.summary();
            w.key(name);
            w.begin_object();
            w.key("count");
            w.u64(s.count);
            w.key("mean");
            w.f64(s.mean);
            w.key("min");
            w.f64(s.min);
            w.key("max");
            w.f64(s.max);
            w.key("p50");
            w.f64(s.p50);
            w.key("p95");
            w.f64(s.p95);
            w.key("p99");
            w.f64(s.p99);
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }

    /// Renders the registry as an aligned plain-text table.
    #[must_use]
    pub fn text_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (name, value) in self.counters() {
            rows.push((name.to_string(), value.to_string()));
        }
        for (name, value) in self.gauges() {
            rows.push((name.to_string(), format!("{value:.6}")));
        }
        for (name, h) in self.histograms() {
            let s = h.summary();
            rows.push((
                name.to_string(),
                format!(
                    "count={} mean={:.3} min={:.3} max={:.3} p50={:.3} p95={:.3} p99={:.3}",
                    s.count, s.mean, s.min, s.max, s.p50, s.p95, s.p99
                ),
            ));
        }
        if rows.is_empty() {
            return "(no metrics recorded)\n".to_string();
        }
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            let _ = writeln!(out, "{name:<width$}  {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_places_samples_on_boundaries() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        // A sample equal to a bound lands in that bound's bucket.
        h.observe(1.0);
        h.observe(1.5);
        h.observe(2.0);
        h.observe(4.0);
        h.observe(9.0); // overflow bucket
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (2.0, 2));
        assert_eq!(buckets[2], (4.0, 1));
        assert_eq!(buckets[3].1, 1);
        assert!(buckets[3].0.is_infinite());
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 9.0);
    }

    #[test]
    fn unsorted_and_duplicate_bounds_are_normalised() {
        let h = Histogram::with_bounds(&[4.0, 1.0, 2.0, 2.0, f64::NAN]);
        assert_eq!(
            h.buckets().iter().map(|b| b.0).collect::<Vec<_>>()[..3],
            [1.0, 2.0, 4.0]
        );
    }

    #[test]
    fn exponential_bounds() {
        let h = Histogram::exponential(1.0, 2.0, 4);
        let bounds: Vec<f64> = h.buckets().iter().map(|b| b.0).collect();
        assert_eq!(&bounds[..4], &[1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn non_finite_samples_ignored() {
        let mut h = Histogram::with_bounds(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn percentiles_of_uniform_samples() {
        // 100 samples 1..=100 into 10 buckets of width 10: quantiles must
        // land within the right bucket (interpolation error < bucket width).
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
        let mut h = Histogram::with_bounds(&bounds);
        for v in 1..=100 {
            h.observe(v as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() <= 10.0, "p50={}", s.p50);
        assert!((s.p95 - 95.0).abs() <= 10.0, "p95={}", s.p95);
        assert!((s.p99 - 99.0).abs() <= 10.0, "p99={}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "monotone percentiles");
    }

    #[test]
    fn quantile_extremes_clamp_to_observed_range() {
        let mut h = Histogram::with_bounds(&[10.0, 20.0]);
        h.observe(12.0);
        h.observe(14.0);
        h.observe(18.0);
        assert!(h.quantile(0.0) >= 12.0);
        assert_eq!(h.quantile(1.0), 18.0);
        // All samples in one bucket: interpolation stays inside [min, max].
        let q = h.quantile(0.5);
        assert!((12.0..=18.0).contains(&q), "q={q}");
    }

    #[test]
    fn single_sample_percentiles() {
        let mut h = Histogram::exponential(0.5, 2.0, 8);
        h.observe(3.0);
        let s = h.summary();
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 3.0);
        assert_eq!(s.p99, 3.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn overflow_bucket_quantile_interpolates_to_max() {
        let mut h = Histogram::with_bounds(&[1.0]);
        h.observe(100.0);
        h.observe(200.0);
        let q = h.quantile(0.99);
        assert!((100.0..=200.0).contains(&q), "q={q}");
        assert_eq!(h.quantile(1.0), 200.0);
    }

    #[test]
    fn empty_histogram_percentiles_do_not_panic() {
        let h = Histogram::with_bounds(&[1.0, 2.0]);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(h.quantile(q), 0.0, "q={q}");
        }
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!((s.min, s.max, s.mean), (0.0, 0.0, 0.0));
        assert_eq!((s.p50, s.p95, s.p99), (0.0, 0.0, 0.0));
        // A histogram with no finite bounds at all: only the overflow
        // bucket exists, and empty quantiles still return 0.
        let h = Histogram::with_bounds(&[]);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn merge_combines_counts_sums_and_extrema() {
        let bounds = [1.0, 10.0, 100.0];
        let mut a = Histogram::with_bounds(&bounds);
        a.observe(0.5);
        a.observe(5.0);
        let mut b = Histogram::with_bounds(&bounds);
        b.observe(50.0);
        b.observe(500.0); // overflow bucket
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 555.5);
        assert_eq!(a.min(), 0.5);
        assert_eq!(a.max(), 500.0);
        assert_eq!(
            a.buckets().iter().map(|b| b.1).collect::<Vec<_>>(),
            vec![1, 1, 1, 1]
        );

        // Merging mirrors sequential observation exactly.
        let mut seq = Histogram::with_bounds(&bounds);
        for v in [0.5, 5.0, 50.0, 500.0] {
            seq.observe(v);
        }
        assert_eq!(a, seq);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::with_bounds(&[2.0]);
        a.observe(1.0);
        let before = a.clone();
        a.merge(&Histogram::with_bounds(&[2.0]));
        assert_eq!(a, before, "merging an empty histogram changes nothing");
        let mut empty = Histogram::with_bounds(&[2.0]);
        empty.merge(&before);
        assert_eq!(empty, before, "merging into empty adopts the other side");
        assert_eq!(empty.min(), 1.0);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::with_bounds(&[1.0]);
        a.merge(&Histogram::with_bounds(&[2.0]));
    }

    #[test]
    fn registry_merge_combines_all_metric_kinds() {
        let mut a = Registry::new();
        a.inc("calls", 2);
        a.set_gauge("busy", 1.5);
        a.observe("lat", &[1.0, 10.0], 0.5);
        let mut b = Registry::new();
        b.inc("calls", 3);
        b.inc("other", 1);
        b.add_gauge("busy", 0.5);
        b.observe("lat", &[1.0, 10.0], 5.0);
        b.observe("fresh", &[1.0], 0.25);
        a.merge(&b);
        assert_eq!(a.counter("calls"), 5);
        assert_eq!(a.counter("other"), 1);
        assert_eq!(a.gauge("busy"), 2.0);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.histogram("fresh").unwrap().count(), 1);
    }

    #[test]
    fn registry_counters_gauges() {
        let mut reg = Registry::new();
        assert!(reg.is_empty());
        reg.inc("calls", 2);
        reg.inc("calls", 3);
        assert_eq!(reg.counter("calls"), 5);
        assert_eq!(reg.counter("missing"), 0);
        reg.set_gauge("busy", 1.5);
        reg.add_gauge("busy", 0.5);
        assert_eq!(reg.gauge("busy"), 2.0);
        reg.max_gauge("peak", 3.0);
        reg.max_gauge("peak", 1.0);
        assert_eq!(reg.gauge("peak"), 3.0);
        reg.clear();
        assert!(reg.is_empty());
    }

    #[test]
    fn registry_histograms_and_table() {
        let mut reg = Registry::new();
        reg.observe("lat", &[1.0, 10.0], 5.0);
        reg.observe("lat", &[99.0], 20.0); // bounds ignored on second call
        assert_eq!(reg.histogram("lat").unwrap().count(), 2);
        reg.inc("n", 1);
        reg.set_gauge("g", 0.25);
        let table = reg.text_table();
        assert!(table.contains("n  "), "{table}");
        assert!(table.contains("count=2"), "{table}");
        assert!(table.lines().count() == 3, "{table}");
        assert_eq!(Registry::new().text_table(), "(no metrics recorded)\n");
    }
}
