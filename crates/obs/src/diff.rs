//! Trace diffing: aligns two Chrome trace-event documents track by
//! track and reports busy-time and event-count deltas — the
//! `vipctl trace-diff` backend.
//!
//! Tracks are aligned by their `thread_name` metadata (falling back to
//! `tid<N>`), so two runs whose tids differ still compare correctly.
//! Busy time per track is the sum of complete-span durations plus
//! matched begin/end pairs, in nanoseconds; diffing the same trace
//! against itself is exactly zero everywhere.

use core::fmt::Write as _;
use std::collections::BTreeMap;

use crate::json::JsonValue;

/// Per-track accumulation from one trace document.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct TrackSide {
    busy_ns: u64,
    events: u64,
}

/// One aligned track with both sides' totals.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackDelta {
    /// Track name (`thread_name` metadata, or `tid<N>`).
    pub name: String,
    /// Busy nanoseconds in trace A.
    pub a_busy_ns: u64,
    /// Busy nanoseconds in trace B.
    pub b_busy_ns: u64,
    /// Non-metadata events in trace A.
    pub a_events: u64,
    /// Non-metadata events in trace B.
    pub b_events: u64,
}

impl TrackDelta {
    /// Busy-time change B − A in nanoseconds.
    #[must_use]
    pub fn busy_delta_ns(&self) -> i64 {
        self.b_busy_ns as i64 - self.a_busy_ns as i64
    }

    /// Event-count change B − A.
    #[must_use]
    pub fn event_delta(&self) -> i64 {
        self.b_events as i64 - self.a_events as i64
    }

    /// Relative busy-time change (B − A) / A; 0 when both sides are
    /// zero, 1 when a track appears only in B.
    #[must_use]
    pub fn relative_change(&self) -> f64 {
        if self.a_busy_ns == 0 {
            return if self.b_busy_ns == 0 { 0.0 } else { 1.0 };
        }
        self.busy_delta_ns() as f64 / self.a_busy_ns as f64
    }

    /// Whether both sides agree exactly.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.a_busy_ns == self.b_busy_ns && self.a_events == self.b_events
    }
}

/// The aligned diff of two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// One entry per track present in either trace, in name order.
    pub tracks: Vec<TrackDelta>,
}

impl TraceDiff {
    /// Whether every track agrees exactly (self-diff is always zero).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.tracks.iter().all(TrackDelta::is_zero)
    }

    /// Tracks whose relative busy-time change exceeds `threshold`
    /// (e.g. `0.1` for ±10%).
    #[must_use]
    pub fn exceeding(&self, threshold: f64) -> Vec<&TrackDelta> {
        self.tracks
            .iter()
            .filter(|t| t.relative_change().abs() > threshold)
            .collect()
    }

    /// Renders the per-track delta table; rows whose relative busy-time
    /// change exceeds `threshold` are flagged with `!`.
    #[must_use]
    pub fn text_table(&self, threshold: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>14} {:>14} {:>9} {:>9} {:>3}",
            "track", "a_busy_ns", "b_busy_ns", "delta_ns", "a_events", "b_events", ""
        );
        for t in &self.tracks {
            let flag = if t.relative_change().abs() > threshold {
                "!"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:<12} {:>14} {:>14} {:>+14} {:>9} {:>9} {:>3}",
                t.name,
                t.a_busy_ns,
                t.b_busy_ns,
                t.busy_delta_ns(),
                t.a_events,
                t.b_events,
                flag
            );
        }
        let over = self.exceeding(threshold).len();
        let _ = writeln!(
            out,
            "{} track(s) beyond ±{:.0}%{}",
            over,
            threshold * 100.0,
            if self.is_zero() { " (traces identical)" } else { "" }
        );
        out
    }
}

/// Diffs two Chrome trace-event JSON documents (the format
/// [`crate::Recording::to_chrome_json`] writes).
///
/// # Errors
///
/// Returns a message when either document is not valid JSON or lacks
/// the `traceEvents` array.
pub fn diff_chrome_traces(a: &str, b: &str) -> Result<TraceDiff, String> {
    let a = accumulate(a).map_err(|e| format!("trace A: {e}"))?;
    let b = accumulate(b).map_err(|e| format!("trace B: {e}"))?;
    let mut names: Vec<&String> = a.keys().chain(b.keys()).collect();
    names.sort();
    names.dedup();
    let tracks = names
        .into_iter()
        .map(|name| {
            let sa = a.get(name).copied().unwrap_or_default();
            let sb = b.get(name).copied().unwrap_or_default();
            TrackDelta {
                name: name.clone(),
                a_busy_ns: sa.busy_ns,
                b_busy_ns: sb.busy_ns,
                a_events: sa.events,
                b_events: sb.events,
            }
        })
        .collect();
    Ok(TraceDiff { tracks })
}

/// Chrome `ts`/`dur` microseconds (possibly fractional) to nanoseconds.
fn us_to_ns(us: f64) -> u64 {
    (us * 1_000.0).round().max(0.0) as u64
}

/// Sums busy time and event counts per track name for one document.
fn accumulate(text: &str) -> Result<BTreeMap<String, TrackSide>, String> {
    let doc = JsonValue::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;

    // Pass 1: thread_name metadata maps tid → name.
    let mut names: BTreeMap<u64, String> = BTreeMap::new();
    for e in events {
        if e.get("ph").and_then(JsonValue::as_str) == Some("M")
            && e.get("name").and_then(JsonValue::as_str) == Some("thread_name")
        {
            let (Some(tid), Some(name)) = (
                e.get("tid").and_then(JsonValue::as_f64),
                e.get("args").and_then(|a| a.get("name")).and_then(JsonValue::as_str),
            ) else {
                continue;
            };
            names.insert(tid as u64, name.to_string());
        }
    }

    let mut sides: BTreeMap<String, TrackSide> = BTreeMap::new();
    // Open begin-events per (tid, name), for B/E pairing.
    let mut open: BTreeMap<(u64, String), Vec<u64>> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        if ph == "M" {
            continue;
        }
        let tid = e.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        let track = names
            .get(&tid)
            .cloned()
            .unwrap_or_else(|| format!("tid{tid}"));
        let ts_ns = us_to_ns(e.get("ts").and_then(JsonValue::as_f64).unwrap_or(0.0));
        let side = sides.entry(track).or_default();
        side.events += 1;
        match ph {
            "X" => {
                side.busy_ns +=
                    us_to_ns(e.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0));
            }
            "B" => {
                let name = e.get("name").and_then(JsonValue::as_str).unwrap_or("");
                open.entry((tid, name.to_string())).or_default().push(ts_ns);
            }
            "E" => {
                let name = e.get("name").and_then(JsonValue::as_str).unwrap_or("");
                if let Some(begin) =
                    open.get_mut(&(tid, name.to_string())).and_then(Vec::pop)
                {
                    side.busy_ns += ts_ns.saturating_sub(begin);
                }
            }
            _ => {}
        }
    }
    Ok(sides)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Session, Track};

    fn sample_trace(scale: u64) -> String {
        let session = Session::new();
        let rec = session.recorder();
        rec.span(Track::Dma, "strip", 0, 1_000 * scale, &[]);
        rec.span(Track::Dma, "strip", 2_000, 2_000 + 500 * scale, &[]);
        rec.begin(Track::Pu, "processing", 100, &[]);
        rec.end(Track::Pu, "processing", 100 + 3_000 * scale);
        rec.instant(Track::Engine, "call_issued", 0, &[]);
        rec.counter(Track::Oim, "occupancy", 50, 2.0);
        session.finish().to_chrome_json()
    }

    #[test]
    fn self_diff_is_zero() {
        let trace = sample_trace(1);
        let diff = diff_chrome_traces(&trace, &trace).unwrap();
        assert!(diff.is_zero());
        assert!(diff.exceeding(0.0).is_empty());
        for t in &diff.tracks {
            assert_eq!(t.busy_delta_ns(), 0);
            assert_eq!(t.event_delta(), 0);
            assert_eq!(t.relative_change(), 0.0);
        }
        assert!(diff.text_table(0.1).contains("traces identical"));
    }

    #[test]
    fn diff_reports_per_track_deltas() {
        let diff = diff_chrome_traces(&sample_trace(1), &sample_trace(2)).unwrap();
        assert!(!diff.is_zero());
        let dma = diff.tracks.iter().find(|t| t.name == "dma").unwrap();
        assert_eq!(dma.a_busy_ns, 1_500);
        assert_eq!(dma.b_busy_ns, 3_000);
        assert_eq!(dma.busy_delta_ns(), 1_500);
        assert!((dma.relative_change() - 1.0).abs() < 1e-12);
        let pu = diff.tracks.iter().find(|t| t.name == "pu").unwrap();
        assert_eq!(pu.a_busy_ns, 3_000);
        assert_eq!(pu.b_busy_ns, 6_000);
        // Engine instants and OIM counters: events equal, busy zero.
        let engine = diff.tracks.iter().find(|t| t.name == "engine").unwrap();
        assert!(engine.is_zero());
        // Threshold flags only the moved tracks.
        let over = diff.exceeding(0.1);
        assert_eq!(over.len(), 2, "{over:?}");
        let table = diff.text_table(0.1);
        assert!(table.contains('!'), "{table}");
    }

    #[test]
    fn tracks_align_by_name_not_tid() {
        // Hand-built traces where the same track name sits on different
        // tids: the diff must still align them.
        let a = r#"{"traceEvents":[
            {"ph":"M","name":"thread_name","pid":1,"tid":7,"args":{"name":"pu"}},
            {"name":"s","ph":"X","ts":0,"dur":10,"pid":1,"tid":7}]}"#;
        let b = r#"{"traceEvents":[
            {"ph":"M","name":"thread_name","pid":1,"tid":9,"args":{"name":"pu"}},
            {"name":"s","ph":"X","ts":5,"dur":10,"pid":1,"tid":9}]}"#;
        let diff = diff_chrome_traces(a, b).unwrap();
        assert_eq!(diff.tracks.len(), 1);
        assert_eq!(diff.tracks[0].name, "pu");
        assert!(diff.tracks[0].is_zero(), "same dur, same count");
    }

    #[test]
    fn missing_tracks_count_as_zero() {
        let a = r#"{"traceEvents":[
            {"ph":"M","name":"thread_name","pid":1,"tid":1,"args":{"name":"dma"}},
            {"name":"s","ph":"X","ts":0,"dur":4,"pid":1,"tid":1}]}"#;
        let b = r#"{"traceEvents":[]}"#;
        let diff = diff_chrome_traces(a, b).unwrap();
        assert_eq!(diff.tracks.len(), 1);
        assert_eq!(diff.tracks[0].b_busy_ns, 0);
        assert_eq!(diff.tracks[0].relative_change(), -1.0);
        // And the appear-only-in-B direction:
        let diff = diff_chrome_traces(b, a).unwrap();
        assert_eq!(diff.tracks[0].relative_change(), 1.0);
    }

    #[test]
    fn invalid_documents_are_rejected() {
        assert!(diff_chrome_traces("{", "{}").is_err());
        let err = diff_chrome_traces("{}", "{}").unwrap_err();
        assert!(err.contains("traceEvents"), "{err}");
    }

    #[test]
    fn fractional_microseconds_convert_exactly() {
        let a = r#"{"traceEvents":[{"name":"w","ph":"X","ts":1.500,"dur":0.250,"pid":1,"tid":2}]}"#;
        let diff = diff_chrome_traces(a, a).unwrap();
        assert_eq!(diff.tracks[0].name, "tid2");
        assert_eq!(diff.tracks[0].a_busy_ns, 250);
    }
}
