//! Cycle attribution: turns a raw [`Recording`] into per-subsystem
//! busy/idle breakdowns — the "where did the cycles go" layer behind
//! `vipctl report`.
//!
//! Each track's *busy* time is the union of its span intervals
//! (overlapping spans are not double-counted), measured against the
//! recording's observation window. Everything is integer virtual-clock
//! nanoseconds, so attribution is deterministic and mode-independent.

use core::fmt::Write as _;

use crate::event::{Phase, Track};
use crate::json::JsonWriter;
use crate::recorder::Recording;

/// Busy/idle accounting for one track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackUtilization {
    /// The subsystem track.
    pub track: Track,
    /// Nanoseconds covered by at least one span on this track.
    pub busy_ns: u64,
    /// Closed spans seen (complete spans plus matched begin/end pairs).
    pub spans: usize,
    /// All events on the track, including instants and counter samples.
    pub events: usize,
}

impl TrackUtilization {
    /// Busy fraction of a window of `window_ns` nanoseconds (0 for an
    /// empty window).
    #[must_use]
    pub fn utilization(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / window_ns as f64
    }
}

/// Per-track busy/idle attribution over one recording's window.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Earliest event timestamp.
    pub start_ns: u64,
    /// Latest span end (or event timestamp).
    pub end_ns: u64,
    /// One entry per track present, in tid order.
    pub tracks: Vec<TrackUtilization>,
}

impl Attribution {
    /// Computes the attribution of a recording.
    #[must_use]
    pub fn of(recording: &Recording) -> Attribution {
        let start_ns = recording.events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
        let end_ns = recording
            .events
            .iter()
            .map(crate::event::TraceRecord::end_ns)
            .max()
            .unwrap_or(0);
        let tracks = recording
            .tracks()
            .into_iter()
            .map(|track| {
                let events = recording.on_track(track);
                let mut intervals: Vec<(u64, u64)> = Vec::new();
                // Begin/End pairing: an End closes the most recent open
                // Begin with the same name on its track.
                let mut open: Vec<(&'static str, u64)> = Vec::new();
                for e in &events {
                    match e.phase {
                        Phase::Complete { .. } => intervals.push((e.ts_ns, e.end_ns())),
                        Phase::Begin => open.push((e.name, e.ts_ns)),
                        Phase::End => {
                            if let Some(i) =
                                open.iter().rposition(|(name, _)| *name == e.name)
                            {
                                let (_, begin) = open.remove(i);
                                intervals.push((begin, e.ts_ns));
                            }
                        }
                        Phase::Instant | Phase::Counter { .. } => {}
                    }
                }
                TrackUtilization {
                    track,
                    busy_ns: union_ns(&mut intervals),
                    spans: intervals.len(),
                    events: events.len(),
                }
            })
            .collect();
        Attribution {
            start_ns,
            end_ns,
            tracks,
        }
    }

    /// Length of the observation window in nanoseconds.
    #[must_use]
    pub fn window_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The entry for `track`, if it appeared in the recording.
    #[must_use]
    pub fn track(&self, track: Track) -> Option<&TrackUtilization> {
        self.tracks.iter().find(|t| t.track == track)
    }

    /// Renders the per-subsystem busy/idle utilization table.
    #[must_use]
    pub fn text_table(&self) -> String {
        let window = self.window_ns();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>14} {:>8} {:>8} {:>8}",
            "track", "busy_ns", "idle_ns", "util%", "spans", "events"
        );
        for t in &self.tracks {
            let _ = writeln!(
                out,
                "{:<12} {:>14} {:>14} {:>7.2}% {:>8} {:>8}",
                t.track.name(),
                t.busy_ns,
                window.saturating_sub(t.busy_ns),
                100.0 * t.utilization(window),
                t.spans,
                t.events
            );
        }
        let _ = writeln!(out, "window: {window} ns");
        out
    }

    /// Serialises the attribution as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Writes the attribution into an open [`JsonWriter`] (one value).
    pub fn write_json(&self, w: &mut JsonWriter) {
        let window = self.window_ns();
        w.begin_object();
        w.key("start_ns");
        w.u64(self.start_ns);
        w.key("end_ns");
        w.u64(self.end_ns);
        w.key("window_ns");
        w.u64(window);
        w.key("tracks");
        w.begin_array();
        for t in &self.tracks {
            w.begin_object();
            w.key("track");
            w.string(t.track.name());
            w.key("busy_ns");
            w.u64(t.busy_ns);
            w.key("idle_ns");
            w.u64(window.saturating_sub(t.busy_ns));
            w.key("utilization");
            w.f64(t.utilization(window));
            w.key("spans");
            w.u64(t.spans as u64);
            w.key("events");
            w.u64(t.events as u64);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
}

/// Total nanoseconds covered by the union of `intervals` (sorted in
/// place; overlapping and nested intervals count once).
fn union_ns(intervals: &mut [(u64, u64)]) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut covered_to = 0u64;
    for &(start, end) in intervals.iter() {
        let from = start.max(covered_to);
        if end > from {
            total += end - from;
            covered_to = end;
        }
        covered_to = covered_to.max(end);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Session, Track};

    #[test]
    fn union_merges_overlaps_and_nests() {
        let mut iv = vec![(0, 10), (5, 15), (20, 30), (22, 25)];
        assert_eq!(union_ns(&mut iv), 25);
        assert_eq!(union_ns(&mut []), 0);
        let mut single = vec![(7, 7)];
        assert_eq!(union_ns(&mut single), 0, "zero-length spans add nothing");
    }

    #[test]
    fn attribution_counts_busy_per_track() {
        let session = Session::new();
        let rec = session.recorder();
        rec.span(Track::Dma, "strip", 0, 100, &[]);
        rec.span(Track::Dma, "strip", 50, 150, &[]); // overlaps: union 150
        rec.begin(Track::Pu, "processing", 10, &[]);
        rec.end(Track::Pu, "processing", 210);
        rec.counter(Track::Oim, "occupancy", 90, 3.0);
        rec.instant(Track::Engine, "call_issued", 0, &[]);
        let attrib = Attribution::of(&session.finish());

        assert_eq!(attrib.start_ns, 0);
        assert_eq!(attrib.end_ns, 210);
        assert_eq!(attrib.window_ns(), 210);
        let dma = attrib.track(Track::Dma).unwrap();
        assert_eq!(dma.busy_ns, 150);
        assert_eq!(dma.spans, 2);
        let pu = attrib.track(Track::Pu).unwrap();
        assert_eq!(pu.busy_ns, 200);
        assert!((pu.utilization(attrib.window_ns()) - 200.0 / 210.0).abs() < 1e-12);
        // Instants and counters contribute events but no busy time.
        assert_eq!(attrib.track(Track::Oim).unwrap().busy_ns, 0);
        assert_eq!(attrib.track(Track::Engine).unwrap().events, 1);
        assert_eq!(attrib.track(Track::Iim), None);
    }

    #[test]
    fn empty_recording_attribution() {
        let attrib = Attribution::of(&Session::new().finish());
        assert_eq!(attrib.window_ns(), 0);
        assert!(attrib.tracks.is_empty());
        assert!(attrib.text_table().contains("window: 0 ns"));
    }

    #[test]
    fn table_and_json_render() {
        let session = Session::new();
        session.recorder().span(Track::Pci, "payload", 0, 40, &[]);
        let attrib = Attribution::of(&session.finish());
        let table = attrib.text_table();
        assert!(table.contains("pci"), "{table}");
        assert!(table.contains("100.00%"), "{table}");
        let json = attrib.to_json();
        crate::json::validate(&json).unwrap();
        let v = crate::json::JsonValue::parse(&json).unwrap();
        assert_eq!(v.get("window_ns").unwrap().as_f64(), Some(40.0));
        let tracks = v.get("tracks").unwrap().as_array().unwrap();
        assert_eq!(tracks[0].get("track").unwrap().as_str(), Some("pci"));
    }

    #[test]
    fn unmatched_end_is_ignored() {
        let session = Session::new();
        let rec = session.recorder();
        rec.end(Track::Pu, "stall", 50);
        rec.begin(Track::Pu, "stall", 60, &[]);
        let attrib = Attribution::of(&session.finish());
        let pu = attrib.track(Track::Pu).unwrap();
        assert_eq!(pu.busy_ns, 0, "dangling begin/end contribute nothing");
        assert_eq!(pu.spans, 0);
        assert_eq!(pu.events, 2);
    }
}
