//! # vip-obs — zero-dependency observability for the AddressEngine stack
//!
//! The paper's argument is quantitative (Table 2 access counts, Table 3
//! call timings, the ×30 Amdahl bound), but per-call summaries alone cannot
//! show *why* a call costs what it does: DMA strip cadence, ZBT bank
//! traffic, IIM/OIM occupancy and process-unit stalls all happen inside a
//! call. This crate provides the pieces the simulator needs to make
//! that visible, with no external dependencies:
//!
//! 1. **Event bus** — [`Session`] owns a buffer of [`TraceRecord`]s;
//!    subsystems publish through cheap cloneable [`Recorder`] handles.
//!    A disabled recorder ([`Recorder::disabled`]) records nothing and
//!    costs a single branch on the hot path.
//! 2. **Metrics registry** — [`Registry`] holds named counters, gauges and
//!    fixed-bucket [`Histogram`]s with p50/p95/p99 summaries.
//! 3. **Exporters** — [`chrome::to_chrome_json`] serialises a recording to
//!    Chrome trace-event JSON (loadable in Perfetto or `chrome://tracing`,
//!    one "thread" per subsystem), and [`Registry::text_table`] renders a
//!    plain-text stats table. JSON is written by the in-crate
//!    [`json::JsonWriter`], not serde, and read back by
//!    [`json::JsonValue`].
//! 4. **Attribution & diffing** — [`Attribution`] turns a recording into
//!    per-track busy/idle breakdowns, and [`diff_chrome_traces`] aligns
//!    two exported traces and reports per-track deltas.
//!
//! Timestamps are `u64` nanoseconds on a *virtual* clock — the simulated
//! engine/PCI time, not wall time — so traces line up with the paper's
//! cycle accounting.
//!
//! # Examples
//!
//! ```
//! use vip_obs::{Session, Track};
//!
//! let session = Session::new();
//! let rec = session.recorder();
//! rec.span(Track::Dma, "strip", 0, 1_000, &[("strip", 0u64.into())]);
//! let recording = session.finish();
//! let json = recording.to_chrome_json();
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attrib;
pub mod chrome;
pub mod diff;
pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;

pub use attrib::{Attribution, TrackUtilization};
pub use diff::{diff_chrome_traces, TraceDiff, TrackDelta};
pub use event::{AttrValue, Phase, Track, TraceRecord};
pub use metrics::{Histogram, HistogramSummary, Registry};
pub use recorder::{Recorder, Recording, Session};
