//! Chrome trace-event JSON export.
//!
//! Produces the object-with-`traceEvents` form of the [trace-event
//! format], loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Each [`Track`](crate::Track) becomes one named
//! thread of a single process; timestamps convert from virtual-clock
//! nanoseconds to the format's microseconds with three decimals, so no
//! precision is lost.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{AttrValue, Phase, TraceRecord, Track};
use crate::json::JsonWriter;

/// The process id used for all tracks.
const PID: u64 = 1;

/// Serialises events to Chrome trace-event JSON.
///
/// Events are emitted in timestamp order (stable for ties) after one
/// `thread_name` metadata record per distinct track, so Perfetto labels
/// each subsystem row.
#[must_use]
pub fn to_chrome_json(events: &[TraceRecord]) -> String {
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| events[i].ts_ns);

    let mut tracks: Vec<Track> = Vec::new();
    for e in events {
        if !tracks.contains(&e.track) {
            tracks.push(e.track);
        }
    }
    tracks.sort_by_key(|t| t.tid());

    // ~160 bytes per event is a comfortable overestimate.
    let mut w = JsonWriter::with_capacity(events.len() * 160 + 1024);
    w.begin_object();
    w.key("displayTimeUnit");
    w.string("ns");
    w.key("traceEvents");
    w.begin_array();

    for track in &tracks {
        w.begin_object();
        w.key("ph");
        w.string("M");
        w.key("name");
        w.string("thread_name");
        w.key("pid");
        w.u64(PID);
        w.key("tid");
        w.u64(u64::from(track.tid()));
        w.key("args");
        w.begin_object();
        w.key("name");
        w.string(track.name());
        w.end_object();
        w.end_object();
    }

    for &i in &order {
        write_event(&mut w, &events[i]);
    }

    w.end_array();
    w.end_object();
    w.finish()
}

/// Writes `ts` (or `dur`) in microseconds with nanosecond precision, as
/// the trace-event format expects.
fn write_us(w: &mut JsonWriter, ns: u64) {
    if ns.is_multiple_of(1_000) {
        w.u64(ns / 1_000);
    } else {
        // Emit as a raw decimal rather than f64 to avoid rounding.
        let text = format!("{}.{:03}", ns / 1_000, ns % 1_000);
        // The text is always a valid JSON number; route it through f64
        // writing would lose precision for large timestamps.
        w.raw_number(&text);
    }
}

fn write_event(w: &mut JsonWriter, e: &TraceRecord) {
    w.begin_object();
    w.key("name");
    w.string(e.name);
    w.key("ph");
    w.string(match e.phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Complete { .. } => "X",
        Phase::Instant => "i",
        Phase::Counter { .. } => "C",
    });
    w.key("ts");
    write_us(w, e.ts_ns);
    if let Phase::Complete { dur_ns } = e.phase {
        w.key("dur");
        write_us(w, dur_ns);
    }
    if let Phase::Instant = e.phase {
        w.key("s");
        w.string("t"); // thread-scoped marker
    }
    w.key("pid");
    w.u64(PID);
    w.key("tid");
    w.u64(u64::from(e.track.tid()));
    match e.phase {
        Phase::Counter { value } => {
            w.key("args");
            w.begin_object();
            w.key(e.name);
            w.f64(value);
            w.end_object();
        }
        _ if !e.args.is_empty() => {
            w.key("args");
            w.begin_object();
            for (key, value) in &e.args {
                w.key(key);
                match value {
                    AttrValue::U64(v) => w.u64(*v),
                    AttrValue::I64(v) => w.i64(*v),
                    AttrValue::F64(v) => w.f64(*v),
                    AttrValue::Str(v) => w.string(v),
                    AttrValue::Owned(v) => w.string(v),
                }
            }
            w.end_object();
        }
        _ => {}
    }
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::{Recorder, Session};

    fn sample_session() -> Session {
        let session = Session::new();
        let rec = session.recorder();
        rec.instant(Track::Engine, "call_issued", 0, &[("mode", "intra".into())]);
        rec.begin(Track::Pu, "stall", 2_500, &[("kind", "iim".into())]);
        rec.end(Track::Pu, "stall", 3_750);
        rec.span(Track::Dma, "strip", 1_000, 2_000, &[("strip", 0u64.into())]);
        rec.span(Track::Dma, "strip", 2_000, 3_000, &[("strip", 1u64.into())]);
        rec.counter(Track::Oim, "occupancy", 2_200, 5.0);
        rec.span(Track::ZbtBank(4), "bank_active", 0, 4_000, &[("writes", 64u64.into())]);
        session
    }

    #[test]
    fn export_is_valid_json() {
        let json = sample_session().finish().to_chrome_json();
        validate(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.starts_with('{') && json.contains("\"traceEvents\":["));
    }

    #[test]
    fn export_declares_thread_names() {
        let json = sample_session().finish().to_chrome_json();
        for name in ["engine", "pu", "dma", "oim", "zbt.bank4"] {
            assert!(
                json.contains(&format!("\"args\":{{\"name\":\"{name}\"}}")),
                "missing thread_name for {name}: {json}"
            );
        }
    }

    #[test]
    fn timestamps_non_decreasing_per_thread() {
        let json = sample_session().finish().to_chrome_json();
        // Walk the emitted events and track the last ts per tid.
        let mut last: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        let mut seen = 0;
        for chunk in event_chunks(&json) {
            let ts = field_number(chunk, "\"ts\":");
            let tid = field_number(chunk, "\"tid\":") as u64;
            let prev = last.entry(tid).or_insert(f64::NEG_INFINITY);
            assert!(ts >= *prev, "ts went backwards on tid {tid}");
            *prev = ts;
            seen += 1;
        }
        assert!(seen >= 7, "expected all sample events, saw {seen}");
    }

    #[test]
    fn begin_end_pairs_match_per_thread() {
        let json = sample_session().finish().to_chrome_json();
        let mut depth: std::collections::BTreeMap<u64, i64> = std::collections::BTreeMap::new();
        for chunk in event_chunks(&json) {
            let tid = field_number(chunk, "\"tid\":") as u64;
            if chunk.contains("\"ph\":\"B\"") {
                *depth.entry(tid).or_insert(0) += 1;
            } else if chunk.contains("\"ph\":\"E\"") {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "E without B on tid {tid}");
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unmatched B: {depth:?}");
    }

    #[test]
    fn sub_microsecond_timestamps_keep_precision() {
        let session = Session::new();
        session.recorder().span(Track::Pci, "word", 1_500, 1_750, &[]);
        let json = session.finish().to_chrome_json();
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":0.250"), "{json}");
        validate(&json).unwrap();
    }

    #[test]
    fn disabled_recorder_yields_empty_trace() {
        let rec = Recorder::disabled();
        rec.span(Track::Dma, "strip", 0, 10, &[]);
        let json = to_chrome_json(&[]);
        validate(&json).unwrap();
        assert!(json.contains("\"traceEvents\":[]"));
    }

    /// Splits the document into per-event chunks. Splitting on the
    /// leading `{"name":` also cuts at metadata `args` objects, which
    /// carry no `ts`; those fragments are filtered out.
    fn event_chunks(json: &str) -> impl Iterator<Item = &str> {
        json.split("{\"name\":")
            .skip(1)
            .filter(|c| c.contains("\"ts\":") && c.contains("\"tid\":"))
    }

    /// Extracts the number following `key` in `chunk` (test helper; the
    /// JSON here is machine-written with a fixed field order).
    fn field_number(chunk: &str, key: &str) -> f64 {
        let rest = &chunk[chunk.find(key).expect(key) + key.len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().expect("number")
    }
}
