//! The structured event model: tracks, phases, attributes and records.
//!
//! Every record carries a `u64` nanosecond timestamp on the simulator's
//! virtual clock, a [`Track`] naming the subsystem that emitted it, and a
//! list of key/value attributes. The model maps 1:1 onto the Chrome
//! trace-event format so export is a straight transcription.

use core::fmt;

/// The subsystem ("thread" in the Chrome trace model) an event belongs to.
///
/// One track per architectural block of fig. 2: the PCI bus, the DMA strip
/// scheduler, the six ZBT banks, the intermediate memories, the Process
/// Unit and the Pipeline Logic Controller, plus the engine-level call track
/// and the GME application layer above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Engine-level call lifecycle (one span per AddressLib call).
    Engine,
    /// PCI bus payload and interrupt activity.
    Pci,
    /// DMA strip scheduler (per-strip and per-result-half transfers).
    Dma,
    /// One of the six ZBT SRAM banks (0–5).
    ZbtBank(u8),
    /// Input Intermediate Memory line fills.
    Iim,
    /// Output Intermediate Memory occupancy and drains.
    Oim,
    /// Process Unit pipeline (stalls, processing windows).
    Pu,
    /// Pipeline Logic Controller line sweeps.
    Plc,
    /// Global motion estimation above the engine.
    Gme,
}

impl Track {
    /// Stable Chrome-trace thread id for the track. Ids are dense and
    /// ordered so Perfetto lists tracks top-down in architectural order.
    #[must_use]
    pub fn tid(self) -> u32 {
        match self {
            Track::Engine => 1,
            Track::Pci => 2,
            Track::Dma => 3,
            Track::ZbtBank(b) => 4 + u32::from(b.min(5)),
            Track::Iim => 10,
            Track::Oim => 11,
            Track::Pu => 12,
            Track::Plc => 13,
            Track::Gme => 14,
        }
    }

    /// Human-readable track name, used as the Chrome-trace thread name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Track::Engine => "engine",
            Track::Pci => "pci",
            Track::Dma => "dma",
            Track::ZbtBank(0) => "zbt.bank0",
            Track::ZbtBank(1) => "zbt.bank1",
            Track::ZbtBank(2) => "zbt.bank2",
            Track::ZbtBank(3) => "zbt.bank3",
            Track::ZbtBank(4) => "zbt.bank4",
            Track::ZbtBank(_) => "zbt.bank5",
            Track::Iim => "iim",
            Track::Oim => "oim",
            Track::Pu => "pu",
            Track::Plc => "plc",
            Track::Gme => "gme",
        }
    }
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// Span open (`ph: "B"`); must be matched by an [`Phase::End`] on the
    /// same track.
    Begin,
    /// Span close (`ph: "E"`).
    End,
    /// Self-contained span (`ph: "X"`) with an explicit duration.
    Complete {
        /// Span duration in virtual nanoseconds.
        dur_ns: u64,
    },
    /// Zero-duration marker (`ph: "i"`).
    Instant,
    /// Sampled counter value (`ph: "C"`), drawn as a track-local graph.
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// An attribute value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Static string (the common case: enum variant names).
    Str(&'static str),
    /// Owned string.
    Owned(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Owned(v)
    }
}

/// A key/value attribute pair: `(key, value)`.
pub type Attr = (&'static str, AttrValue);

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual-clock timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Subsystem track the event belongs to.
    pub track: Track,
    /// Event name (shown on the span/marker in Perfetto).
    pub name: &'static str,
    /// Event phase.
    pub phase: Phase,
    /// Key/value attributes (Chrome-trace `args`).
    pub args: Vec<Attr>,
}

impl TraceRecord {
    /// End timestamp: `ts_ns` plus the duration for complete spans,
    /// `ts_ns` itself for everything else.
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        match self.phase {
            Phase::Complete { dur_ns } => self.ts_ns.saturating_add(dur_ns),
            _ => self.ts_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_unique_and_ordered() {
        let tracks = [
            Track::Engine,
            Track::Pci,
            Track::Dma,
            Track::ZbtBank(0),
            Track::ZbtBank(1),
            Track::ZbtBank(2),
            Track::ZbtBank(3),
            Track::ZbtBank(4),
            Track::ZbtBank(5),
            Track::Iim,
            Track::Oim,
            Track::Pu,
            Track::Plc,
            Track::Gme,
        ];
        let mut tids: Vec<u32> = tracks.iter().map(|t| t.tid()).collect();
        let sorted = tids.clone();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), tracks.len(), "tids must be unique");
        assert_eq!(tids, sorted, "tids must already be in display order");
    }

    #[test]
    fn out_of_range_bank_saturates() {
        assert_eq!(Track::ZbtBank(9).tid(), Track::ZbtBank(5).tid());
        assert_eq!(Track::ZbtBank(9).name(), "zbt.bank5");
    }

    #[test]
    fn end_ns_for_phases() {
        let mut r = TraceRecord {
            ts_ns: 10,
            track: Track::Pu,
            name: "x",
            phase: Phase::Complete { dur_ns: 5 },
            args: Vec::new(),
        };
        assert_eq!(r.end_ns(), 15);
        r.phase = Phase::Instant;
        assert_eq!(r.end_ns(), 10);
        r.phase = Phase::Complete { dur_ns: u64::MAX };
        assert_eq!(r.end_ns(), u64::MAX, "saturates instead of overflowing");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Track::Iim.to_string(), "iim");
        assert_eq!(Track::ZbtBank(3).to_string(), "zbt.bank3");
    }
}
