//! The recorder handle, the session that owns the event buffer, and the
//! finished recording.
//!
//! Instrumented code holds a [`Recorder`] — a clone-cheap handle that is
//! either attached to a [`Session`] buffer or disabled. Disabled is the
//! default everywhere, so uninstrumented runs (benches, Table 3) pay one
//! branch per probe and allocate nothing.

use std::sync::{Arc, Mutex};

use crate::chrome;
use crate::event::{Attr, Phase, Track, TraceRecord};

/// Cheap cloneable handle for publishing events onto a session's bus.
///
/// `Recorder::default()` / [`Recorder::disabled`] produce the no-op
/// recorder: every probe method returns after a single `Option` check.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    buf: Option<Arc<Mutex<Vec<TraceRecord>>>>,
}

impl Recorder {
    /// The no-op recorder. Probes through it record nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// Whether events published through this handle are kept. Hot loops
    /// should check this before assembling per-cycle attributes.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Publishes a raw record.
    pub fn record(&self, record: TraceRecord) {
        if let Some(buf) = &self.buf {
            buf.lock().expect("obs buffer poisoned").push(record);
        }
    }

    fn push(&self, ts_ns: u64, track: Track, name: &'static str, phase: Phase, args: &[Attr]) {
        if let Some(buf) = &self.buf {
            buf.lock().expect("obs buffer poisoned").push(TraceRecord {
                ts_ns,
                track,
                name,
                phase,
                args: args.to_vec(),
            });
        }
    }

    /// Publishes a self-contained span `[start_ns, end_ns]`.
    /// Spans with `end_ns < start_ns` are clamped to zero duration.
    pub fn span(&self, track: Track, name: &'static str, start_ns: u64, end_ns: u64, args: &[Attr]) {
        self.push(
            start_ns,
            track,
            name,
            Phase::Complete {
                dur_ns: end_ns.saturating_sub(start_ns),
            },
            args,
        );
    }

    /// Opens a span; match with [`Recorder::end`] on the same track.
    pub fn begin(&self, track: Track, name: &'static str, ts_ns: u64, args: &[Attr]) {
        self.push(ts_ns, track, name, Phase::Begin, args);
    }

    /// Closes the innermost open span on `track`.
    pub fn end(&self, track: Track, name: &'static str, ts_ns: u64) {
        self.push(ts_ns, track, name, Phase::End, &[]);
    }

    /// Publishes a zero-duration marker.
    pub fn instant(&self, track: Track, name: &'static str, ts_ns: u64, args: &[Attr]) {
        self.push(ts_ns, track, name, Phase::Instant, args);
    }

    /// Publishes a sampled counter value, drawn as a graph in Perfetto.
    pub fn counter(&self, track: Track, name: &'static str, ts_ns: u64, value: f64) {
        self.push(ts_ns, track, name, Phase::Counter { value }, &[]);
    }
}

/// Owns the event buffer; hands out [`Recorder`]s and yields the final
/// [`Recording`].
#[derive(Debug, Default)]
pub struct Session {
    buf: Arc<Mutex<Vec<TraceRecord>>>,
}

impl Session {
    /// Starts an empty session.
    #[must_use]
    pub fn new() -> Self {
        Session::default()
    }

    /// A recorder handle attached to this session's buffer.
    #[must_use]
    pub fn recorder(&self) -> Recorder {
        Recorder {
            buf: Some(Arc::clone(&self.buf)),
        }
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.lock().expect("obs buffer poisoned").len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the session and returns the recording, sorted by
    /// timestamp (stable, so same-timestamp emission order is kept).
    #[must_use]
    pub fn finish(self) -> Recording {
        let mut events = match Arc::try_unwrap(self.buf) {
            Ok(m) => m.into_inner().expect("obs buffer poisoned"),
            // Recorder handles still alive: copy out instead.
            Err(shared) => shared.lock().expect("obs buffer poisoned").clone(),
        };
        events.sort_by_key(|e| e.ts_ns);
        Recording { events }
    }
}

/// A finished, timestamp-sorted recording.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    /// The recorded events, sorted by `ts_ns`.
    pub events: Vec<TraceRecord>,
}

impl Recording {
    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the recording holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events belonging to `track`.
    #[must_use]
    pub fn on_track(&self, track: Track) -> Vec<&TraceRecord> {
        self.events.iter().filter(|e| e.track == track).collect()
    }

    /// The distinct tracks present, in tid order.
    #[must_use]
    pub fn tracks(&self) -> Vec<Track> {
        let mut tracks: Vec<Track> = Vec::new();
        for e in &self.events {
            if !tracks.contains(&e.track) {
                tracks.push(e.track);
            }
        }
        tracks.sort_by_key(|t| t.tid());
        tracks
    }

    /// Serialises to Chrome trace-event JSON (see [`chrome`]).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.span(Track::Dma, "strip", 0, 100, &[("strip", 1u64.into())]);
        rec.begin(Track::Pu, "stall", 5, &[]);
        rec.end(Track::Pu, "stall", 9);
        rec.instant(Track::Engine, "irq", 0, &[]);
        rec.counter(Track::Oim, "occupancy", 3, 4.0);
        rec.record(TraceRecord {
            ts_ns: 0,
            track: Track::Gme,
            name: "x",
            phase: Phase::Instant,
            args: Vec::new(),
        });
        // Nothing to observe on the recorder itself — the guarantee is that
        // an enabled session started afterwards sees only its own events.
        let session = Session::new();
        assert!(session.is_empty());
    }

    #[test]
    fn session_collects_and_sorts() {
        let session = Session::new();
        let rec = session.recorder();
        assert!(rec.is_enabled());
        rec.instant(Track::Engine, "late", 500, &[]);
        rec.instant(Track::Engine, "early", 100, &[]);
        let rec2 = rec.clone();
        rec2.span(Track::Dma, "strip", 200, 300, &[]);
        assert_eq!(session.len(), 3);
        let recording = session.finish();
        assert_eq!(recording.len(), 3);
        let ts: Vec<u64> = recording.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![100, 200, 500]);
        assert_eq!(recording.on_track(Track::Dma).len(), 1);
        assert_eq!(recording.tracks(), vec![Track::Engine, Track::Dma]);
    }

    #[test]
    fn span_clamps_negative_duration() {
        let session = Session::new();
        session.recorder().span(Track::Pci, "odd", 100, 50, &[]);
        let recording = session.finish();
        assert_eq!(recording.events[0].phase, Phase::Complete { dur_ns: 0 });
    }
}
