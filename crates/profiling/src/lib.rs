//! # vip-profiling — instruction profiling and speedup bounds
//!
//! The software-side analysis of the DATE 2005 AddressEngine paper:
//!
//! * [`instr`] — instruction classes and the calibrated Pentium-M/XM
//!   cycle cost model (the "Time in PM" column of Table 3),
//! * [`profile`] — instruction mixes of AddressLib calls and of the
//!   video-object-segmentation workload of ref. \[3\],
//! * [`amdahl`] — the host/coprocessor partition analysis behind the
//!   paper's *"maximum achievable acceleration … estimated as a factor
//!   of 30"* (§1).
//!
//! ## Quick start
//!
//! ```
//! use vip_core::geometry::Dims;
//! use vip_profiling::amdahl::SpeedupBound;
//! use vip_profiling::instr::CostModel;
//! use vip_profiling::profile::segmentation_workload;
//!
//! let mix = segmentation_workload(Dims::new(352, 288));
//! let bound = SpeedupBound::of(&mix, &CostModel::pentium_m_xm());
//! assert!(bound.ideal_bound > 20.0, "the paper estimates ×30");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod amdahl;
pub mod instr;
pub mod profile;

pub use amdahl::SpeedupBound;
pub use instr::{CostModel, InstrClass, InstrMix};
pub use profile::{call_mix, segmentation_workload, software_call_seconds, WorkloadProfile};
