//! Instruction classes and the calibrated Pentium-M cost model.
//!
//! §1 of the paper rests on *"instruction level profiling of a video
//! object segmentation algorithm"* showing that pixel address
//! calculations dominate. This module defines the instruction classes
//! that profiling distinguishes and a per-class cycle cost model
//! calibrated to the paper's software platform (Pentium-M, 1.6 GHz,
//! running the generic MPEG-7 XM AddressLib — §4.3).
//!
//! Calibration anchor: the measured Table 3 runtimes imply ≈ 560 cycles
//! per produced pixel for a CON_8 luminance intra call (35 ms per CIF
//! call); the model reproduces that with ≈ 95 cycles per structured
//! address calculation plus ≈ 40 cycles per (partially cache-missing)
//! memory access — consistent with the paper's claim that addressing,
//! not arithmetic, dominates.

use core::fmt;

/// Instruction classes distinguished by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstrClass {
    /// Pixel address calculation: the structured addressing machinery
    /// (neighbourhood index arithmetic, bounds handling, scan-order
    /// bookkeeping) — the paper's dominant class.
    AddressCalc,
    /// Data memory access (load/store of pixel channels).
    MemoryAccess,
    /// Pixel arithmetic (add/sub/mult/compare of channel values).
    PixelArith,
    /// Inner-loop control (branches, counters).
    LoopControl,
    /// High-level algorithm control that stays on the host CPU even with
    /// the coprocessor (parameter estimation, call orchestration).
    HighLevel,
}

impl InstrClass {
    /// All classes.
    pub const ALL: [InstrClass; 5] = [
        InstrClass::AddressCalc,
        InstrClass::MemoryAccess,
        InstrClass::PixelArith,
        InstrClass::LoopControl,
        InstrClass::HighLevel,
    ];

    /// Whether the AddressEngine can absorb this class (everything except
    /// the high-level control, per §1).
    #[must_use]
    pub const fn offloadable(self) -> bool {
        !matches!(self, InstrClass::HighLevel)
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::AddressCalc => "address-calc",
            InstrClass::MemoryAccess => "memory-access",
            InstrClass::PixelArith => "pixel-arith",
            InstrClass::LoopControl => "loop-control",
            InstrClass::HighLevel => "high-level",
        };
        f.write_str(s)
    }
}

/// Per-class cycle costs on a concrete CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// CPU clock in hertz.
    pub cpu_hz: f64,
    /// Cycles per address calculation.
    pub address_calc: f64,
    /// Cycles per memory access.
    pub memory_access: f64,
    /// Cycles per pixel-arithmetic operation.
    pub pixel_arith: f64,
    /// Cycles per loop-control operation.
    pub loop_control: f64,
    /// Cycles per high-level-control operation.
    pub high_level: f64,
}

impl CostModel {
    /// The paper's software platform: Pentium-M at 1.6 GHz running the
    /// generic XM AddressLib (Table 3 anchor).
    #[must_use]
    pub const fn pentium_m_xm() -> Self {
        CostModel {
            cpu_hz: 1.6e9,
            address_calc: 95.0,
            memory_access: 40.0,
            pixel_arith: 6.0,
            loop_control: 12.0,
            high_level: 20.0,
        }
    }

    /// An idealised hand-optimised software platform (for ablations): the
    /// addressing machinery collapses to simple pointer arithmetic.
    #[must_use]
    pub const fn optimised_native() -> Self {
        CostModel {
            cpu_hz: 1.6e9,
            address_calc: 4.0,
            memory_access: 8.0,
            pixel_arith: 2.0,
            loop_control: 2.0,
            high_level: 20.0,
        }
    }

    /// Cycles for one operation of `class`.
    #[must_use]
    pub fn cycles(&self, class: InstrClass) -> f64 {
        match class {
            InstrClass::AddressCalc => self.address_calc,
            InstrClass::MemoryAccess => self.memory_access,
            InstrClass::PixelArith => self.pixel_arith,
            InstrClass::LoopControl => self.loop_control,
            InstrClass::HighLevel => self.high_level,
        }
    }

    /// Seconds for `count` operations of `class`.
    #[must_use]
    pub fn seconds(&self, class: InstrClass, count: f64) -> f64 {
        self.cycles(class) * count / self.cpu_hz
    }
}

/// An instruction-mix tally: operation counts per class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InstrMix {
    /// Address calculations.
    pub address_calc: f64,
    /// Memory accesses.
    pub memory_access: f64,
    /// Pixel arithmetic operations.
    pub pixel_arith: f64,
    /// Loop-control operations.
    pub loop_control: f64,
    /// High-level control operations.
    pub high_level: f64,
}

impl InstrMix {
    /// Count of one class.
    #[must_use]
    pub fn count(&self, class: InstrClass) -> f64 {
        match class {
            InstrClass::AddressCalc => self.address_calc,
            InstrClass::MemoryAccess => self.memory_access,
            InstrClass::PixelArith => self.pixel_arith,
            InstrClass::LoopControl => self.loop_control,
            InstrClass::HighLevel => self.high_level,
        }
    }

    /// Sums another mix into this one.
    pub fn add(&mut self, other: &InstrMix) {
        self.address_calc += other.address_calc;
        self.memory_access += other.memory_access;
        self.pixel_arith += other.pixel_arith;
        self.loop_control += other.loop_control;
        self.high_level += other.high_level;
    }

    /// Scales every class count.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> InstrMix {
        InstrMix {
            address_calc: self.address_calc * factor,
            memory_access: self.memory_access * factor,
            pixel_arith: self.pixel_arith * factor,
            loop_control: self.loop_control * factor,
            high_level: self.high_level * factor,
        }
    }

    /// Total modelled seconds under `model`.
    #[must_use]
    pub fn seconds(&self, model: &CostModel) -> f64 {
        InstrClass::ALL
            .into_iter()
            .map(|c| model.seconds(c, self.count(c)))
            .sum()
    }

    /// Fraction of the modelled time spent in offloadable classes.
    #[must_use]
    pub fn offloadable_fraction(&self, model: &CostModel) -> f64 {
        let total = self.seconds(model);
        if total == 0.0 {
            return 0.0;
        }
        let off: f64 = InstrClass::ALL
            .into_iter()
            .filter(|c| c.offloadable())
            .map(|c| model.seconds(c, self.count(c)))
            .sum();
        off / total
    }

    /// Fraction of the modelled time spent in address calculation — the
    /// paper's headline observation.
    #[must_use]
    pub fn address_fraction(&self, model: &CostModel) -> f64 {
        let total = self.seconds(model);
        if total == 0.0 {
            return 0.0;
        }
        model.seconds(InstrClass::AddressCalc, self.address_calc) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_offloadability() {
        assert!(InstrClass::AddressCalc.offloadable());
        assert!(InstrClass::MemoryAccess.offloadable());
        assert!(!InstrClass::HighLevel.offloadable());
        assert_eq!(InstrClass::ALL.len(), 5);
    }

    #[test]
    fn cost_model_lookup() {
        let m = CostModel::pentium_m_xm();
        assert_eq!(m.cycles(InstrClass::AddressCalc), 95.0);
        assert_eq!(m.cpu_hz, 1.6e9);
        // One address calc at 1.6 GHz.
        assert!((m.seconds(InstrClass::AddressCalc, 1.0) - 95.0 / 1.6e9).abs() < 1e-18);
    }

    #[test]
    fn optimised_model_is_cheaper() {
        let xm = CostModel::pentium_m_xm();
        let opt = CostModel::optimised_native();
        for c in InstrClass::ALL {
            if c != InstrClass::HighLevel {
                assert!(opt.cycles(c) < xm.cycles(c), "{c}");
            }
        }
    }

    #[test]
    fn mix_accumulation_and_scaling() {
        let mut a = InstrMix {
            address_calc: 10.0,
            memory_access: 5.0,
            ..InstrMix::default()
        };
        let b = InstrMix {
            address_calc: 2.0,
            pixel_arith: 8.0,
            ..InstrMix::default()
        };
        a.add(&b);
        assert_eq!(a.address_calc, 12.0);
        assert_eq!(a.pixel_arith, 8.0);
        let s = a.scaled(2.0);
        assert_eq!(s.address_calc, 24.0);
        assert_eq!(s.count(InstrClass::MemoryAccess), 10.0);
    }

    #[test]
    fn fractions() {
        let mix = InstrMix {
            address_calc: 100.0,
            high_level: 100.0,
            ..InstrMix::default()
        };
        let m = CostModel::pentium_m_xm();
        let f = mix.offloadable_fraction(&m);
        // 95·100 offloadable vs 20·100 high-level.
        assert!((f - 9500.0 / 11500.0).abs() < 1e-12);
        assert!(mix.address_fraction(&m) > 0.8);
        assert_eq!(InstrMix::default().offloadable_fraction(&m), 0.0);
        assert_eq!(InstrMix::default().address_fraction(&m), 0.0);
    }

    #[test]
    fn calibration_anchor_con8_cost() {
        // A CON_8 luminance intra pixel: 4 addresses + 4 accesses +
        // ≈ 9 arithmetic + 2 loop ops ≈ 560 cycles ⇒ ≈ 35 ms per CIF call
        // at 1.6 GHz — the Table 3 anchor.
        let m = CostModel::pentium_m_xm();
        let per_pixel = m.address_calc * 4.0 + m.memory_access * 4.0 + m.pixel_arith * 9.0
            + m.loop_control * 2.0;
        assert!((per_pixel - 618.0).abs() < 1.0, "{per_pixel}");
        let per_call = per_pixel * 101_376.0 / m.cpu_hz;
        assert!(per_call > 0.030 && per_call < 0.045, "{per_call}");
    }

    #[test]
    fn display() {
        assert_eq!(InstrClass::AddressCalc.to_string(), "address-calc");
        assert_eq!(InstrClass::HighLevel.to_string(), "high-level");
    }
}
