//! Profiling AddressLib workloads: deriving instruction mixes and
//! modelled software runtimes from call descriptors.
//!
//! This is the software-side counterpart of the engine's timing model:
//! [`software_call_seconds`] produces the "Time in PM" column of
//! Table 3, and [`segmentation_workload`] reproduces the instruction
//! profile of the video-object-segmentation algorithm (\[3\]) behind the
//! paper's ×30 estimate.

use vip_core::accounting::{AddressingMode, CallDescriptor};
use vip_core::geometry::Dims;
use vip_core::neighborhood::Connectivity;
use vip_core::pixel::ChannelSet;

use crate::instr::{CostModel, InstrMix};

/// The per-pixel instruction mix of one AddressLib call in the generic
/// software implementation.
///
/// Every memory access of the Table 2 software model is preceded by one
/// structured address calculation (the AddressLib machinery the paper
/// identifies as dominant); the kernel adds roughly one arithmetic
/// operation per window sample plus loop bookkeeping.
#[must_use]
pub fn call_mix_per_pixel(call: &CallDescriptor) -> InstrMix {
    let accesses = call.software_accesses_per_pixel() as f64;
    let window = call.shape.offset_count() as f64;
    let frames = if call.mode == AddressingMode::Inter { 2.0 } else { 1.0 };
    InstrMix {
        address_calc: accesses,
        memory_access: accesses,
        pixel_arith: window.max(frames) + 2.0,
        loop_control: 2.0,
        // Per-pixel share of the per-call orchestration is negligible;
        // high-level work is added per call, not per pixel.
        high_level: 0.0,
    }
}

/// The whole-call instruction mix over a frame of `dims`, including the
/// per-call high-level orchestration (DMA setup, parameter marshalling).
#[must_use]
pub fn call_mix(call: &CallDescriptor, dims: Dims) -> InstrMix {
    let mut mix = call_mix_per_pixel(call).scaled(dims.pixel_count() as f64);
    // Per-call host-side orchestration: a few thousand high-level ops.
    mix.high_level += 4_000.0;
    mix
}

/// Modelled software seconds of one AddressLib call on `model`.
#[must_use]
pub fn software_call_seconds(call: &CallDescriptor, dims: Dims, model: &CostModel) -> f64 {
    call_mix(call, dims).seconds(model)
}

/// The representative per-frame workload of the video-object-segmentation
/// algorithm of \[3\] (a CIF frame): morphological pre-processing,
/// gradients, difference pictures, segment expansion and the high-level
/// control that stays on the CPU.
///
/// The class shares reproduce the published profiling result: low-level
/// pixel work (dominated by address calculation) accounts for ≈ 29/30 of
/// the runtime, bounding the coprocessor speedup at ≈ ×30 (§1).
#[must_use]
pub fn segmentation_workload(dims: Dims) -> InstrMix {
    let px = dims.pixel_count() as f64;
    let mut mix = InstrMix::default();

    // Pre-filtering: two CON_8 smoothing passes.
    let smooth = CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y);
    mix.add(&call_mix_per_pixel(&smooth).scaled(2.0 * px));
    // Morphological gradient: dilate + erode + subtract.
    mix.add(&call_mix_per_pixel(&smooth).scaled(2.0 * px));
    let diff = CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y);
    mix.add(&call_mix_per_pixel(&diff).scaled(px));
    // Chrominance homogeneity checks: a YUV CON_8 pass.
    let yuv = CallDescriptor::intra(Connectivity::Con8, ChannelSet::YUV, ChannelSet::YUV);
    mix.add(&call_mix_per_pixel(&yuv).scaled(px));
    // Segment expansion over ≈ 60 % of the frame with CON_4 tests.
    let seg = CallDescriptor::segment(
        Connectivity::Con4,
        ChannelSet::Y,
        ChannelSet::ALPHA.union(ChannelSet::AUX),
    );
    mix.add(&call_mix_per_pixel(&seg).scaled(0.6 * px));

    // High-level control that cannot be offloaded: region-merging
    // decisions on the region adjacency graph, label management and
    // parameter updates — calibrated to the published profile of \[3\]
    // (≈ 147 host cycles per pixel, i.e. 1/30 of the total runtime).
    mix.high_level += 7.3 * px;
    mix
}

/// Summary of a profiled workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Total modelled seconds.
    pub seconds: f64,
    /// Time fraction in offloadable (low-level) classes.
    pub offloadable_fraction: f64,
    /// Time fraction in address calculation alone.
    pub address_fraction: f64,
}

/// Profiles a workload mix under a cost model.
#[must_use]
pub fn profile(mix: &InstrMix, model: &CostModel) -> WorkloadProfile {
    WorkloadProfile {
        seconds: mix.seconds(model),
        offloadable_fraction: mix.offloadable_fraction(model),
        address_fraction: mix.address_fraction(model),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::ImageFormat;

    const CIF: Dims = Dims::new(352, 288);

    #[test]
    fn intra_con8_call_time_matches_table3_anchor() {
        // ≈ 35–45 ms per CIF CON_8 call on the PM model.
        let call = CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y);
        let t = software_call_seconds(&call, CIF, &CostModel::pentium_m_xm());
        assert!(t > 0.030 && t < 0.048, "{t}");
    }

    #[test]
    fn inter_call_cheaper_than_con8_intra() {
        let intra = CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y);
        let inter = CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y);
        let m = CostModel::pentium_m_xm();
        let ti = software_call_seconds(&intra, CIF, &m);
        let te = software_call_seconds(&inter, CIF, &m);
        assert!(te < ti);
        assert!(te > 0.015, "{te}");
    }

    #[test]
    fn software_time_scales_with_frame_size() {
        let call = CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y);
        let m = CostModel::pentium_m_xm();
        let cif = software_call_seconds(&call, CIF, &m);
        let qcif = software_call_seconds(&call, ImageFormat::Qcif.dims(), &m);
        let ratio = cif / qcif;
        assert!(ratio > 3.5 && ratio < 4.1, "{ratio}");
    }

    #[test]
    fn address_calculation_dominates_per_pixel_mix() {
        // The paper's core observation (§1, §6).
        let call = CallDescriptor::intra(Connectivity::Con8, ChannelSet::YUV, ChannelSet::YUV);
        let mix = call_mix_per_pixel(&call);
        let m = CostModel::pentium_m_xm();
        assert!(mix.address_fraction(&m) > 0.5, "{}", mix.address_fraction(&m));
    }

    #[test]
    fn segmentation_workload_is_mostly_offloadable() {
        let mix = segmentation_workload(CIF);
        let p = profile(&mix, &CostModel::pentium_m_xm());
        // §1: the ×30 bound ⇒ ≈ 96.7 % of the time is offloadable.
        assert!(
            p.offloadable_fraction > 0.95 && p.offloadable_fraction < 0.985,
            "offloadable {}",
            p.offloadable_fraction
        );
        assert!(p.address_fraction > 0.45, "address {}", p.address_fraction);
        assert!(p.seconds > 0.0);
    }

    #[test]
    fn optimised_software_shrinks_offloadable_share() {
        // Hand-optimised native code spends relatively more time in the
        // (unavoidable) high-level part ⇒ smaller achievable speedup.
        let mix = segmentation_workload(CIF);
        let xm = profile(&mix, &CostModel::pentium_m_xm());
        let opt = profile(&mix, &CostModel::optimised_native());
        assert!(opt.offloadable_fraction < xm.offloadable_fraction);
        assert!(opt.seconds < xm.seconds);
    }

    #[test]
    fn call_mix_includes_per_call_overhead() {
        let call = CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y);
        let mix = call_mix(&call, Dims::new(8, 8));
        assert!(mix.high_level > 0.0);
        let per_px = call_mix_per_pixel(&call);
        assert_eq!(per_px.high_level, 0.0);
    }
}
