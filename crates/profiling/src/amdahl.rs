//! Amdahl partitioning: the maximum-achievable-speedup bound of §1.
//!
//! *"Based on instruction level profiling of a video object segmentation
//! algorithm \[3\] the maximum achievable acceleration with AddressEngine
//! is estimated as a factor of 30, taking into account that all high
//! level parts of the algorithm are executed on the main CPU and only
//! low level operations are executed on AddressEngine."*
//!
//! With offloadable time fraction `f`, the ideal-coprocessor bound is
//! `1 / (1 − f)`; a finite coprocessor speedup `s` on the offloaded part
//! gives `1 / ((1 − f) + f/s)`.

use crate::instr::{CostModel, InstrMix};

/// The Amdahl analysis of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupBound {
    /// Offloadable fraction of the software runtime.
    pub offloadable_fraction: f64,
    /// Upper bound with an infinitely fast coprocessor.
    pub ideal_bound: f64,
}

impl SpeedupBound {
    /// Computes the bound for a workload mix under a cost model.
    #[must_use]
    pub fn of(mix: &InstrMix, model: &CostModel) -> SpeedupBound {
        let f = mix.offloadable_fraction(model);
        SpeedupBound {
            offloadable_fraction: f,
            ideal_bound: ideal_speedup(f),
        }
    }

    /// Overall speedup when the offloaded part runs `coprocessor_speedup`
    /// times faster than in software.
    #[must_use]
    pub fn with_coprocessor(&self, coprocessor_speedup: f64) -> f64 {
        amdahl(self.offloadable_fraction, coprocessor_speedup)
    }
}

/// Ideal-coprocessor Amdahl bound `1 / (1 − f)`.
#[must_use]
pub fn ideal_speedup(offloadable_fraction: f64) -> f64 {
    let f = offloadable_fraction.clamp(0.0, 1.0);
    if (1.0 - f) < 1e-15 {
        f64::INFINITY
    } else {
        1.0 / (1.0 - f)
    }
}

/// General Amdahl speedup with accelerated fraction `f` sped up by `s`.
#[must_use]
pub fn amdahl(f: f64, s: f64) -> f64 {
    let f = f.clamp(0.0, 1.0);
    let s = s.max(1e-12);
    1.0 / ((1.0 - f) + f / s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::segmentation_workload;
    use vip_core::geometry::Dims;

    #[test]
    fn ideal_speedup_basics() {
        assert!((ideal_speedup(0.5) - 2.0).abs() < 1e-12);
        assert!((ideal_speedup(0.9) - 10.0).abs() < 1e-12);
        assert_eq!(ideal_speedup(0.0), 1.0);
        assert!(ideal_speedup(1.0).is_infinite());
        assert_eq!(ideal_speedup(-0.5), 1.0);
    }

    #[test]
    fn amdahl_limits() {
        // s → ∞ recovers the ideal bound.
        assert!((amdahl(0.9, 1e12) - 10.0).abs() < 1e-3);
        // s = 1 gives no speedup.
        assert!((amdahl(0.7, 1.0) - 1.0).abs() < 1e-12);
        // Monotone in s.
        assert!(amdahl(0.9, 8.0) < amdahl(0.9, 16.0));
    }

    #[test]
    fn paper_bound_of_thirty_reproduced() {
        // §1: the segmentation workload's profile bounds the acceleration
        // at ≈ ×30 ⇒ offloadable fraction ≈ 29/30.
        let mix = segmentation_workload(Dims::new(352, 288));
        let bound = SpeedupBound::of(&mix, &crate::instr::CostModel::pentium_m_xm());
        assert!(
            bound.ideal_bound > 20.0 && bound.ideal_bound < 45.0,
            "ideal bound {}",
            bound.ideal_bound
        );
        assert!((bound.offloadable_fraction - 29.0 / 30.0).abs() < 0.02);
    }

    #[test]
    fn measured_factor_five_is_consistent_with_the_bound() {
        // Table 3 measures ≈ ×5 end-to-end. Under the bound's partition,
        // that needs only a modest coprocessor-side speedup — i.e. the
        // measurement sits comfortably below the ×30 ceiling.
        let mix = segmentation_workload(Dims::new(352, 288));
        let bound = SpeedupBound::of(&mix, &crate::instr::CostModel::pentium_m_xm());
        let with_6x = bound.with_coprocessor(6.3);
        assert!(with_6x > 4.0 && with_6x < 6.5, "{with_6x}");
        assert!(with_6x < bound.ideal_bound);
    }
}
