//! Bench-history regression gate.
//!
//! `vipctl bench` appends one JSON line per full run to an append-only
//! ledger (`BENCH_history.jsonl`, same fields as `BENCH_engine.json`).
//! This module parses that ledger and decides whether the current run
//! regressed: `--check` fails when either the fast-forward speedup or
//! its simulated-cycles-per-second throughput drops more than the
//! tolerance below the best recorded entry for the same workload and
//! frame size. The logic is pure (strings in, verdict out) so the gate
//! is unit-testable without running the benchmark.

use vip_obs::json::JsonValue;

/// One benchmark ledger entry — the fields the gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Workload label, e.g. `intra_sobel+inter_absdiff`.
    pub workload: String,
    /// Frame size label, e.g. `352x288`.
    pub dims: String,
    /// Fast-forward over cycle-stepped throughput ratio.
    pub speedup: f64,
    /// Fast-forward simulated cycles per wall second.
    pub fast_cycles_per_sec: f64,
}

impl BenchRecord {
    /// Extracts the gate fields from one ledger line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped member when the
    /// line is not a benchmark object.
    pub fn parse(line: &str) -> Result<BenchRecord, String> {
        let value = JsonValue::parse(line)?;
        let string = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string member `{key}`"))
        };
        let speedup = value
            .get("speedup")
            .and_then(JsonValue::as_f64)
            .ok_or("missing number member `speedup`")?;
        let fast_cycles_per_sec = value
            .get("modes")
            .and_then(|m| m.get("fast_forward"))
            .and_then(|m| m.get("sim_cycles_per_sec"))
            .and_then(JsonValue::as_f64)
            .ok_or("missing number member `modes.fast_forward.sim_cycles_per_sec`")?;
        Ok(BenchRecord {
            workload: string("workload")?,
            dims: string("dims")?,
            speedup,
            fast_cycles_per_sec,
        })
    }
}

/// Parses a whole ledger: one JSON object per line, blank lines skipped.
///
/// # Errors
///
/// Returns the first malformed line's number and parse error.
pub fn parse_history(text: &str) -> Result<Vec<BenchRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            BenchRecord::parse(line).map_err(|e| format!("history line {}: {e}", i + 1))
        })
        .collect()
}

/// Gates `current` against the best matching history entry.
///
/// Entries are compared only within the same `(workload, dims)` pair;
/// with no matching prior entry the gate passes vacuously (a `--quick`
/// run's smoke dims never match the tracked full-size ledger). Both the
/// speedup and the fast-forward throughput must stay within `tolerance`
/// (e.g. `0.10`) of the best recorded value.
///
/// # Errors
///
/// Returns a description of the regression when the gate fails.
pub fn check_current(
    history: &[BenchRecord],
    current: &BenchRecord,
    tolerance: f64,
) -> Result<String, String> {
    let matching: Vec<&BenchRecord> = history
        .iter()
        .filter(|r| r.workload == current.workload && r.dims == current.dims)
        .collect();
    if matching.is_empty() {
        return Ok(format!(
            "no history for {} @ {}; gate passes vacuously",
            current.workload, current.dims
        ));
    }
    let best_speedup = matching.iter().map(|r| r.speedup).fold(0.0, f64::max);
    let best_throughput = matching
        .iter()
        .map(|r| r.fast_cycles_per_sec)
        .fold(0.0, f64::max);
    let floor = 1.0 - tolerance;
    if current.speedup < floor * best_speedup {
        return Err(format!(
            "speedup regression: {:.2}x is {:.1} % below the best recorded {:.2}x \
             (tolerance {:.0} %, {} entries)",
            current.speedup,
            100.0 * (1.0 - current.speedup / best_speedup),
            best_speedup,
            100.0 * tolerance,
            matching.len()
        ));
    }
    if current.fast_cycles_per_sec < floor * best_throughput {
        return Err(format!(
            "throughput regression: {:.0} sim-cycles/s is {:.1} % below the best recorded \
             {:.0} (tolerance {:.0} %, {} entries)",
            current.fast_cycles_per_sec,
            100.0 * (1.0 - current.fast_cycles_per_sec / best_throughput),
            best_throughput,
            100.0 * tolerance,
            matching.len()
        ));
    }
    Ok(format!(
        "within {:.0} % of best ({:.2}x speedup, {:.0} sim-cycles/s over {} entries)",
        100.0 * tolerance,
        best_speedup,
        best_throughput,
        matching.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(speedup: f64, throughput: f64) -> String {
        format!(
            "{{\"benchmark\":\"engine.step_mode\",\"workload\":\"intra_sobel+inter_absdiff\",\
             \"dims\":\"352x288\",\"reps\":5,\"modes\":{{\"cycle_stepped\":{{\
             \"sim_cycles_per_sec\":1.0e6}},\"fast_forward\":{{\"cycles_per_rep\":100,\
             \"sim_cycles_per_sec\":{throughput}}}}},\"speedup\":{speedup},\
             \"bit_identical\":true}}"
        )
    }

    fn record(speedup: f64, throughput: f64) -> BenchRecord {
        BenchRecord {
            workload: "intra_sobel+inter_absdiff".to_string(),
            dims: "352x288".to_string(),
            speedup,
            fast_cycles_per_sec: throughput,
        }
    }

    #[test]
    fn parses_ledger_lines() {
        let text = format!("{}\n\n{}\n", entry(3.7, 4.0e6), entry(3.9, 4.2e6));
        let history = parse_history(&text).unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0], record(3.7, 4.0e6));
        assert_eq!(history[1].speedup, 3.9);
    }

    #[test]
    fn malformed_line_is_located() {
        let text = format!("{}\nnot json\n", entry(3.7, 4.0e6));
        let err = parse_history(&text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = BenchRecord::parse("{\"workload\":\"w\"}").unwrap_err();
        assert!(err.contains("dims") || err.contains("speedup"), "{err}");
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        let history = [record(4.0, 5.0e6)];
        // > 10 % speedup drop.
        let err = check_current(&history, &record(3.5, 5.0e6), 0.10).unwrap_err();
        assert!(err.contains("speedup regression"), "{err}");
        // > 10 % throughput drop with the speedup intact.
        let err = check_current(&history, &record(4.0, 4.0e6), 0.10).unwrap_err();
        assert!(err.contains("throughput regression"), "{err}");
    }

    #[test]
    fn within_tolerance_passes() {
        let history = [record(4.0, 5.0e6), record(3.2, 4.1e6)];
        let msg = check_current(&history, &record(3.7, 4.6e6), 0.10).unwrap();
        assert!(msg.contains("within 10 %"), "{msg}");
        // Improvements always pass.
        check_current(&history, &record(4.5, 6.0e6), 0.10).unwrap();
    }

    #[test]
    fn unmatched_workload_or_dims_is_vacuous() {
        let history = [record(4.0, 5.0e6)];
        let mut quick = record(0.5, 1.0e3);
        quick.dims = "96x72".to_string();
        let msg = check_current(&history, &quick, 0.10).unwrap();
        assert!(msg.contains("vacuously"), "{msg}");
        assert!(check_current(&[], &record(1.0, 1.0), 0.10).is_ok());
    }
}
