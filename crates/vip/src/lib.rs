//! # vip — visual information processing (AddressEngine reproduction)
//!
//! Umbrella crate of the reproduction of *"A Coprocessor for Accelerating
//! Visual Information Processing"* (Stechele et al., DATE 2005),
//! re-exporting the component crates:
//!
//! * [`core`] (`vip-core`) — the AddressLib: pixels, frames, the four
//!   structured addressing schemes, pixel-operation kernels, and the
//!   Table 2 memory-access accounting.
//! * [`engine`] (`vip-engine`) — the AddressEngine coprocessor
//!   simulator: ZBT/PCI/IIM/OIM memory system, the 4-stage pipelined
//!   Process Unit, timing and FPGA resource models.
//! * [`gme`] (`vip-gme`) — MPEG-7-style global motion estimation and
//!   mosaicing, split along the paper's host/coprocessor boundary.
//! * [`video`] (`vip-video`) — synthetic CIF test sequences with
//!   ground-truth camera motion plus PGM/PPM/Y4M I/O.
//! * [`profiling`] (`vip-profiling`) — instruction profiling and the ×30
//!   Amdahl bound.
//! * [`check`] (`vip-check`) — static schedule/hazard verifier: proves
//!   ZBT bank-conflict freedom, IIM/OIM occupancy bounds, start-pipeline
//!   hazard freedom and call-timeline ordering without running the
//!   simulator, plus the zero-dependency workspace lints
//!   (`vipctl check` / the `vip-check` binary).
//! * [`obs`] (`vip-obs`) — the zero-dependency observability layer:
//!   event bus, metrics registry, Perfetto trace export and the JSON
//!   writer backing `vipctl trace` / `vipctl bench`.
//! * [`par`] (`vip-par`) — zero-dependency scoped-thread work pool with
//!   deterministic result ordering, backing the parallel sweeps in the
//!   benches, the GME batch runner and the `vip-check` proofs.
//! * [`gate`] — the bench-history regression gate behind
//!   `vipctl bench --check`: parses the append-only
//!   `BENCH_history.jsonl` ledger and fails runs that regress more than
//!   the tolerance below the best recorded entry.
//!
//! ## Quick start
//!
//! ```
//! use vip::core::frame::Frame;
//! use vip::core::geometry::Dims;
//! use vip::core::ops::filter::SobelGradient;
//! use vip::core::pixel::Pixel;
//! use vip::engine::{AddressEngine, EngineConfig};
//!
//! # fn main() -> Result<(), vip::engine::EngineError> {
//! let mut engine = AddressEngine::new(EngineConfig::prototype())?;
//! let frame = Frame::filled(Dims::new(64, 48), Pixel::from_luma(100));
//! let run = engine.run_intra(&frame, &SobelGradient::new())?;
//! println!("{}", run.report);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gate;

pub use vip_check as check;
pub use vip_core as core;
pub use vip_engine as engine;
pub use vip_gme as gme;
pub use vip_obs as obs;
pub use vip_par as par;
pub use vip_profiling as profiling;
pub use vip_video as video;
