//! `vipctl` — command-line front end to the AddressEngine reproduction.
//!
//! ```text
//! vipctl info
//! vipctl render <singapore|dome|pisa|movie> --frames N --width W --height H --out clip.y4m
//! vipctl gme <sequence> [--frames N] [--size WxH] [--software] [--mosaic out.pgm]
//! vipctl segment --tolerance T [--size WxH] [--out labels.pgm]
//! vipctl trace <intra|inter|gme> [--size WxH] [--frames N] --out trace.json
//! vipctl stats <intra|inter|gme> [--size WxH] [--frames N]
//! vipctl bench [--quick] [--size WxH] [--reps N] [--out BENCH_engine.json]
//! vipctl check [--root DIR]
//! ```
//!
//! `trace` writes a Chrome trace-event JSON file loadable in Perfetto
//! (<https://ui.perfetto.dev>); `stats` prints the engine metrics
//! registry as a plain-text table. `bench` times the cycle-stepped
//! simulation loop against the event-driven fast-forward path on the
//! same workload, asserts bit-identical results, and records the
//! baseline in `BENCH_engine.json` (`--quick` skips the file and runs a
//! smoke-sized workload for CI).

use std::collections::HashMap;
use std::error::Error;
use std::process::ExitCode;

use vip::core::addressing::labeling::label_all_segments;
use vip::core::addressing::segment::SegmentOptions;
use vip::core::geometry::Dims;
use vip::core::ops::segment_ops::HomogeneityCriterion;
use vip::core::frame::Frame;
use vip::core::ops::arith::AbsDiff;
use vip::core::ops::filter::SobelGradient;
use vip::core::pixel::Pixel;
use vip::engine::{AddressEngine, EngineConfig, Recording, ResourceEstimate, Session};
use vip::gme::{EngineBackend, GmeBackend, GmeConfig, SequenceRunner, SoftwareBackend};
use vip::video::io::{write_pgm, Y4mWriter};
use vip::video::TestSequence;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vipctl: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  vipctl info
  vipctl render <sequence> [--frames N] [--size WxH] [--out clip.y4m]
  vipctl gme <sequence> [--frames N] [--size WxH] [--software] [--mosaic out.pgm]
  vipctl segment [--tolerance T] [--size WxH] [--out labels.pgm]
  vipctl trace <scenario> [--size WxH] [--frames N] [--out trace.json]
  vipctl stats <scenario> [--size WxH] [--frames N]
  vipctl bench [--quick] [--size WxH] [--reps N] [--out BENCH_engine.json]
  vipctl check [--root DIR]
sequences: singapore | dome | pisa | movie
scenarios: intra (CIF Sobel, detailed) | inter (CIF AbsDiff, detailed) | gme";

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "info" => info(),
        "render" => render(args.get(1), &flags),
        "gme" => gme(args.get(1), &flags),
        "segment" => segment(&flags),
        "trace" => trace(args.get(1), &flags),
        "stats" => stats(args.get(1), &flags),
        "bench" => bench(&flags),
        "check" => check(&flags),
        other => Err(format!("unknown command `{other}`").into()),
    }
}

fn parse_flags(rest: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        if let Some(name) = rest[i].strip_prefix("--") {
            let value = rest
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".to_string());
            if value != "true" {
                i += 1;
            }
            flags.insert(name.to_string(), value);
        }
        i += 1;
    }
    flags
}

fn sequence_by_name(name: Option<&String>) -> Result<TestSequence, Box<dyn Error>> {
    match name.map(String::as_str) {
        Some("singapore") => Ok(TestSequence::singapore()),
        Some("dome") => Ok(TestSequence::dome()),
        Some("pisa") => Ok(TestSequence::pisa()),
        Some("movie") => Ok(TestSequence::movie()),
        Some(other) if !other.starts_with("--") => Err(format!("unknown sequence `{other}`").into()),
        _ => Err("missing sequence name".into()),
    }
}

fn parse_size(flags: &HashMap<String, String>, default: Dims) -> Result<Dims, Box<dyn Error>> {
    match flags.get("size") {
        None => Ok(default),
        Some(s) => {
            let (w, h) = s
                .split_once(['x', 'X'])
                .ok_or("--size expects WxH, e.g. 176x144")?;
            Ok(Dims::new(w.parse()?, h.parse()?))
        }
    }
}

fn scaled(seq: &TestSequence, flags: &HashMap<String, String>) -> Result<TestSequence, Box<dyn Error>> {
    let dims = parse_size(flags, Dims::new(176, 144))?;
    let frames: usize = flags
        .get("frames")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(12);
    Ok(seq.scaled(dims.width, dims.height, frames))
}

fn info() -> Result<(), Box<dyn Error>> {
    let cfg = EngineConfig::prototype();
    println!("AddressEngine prototype configuration (DATE 2005):");
    println!("  PCI          : {} × {} B = {:.0} MB/s", cfg.pci_clock, cfg.pci_bytes_per_cycle, cfg.pci_bandwidth() / 1e6);
    println!("  engine clock : {}", cfg.engine_clock);
    println!("  ZBT          : {} banks × {} words = {} MB", cfg.zbt_banks, cfg.zbt_bank_words, cfg.zbt_bytes() / (1024 * 1024));
    println!("  strips       : {} lines   IIM/OIM: {}/{} lines", cfg.strip_lines, cfg.iim_lines, cfg.oim_lines);
    println!("  pipeline     : {} stages", cfg.pipeline_stages);
    println!(
        "  segment mode : {}",
        if cfg.segment_capable { "enabled" } else { "v2 outlook only" }
    );
    println!();
    println!("{}", ResourceEstimate::for_config(&cfg));
    Ok(())
}

fn render(name: Option<&String>, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let seq = scaled(&sequence_by_name(name)?, flags)?;
    let default_out = format!("{}.y4m", seq.name());
    let out = flags.get("out").cloned().unwrap_or(default_out);
    if out.ends_with(".pgm") {
        write_pgm(&seq.render_frame(0), &out)?;
        println!("wrote first frame of {} to {out}", seq.name());
    } else {
        let mut w = Y4mWriter::create(&out, seq.dims(), 25)?;
        for f in seq.frames() {
            w.write_frame(&f)?;
        }
        let n = w.frames_written();
        w.into_inner()?;
        println!("wrote {n} frames of {} ({}) to {out}", seq.name(), seq.dims());
    }
    Ok(())
}

fn gme(name: Option<&String>, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let seq = scaled(&sequence_by_name(name)?, flags)?;
    let use_software = flags.contains_key("software");
    let mut runner = SequenceRunner::new(GmeConfig::default());
    if flags.contains_key("mosaic") {
        runner = runner.with_mosaic(seq.dims().width as f64, seq.dims().height as f64 / 2.0);
    }

    let mut backend: Box<dyn GmeBackend> = if use_software {
        Box::new(SoftwareBackend::new())
    } else {
        Box::new(EngineBackend::prototype())
    };
    let report = runner.run(seq.frames(), backend.as_mut())?;

    println!(
        "{}: {} frames ({}), backend {}",
        seq.name(),
        report.frames,
        seq.dims(),
        backend.name()
    );
    println!(
        "  calls        : {} intra + {} inter",
        report.tally.intra, report.tally.inter
    );
    println!("  PM model     : {:.3} s", report.pm_seconds);
    if !use_software {
        println!("  engine model : {:.3} s  (speedup {:.2}x)", report.backend_seconds, report.pm_seconds / report.backend_seconds);
    }
    let mut err = 0.0;
    for rec in &report.records {
        let truth = seq.script().ground_truth(rec.index - 1);
        let (dx, dy) = rec.relative.translation_part();
        err += ((dx - truth.dx).powi(2) + (dy - truth.dy).powi(2)).sqrt();
    }
    println!(
        "  ground truth : {:.3} px mean translation error",
        err / report.records.len().max(1) as f64
    );

    if let (Some(path), Some(mosaic)) = (flags.get("mosaic"), report.mosaic) {
        write_pgm(mosaic.canvas(), path)?;
        println!(
            "  mosaic       : {} canvas, {:.0} % covered → {path}",
            mosaic.canvas().dims(),
            mosaic.coverage() * 100.0
        );
    }
    Ok(())
}

fn segment(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let dims = parse_size(flags, Dims::new(96, 72))?;
    let tolerance: u8 = flags
        .get("tolerance")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(12);
    // Segment the first frame of the pisa stand-in.
    let seq = TestSequence::pisa().scaled(dims.width, dims.height, 1);
    let frame = seq.render_frame(0);
    let labelling = label_all_segments(
        &frame,
        &HomogeneityCriterion::luma(tolerance),
        SegmentOptions::default(),
    )?;
    println!(
        "segmented {} ({}): {} segments, largest {}, mean size {:.1}",
        seq.name(),
        dims,
        labelling.segment_count(),
        labelling.largest_segment(),
        labelling.mean_segment_size()
    );
    if let Some(path) = flags.get("out") {
        // Visualise labels as luma (scaled into 0..255).
        let n = labelling.segment_count().max(1) as u32;
        let vis = vip::core::frame::Frame::from_fn(dims, |p| {
            let label = u32::from(labelling.label_at(p));
            Pixel::from_luma((label * 255 / n) as u8)
        });
        write_pgm(&vis, path)?;
        println!("label map → {path}");
    }
    Ok(())
}

/// Runs an observability scenario with a recorder attached and returns
/// the finished recording plus the metrics-registry text table.
fn run_scenario(
    name: Option<&String>,
    flags: &HashMap<String, String>,
) -> Result<(Recording, String), Box<dyn Error>> {
    let session = Session::new();
    match name.map(String::as_str) {
        Some(kind @ ("intra" | "inter")) => {
            let dims = parse_size(flags, Dims::new(352, 288))?;
            let mut engine = AddressEngine::new(EngineConfig::prototype_detailed())?;
            engine.set_recorder(session.recorder());
            let frame = Frame::from_fn(dims, |p| {
                Pixel::from_luma(((p.x * 7 + p.y * 13) % 256) as u8)
            });
            if kind == "intra" {
                engine.run_intra(&frame, &SobelGradient::new())?;
            } else {
                let shifted = Frame::from_fn(dims, |p| {
                    Pixel::from_luma(((p.x * 7 + p.y * 13 + 31) % 256) as u8)
                });
                engine.run_inter(&frame, &shifted, &AbsDiff::luma())?;
            }
            let table = engine.metrics().text_table();
            Ok((session.finish(), table))
        }
        Some("gme") => {
            let seq = scaled(&TestSequence::singapore(), flags)?;
            let mut backend = EngineBackend::prototype();
            backend.engine_mut().set_recorder(session.recorder());
            let runner =
                SequenceRunner::new(GmeConfig::default()).with_recorder(session.recorder());
            runner.run(seq.frames(), &mut backend)?;
            let table = backend.engine().metrics().text_table();
            Ok((session.finish(), table))
        }
        Some(other) if !other.starts_with("--") => {
            Err(format!("unknown scenario `{other}` (expected intra | inter | gme)").into())
        }
        _ => Err("missing scenario (intra | inter | gme)".into()),
    }
}

/// `vipctl bench` — times the cycle-stepped loop against the
/// event-driven fast-forward path on the same detailed workload (intra
/// Sobel + inter AbsDiff), asserts the two produce bit-identical runs,
/// and writes the tracked baseline JSON. `--quick` is the CI smoke
/// mode: a small frame, one repetition, no baseline file.
fn bench(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    use std::time::Instant;
    use vip::engine::StepMode;

    let quick = flags.contains_key("quick");
    let default_dims = if quick { Dims::new(96, 72) } else { Dims::new(352, 288) };
    let dims = parse_size(flags, default_dims)?;
    let reps: u32 = flags
        .get("reps")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(if quick { 1 } else { 5 });

    let frame = Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 7 + p.y * 13) % 256) as u8));
    let shifted =
        Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 7 + p.y * 13 + 31) % 256) as u8));

    // (mode name, cycles per rep, wall seconds, witness runs)
    let mut measured = Vec::new();
    for (name, mode) in [
        ("cycle_stepped", StepMode::CycleStepped),
        ("fast_forward", StepMode::FastForward),
    ] {
        let mut config = EngineConfig::prototype_detailed();
        config.step_mode = mode;
        let mut engine = AddressEngine::new(config)?;
        // Warm-up pass; its runs double as the equivalence witnesses.
        let intra = engine.run_intra(&frame, &SobelGradient::new())?;
        let inter = engine.run_inter(&frame, &shifted, &AbsDiff::luma())?;
        let cycles_per_rep = intra.report.processing.as_ref().map_or(0, |p| p.cycles)
            + inter.report.processing.as_ref().map_or(0, |p| p.cycles);

        let t0 = Instant::now();
        for _ in 0..reps {
            let a = engine.run_intra(&frame, &SobelGradient::new())?;
            let b = engine.run_inter(&frame, &shifted, &AbsDiff::luma())?;
            std::hint::black_box((a, b));
        }
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        measured.push((name, cycles_per_rep, wall, (intra, inter)));
    }

    // Equivalence: the optimisation must be unobservable in the results.
    let (stepped, fast) = (&measured[0], &measured[1]);
    if stepped.3 .0.output != fast.3 .0.output
        || stepped.3 .0.report != fast.3 .0.report
        || stepped.3 .1.output != fast.3 .1.output
        || stepped.3 .1.report != fast.3 .1.report
    {
        return Err("fast-forward run diverges from the cycle-stepped run".into());
    }

    let throughput =
        |m: &(&str, u64, f64, _)| (m.1 as f64 * f64::from(reps)) / m.2;
    let speedup = throughput(fast) / throughput(stepped);

    println!("engine step-mode benchmark ({dims}, {reps} rep(s), intra Sobel + inter AbsDiff)");
    println!(
        "{:<16} {:>14} {:>12} {:>18}",
        "mode", "cycles/rep", "wall ms", "sim-cycles/sec"
    );
    for m in &measured {
        println!(
            "{:<16} {:>14} {:>12.3} {:>18.0}",
            m.0,
            m.1,
            m.2 * 1e3 / f64::from(reps),
            throughput(m)
        );
    }
    println!("speedup: {speedup:.2}x (results bit-identical)");
    if speedup < 1.0 {
        return Err(format!(
            "fast-forward is slower than cycle-stepping ({speedup:.2}x)"
        )
        .into());
    }

    if !quick {
        let out = flags
            .get("out")
            .cloned()
            .unwrap_or_else(|| "BENCH_engine.json".to_string());
        let mut w = vip::obs::json::JsonWriter::new();
        w.begin_object();
        w.key("benchmark");
        w.string("engine.step_mode");
        w.key("workload");
        w.string("intra_sobel+inter_absdiff");
        w.key("dims");
        w.string(&dims.to_string());
        w.key("reps");
        w.u64(u64::from(reps));
        w.key("modes");
        w.begin_object();
        for m in &measured {
            w.key(m.0);
            w.begin_object();
            w.key("cycles_per_rep");
            w.u64(m.1);
            w.key("wall_ms_per_rep");
            w.f64(m.2 * 1e3 / f64::from(reps));
            w.key("sim_cycles_per_sec");
            w.f64(throughput(m));
            w.end_object();
        }
        w.end_object();
        w.key("speedup");
        w.f64(speedup);
        w.key("bit_identical");
        w.bool(true);
        w.end_object();
        let json = w.finish();
        vip::obs::json::validate(&json).map_err(|e| format!("internal JSON error: {e}"))?;
        std::fs::write(&out, json + "\n")?;
        println!("baseline → {out}");
    }
    Ok(())
}

/// `vipctl check` — static schedule/hazard verification plus workspace
/// lints, exactly what the standalone `vip-check` binary runs.
fn check(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let root = match flags.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let mut dir = std::env::current_dir()?;
            loop {
                let manifest = dir.join("Cargo.toml");
                if std::fs::read_to_string(&manifest)
                    .is_ok_and(|t| t.contains("[workspace]"))
                {
                    break dir;
                }
                if !dir.pop() {
                    return Err("no workspace Cargo.toml found above the current directory \
                                (pass --root DIR)"
                        .into());
                }
            }
        }
    };
    println!("verifying workspace at {}", root.display());
    let report = vip::check::check_workspace(&root);
    println!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} invariant violation(s)", report.violations.len()).into())
    }
}

fn trace(name: Option<&String>, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let (recording, _) = run_scenario(name, flags)?;
    let out = flags.get("out").cloned().unwrap_or_else(|| "trace.json".to_string());
    std::fs::write(&out, recording.to_chrome_json())?;
    let tracks: Vec<&str> = recording.tracks().iter().map(|t| t.name()).collect();
    println!(
        "wrote {} events on {} tracks ({}) to {out}",
        recording.len(),
        tracks.len(),
        tracks.join(", ")
    );
    println!("open in https://ui.perfetto.dev or chrome://tracing");
    Ok(())
}

fn stats(name: Option<&String>, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let (recording, table) = run_scenario(name, flags)?;
    print!("{table}");
    println!();
    println!(
        "trace: {} events across {} tracks (use `vipctl trace` to export)",
        recording.len(),
        recording.tracks().len()
    );
    Ok(())
}
