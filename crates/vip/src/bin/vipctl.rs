//! `vipctl` — command-line front end to the AddressEngine reproduction.
//!
//! ```text
//! vipctl info
//! vipctl render <singapore|dome|pisa|movie> --frames N --width W --height H --out clip.y4m
//! vipctl gme <sequence> [--frames N] [--size WxH] [--software] [--mosaic out.pgm]
//! vipctl segment --tolerance T [--size WxH] [--out labels.pgm]
//! vipctl trace <intra|inter|gme> [--size WxH] [--frames N] --out trace.json
//! vipctl trace-diff <a.json> <b.json> [--threshold PCT]
//! vipctl stats <intra|inter|gme> [--size WxH] [--frames N] [--format json]
//! vipctl report <intra|inter|gme> [--size WxH] [--frames N] [--format json]
//! vipctl bench [--quick] [--check] [--size WxH] [--reps N] [--out BENCH_engine.json]
//! vipctl check [--root DIR]
//! ```
//!
//! `trace` writes a Chrome trace-event JSON file loadable in Perfetto
//! (<https://ui.perfetto.dev>); `trace-diff` aligns two exported traces
//! and reports per-track busy-time and event-count deltas. `stats`
//! prints the engine metrics registry; `report` adds the cycle
//! attribution: per-track utilization, process-unit stall causes, ZBT
//! bank duty, the PCI/host/engine split of every call second, and the
//! Amdahl decomposition reproducing the paper's ×30-bound-vs-×5-measured
//! gap. `bench` times the cycle-stepped simulation loop against the
//! event-driven fast-forward path on the same workload, asserts
//! bit-identical results, records the baseline in `BENCH_engine.json`,
//! and appends one line to the `BENCH_history.jsonl` ledger; `--check`
//! fails when the run regresses more than 10 % below the best recorded
//! entry (`--quick` runs a smoke-sized workload for CI and never writes
//! baselines).

use std::collections::HashMap;
use std::error::Error;
use std::process::ExitCode;

use vip::core::accounting::CallDescriptor;
use vip::core::addressing::labeling::label_all_segments;
use vip::core::addressing::segment::SegmentOptions;
use vip::core::geometry::Dims;
use vip::core::neighborhood::Connectivity;
use vip::core::ops::segment_ops::HomogeneityCriterion;
use vip::core::frame::Frame;
use vip::core::ops::arith::AbsDiff;
use vip::core::ops::filter::SobelGradient;
use vip::core::pixel::{ChannelSet, Pixel};
use vip::engine::report::keys;
use vip::engine::{AddressEngine, EngineConfig, Recording, Registry, ResourceEstimate, Session};
use vip::gme::{EngineBackend, GmeBackend, GmeConfig, SequenceRunner, SoftwareBackend};
use vip::video::io::{write_pgm, Y4mWriter};
use vip::video::TestSequence;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vipctl: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  vipctl info
  vipctl render <sequence> [--frames N] [--size WxH] [--out clip.y4m]
  vipctl gme <sequence> [--frames N] [--size WxH] [--software] [--mosaic out.pgm]
  vipctl segment [--tolerance T] [--size WxH] [--out labels.pgm]
  vipctl trace <scenario> [--size WxH] [--frames N] [--out trace.json]
  vipctl trace-diff <a.json> <b.json> [--threshold PCT]
  vipctl stats <scenario> [--size WxH] [--frames N] [--format json]
  vipctl report <scenario> [--size WxH] [--frames N] [--format json]
  vipctl bench [--quick] [--check] [--size WxH] [--reps N] [--out BENCH_engine.json]
  vipctl check [--root DIR]
sequences: singapore | dome | pisa | movie
scenarios: intra (CIF Sobel, detailed) | inter (CIF AbsDiff, detailed) | gme";

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "info" => info(),
        "render" => render(args.get(1), &flags),
        "gme" => gme(args.get(1), &flags),
        "segment" => segment(&flags),
        "trace" => trace(args.get(1), &flags),
        "trace-diff" => trace_diff(args.get(1), args.get(2), &flags),
        "stats" => stats(args.get(1), &flags),
        "report" => report(args.get(1), &flags),
        "bench" => bench(&flags),
        "check" => check(&flags),
        other => Err(format!("unknown command `{other}`").into()),
    }
}

fn parse_flags(rest: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        if let Some(name) = rest[i].strip_prefix("--") {
            let value = rest
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".to_string());
            if value != "true" {
                i += 1;
            }
            flags.insert(name.to_string(), value);
        }
        i += 1;
    }
    flags
}

fn sequence_by_name(name: Option<&String>) -> Result<TestSequence, Box<dyn Error>> {
    match name.map(String::as_str) {
        Some("singapore") => Ok(TestSequence::singapore()),
        Some("dome") => Ok(TestSequence::dome()),
        Some("pisa") => Ok(TestSequence::pisa()),
        Some("movie") => Ok(TestSequence::movie()),
        Some(other) if !other.starts_with("--") => Err(format!("unknown sequence `{other}`").into()),
        _ => Err("missing sequence name".into()),
    }
}

fn parse_size(flags: &HashMap<String, String>, default: Dims) -> Result<Dims, Box<dyn Error>> {
    match flags.get("size") {
        None => Ok(default),
        Some(s) => {
            let (w, h) = s
                .split_once(['x', 'X'])
                .ok_or("--size expects WxH, e.g. 176x144")?;
            Ok(Dims::new(w.parse()?, h.parse()?))
        }
    }
}

fn scaled(seq: &TestSequence, flags: &HashMap<String, String>) -> Result<TestSequence, Box<dyn Error>> {
    let dims = parse_size(flags, Dims::new(176, 144))?;
    let frames: usize = flags
        .get("frames")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(12);
    Ok(seq.scaled(dims.width, dims.height, frames))
}

fn info() -> Result<(), Box<dyn Error>> {
    let cfg = EngineConfig::prototype();
    println!("AddressEngine prototype configuration (DATE 2005):");
    println!("  PCI          : {} × {} B = {:.0} MB/s", cfg.pci_clock, cfg.pci_bytes_per_cycle, cfg.pci_bandwidth() / 1e6);
    println!("  engine clock : {}", cfg.engine_clock);
    println!("  ZBT          : {} banks × {} words = {} MB", cfg.zbt_banks, cfg.zbt_bank_words, cfg.zbt_bytes() / (1024 * 1024));
    println!("  strips       : {} lines   IIM/OIM: {}/{} lines", cfg.strip_lines, cfg.iim_lines, cfg.oim_lines);
    println!("  pipeline     : {} stages", cfg.pipeline_stages);
    println!(
        "  segment mode : {}",
        if cfg.segment_capable { "enabled" } else { "v2 outlook only" }
    );
    println!();
    println!("{}", ResourceEstimate::for_config(&cfg));
    Ok(())
}

fn render(name: Option<&String>, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let seq = scaled(&sequence_by_name(name)?, flags)?;
    let default_out = format!("{}.y4m", seq.name());
    let out = flags.get("out").cloned().unwrap_or(default_out);
    if out.ends_with(".pgm") {
        write_pgm(&seq.render_frame(0), &out)?;
        println!("wrote first frame of {} to {out}", seq.name());
    } else {
        let mut w = Y4mWriter::create(&out, seq.dims(), 25)?;
        for f in seq.frames() {
            w.write_frame(&f)?;
        }
        let n = w.frames_written();
        w.into_inner()?;
        println!("wrote {n} frames of {} ({}) to {out}", seq.name(), seq.dims());
    }
    Ok(())
}

fn gme(name: Option<&String>, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let seq = scaled(&sequence_by_name(name)?, flags)?;
    let use_software = flags.contains_key("software");
    let mut runner = SequenceRunner::new(GmeConfig::default());
    if flags.contains_key("mosaic") {
        runner = runner.with_mosaic(seq.dims().width as f64, seq.dims().height as f64 / 2.0);
    }

    let mut backend: Box<dyn GmeBackend> = if use_software {
        Box::new(SoftwareBackend::new())
    } else {
        Box::new(EngineBackend::prototype())
    };
    let report = runner.run(seq.frames(), backend.as_mut())?;

    println!(
        "{}: {} frames ({}), backend {}",
        seq.name(),
        report.frames,
        seq.dims(),
        backend.name()
    );
    println!(
        "  calls        : {} intra + {} inter",
        report.tally.intra, report.tally.inter
    );
    println!("  PM model     : {:.3} s", report.pm_seconds);
    if !use_software {
        println!("  engine model : {:.3} s  (speedup {:.2}x)", report.backend_seconds, report.pm_seconds / report.backend_seconds);
    }
    let mut err = 0.0;
    for rec in &report.records {
        let truth = seq.script().ground_truth(rec.index - 1);
        let (dx, dy) = rec.relative.translation_part();
        err += ((dx - truth.dx).powi(2) + (dy - truth.dy).powi(2)).sqrt();
    }
    println!(
        "  ground truth : {:.3} px mean translation error",
        err / report.records.len().max(1) as f64
    );

    if let (Some(path), Some(mosaic)) = (flags.get("mosaic"), report.mosaic) {
        write_pgm(mosaic.canvas(), path)?;
        println!(
            "  mosaic       : {} canvas, {:.0} % covered → {path}",
            mosaic.canvas().dims(),
            mosaic.coverage() * 100.0
        );
    }
    Ok(())
}

fn segment(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let dims = parse_size(flags, Dims::new(96, 72))?;
    let tolerance: u8 = flags
        .get("tolerance")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(12);
    // Segment the first frame of the pisa stand-in.
    let seq = TestSequence::pisa().scaled(dims.width, dims.height, 1);
    let frame = seq.render_frame(0);
    let labelling = label_all_segments(
        &frame,
        &HomogeneityCriterion::luma(tolerance),
        SegmentOptions::default(),
    )?;
    println!(
        "segmented {} ({}): {} segments, largest {}, mean size {:.1}",
        seq.name(),
        dims,
        labelling.segment_count(),
        labelling.largest_segment(),
        labelling.mean_segment_size()
    );
    if let Some(path) = flags.get("out") {
        // Visualise labels as luma (scaled into 0..255).
        let n = labelling.segment_count().max(1) as u32;
        let vis = vip::core::frame::Frame::from_fn(dims, |p| {
            let label = u32::from(labelling.label_at(p));
            Pixel::from_luma((label * 255 / n) as u8)
        });
        write_pgm(&vis, path)?;
        println!("label map → {path}");
    }
    Ok(())
}

/// Runs an observability scenario with a recorder attached and returns
/// the finished recording, the engine's metrics registry, and the frame
/// dimensions the scenario processed.
fn run_scenario(
    name: Option<&String>,
    flags: &HashMap<String, String>,
) -> Result<(Recording, Registry, Dims), Box<dyn Error>> {
    let session = Session::new();
    match name.map(String::as_str) {
        Some(kind @ ("intra" | "inter")) => {
            let dims = parse_size(flags, Dims::new(352, 288))?;
            let mut engine = AddressEngine::new(EngineConfig::prototype_detailed())?;
            engine.set_recorder(session.recorder());
            let frame = Frame::from_fn(dims, |p| {
                Pixel::from_luma(((p.x * 7 + p.y * 13) % 256) as u8)
            });
            if kind == "intra" {
                engine.run_intra(&frame, &SobelGradient::new())?;
            } else {
                let shifted = Frame::from_fn(dims, |p| {
                    Pixel::from_luma(((p.x * 7 + p.y * 13 + 31) % 256) as u8)
                });
                engine.run_inter(&frame, &shifted, &AbsDiff::luma())?;
            }
            let registry = engine.metrics().clone();
            Ok((session.finish(), registry, dims))
        }
        Some("gme") => {
            let seq = scaled(&TestSequence::singapore(), flags)?;
            let dims = seq.dims();
            // Detailed fidelity so the report's stall buckets and ZBT
            // bank duty reflect simulated cycles, not just the schedule.
            let mut backend = EngineBackend::new(EngineConfig::prototype_detailed())?;
            backend.engine_mut().set_recorder(session.recorder());
            let runner =
                SequenceRunner::new(GmeConfig::default()).with_recorder(session.recorder());
            runner.run(seq.frames(), &mut backend)?;
            let registry = backend.engine().metrics().clone();
            Ok((session.finish(), registry, dims))
        }
        Some(other) if !other.starts_with("--") => {
            Err(format!("unknown scenario `{other}` (expected intra | inter | gme)").into())
        }
        _ => Err("missing scenario (intra | inter | gme)".into()),
    }
}

/// Parses the `--format` flag: plain text by default, `json` on request.
fn json_format(flags: &HashMap<String, String>) -> Result<bool, Box<dyn Error>> {
    match flags.get("format").map(String::as_str) {
        None | Some("text") => Ok(false),
        Some("json") => Ok(true),
        Some(other) => Err(format!("unknown --format `{other}` (expected text | json)").into()),
    }
}

/// `vipctl bench` — times the cycle-stepped loop against the
/// event-driven fast-forward path on the same detailed workload (intra
/// Sobel + inter AbsDiff), asserts the two produce bit-identical runs,
/// and writes the tracked baseline JSON. `--quick` is the CI smoke
/// mode: a small frame, one repetition, no baseline file.
fn bench(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    use std::time::Instant;
    use vip::engine::StepMode;

    let quick = flags.contains_key("quick");
    let default_dims = if quick { Dims::new(96, 72) } else { Dims::new(352, 288) };
    let dims = parse_size(flags, default_dims)?;
    let reps: u32 = flags
        .get("reps")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(if quick { 1 } else { 5 });

    let frame = Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 7 + p.y * 13) % 256) as u8));
    let shifted =
        Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 7 + p.y * 13 + 31) % 256) as u8));

    // (mode name, cycles per rep, wall seconds, witness runs)
    let mut measured = Vec::new();
    for (name, mode) in [
        ("cycle_stepped", StepMode::CycleStepped),
        ("fast_forward", StepMode::FastForward),
    ] {
        let mut config = EngineConfig::prototype_detailed();
        config.step_mode = mode;
        let mut engine = AddressEngine::new(config)?;
        // Warm-up pass; its runs double as the equivalence witnesses.
        let intra = engine.run_intra(&frame, &SobelGradient::new())?;
        let inter = engine.run_inter(&frame, &shifted, &AbsDiff::luma())?;
        let cycles_per_rep = intra.report.processing.as_ref().map_or(0, |p| p.cycles)
            + inter.report.processing.as_ref().map_or(0, |p| p.cycles);

        // Each repetition is timed on its own and the fastest one is
        // kept: scheduler noise and CPU steal only ever slow a rep
        // down, so the minimum is the stable estimate of what the
        // machine can do — means wander far too much for a ±10 % gate.
        let mut best_rep = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let a = engine.run_intra(&frame, &SobelGradient::new())?;
            let b = engine.run_inter(&frame, &shifted, &AbsDiff::luma())?;
            best_rep = best_rep.min(t0.elapsed().as_secs_f64());
            std::hint::black_box((a, b));
        }
        measured.push((name, cycles_per_rep, best_rep.max(1e-9), (intra, inter)));
    }

    // Equivalence: the optimisation must be unobservable in the results.
    let (stepped, fast) = (&measured[0], &measured[1]);
    if stepped.3 .0.output != fast.3 .0.output
        || stepped.3 .0.report != fast.3 .0.report
        || stepped.3 .1.output != fast.3 .1.output
        || stepped.3 .1.report != fast.3 .1.report
    {
        return Err("fast-forward run diverges from the cycle-stepped run".into());
    }

    let throughput = |m: &(&str, u64, f64, _)| m.1 as f64 / m.2;
    let speedup = throughput(fast) / throughput(stepped);

    println!("engine step-mode benchmark ({dims}, best of {reps} rep(s), intra Sobel + inter AbsDiff)");
    println!(
        "{:<16} {:>14} {:>12} {:>18}",
        "mode", "cycles/rep", "wall ms", "sim-cycles/sec"
    );
    for m in &measured {
        println!(
            "{:<16} {:>14} {:>12.3} {:>18.0}",
            m.0,
            m.1,
            m.2 * 1e3,
            throughput(m)
        );
    }
    println!("speedup: {speedup:.2}x (results bit-identical)");
    if speedup < 1.0 {
        return Err(format!(
            "fast-forward is slower than cycle-stepping ({speedup:.2}x)"
        )
        .into());
    }

    // Regression gate: compare against the best matching ledger entry
    // *before* this run is appended, so a regressing run never pollutes
    // the history it failed against.
    let history_path = flags
        .get("history")
        .cloned()
        .unwrap_or_else(|| "BENCH_history.jsonl".to_string());
    if flags.contains_key("check") {
        let current = vip::gate::BenchRecord {
            workload: "intra_sobel+inter_absdiff".to_string(),
            dims: dims.to_string(),
            speedup,
            fast_cycles_per_sec: throughput(fast),
        };
        let history = match std::fs::read_to_string(&history_path) {
            Ok(text) => vip::gate::parse_history(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(format!("{history_path}: {e}").into()),
        };
        match vip::gate::check_current(&history, &current, 0.10) {
            Ok(msg) => println!("gate: {msg}"),
            Err(msg) => return Err(format!("gate: {msg}").into()),
        }
    }

    if !quick {
        let out = flags
            .get("out")
            .cloned()
            .unwrap_or_else(|| "BENCH_engine.json".to_string());
        let mut w = vip::obs::json::JsonWriter::new();
        w.begin_object();
        w.key("benchmark");
        w.string("engine.step_mode");
        w.key("workload");
        w.string("intra_sobel+inter_absdiff");
        w.key("dims");
        w.string(&dims.to_string());
        w.key("reps");
        w.u64(u64::from(reps));
        w.key("modes");
        w.begin_object();
        for m in &measured {
            w.key(m.0);
            w.begin_object();
            w.key("cycles_per_rep");
            w.u64(m.1);
            w.key("wall_ms_per_rep");
            w.f64(m.2 * 1e3);
            w.key("sim_cycles_per_sec");
            w.f64(throughput(m));
            w.end_object();
        }
        w.end_object();
        w.key("speedup");
        w.f64(speedup);
        w.key("bit_identical");
        w.bool(true);
        w.end_object();
        let json = w.finish();
        vip::obs::json::validate(&json).map_err(|e| format!("internal JSON error: {e}"))?;
        std::fs::write(&out, json.clone() + "\n")?;
        println!("baseline → {out}");
        // Append the same record to the append-only history ledger the
        // `--check` gate reads (one JSON object per line).
        use std::io::Write as _;
        let mut ledger = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&history_path)?;
        writeln!(ledger, "{json}")?;
        println!("history  → {history_path}");
    }
    Ok(())
}

/// `vipctl check` — static schedule/hazard verification plus workspace
/// lints, exactly what the standalone `vip-check` binary runs.
fn check(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let root = match flags.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let mut dir = std::env::current_dir()?;
            loop {
                let manifest = dir.join("Cargo.toml");
                if std::fs::read_to_string(&manifest)
                    .is_ok_and(|t| t.contains("[workspace]"))
                {
                    break dir;
                }
                if !dir.pop() {
                    return Err("no workspace Cargo.toml found above the current directory \
                                (pass --root DIR)"
                        .into());
                }
            }
        }
    };
    println!("verifying workspace at {}", root.display());
    let report = vip::check::check_workspace(&root);
    println!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} invariant violation(s)", report.violations.len()).into())
    }
}

fn trace(name: Option<&String>, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let (recording, _, _) = run_scenario(name, flags)?;
    let out = flags.get("out").cloned().unwrap_or_else(|| "trace.json".to_string());
    std::fs::write(&out, recording.to_chrome_json())?;
    let tracks: Vec<&str> = recording.tracks().iter().map(|t| t.name()).collect();
    println!(
        "wrote {} events on {} tracks ({}) to {out}",
        recording.len(),
        tracks.len(),
        tracks.join(", ")
    );
    println!("open in https://ui.perfetto.dev or chrome://tracing");
    Ok(())
}

fn stats(name: Option<&String>, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let (recording, registry, _) = run_scenario(name, flags)?;
    if json_format(flags)? {
        let mut w = vip::obs::json::JsonWriter::new();
        w.begin_object();
        w.key("scenario");
        w.string(name.map(String::as_str).unwrap_or_default());
        w.key("metrics");
        registry.write_json(&mut w);
        w.key("trace_events");
        w.u64(recording.len() as u64);
        w.key("trace_tracks");
        w.u64(recording.tracks().len() as u64);
        w.end_object();
        println!("{}", w.finish());
        return Ok(());
    }
    print!("{}", registry.text_table());
    println!();
    println!(
        "trace: {} events across {} tracks (use `vipctl trace` to export)",
        recording.len(),
        recording.tracks().len()
    );
    Ok(())
}

/// Percentage of `part` in `whole`, 0 when the whole is empty.
fn pct(part: f64, whole: f64) -> f64 {
    if whole <= 0.0 {
        0.0
    } else {
        100.0 * part / whole
    }
}

/// The modelled software seconds of the calls a scenario issued — the
/// "Time in PM" side of the Table 3 comparison, reconstructed from the
/// per-mode call counters.
fn modelled_software_seconds(registry: &Registry, dims: Dims) -> f64 {
    let model = vip::profiling::CostModel::pentium_m_xm();
    let intra = CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y);
    let inter = CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y);
    let segment = CallDescriptor::segment(
        Connectivity::Con4,
        ChannelSet::Y,
        ChannelSet::ALPHA.union(ChannelSet::AUX),
    );
    registry.counter(keys::INTRA_CALLS) as f64
        * vip::profiling::software_call_seconds(&intra, dims, &model)
        + registry.counter(keys::INTER_CALLS) as f64
            * vip::profiling::software_call_seconds(&inter, dims, &model)
        + registry.counter(keys::SEGMENT_CALLS) as f64
            * vip::profiling::software_call_seconds(&segment, dims, &model)
}

/// `vipctl report` — the cycle-attribution view of one scenario: where
/// every engine second and every process-unit cycle went, plus the
/// Amdahl decomposition that connects the measurement to the paper's
/// ×30 bound and ×5 end-to-end observation.
fn report(name: Option<&String>, flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let (recording, registry, dims) = run_scenario(name, flags)?;
    let attrib = vip::obs::Attribution::of(&recording);

    // Process-unit cycle buckets — a mutually exclusive partition.
    let pu_cycles = registry.counter(keys::PU_CYCLES);
    let buckets = [
        ("busy", registry.counter(keys::ATTRIB_PU_BUSY_CYCLES)),
        ("iim_stall", registry.counter(keys::PU_IIM_STALLS)),
        ("oim_stall", registry.counter(keys::PU_OIM_STALLS)),
        ("idle", registry.counter(keys::PU_IDLE_CYCLES)),
    ];

    // ZBT bank duty.
    let banks: Vec<u64> = (0..6)
        .map(|b| registry.counter(vip::engine::report::zbt_bank_key(b)))
        .collect();
    let bank_total: u64 = banks.iter().sum();

    // Call-second split.
    let total_s = registry.gauge(keys::BUSY_SECONDS);
    let split = [
        ("pci_input", registry.gauge(keys::ATTRIB_PCI_INPUT_SECONDS)),
        ("pci_output", registry.gauge(keys::ATTRIB_PCI_OUTPUT_SECONDS)),
        ("host_overhead", registry.gauge(keys::ATTRIB_HOST_OVERHEAD_SECONDS)),
        ("engine_nonpci", registry.gauge(keys::ATTRIB_ENGINE_NONPCI_SECONDS)),
    ];

    // Amdahl decomposition: the workload-level offloadable fraction
    // (§1) against this scenario's measured coprocessor-side speedup.
    let model = vip::profiling::CostModel::pentium_m_xm();
    let mix = vip::profiling::segmentation_workload(Dims::new(352, 288));
    let prof = vip::profiling::profile::profile(&mix, &model);
    let ideal = vip::profiling::amdahl::ideal_speedup(prof.offloadable_fraction);
    let software_s = modelled_software_seconds(&registry, dims);
    let coproc = if total_s > 0.0 { software_s / total_s } else { 0.0 };
    let overall = vip::profiling::amdahl::amdahl(prof.offloadable_fraction, coproc);

    if json_format(flags)? {
        let mut w = vip::obs::json::JsonWriter::new();
        w.begin_object();
        w.key("scenario");
        w.string(name.map(String::as_str).unwrap_or_default());
        w.key("dims");
        w.string(&dims.to_string());
        w.key("attribution");
        attrib.write_json(&mut w);
        w.key("pu_cycles");
        w.begin_object();
        w.key("total");
        w.u64(pu_cycles);
        for (label, cycles) in &buckets {
            w.key(label);
            w.u64(*cycles);
        }
        w.end_object();
        w.key("zbt_bank_words");
        w.begin_array();
        for words in &banks {
            w.u64(*words);
        }
        w.end_array();
        w.key("call_seconds");
        w.begin_object();
        w.key("total");
        w.f64(total_s);
        for (label, seconds) in &split {
            w.key(label);
            w.f64(*seconds);
        }
        w.end_object();
        w.key("amdahl");
        w.begin_object();
        w.key("offloadable_fraction");
        w.f64(prof.offloadable_fraction);
        w.key("ideal_bound");
        w.f64(ideal);
        w.key("coprocessor_speedup");
        w.f64(coproc);
        w.key("overall_speedup");
        w.f64(overall);
        w.end_object();
        w.end_object();
        println!("{}", w.finish());
        return Ok(());
    }

    println!(
        "cycle attribution — {} ({dims})",
        name.map(String::as_str).unwrap_or_default()
    );
    println!();
    println!("track utilization (virtual-clock window)");
    print!("{}", attrib.text_table());
    println!();

    println!("process-unit cycle buckets");
    println!("{:<12} {:>14} {:>8}", "bucket", "cycles", "share");
    for (label, cycles) in &buckets {
        println!(
            "{:<12} {:>14} {:>7.2}%",
            label,
            cycles,
            pct(*cycles as f64, pu_cycles as f64)
        );
    }
    println!("{:<12} {:>14} {:>7.2}%", "total", pu_cycles, 100.0);
    println!(
        "matrix: {} loads, {} shifts",
        registry.counter(keys::PU_MATRIX_LOADS),
        registry.counter(keys::PU_MATRIX_SHIFTS)
    );
    println!();

    println!("ZBT bank duty (words moved, detailed calls)");
    for (bank, words) in banks.iter().enumerate() {
        println!(
            "bank{bank:<8} {:>14} {:>7.2}%",
            words,
            pct(*words as f64, bank_total as f64)
        );
    }
    println!();

    println!("call-second split");
    for (label, seconds) in &split {
        println!(
            "{:<14} {:>12.6} s {:>7.2}%",
            label,
            seconds,
            pct(*seconds, total_s)
        );
    }
    println!("{:<14} {:>12.6} s {:>7.2}%", "total", total_s, 100.0);
    println!();

    println!("Amdahl decomposition (segmentation workload profile, CIF, Pentium-M model)");
    println!("offloadable fraction          : {:.4}", prof.offloadable_fraction);
    println!("ideal coprocessor bound (§1)  : {ideal:.1}x");
    println!("measured coprocessor speedup  : {coproc:.2}x  (modelled software {software_s:.4} s / engine {total_s:.4} s)");
    println!("overall Amdahl speedup (§5)   : {overall:.2}x");
    Ok(())
}

/// `vipctl trace-diff` — aligns two exported Chrome traces by track and
/// reports per-track busy-time and event-count deltas, flagging tracks
/// whose busy time moved beyond the threshold.
fn trace_diff(
    a: Option<&String>,
    b: Option<&String>,
    flags: &HashMap<String, String>,
) -> Result<(), Box<dyn Error>> {
    let (Some(a), Some(b)) = (a, b) else {
        return Err("trace-diff needs two trace files: vipctl trace-diff a.json b.json".into());
    };
    if a.starts_with("--") || b.starts_with("--") {
        return Err("trace-diff needs two trace files before any flags".into());
    }
    let threshold: f64 = flags
        .get("threshold")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(10.0)
        / 100.0;
    let doc_a = std::fs::read_to_string(a).map_err(|e| format!("{a}: {e}"))?;
    let doc_b = std::fs::read_to_string(b).map_err(|e| format!("{b}: {e}"))?;
    let diff = vip::obs::diff_chrome_traces(&doc_a, &doc_b)?;
    println!("trace diff: {a} → {b}");
    print!("{}", diff.text_table(threshold));
    Ok(())
}
