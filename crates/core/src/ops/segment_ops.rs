//! Segment-processing kernels: homogeneity criteria and label utilities
//! used by segment addressing.
//!
//! §2.2: *"luminance/chrominance difference between neighboring pixels for
//! homogeneity check"* — the canonical neighbourhood criterion driving the
//! expansion process of segment addressing (§2.1).
//!
//! # Examples
//!
//! ```
//! use vip_core::ops::segment_ops::{HomogeneityCriterion, NeighborCriterion};
//! use vip_core::pixel::Pixel;
//!
//! let crit = HomogeneityCriterion::luma(8);
//! assert!(crit.admits(Pixel::from_luma(100), Pixel::from_luma(104)));
//! assert!(!crit.admits(Pixel::from_luma(100), Pixel::from_luma(120)));
//! ```

use core::fmt;

use crate::pixel::Pixel;

/// A neighbourhood criterion: decides whether a candidate neighbour pixel
/// belongs to the segment being expanded, given the pixel it is reached
/// from.
///
/// Implemented as a trait so algorithms can plug arbitrary region-growing
/// predicates into the segment-addressing executor.
pub trait NeighborCriterion {
    /// Short stable name for traces and reports.
    fn name(&self) -> &'static str;

    /// Whether `candidate`, reached from segment member `from`, should be
    /// admitted to the segment.
    fn admits(&self, from: Pixel, candidate: Pixel) -> bool;
}

impl<T: NeighborCriterion + ?Sized> NeighborCriterion for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn admits(&self, from: Pixel, candidate: Pixel) -> bool {
        (**self).admits(from, candidate)
    }
}

/// Luminance/chrominance homogeneity: the candidate joins when each
/// selected channel differs from the source pixel by at most its
/// tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomogeneityCriterion {
    luma_tolerance: u8,
    chroma_tolerance: Option<u8>,
}

impl HomogeneityCriterion {
    /// Luminance-only homogeneity with the given tolerance.
    #[must_use]
    pub const fn luma(tolerance: u8) -> Self {
        HomogeneityCriterion {
            luma_tolerance: tolerance,
            chroma_tolerance: None,
        }
    }

    /// Joint luminance + chrominance homogeneity.
    #[must_use]
    pub const fn luma_chroma(luma_tolerance: u8, chroma_tolerance: u8) -> Self {
        HomogeneityCriterion {
            luma_tolerance,
            chroma_tolerance: Some(chroma_tolerance),
        }
    }

    /// The luminance tolerance.
    #[must_use]
    pub const fn luma_tolerance(&self) -> u8 {
        self.luma_tolerance
    }
}

impl NeighborCriterion for HomogeneityCriterion {
    fn name(&self) -> &'static str {
        "homogeneity"
    }
    fn admits(&self, from: Pixel, candidate: Pixel) -> bool {
        if from.y.abs_diff(candidate.y) > self.luma_tolerance {
            return false;
        }
        if let Some(ct) = self.chroma_tolerance {
            if from.u.abs_diff(candidate.u) > ct || from.v.abs_diff(candidate.v) > ct {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for HomogeneityCriterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.chroma_tolerance {
            Some(ct) => write!(f, "homogeneity(y≤{}, uv≤{ct})", self.luma_tolerance),
            None => write!(f, "homogeneity(y≤{})", self.luma_tolerance),
        }
    }
}

/// Threshold criterion: the candidate joins when its luminance is within a
/// fixed absolute band, independent of the source pixel (flood fill of an
/// intensity range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandCriterion {
    low: u8,
    high: u8,
}

impl BandCriterion {
    /// Creates a band criterion admitting luminance in `low..=high`.
    #[must_use]
    pub fn new(low: u8, high: u8) -> Self {
        BandCriterion {
            low: low.min(high),
            high: high.max(low),
        }
    }
}

impl NeighborCriterion for BandCriterion {
    fn name(&self) -> &'static str {
        "band"
    }
    fn admits(&self, _from: Pixel, candidate: Pixel) -> bool {
        (self.low..=self.high).contains(&candidate.y)
    }
}

/// Alpha-mask criterion: the candidate joins when its alpha channel is
/// non-zero — used to walk a precomputed mask (e.g. after change
/// detection) as a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlphaMaskCriterion;

impl AlphaMaskCriterion {
    /// Creates the alpha-mask criterion.
    #[must_use]
    pub const fn new() -> Self {
        AlphaMaskCriterion
    }
}

impl NeighborCriterion for AlphaMaskCriterion {
    fn name(&self) -> &'static str {
        "alpha_mask"
    }
    fn admits(&self, _from: Pixel, candidate: Pixel) -> bool {
        candidate.alpha != 0
    }
}

/// Writes a segment label into the alpha channel and the geodesic distance
/// into the aux channel — the per-pixel action most segmentation passes
/// perform while expanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelWriter {
    label: u16,
}

impl LabelWriter {
    /// Creates a label writer for segment id `label`.
    #[must_use]
    pub const fn new(label: u16) -> Self {
        LabelWriter { label }
    }

    /// The label this writer assigns.
    #[must_use]
    pub const fn label(&self) -> u16 {
        self.label
    }

    /// Applies the label and distance to a pixel.
    #[must_use]
    pub fn apply(&self, mut px: Pixel, geodesic_distance: u32) -> Pixel {
        px.alpha = self.label;
        px.aux = geodesic_distance.min(u32::from(u16::MAX)) as u16;
        px
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luma_homogeneity() {
        let c = HomogeneityCriterion::luma(5);
        assert_eq!(c.luma_tolerance(), 5);
        assert!(c.admits(Pixel::from_luma(10), Pixel::from_luma(15)));
        assert!(!c.admits(Pixel::from_luma(10), Pixel::from_luma(16)));
        assert!(c.admits(Pixel::from_luma(10), Pixel::from_luma(5)));
    }

    #[test]
    fn chroma_homogeneity() {
        let c = HomogeneityCriterion::luma_chroma(100, 2);
        let base = Pixel::from_yuv(50, 100, 100);
        assert!(c.admits(base, Pixel::from_yuv(60, 101, 99)));
        assert!(!c.admits(base, Pixel::from_yuv(60, 104, 100)));
        assert!(!c.admits(base, Pixel::from_yuv(60, 100, 90)));
    }

    #[test]
    fn homogeneity_is_symmetric() {
        let c = HomogeneityCriterion::luma(7);
        let a = Pixel::from_luma(100);
        let b = Pixel::from_luma(106);
        assert_eq!(c.admits(a, b), c.admits(b, a));
    }

    #[test]
    fn band_criterion_ignores_source() {
        let c = BandCriterion::new(100, 200);
        assert!(c.admits(Pixel::from_luma(0), Pixel::from_luma(150)));
        assert!(!c.admits(Pixel::from_luma(150), Pixel::from_luma(99)));
        assert!(c.admits(Pixel::BLACK, Pixel::from_luma(100)));
        assert!(c.admits(Pixel::BLACK, Pixel::from_luma(200)));
    }

    #[test]
    fn band_criterion_normalises_bounds() {
        let c = BandCriterion::new(200, 100);
        assert!(c.admits(Pixel::BLACK, Pixel::from_luma(150)));
    }

    #[test]
    fn alpha_mask_criterion() {
        let c = AlphaMaskCriterion::new();
        assert!(c.admits(Pixel::BLACK, Pixel::BLACK.with_alpha(3)));
        assert!(!c.admits(Pixel::BLACK.with_alpha(3), Pixel::BLACK));
        assert_eq!(c.name(), "alpha_mask");
    }

    #[test]
    fn label_writer_sets_alpha_and_distance() {
        let w = LabelWriter::new(9);
        assert_eq!(w.label(), 9);
        let px = w.apply(Pixel::from_luma(50), 12);
        assert_eq!((px.alpha, px.aux, px.y), (9, 12, 50));
        let far = w.apply(Pixel::BLACK, 1_000_000);
        assert_eq!(far.aux, u16::MAX);
    }

    #[test]
    fn criterion_trait_object() {
        let c: &dyn NeighborCriterion = &HomogeneityCriterion::luma(1);
        assert_eq!(c.name(), "homogeneity");
        assert!(c.admits(Pixel::BLACK, Pixel::BLACK));
    }

    #[test]
    fn display() {
        assert_eq!(HomogeneityCriterion::luma(8).to_string(), "homogeneity(y≤8)");
        assert_eq!(
            HomogeneityCriterion::luma_chroma(8, 4).to_string(),
            "homogeneity(y≤8, uv≤4)"
        );
    }
}
