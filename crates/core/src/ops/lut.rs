//! Point operations: look-up tables, thresholding, contrast and gamma —
//! the simplest stage-3 sub-functions (CON_0 intra calls).
//!
//! These are the "statically configurable" per-pixel transforms that the
//! dynamically reconfigurable processing block of the §5 outlook would
//! swap in and out.
//!
//! # Examples
//!
//! ```
//! use vip_core::ops::lut::Threshold;
//! use vip_core::ops::IntraOp;
//! use vip_core::border::BorderPolicy;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::{Dims, Point};
//! use vip_core::neighborhood::Window;
//! use vip_core::pixel::Pixel;
//!
//! let f = Frame::filled(Dims::new(4, 4), Pixel::from_luma(200));
//! let op = Threshold::binary(128);
//! let w = Window::gather(&f, Point::new(1, 1), op.shape(), BorderPolicy::Clamp);
//! assert_eq!(op.apply(&w).y, 255);
//! ```

use crate::neighborhood::{Connectivity, Window};
use crate::ops::IntraOp;
use crate::pixel::{ChannelSet, Pixel};

/// An arbitrary 256-entry luminance look-up table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LumaLut {
    name: &'static str,
    table: Box<[u8; 256]>,
}

impl LumaLut {
    /// Builds a LUT from a function of the input luminance.
    #[must_use]
    pub fn from_fn(name: &'static str, f: impl Fn(u8) -> u8) -> Self {
        let mut table = Box::new([0u8; 256]);
        for (i, out) in table.iter_mut().enumerate() {
            *out = f(i as u8);
        }
        LumaLut { name, table }
    }

    /// The identity LUT.
    #[must_use]
    pub fn identity() -> Self {
        LumaLut::from_fn("lut_identity", |v| v)
    }

    /// Inversion (negative image).
    #[must_use]
    pub fn invert() -> Self {
        LumaLut::from_fn("lut_invert", |v| 255 - v)
    }

    /// Gamma correction with the given exponent.
    #[must_use]
    pub fn gamma(gamma: f64) -> Self {
        let g = gamma.max(1e-3);
        LumaLut::from_fn("lut_gamma", move |v| {
            (255.0 * (f64::from(v) / 255.0).powf(g)).round() as u8
        })
    }

    /// Linear contrast stretch mapping `[low, high]` to `[0, 255]`.
    #[must_use]
    pub fn stretch(low: u8, high: u8) -> Self {
        let lo = f64::from(low.min(high));
        let hi = f64::from(high.max(low)).max(lo + 1.0);
        LumaLut::from_fn("lut_stretch", move |v| {
            (255.0 * (f64::from(v) - lo) / (hi - lo)).clamp(0.0, 255.0) as u8
        })
    }

    /// The mapped value for `input`.
    #[must_use]
    pub fn map(&self, input: u8) -> u8 {
        self.table[input as usize]
    }
}

impl IntraOp for LumaLut {
    fn name(&self) -> &'static str {
        self.name
    }
    fn shape(&self) -> Connectivity {
        Connectivity::Con0
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn apply(&self, window: &Window) -> Pixel {
        let mut out = window.centre_pixel();
        out.y = self.map(out.y);
        out
    }
}

/// Luminance thresholding with configurable output values, also writing
/// the binary decision into the alpha channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threshold {
    threshold: u8,
    below: u8,
    above: u8,
}

impl Threshold {
    /// Classic binarisation: below → 0, at/above → 255.
    #[must_use]
    pub const fn binary(threshold: u8) -> Self {
        Threshold {
            threshold,
            below: 0,
            above: 255,
        }
    }

    /// Threshold with custom output levels.
    #[must_use]
    pub const fn with_levels(threshold: u8, below: u8, above: u8) -> Self {
        Threshold {
            threshold,
            below,
            above,
        }
    }

    /// The threshold value.
    #[must_use]
    pub const fn threshold(&self) -> u8 {
        self.threshold
    }
}

impl IntraOp for Threshold {
    fn name(&self) -> &'static str {
        "threshold"
    }
    fn shape(&self) -> Connectivity {
        Connectivity::Con0
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y.union(ChannelSet::ALPHA)
    }
    fn apply(&self, window: &Window) -> Pixel {
        let mut out = window.centre_pixel();
        let above = out.y >= self.threshold;
        out.y = if above { self.above } else { self.below };
        out.alpha = u16::from(above);
        out
    }
}

/// Scales and offsets the luminance: `y' = clamp(y·num/den + offset)` —
/// the fixed-point "mult/add" combination of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleOffset {
    num: i32,
    den: i32,
    offset: i32,
}

impl ScaleOffset {
    /// Creates a scale/offset op; `den` is clamped to at least 1.
    #[must_use]
    pub fn new(num: i32, den: i32, offset: i32) -> Self {
        ScaleOffset {
            num,
            den: den.max(1),
            offset,
        }
    }

    /// Brightness adjustment only.
    #[must_use]
    pub fn brightness(offset: i32) -> Self {
        ScaleOffset::new(1, 1, offset)
    }
}

impl IntraOp for ScaleOffset {
    fn name(&self) -> &'static str {
        "scale_offset"
    }
    fn shape(&self) -> Connectivity {
        Connectivity::Con0
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn apply(&self, window: &Window) -> Pixel {
        let mut out = window.centre_pixel();
        let v = i32::from(out.y) * self.num / self.den + self.offset;
        out.y = v.clamp(0, 255) as u8;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border::BorderPolicy;
    use crate::frame::Frame;
    use crate::geometry::{Dims, Point};

    fn apply_at(op: &impl IntraOp, luma: u8) -> Pixel {
        let f = Frame::filled(Dims::new(3, 3), Pixel::from_luma(luma).with_aux(7));
        let w = Window::gather(&f, Point::new(1, 1), op.shape(), BorderPolicy::Clamp);
        op.apply(&w)
    }

    #[test]
    fn identity_lut() {
        let lut = LumaLut::identity();
        for v in [0u8, 1, 127, 255] {
            assert_eq!(lut.map(v), v);
        }
        assert_eq!(apply_at(&lut, 99).y, 99);
    }

    #[test]
    fn invert_lut_is_involution() {
        let lut = LumaLut::invert();
        for v in 0..=255u8 {
            assert_eq!(lut.map(lut.map(v)), v);
        }
        assert_eq!(lut.map(0), 255);
    }

    #[test]
    fn gamma_brightens_or_darkens() {
        let bright = LumaLut::gamma(0.5);
        let dark = LumaLut::gamma(2.0);
        assert!(bright.map(64) > 64);
        assert!(dark.map(64) < 64);
        // End points fixed.
        for lut in [&bright, &dark] {
            assert_eq!(lut.map(0), 0);
            assert_eq!(lut.map(255), 255);
        }
    }

    #[test]
    fn stretch_maps_band_to_full_range() {
        let lut = LumaLut::stretch(50, 200);
        assert_eq!(lut.map(50), 0);
        assert_eq!(lut.map(200), 255);
        assert_eq!(lut.map(20), 0, "clamped below");
        assert_eq!(lut.map(240), 255, "clamped above");
        let mid = lut.map(125);
        assert!(mid > 100 && mid < 155);
        // Degenerate band does not divide by zero.
        let d = LumaLut::stretch(100, 100);
        let _ = d.map(100);
    }

    #[test]
    fn threshold_binary_and_alpha() {
        let op = Threshold::binary(128);
        assert_eq!(op.threshold(), 128);
        let above = apply_at(&op, 200);
        assert_eq!((above.y, above.alpha), (255, 1));
        let below = apply_at(&op, 100);
        assert_eq!((below.y, below.alpha), (0, 0));
        let edge = apply_at(&op, 128);
        assert_eq!(edge.alpha, 1, "threshold is inclusive above");
    }

    #[test]
    fn threshold_custom_levels() {
        let op = Threshold::with_levels(100, 10, 20);
        assert_eq!(apply_at(&op, 50).y, 10);
        assert_eq!(apply_at(&op, 150).y, 20);
    }

    #[test]
    fn scale_offset_clamps() {
        assert_eq!(apply_at(&ScaleOffset::new(2, 1, 0), 200).y, 255);
        assert_eq!(apply_at(&ScaleOffset::new(1, 2, 0), 100).y, 50);
        assert_eq!(apply_at(&ScaleOffset::brightness(-50), 30).y, 0);
        assert_eq!(apply_at(&ScaleOffset::brightness(20), 30).y, 50);
        // Zero denominator clamps to 1.
        assert_eq!(apply_at(&ScaleOffset::new(3, 0, 0), 10).y, 30);
    }

    #[test]
    fn point_ops_preserve_other_channels() {
        for op in [&Threshold::binary(1) as &dyn IntraOp, &ScaleOffset::brightness(5)] {
            let out = apply_at(&op, 100);
            assert_eq!(out.aux, 7, "{}", op.name());
            assert_eq!((out.u, out.v), (128, 128));
        }
    }

    #[test]
    fn all_are_con0() {
        assert_eq!(LumaLut::identity().shape(), Connectivity::Con0);
        assert_eq!(Threshold::binary(0).shape(), Connectivity::Con0);
        assert_eq!(ScaleOffset::brightness(0).shape(), Connectivity::Con0);
        assert_eq!(Threshold::binary(0).output_channels().len(), 2);
    }

    #[test]
    fn works_through_whole_frame_call() {
        let f = Frame::from_fn(Dims::new(8, 8), |p| Pixel::from_luma((p.x * 30) as u8));
        let r = crate::addressing::intra::run_intra(&f, &LumaLut::invert()).unwrap();
        assert_eq!(r.output.get(Point::new(0, 0)).y, 255);
        assert_eq!(r.report.counter.total(), 2 * 64, "CON_0 accounting");
    }
}
