//! Rank-order filters: median and general percentile filters over the
//! neighbourhood window — the classic non-linear smoothing family that
//! complements the morphological operators (min/max are the rank
//! extremes).
//!
//! # Examples
//!
//! ```
//! use vip_core::border::BorderPolicy;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::{Dims, Point};
//! use vip_core::neighborhood::Window;
//! use vip_core::ops::rank::Median;
//! use vip_core::ops::IntraOp;
//! use vip_core::pixel::Pixel;
//!
//! // A salt speck on a flat frame disappears under the median.
//! let mut f = Frame::filled(Dims::new(5, 5), Pixel::from_luma(50));
//! f.set(Point::new(2, 2), Pixel::from_luma(255));
//! let m = Median::con8();
//! let w = Window::gather(&f, Point::new(2, 2), m.shape(), BorderPolicy::Clamp);
//! assert_eq!(m.apply(&w).y, 50);
//! ```

use crate::error::{CoreError, CoreResult};
use crate::neighborhood::{Connectivity, Window, MAX_LINES};
use crate::ops::IntraOp;
use crate::pixel::{ChannelSet, Pixel};

/// Luminance rank filter: outputs the `rank`-th smallest sample of the
/// window (0 = minimum ≙ erosion, `len−1` = maximum ≙ dilation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankFilter {
    shape: Connectivity,
    /// Rank as a fraction of the window size in per-mille (0 ⇒ min,
    /// 500 ⇒ median, 1000 ⇒ max) — window size varies at skip borders.
    rank_permille: u16,
}

impl RankFilter {
    /// Creates a rank filter selecting the given per-mille rank.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `rank_permille`
    /// exceeds 1000.
    pub fn new(shape: Connectivity, rank_permille: u16) -> CoreResult<Self> {
        if rank_permille > 1000 {
            return Err(CoreError::InvalidParameter {
                name: "rank_permille",
                reason: "rank must lie in 0..=1000",
            });
        }
        Ok(RankFilter {
            shape,
            rank_permille,
        })
    }

    /// The configured rank in per-mille.
    #[must_use]
    pub const fn rank_permille(&self) -> u16 {
        self.rank_permille
    }

    fn select(&self, window: &Window) -> u8 {
        // Windows span at most 9×9 samples, so the sort buffer lives on
        // the stack — this runs once per pixel.
        let mut lumas = [0u8; MAX_LINES * MAX_LINES];
        let mut n = 0;
        for p in window.pixels() {
            lumas[n] = p.y;
            n += 1;
        }
        if n == 0 {
            return window.centre_pixel().y;
        }
        let lumas = &mut lumas[..n];
        lumas.sort_unstable();
        let idx = (usize::from(self.rank_permille) * (n - 1) + 500) / 1000;
        lumas[idx]
    }
}

impl IntraOp for RankFilter {
    fn name(&self) -> &'static str {
        "rank"
    }
    fn shape(&self) -> Connectivity {
        self.shape
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn apply(&self, window: &Window) -> Pixel {
        let mut out = window.centre_pixel();
        out.y = self.select(window);
        out
    }
}

/// The median filter: the 50 %-rank special case, the standard
/// salt-and-pepper noise remover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Median {
    inner: RankFilter,
}

impl Median {
    /// 3×3 median.
    #[must_use]
    pub fn con8() -> Self {
        Median {
            inner: RankFilter::new(Connectivity::Con8, 500).expect("500 is valid"),
        }
    }

    /// Median over an arbitrary window shape.
    #[must_use]
    pub fn with_shape(shape: Connectivity) -> Self {
        Median {
            inner: RankFilter::new(shape, 500).expect("500 is valid"),
        }
    }
}

impl IntraOp for Median {
    fn name(&self) -> &'static str {
        "median"
    }
    fn shape(&self) -> Connectivity {
        self.inner.shape()
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn apply(&self, window: &Window) -> Pixel {
        self.inner.apply(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addressing::intra::run_intra;
    use crate::border::BorderPolicy;
    use crate::frame::Frame;
    use crate::geometry::{Dims, Point};
    use crate::ops::morph::{Dilate, Erode};

    fn speckled() -> Frame {
        let mut f = Frame::filled(Dims::new(7, 7), Pixel::from_luma(80));
        f.set(Point::new(2, 2), Pixel::from_luma(255)); // salt
        f.set(Point::new(4, 4), Pixel::from_luma(0)); // pepper
        f
    }

    fn win(f: &Frame, p: Point, op: &impl IntraOp) -> Window {
        Window::gather(f, p, op.shape(), BorderPolicy::Clamp)
    }

    #[test]
    fn median_removes_salt_and_pepper() {
        let f = speckled();
        let m = Median::con8();
        assert_eq!(m.apply(&win(&f, Point::new(2, 2), &m)).y, 80);
        assert_eq!(m.apply(&win(&f, Point::new(4, 4), &m)).y, 80);
        // Flat area stays flat.
        assert_eq!(m.apply(&win(&f, Point::new(6, 6), &m)).y, 80);
    }

    #[test]
    fn rank_extremes_match_morphology() {
        let f = speckled();
        let min = RankFilter::new(Connectivity::Con8, 0).unwrap();
        let max = RankFilter::new(Connectivity::Con8, 1000).unwrap();
        let erode = Erode::con8();
        let dilate = Dilate::con8();
        for p in [Point::new(2, 2), Point::new(3, 3), Point::new(4, 4)] {
            assert_eq!(
                min.apply(&win(&f, p, &min)).y,
                erode.apply(&win(&f, p, &erode)).y,
                "min == erode at {p}"
            );
            assert_eq!(
                max.apply(&win(&f, p, &max)).y,
                dilate.apply(&win(&f, p, &dilate)).y,
                "max == dilate at {p}"
            );
        }
    }

    #[test]
    fn invalid_rank_rejected() {
        assert!(RankFilter::new(Connectivity::Con8, 1001).is_err());
        assert!(RankFilter::new(Connectivity::Con8, 1000).is_ok());
        assert_eq!(
            RankFilter::new(Connectivity::Con4, 250).unwrap().rank_permille(),
            250
        );
    }

    #[test]
    fn median_is_idempotent_on_flat() {
        let f = Frame::filled(Dims::new(5, 5), Pixel::from_luma(42));
        let r1 = run_intra(&f, &Median::con8()).unwrap().output;
        assert_eq!(r1, f);
    }

    #[test]
    fn median_bounded_by_min_max() {
        let f = speckled();
        let med = run_intra(&f, &Median::con8()).unwrap().output;
        let lo = run_intra(&f, &Erode::con8()).unwrap().output;
        let hi = run_intra(&f, &Dilate::con8()).unwrap().output;
        for (p, m) in med.enumerate() {
            assert!(lo.get(p).y <= m.y && m.y <= hi.get(p).y, "at {p}");
        }
    }

    #[test]
    fn whole_frame_pass_despeckles() {
        let f = speckled();
        let out = run_intra(&f, &Median::con8()).unwrap().output;
        assert!(out.pixels().iter().all(|p| p.y == 80), "all speckles gone");
    }

    #[test]
    fn preserves_other_channels() {
        let f = Frame::filled(Dims::new(3, 3), Pixel::new(10, 20, 30, 40, 50));
        let m = Median::with_shape(Connectivity::Con4);
        let out = m.apply(&win(&f, Point::new(1, 1), &m));
        assert_eq!((out.u, out.v, out.alpha, out.aux), (20, 30, 40, 50));
        assert_eq!(m.shape(), Connectivity::Con4);
        assert_eq!(m.name(), "median");
    }
}
