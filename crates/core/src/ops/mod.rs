//! Pixel operations: the sub-functions executed in stage 3 of the Process
//! Unit.
//!
//! §2.2 of the paper: *"Pixel-level operations may be separated into basic
//! sub-functions, such as add, sub, mult, grad, in order to achieve
//! efficiency and flexibility. These sub-functions can be combined to form
//! more complex operations."*
//!
//! Two kernel families exist, mirroring the two hardware-supported
//! addressing modes:
//!
//! * [`InterOp`] — combines one pixel from each of two frames
//!   (difference pictures, SAD terms, blending, …).
//! * [`IntraOp`] — maps a neighbourhood [`Window`] of one frame to an
//!   output pixel (filters, gradients, morphology, …).
//!
//! Reductions (SAD totals, histograms) are provided in [`reduce`]
//! as accumulators layered over the same kernels.

pub mod arith;
pub mod compose;
pub mod filter;
pub mod lut;
pub mod morph;
pub mod rank;
pub mod reduce;
pub mod segment_ops;

use crate::neighborhood::{Connectivity, Window};
use crate::pixel::{ChannelSet, Pixel};

/// A kernel for inter addressing: one output pixel from a pair of input
/// pixels at the same position of two frames.
///
/// Implementors should be cheap to call; the executors invoke them once per
/// pixel. The kernel reports which channels it reads and writes so the
/// memory-access accounting (Table 2) can attribute traffic exactly.
pub trait InterOp {
    /// Short stable kernel name (used in reports and traces).
    fn name(&self) -> &'static str;

    /// Channels read from *each* input pixel.
    fn input_channels(&self) -> ChannelSet;

    /// Channels written to the output pixel. Unwritten channels are taken
    /// from the first input frame.
    fn output_channels(&self) -> ChannelSet;

    /// Combines one pixel from frame A and one from frame B.
    fn apply(&self, a: Pixel, b: Pixel) -> Pixel;
}

/// A kernel for intra addressing: one output pixel from the neighbourhood
/// window around the corresponding input position.
pub trait IntraOp {
    /// Short stable kernel name (used in reports and traces).
    fn name(&self) -> &'static str;

    /// The neighbourhood shape this kernel needs.
    fn shape(&self) -> Connectivity;

    /// Channels read from each input sample.
    fn input_channels(&self) -> ChannelSet;

    /// Channels written to the output pixel. Unwritten channels are taken
    /// from the window centre.
    fn output_channels(&self) -> ChannelSet;

    /// Maps a gathered window to the output pixel.
    fn apply(&self, window: &Window) -> Pixel;
}

impl<T: InterOp + ?Sized> InterOp for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn input_channels(&self) -> ChannelSet {
        (**self).input_channels()
    }
    fn output_channels(&self) -> ChannelSet {
        (**self).output_channels()
    }
    fn apply(&self, a: Pixel, b: Pixel) -> Pixel {
        (**self).apply(a, b)
    }
}

impl<T: IntraOp + ?Sized> IntraOp for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn shape(&self) -> Connectivity {
        (**self).shape()
    }
    fn input_channels(&self) -> ChannelSet {
        (**self).input_channels()
    }
    fn output_channels(&self) -> ChannelSet {
        (**self).output_channels()
    }
    fn apply(&self, window: &Window) -> Pixel {
        (**self).apply(window)
    }
}

#[cfg(test)]
mod tests {
    use super::arith::AbsDiff;
    use super::filter::BoxBlur;
    use super::*;

    #[test]
    fn trait_objects_work() {
        let op: &dyn InterOp = &AbsDiff::luma();
        assert_eq!(op.name(), "absdiff");
        let i: &dyn IntraOp = &BoxBlur::con8();
        assert_eq!(i.shape(), Connectivity::Con8);
    }

    #[test]
    fn reference_forwarding() {
        let op = AbsDiff::luma();
        fn takes_generic<O: InterOp>(o: O) -> &'static str {
            o.name()
        }
        assert_eq!(takes_generic(op), "absdiff");
    }
}
