//! Arithmetic inter-addressing kernels: add, sub, absolute difference,
//! multiply, blend and threshold-difference.
//!
//! These are the "add, sub, mult" sub-functions of §2.2 and the building
//! blocks of difference pictures and SAD (§2.1: *"Its application may be
//! computation of difference pictures or SAD"*).
//!
//! # Examples
//!
//! ```
//! use vip_core::ops::arith::AbsDiff;
//! use vip_core::ops::InterOp;
//! use vip_core::pixel::Pixel;
//!
//! let op = AbsDiff::luma();
//! let d = op.apply(Pixel::from_luma(100), Pixel::from_luma(40));
//! assert_eq!(d.y, 60);
//! ```

use crate::ops::InterOp;
use crate::pixel::{Channel, ChannelSet, Pixel};

fn video_channels(set: ChannelSet) -> impl Iterator<Item = Channel> {
    set.intersection(ChannelSet::YUV).iter()
}

/// Saturating per-channel addition of two pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Add {
    channels: ChannelSet,
}

impl Add {
    /// Addition on the luminance channel only.
    #[must_use]
    pub const fn luma() -> Self {
        Add {
            channels: ChannelSet::Y,
        }
    }

    /// Addition on Y, U and V.
    #[must_use]
    pub const fn yuv() -> Self {
        Add {
            channels: ChannelSet::YUV,
        }
    }

    /// Addition on an arbitrary video channel subset.
    #[must_use]
    pub const fn with_channels(channels: ChannelSet) -> Self {
        Add { channels }
    }
}

impl InterOp for Add {
    fn name(&self) -> &'static str {
        "add"
    }
    fn input_channels(&self) -> ChannelSet {
        self.channels
    }
    fn output_channels(&self) -> ChannelSet {
        self.channels
    }
    fn apply(&self, a: Pixel, b: Pixel) -> Pixel {
        let mut out = a;
        for c in video_channels(self.channels) {
            out.set_channel(c, (a.channel(c) + b.channel(c)).min(255));
        }
        out
    }
}

/// Saturating per-channel subtraction `a − b` (clamped at zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sub {
    channels: ChannelSet,
}

impl Sub {
    /// Subtraction on the luminance channel only.
    #[must_use]
    pub const fn luma() -> Self {
        Sub {
            channels: ChannelSet::Y,
        }
    }

    /// Subtraction on Y, U and V.
    #[must_use]
    pub const fn yuv() -> Self {
        Sub {
            channels: ChannelSet::YUV,
        }
    }
}

impl InterOp for Sub {
    fn name(&self) -> &'static str {
        "sub"
    }
    fn input_channels(&self) -> ChannelSet {
        self.channels
    }
    fn output_channels(&self) -> ChannelSet {
        self.channels
    }
    fn apply(&self, a: Pixel, b: Pixel) -> Pixel {
        let mut out = a;
        for c in video_channels(self.channels) {
            out.set_channel(c, a.channel(c).saturating_sub(b.channel(c)));
        }
        out
    }
}

/// Per-channel absolute difference |a − b|: the difference-picture kernel
/// and the per-pixel term of SAD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsDiff {
    channels: ChannelSet,
}

impl AbsDiff {
    /// Absolute difference on luminance only (the Table 2 "Inter Y Y" call).
    #[must_use]
    pub const fn luma() -> Self {
        AbsDiff {
            channels: ChannelSet::Y,
        }
    }

    /// Absolute difference on Y, U and V.
    #[must_use]
    pub const fn yuv() -> Self {
        AbsDiff {
            channels: ChannelSet::YUV,
        }
    }
}

impl InterOp for AbsDiff {
    fn name(&self) -> &'static str {
        "absdiff"
    }
    fn input_channels(&self) -> ChannelSet {
        self.channels
    }
    fn output_channels(&self) -> ChannelSet {
        self.channels
    }
    fn apply(&self, a: Pixel, b: Pixel) -> Pixel {
        let mut out = a;
        for c in video_channels(self.channels) {
            out.set_channel(c, a.channel(c).abs_diff(b.channel(c)));
        }
        out
    }
}

/// Per-channel product scaled back to 8 bits (`a·b / 255`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mult {
    channels: ChannelSet,
}

impl Mult {
    /// Multiplication on luminance only.
    #[must_use]
    pub const fn luma() -> Self {
        Mult {
            channels: ChannelSet::Y,
        }
    }
}

impl InterOp for Mult {
    fn name(&self) -> &'static str {
        "mult"
    }
    fn input_channels(&self) -> ChannelSet {
        self.channels
    }
    fn output_channels(&self) -> ChannelSet {
        self.channels
    }
    fn apply(&self, a: Pixel, b: Pixel) -> Pixel {
        let mut out = a;
        for c in video_channels(self.channels) {
            let prod = u32::from(a.channel(c)) * u32::from(b.channel(c)) / 255;
            out.set_channel(c, prod as u16);
        }
        out
    }
}

/// Fixed-point blend `(w·a + (256−w)·b) / 256` on the video channels;
/// used by mosaicing to accumulate warped frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blend {
    weight: u16,
}

impl Blend {
    /// Creates a blend with weight `w/256` on the first operand.
    ///
    /// `weight` saturates at 256 (pure first operand).
    #[must_use]
    pub fn new(weight: u16) -> Self {
        Blend {
            weight: weight.min(256),
        }
    }

    /// Equal-weight average of both operands.
    #[must_use]
    pub fn average() -> Self {
        Blend::new(128)
    }
}

impl InterOp for Blend {
    fn name(&self) -> &'static str {
        "blend"
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::YUV
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::YUV
    }
    fn apply(&self, a: Pixel, b: Pixel) -> Pixel {
        let w = u32::from(self.weight);
        let mut out = a;
        for c in video_channels(ChannelSet::YUV) {
            let va = u32::from(a.channel(c));
            let vb = u32::from(b.channel(c));
            out.set_channel(c, ((w * va + (256 - w) * vb) >> 8) as u16);
        }
        out
    }
}

/// Binary change detector: luminance difference thresholded into the alpha
/// channel (255·mask semantics: alpha = 1 where |Δy| > threshold).
///
/// This is the classic surveillance difference-picture primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeMask {
    threshold: u8,
}

impl ChangeMask {
    /// Creates a change detector with the given luminance threshold.
    #[must_use]
    pub const fn new(threshold: u8) -> Self {
        ChangeMask { threshold }
    }

    /// The configured threshold.
    #[must_use]
    pub const fn threshold(&self) -> u8 {
        self.threshold
    }
}

impl InterOp for ChangeMask {
    fn name(&self) -> &'static str {
        "change_mask"
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y.union(ChannelSet::ALPHA)
    }
    fn apply(&self, a: Pixel, b: Pixel) -> Pixel {
        let d = a.y.abs_diff(b.y);
        let mut out = a;
        out.y = d;
        out.alpha = u16::from(d > self.threshold);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Pixel = Pixel::new(200, 100, 50, 7, 9);
    const B: Pixel = Pixel::new(100, 30, 250, 1, 2);

    #[test]
    fn add_saturates() {
        let out = Add::yuv().apply(A, B);
        assert_eq!((out.y, out.u, out.v), (255, 130, 255));
        // Side channels untouched, taken from a.
        assert_eq!((out.alpha, out.aux), (7, 9));
    }

    #[test]
    fn add_luma_only_leaves_chroma() {
        let out = Add::luma().apply(A, B);
        assert_eq!(out.y, 255);
        assert_eq!((out.u, out.v), (100, 50));
    }

    #[test]
    fn sub_clamps_at_zero() {
        let out = Sub::yuv().apply(A, B);
        assert_eq!((out.y, out.u, out.v), (100, 70, 0));
        assert_eq!(Sub::luma().name(), "sub");
    }

    #[test]
    fn absdiff_symmetric() {
        let d1 = AbsDiff::yuv().apply(A, B);
        let d2 = AbsDiff::yuv().apply(B, A);
        assert_eq!((d1.y, d1.u, d1.v), (d2.y, d2.u, d2.v));
        assert_eq!((d1.y, d1.u, d1.v), (100, 70, 200));
    }

    #[test]
    fn absdiff_identity_is_zero() {
        let d = AbsDiff::yuv().apply(A, A);
        assert_eq!((d.y, d.u, d.v), (0, 0, 0));
    }

    #[test]
    fn mult_scales_to_8bit() {
        let out = Mult::luma().apply(Pixel::from_luma(255), Pixel::from_luma(255));
        assert_eq!(out.y, 255);
        let half = Mult::luma().apply(Pixel::from_luma(128), Pixel::from_luma(255));
        assert_eq!(half.y, 128);
        let zero = Mult::luma().apply(Pixel::from_luma(0), Pixel::from_luma(255));
        assert_eq!(zero.y, 0);
    }

    #[test]
    fn blend_extremes_and_average() {
        let full_a = Blend::new(256).apply(A, B);
        assert_eq!(full_a.y, A.y);
        let full_b = Blend::new(0).apply(A, B);
        assert_eq!(full_b.y, B.y);
        let avg = Blend::average().apply(Pixel::from_luma(100), Pixel::from_luma(200));
        assert_eq!(avg.y, 150);
        assert_eq!(Blend::new(9999).apply(A, B).y, A.y, "weight saturates");
    }

    #[test]
    fn change_mask_thresholds_into_alpha() {
        let op = ChangeMask::new(10);
        assert_eq!(op.threshold(), 10);
        let hit = op.apply(Pixel::from_luma(50), Pixel::from_luma(10));
        assert_eq!((hit.y, hit.alpha), (40, 1));
        let miss = op.apply(Pixel::from_luma(50), Pixel::from_luma(45));
        assert_eq!((miss.y, miss.alpha), (5, 0));
    }

    #[test]
    fn channel_declarations() {
        assert_eq!(AbsDiff::luma().input_channels(), ChannelSet::Y);
        assert_eq!(AbsDiff::yuv().output_channels(), ChannelSet::YUV);
        assert_eq!(
            ChangeMask::new(1).output_channels().len(),
            2,
            "change mask writes Y and alpha"
        );
        assert_eq!(Add::with_channels(ChannelSet::Y).input_channels(), ChannelSet::Y);
        assert_eq!(Blend::average().input_channels(), ChannelSet::YUV);
        assert_eq!(Mult::luma().input_channels(), ChannelSet::Y);
    }
}
