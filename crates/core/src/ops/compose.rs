//! Kernel combinators: building complex operations from basic
//! sub-functions.
//!
//! §2.2: *"Pixel-level operations may be separated into basic
//! sub-functions, such as add, sub, mult, grad, in order to achieve
//! efficiency and flexibility. **These sub-functions can be combined to
//! form more complex operations**, e.g. luminance/chrominance difference
//! between neighboring pixels for homogeneity check, or morphological
//! gradient operations."*
//!
//! * [`ZipWith`] — two intra kernels over the *same* window, fused by an
//!   inter kernel (e.g. morphological gradient = `zip(dilate, erode,
//!   sub)`).
//! * [`Then`] — an intra kernel followed by a point (CON_0) kernel on
//!   its output (e.g. gradient then threshold).
//! * [`InterThen`] — an inter kernel followed by a point kernel (e.g.
//!   absolute difference then threshold = change mask).
//!
//! All combinators declare the union of their parts' channels and the
//! containing window shape, so accounting and engine dispatch remain
//! exact.
//!
//! # Examples
//!
//! ```
//! use vip_core::addressing::intra::run_intra;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::ops::arith::Sub;
//! use vip_core::ops::compose::ZipWith;
//! use vip_core::ops::morph::{Dilate, Erode, MorphGradient};
//! use vip_core::pixel::Pixel;
//!
//! // morphological gradient, built from sub-functions:
//! let composed = ZipWith::new("morph_gradient_composed", Dilate::con8(), Erode::con8(), Sub::luma());
//! let f = Frame::from_fn(Dims::new(8, 8), |p| Pixel::from_luma((p.x * 9) as u8));
//! let a = run_intra(&f, &composed)?.output;
//! let b = run_intra(&f, &MorphGradient::con8())?.output;
//! assert_eq!(a.luma_plane(), b.luma_plane());
//! # Ok::<(), vip_core::error::CoreError>(())
//! ```

use crate::neighborhood::{Connectivity, Window};
use crate::ops::{InterOp, IntraOp};
use crate::pixel::{ChannelSet, Pixel};

fn wider(a: Connectivity, b: Connectivity) -> Connectivity {
    let r = a.radius().max(b.radius());
    match r {
        0 => Connectivity::Con0,
        1 => {
            // Prefer the square if either part needs diagonals.
            if a == Connectivity::Con4 && b == Connectivity::Con4 {
                Connectivity::Con4
            } else {
                Connectivity::Con8
            }
        }
        r => Connectivity::Square(r as u8),
    }
}

/// Two intra kernels over the same window, fused per pixel by an inter
/// kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipWith<A, B, F> {
    name: &'static str,
    a: A,
    b: B,
    fuse: F,
}

impl<A: IntraOp, B: IntraOp, F: InterOp> ZipWith<A, B, F> {
    /// Combines `a` and `b` with `fuse` under a stable `name`.
    #[must_use]
    pub const fn new(name: &'static str, a: A, b: B, fuse: F) -> Self {
        ZipWith { name, a, b, fuse }
    }
}

impl<A: IntraOp, B: IntraOp, F: InterOp> IntraOp for ZipWith<A, B, F> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn shape(&self) -> Connectivity {
        wider(self.a.shape(), self.b.shape())
    }
    fn input_channels(&self) -> ChannelSet {
        self.a.input_channels().union(self.b.input_channels())
    }
    fn output_channels(&self) -> ChannelSet {
        self.fuse.output_channels()
    }
    fn apply(&self, window: &Window) -> Pixel {
        // Each part sees the window restricted to its own shape.
        let wa = Window::from_samples(window.centre(), self.a.shape(), window.iter());
        let wb = Window::from_samples(window.centre(), self.b.shape(), window.iter());
        self.fuse.apply(self.a.apply(&wa), self.b.apply(&wb))
    }
}

/// An intra kernel followed by a point (CON_0) kernel on its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Then<A, P> {
    name: &'static str,
    first: A,
    point: P,
}

impl<A: IntraOp, P: IntraOp> Then<A, P> {
    /// Chains `first` and the point kernel `point`.
    ///
    /// # Panics
    ///
    /// Panics when `point` is not a CON_0 kernel — chaining two
    /// neighbourhood kernels per pixel would read the *unprocessed*
    /// neighbours and silently diverge from a two-pass call sequence.
    #[must_use]
    pub fn new(name: &'static str, first: A, point: P) -> Self {
        assert_eq!(
            point.shape(),
            Connectivity::Con0,
            "Then requires a point (CON_0) second stage; run two calls instead"
        );
        Then { name, first, point }
    }
}

impl<A: IntraOp, P: IntraOp> IntraOp for Then<A, P> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn shape(&self) -> Connectivity {
        self.first.shape()
    }
    fn input_channels(&self) -> ChannelSet {
        self.first.input_channels()
    }
    fn output_channels(&self) -> ChannelSet {
        self.first.output_channels().union(self.point.output_channels())
    }
    fn apply(&self, window: &Window) -> Pixel {
        let mid = self.first.apply(window);
        let w = Window::from_samples(
            window.centre(),
            Connectivity::Con0,
            [(crate::geometry::Point::ORIGIN, mid)],
        );
        self.point.apply(&w)
    }
}

/// An inter kernel followed by a point kernel on its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterThen<A, P> {
    name: &'static str,
    first: A,
    point: P,
}

impl<A: InterOp, P: IntraOp> InterThen<A, P> {
    /// Chains the inter kernel `first` and the point kernel `point`.
    ///
    /// # Panics
    ///
    /// Panics when `point` is not a CON_0 kernel.
    #[must_use]
    pub fn new(name: &'static str, first: A, point: P) -> Self {
        assert_eq!(
            point.shape(),
            Connectivity::Con0,
            "InterThen requires a point (CON_0) second stage"
        );
        InterThen { name, first, point }
    }
}

impl<A: InterOp, P: IntraOp> InterOp for InterThen<A, P> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn input_channels(&self) -> ChannelSet {
        self.first.input_channels()
    }
    fn output_channels(&self) -> ChannelSet {
        self.first.output_channels().union(self.point.output_channels())
    }
    fn apply(&self, a: Pixel, b: Pixel) -> Pixel {
        let mid = self.first.apply(a, b);
        let w = Window::from_samples(
            crate::geometry::Point::ORIGIN,
            Connectivity::Con0,
            [(crate::geometry::Point::ORIGIN, mid)],
        );
        self.point.apply(&w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addressing::inter::run_inter;
    use crate::addressing::intra::run_intra;
    use crate::frame::Frame;
    use crate::geometry::{Dims, Point};
    use crate::ops::arith::{AbsDiff, Sub};
    use crate::ops::filter::SobelGradient;
    use crate::ops::lut::Threshold;
    use crate::ops::morph::{Dilate, Erode, MorphGradient};

    fn textured() -> Frame {
        Frame::from_fn(Dims::new(10, 8), |p| {
            Pixel::from_luma(((p.x * 23 + p.y * 11) % 256) as u8)
        })
    }

    #[test]
    fn zip_reproduces_morph_gradient() {
        // §2.2's example: the morphological gradient from sub-functions.
        let f = textured();
        let composed = ZipWith::new("mg", Dilate::con8(), Erode::con8(), Sub::luma());
        let a = run_intra(&f, &composed).unwrap().output;
        let b = run_intra(&f, &MorphGradient::con8()).unwrap().output;
        assert_eq!(a.luma_plane(), b.luma_plane());
        assert_eq!(composed.shape(), Connectivity::Con8);
        assert_eq!(composed.name(), "mg");
    }

    #[test]
    fn zip_with_mixed_shapes_takes_wider() {
        let z = ZipWith::new("m", Dilate::con4(), Erode::con8(), Sub::luma());
        assert_eq!(z.shape(), Connectivity::Con8);
        let both4 = ZipWith::new("m", Dilate::con4(), Erode::con4(), Sub::luma());
        assert_eq!(both4.shape(), Connectivity::Con4);
        // Each part still sees only its own shape: CON_4 dilate inside a
        // CON_8 window must ignore diagonals.
        let mut f = Frame::filled(Dims::new(5, 5), Pixel::from_luma(10));
        f.set(Point::new(0, 0), Pixel::from_luma(200)); // diagonal of (1,1)
        let out = run_intra(&f, &z).unwrap().output;
        // dilate_con4 at (1,1) = 10 (diagonal unseen), erode_con8 = 10 → 0.
        assert_eq!(out.get(Point::new(1, 1)).y, 0);
    }

    #[test]
    fn then_gradient_threshold_is_edge_mask() {
        let f = Frame::from_fn(Dims::new(10, 10), |p| {
            Pixel::from_luma(if p.x < 5 { 0 } else { 200 })
        });
        let edges = Then::new("edge_mask", SobelGradient::new(), Threshold::binary(100));
        let out = run_intra(&f, &edges).unwrap().output;
        // At the step: strong gradient → thresholded to 255 with alpha 1.
        let on = out.get(Point::new(5, 5));
        assert_eq!((on.y, on.alpha), (255, 1));
        let off = out.get(Point::new(1, 5));
        assert_eq!((off.y, off.alpha), (0, 0));
        // Equivalent to two chained calls.
        let two_pass = {
            let g = run_intra(&f, &SobelGradient::new()).unwrap().output;
            run_intra(&g, &Threshold::binary(100)).unwrap().output
        };
        assert_eq!(out.luma_plane(), two_pass.luma_plane());
    }

    #[test]
    #[should_panic(expected = "CON_0")]
    fn then_rejects_neighbourhood_second_stage() {
        let _ = Then::new("bad", SobelGradient::new(), Dilate::con8());
    }

    #[test]
    fn inter_then_threshold_is_change_mask() {
        let a = textured();
        let b = Frame::from_fn(a.dims(), |p| {
            let mut px = a.get(p);
            if p.x == 3 {
                px.y = px.y.wrapping_add(90);
            }
            px
        });
        let op = InterThen::new("change", AbsDiff::luma(), Threshold::binary(40));
        let out = run_inter(&a, &b, &op).unwrap().output;
        for y in 0..8 {
            assert_eq!(out.get(Point::new(3, y)).alpha, 1, "changed column");
            assert_eq!(out.get(Point::new(6, y)).alpha, 0, "static column");
        }
        assert_eq!(op.name(), "change");
        assert!(op.output_channels().contains(crate::pixel::Channel::Alpha));
    }

    #[test]
    #[should_panic(expected = "CON_0")]
    fn inter_then_rejects_neighbourhood_second_stage() {
        let _ = InterThen::new("bad", AbsDiff::luma(), Dilate::con8());
    }

    #[test]
    fn composed_channels_are_unions() {
        let z = ZipWith::new("m", Dilate::con8(), Erode::con8(), Sub::luma());
        assert_eq!(z.input_channels(), ChannelSet::Y);
        assert_eq!(z.output_channels(), ChannelSet::Y);
        let t = Then::new("t", SobelGradient::new(), Threshold::binary(1));
        assert!(t.output_channels().contains(crate::pixel::Channel::Aux));
        assert!(t.output_channels().contains(crate::pixel::Channel::Alpha));
    }

    #[test]
    fn composed_ops_run_on_engine_accounting() {
        // The composed kernel is one call: accounting sees one sweep.
        let f = textured();
        let z = ZipWith::new("mg", Dilate::con8(), Erode::con8(), Sub::luma());
        let r = run_intra(&f, &z).unwrap();
        assert_eq!(
            r.report.counter.total(),
            r.report.access_model().software_accesses
        );
    }
}
