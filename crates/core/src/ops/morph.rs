//! Morphological intra kernels: erosion, dilation and the morphological
//! gradient.
//!
//! §2.1 of the paper lists *"morphological operators"* among the intra
//! workloads and §2.2 gives the *"morphological gradient"* as an example
//! of a composed operation.
//!
//! # Examples
//!
//! ```
//! use vip_core::border::BorderPolicy;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::{Dims, Point};
//! use vip_core::neighborhood::Window;
//! use vip_core::ops::morph::Dilate;
//! use vip_core::ops::IntraOp;
//! use vip_core::pixel::Pixel;
//!
//! let mut f = Frame::new(Dims::new(5, 5));
//! f.set(Point::new(2, 2), Pixel::from_luma(200));
//! let d = Dilate::con8();
//! let w = Window::gather(&f, Point::new(1, 2), d.shape(), BorderPolicy::Clamp);
//! assert_eq!(d.apply(&w).y, 200); // bright pixel expands
//! ```

use crate::neighborhood::{Connectivity, Window};
use crate::ops::IntraOp;
use crate::pixel::{ChannelSet, Pixel};

/// Grey-scale erosion: window minimum of the luminance channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Erode {
    shape: Connectivity,
}

impl Erode {
    /// Erosion over the squared 8-neighbourhood.
    #[must_use]
    pub const fn con8() -> Self {
        Erode {
            shape: Connectivity::Con8,
        }
    }

    /// Erosion over the 4-connected cross.
    #[must_use]
    pub const fn con4() -> Self {
        Erode {
            shape: Connectivity::Con4,
        }
    }

    /// Erosion over an arbitrary structuring element.
    #[must_use]
    pub const fn with_shape(shape: Connectivity) -> Self {
        Erode { shape }
    }
}

impl IntraOp for Erode {
    fn name(&self) -> &'static str {
        "erode"
    }
    fn shape(&self) -> Connectivity {
        self.shape
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn apply(&self, window: &Window) -> Pixel {
        let min = window
            .luma_min_max()
            .map_or(window.centre_pixel().y, |(lo, _)| lo);
        let mut out = window.centre_pixel();
        out.y = min;
        out
    }
}

/// Grey-scale dilation: window maximum of the luminance channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dilate {
    shape: Connectivity,
}

impl Dilate {
    /// Dilation over the squared 8-neighbourhood.
    #[must_use]
    pub const fn con8() -> Self {
        Dilate {
            shape: Connectivity::Con8,
        }
    }

    /// Dilation over the 4-connected cross.
    #[must_use]
    pub const fn con4() -> Self {
        Dilate {
            shape: Connectivity::Con4,
        }
    }

    /// Dilation over an arbitrary structuring element.
    #[must_use]
    pub const fn with_shape(shape: Connectivity) -> Self {
        Dilate { shape }
    }
}

impl IntraOp for Dilate {
    fn name(&self) -> &'static str {
        "dilate"
    }
    fn shape(&self) -> Connectivity {
        self.shape
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn apply(&self, window: &Window) -> Pixel {
        let max = window
            .luma_min_max()
            .map_or(window.centre_pixel().y, |(_, hi)| hi);
        let mut out = window.centre_pixel();
        out.y = max;
        out
    }
}

/// Morphological gradient: window maximum − window minimum, the boundary
/// detector of §2.2 (*"morphological gradient operations"*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorphGradient {
    shape: Connectivity,
}

impl MorphGradient {
    /// Morphological gradient over the squared 8-neighbourhood.
    #[must_use]
    pub const fn con8() -> Self {
        MorphGradient {
            shape: Connectivity::Con8,
        }
    }

    /// Morphological gradient over an arbitrary structuring element.
    #[must_use]
    pub const fn with_shape(shape: Connectivity) -> Self {
        MorphGradient { shape }
    }
}

impl IntraOp for MorphGradient {
    fn name(&self) -> &'static str {
        "morph_gradient"
    }
    fn shape(&self) -> Connectivity {
        self.shape
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn apply(&self, window: &Window) -> Pixel {
        let (lo, hi) = window.luma_min_max().unwrap_or((0, 0));
        let mut out = window.centre_pixel();
        out.y = hi - lo;
        out
    }
}

/// Binary median / majority vote on the alpha channel: the speckle cleaner
/// typically run after change detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlphaMajority;

impl AlphaMajority {
    /// Creates the alpha majority filter.
    #[must_use]
    pub const fn new() -> Self {
        AlphaMajority
    }
}

impl IntraOp for AlphaMajority {
    fn name(&self) -> &'static str {
        "alpha_majority"
    }
    fn shape(&self) -> Connectivity {
        Connectivity::Con8
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::ALPHA
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::ALPHA
    }
    fn apply(&self, window: &Window) -> Pixel {
        let total = window.len();
        let set = window.pixels().filter(|p| p.alpha != 0).count();
        let mut out = window.centre_pixel();
        out.alpha = u16::from(2 * set > total);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border::BorderPolicy;
    use crate::frame::Frame;
    use crate::geometry::{Dims, Point};

    fn spot_frame() -> Frame {
        // Dark frame with one bright pixel at (2,2).
        let mut f = Frame::filled(Dims::new(5, 5), Pixel::from_luma(10));
        f.set(Point::new(2, 2), Pixel::from_luma(200));
        f
    }

    fn win(f: &Frame, p: Point, op: &impl IntraOp) -> Window {
        Window::gather(f, p, op.shape(), BorderPolicy::Clamp)
    }

    #[test]
    fn erode_removes_bright_spot() {
        let f = spot_frame();
        let e = Erode::con8();
        assert_eq!(e.apply(&win(&f, Point::new(2, 2), &e)).y, 10);
        assert_eq!(e.apply(&win(&f, Point::new(0, 0), &e)).y, 10);
    }

    #[test]
    fn dilate_grows_bright_spot() {
        let f = spot_frame();
        let d = Dilate::con8();
        assert_eq!(d.apply(&win(&f, Point::new(1, 1), &d)).y, 200);
        assert_eq!(d.apply(&win(&f, Point::new(4, 4), &d)).y, 10);
    }

    #[test]
    fn con4_misses_diagonal() {
        let f = spot_frame();
        let d = Dilate::con4();
        // (1,1) is diagonal to the spot — CON_4 must not see it.
        assert_eq!(d.apply(&win(&f, Point::new(1, 1), &d)).y, 10);
        assert_eq!(d.apply(&win(&f, Point::new(1, 2), &d)).y, 200);
        let e = Erode::con4();
        assert_eq!(e.name(), "erode");
        assert_eq!(e.shape(), Connectivity::Con4);
    }

    #[test]
    fn gradient_is_dilate_minus_erode() {
        let f = spot_frame();
        let g = MorphGradient::con8();
        let d = Dilate::con8();
        let e = Erode::con8();
        for p in [Point::new(1, 1), Point::new(2, 2), Point::new(4, 4)] {
            let gv = g.apply(&win(&f, p, &g)).y;
            let dv = d.apply(&win(&f, p, &d)).y;
            let ev = e.apply(&win(&f, p, &e)).y;
            assert_eq!(gv, dv - ev, "at {p}");
        }
    }

    #[test]
    fn gradient_zero_on_flat() {
        let f = Frame::filled(Dims::new(3, 3), Pixel::from_luma(50));
        let g = MorphGradient::with_shape(Connectivity::Square(1));
        assert_eq!(g.apply(&win(&f, Point::new(1, 1), &g)).y, 0);
    }

    #[test]
    fn erode_dilate_duality_on_inverted() {
        // dilate(f) = 255 - erode(255 - f)
        let f = spot_frame();
        let inv = Frame::from_fn(f.dims(), |p| Pixel::from_luma(255 - f.get(p).y));
        let d = Dilate::con8();
        let e = Erode::con8();
        for p in [Point::new(1, 1), Point::new(2, 2), Point::new(3, 4)] {
            let dv = d.apply(&win(&f, p, &d)).y;
            let ev = e.apply(&win(&inv, p, &e)).y;
            assert_eq!(dv, 255 - ev, "duality at {p}");
        }
    }

    #[test]
    fn alpha_majority_votes() {
        let mut f = Frame::new(Dims::new(3, 3));
        // 5 of 9 alpha set → majority.
        for (i, p) in f.dims().bounds().points().enumerate() {
            if i < 5 {
                f.get_mut(p).alpha = 1;
            }
        }
        let m = AlphaMajority::new();
        let out = m.apply(&win(&f, Point::new(1, 1), &m));
        assert_eq!(out.alpha, 1);
        // 4 of 9 → no majority.
        f.get_mut(Point::new(1, 0)).alpha = 0;
        let out = m.apply(&win(&f, Point::new(1, 1), &m));
        assert_eq!(out.alpha, 0);
    }

    #[test]
    fn morphology_preserves_other_channels() {
        let mut f = Frame::filled(Dims::new(3, 3), Pixel::new(10, 20, 30, 40, 50));
        f.set(Point::new(0, 0), Pixel::new(200, 1, 1, 1, 1));
        let d = Dilate::con8();
        let out = d.apply(&win(&f, Point::new(1, 1), &d));
        assert_eq!(out.y, 200);
        assert_eq!((out.u, out.v, out.alpha, out.aux), (20, 30, 40, 50));
    }

    #[test]
    fn declared_channels() {
        assert_eq!(Dilate::con8().input_channels(), ChannelSet::Y);
        assert_eq!(AlphaMajority::new().input_channels(), ChannelSet::ALPHA);
        assert_eq!(MorphGradient::con8().name(), "morph_gradient");
        assert_eq!(Dilate::with_shape(Connectivity::Con4).shape(), Connectivity::Con4);
        assert_eq!(Erode::with_shape(Connectivity::Con8).shape(), Connectivity::Con8);
    }
}
