//! FIR-filter-like intra kernels: convolution, box blur, binomial smoothing
//! and gradient operators.
//!
//! §2.1 of the paper names *"FIR filter like operations, as gradient
//! operators"* as the canonical intra-addressing workload, and §3.5 lists
//! *"gradient, histogram, different filterings"* as stage-3 operations.
//!
//! # Examples
//!
//! ```
//! use vip_core::ops::filter::SobelGradient;
//! use vip_core::ops::IntraOp;
//! use vip_core::border::BorderPolicy;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::{Dims, Point};
//! use vip_core::neighborhood::Window;
//! use vip_core::pixel::Pixel;
//!
//! // Vertical edge: columns 0..2 dark, columns 3..4 bright.
//! let f = Frame::from_fn(Dims::new(5, 5), |p| Pixel::from_luma(if p.x < 3 { 0 } else { 200 }));
//! let w = Window::gather(&f, Point::new(2, 2), SobelGradient::new().shape(), BorderPolicy::Clamp);
//! let g = SobelGradient::new().apply(&w);
//! assert!(g.y > 0, "edge must produce gradient response");
//! ```

use crate::error::{CoreError, CoreResult};
use crate::neighborhood::{Connectivity, Window, MAX_RADIUS};
use crate::ops::IntraOp;
use crate::pixel::{ChannelSet, Pixel};

/// A general odd-sized separable-or-not 2-D convolution on the luminance
/// channel, with integer taps and a power-of-two-free divisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Convolution {
    name: &'static str,
    radius: usize,
    /// Row-major taps of the `(2r+1)²` window.
    taps: Vec<i32>,
    /// Result divisor (≥ 1).
    divisor: i32,
    /// Added before dividing (for rounding or bias).
    offset: i32,
}

impl Convolution {
    /// Creates a convolution kernel.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `taps.len()` is not
    /// `(2·radius+1)²`, when `radius > 4` (the nine-line limit of §3.1), or
    /// when `divisor` is zero.
    pub fn new(
        name: &'static str,
        radius: usize,
        taps: Vec<i32>,
        divisor: i32,
        offset: i32,
    ) -> CoreResult<Self> {
        if radius > MAX_RADIUS {
            return Err(CoreError::InvalidParameter {
                name: "radius",
                reason: "neighbourhood may span at most nine lines (radius 4)",
            });
        }
        let side = 2 * radius + 1;
        if taps.len() != side * side {
            return Err(CoreError::InvalidParameter {
                name: "taps",
                reason: "tap count must be (2*radius+1)^2",
            });
        }
        if divisor == 0 {
            return Err(CoreError::InvalidParameter {
                name: "divisor",
                reason: "divisor must be non-zero",
            });
        }
        Ok(Convolution {
            name,
            radius,
            taps,
            divisor,
            offset,
        })
    }

    /// The kernel radius.
    #[must_use]
    pub const fn radius(&self) -> usize {
        self.radius
    }

    fn tap(&self, dx: i32, dy: i32) -> i32 {
        let side = (2 * self.radius + 1) as i32;
        let r = self.radius as i32;
        self.taps[((dy + r) * side + (dx + r)) as usize]
    }
}

impl IntraOp for Convolution {
    fn name(&self) -> &'static str {
        self.name
    }
    fn shape(&self) -> Connectivity {
        match self.radius {
            0 => Connectivity::Con0,
            1 => Connectivity::Con8,
            r => Connectivity::Square(r as u8),
        }
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn apply(&self, window: &Window) -> Pixel {
        let mut acc: i32 = 0;
        for (off, px) in window.iter() {
            acc += self.tap(off.x, off.y) * i32::from(px.y);
        }
        let val = ((acc + self.offset) / self.divisor).clamp(0, 255);
        let mut out = window.centre_pixel();
        out.y = val as u8;
        out
    }
}

/// Box blur: uniform average over the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxBlur {
    radius: usize,
}

impl BoxBlur {
    /// 3×3 box blur (the `CON_8` window).
    #[must_use]
    pub const fn con8() -> Self {
        BoxBlur { radius: 1 }
    }

    /// Box blur with an arbitrary radius.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `radius > 4`.
    pub fn with_radius(radius: usize) -> CoreResult<Self> {
        if radius > MAX_RADIUS {
            return Err(CoreError::InvalidParameter {
                name: "radius",
                reason: "neighbourhood may span at most nine lines (radius 4)",
            });
        }
        Ok(BoxBlur { radius })
    }
}

impl IntraOp for BoxBlur {
    fn name(&self) -> &'static str {
        "box_blur"
    }
    fn shape(&self) -> Connectivity {
        match self.radius {
            0 => Connectivity::Con0,
            1 => Connectivity::Con8,
            r => Connectivity::Square(r as u8),
        }
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn apply(&self, window: &Window) -> Pixel {
        let n = window.len().max(1) as u32;
        let sum: u32 = window.pixels().map(|p| u32::from(p.y)).sum();
        let mut out = window.centre_pixel();
        out.y = ((sum + n / 2) / n) as u8;
        out
    }
}

/// 3×3 binomial (Gaussian-approximating) smoothing: taps 1-2-1 ⊗ 1-2-1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Binomial3;

impl Binomial3 {
    /// Creates the 3×3 binomial filter.
    #[must_use]
    pub const fn new() -> Self {
        Binomial3
    }
}

impl IntraOp for Binomial3 {
    fn name(&self) -> &'static str {
        "binomial3"
    }
    fn shape(&self) -> Connectivity {
        Connectivity::Con8
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn apply(&self, window: &Window) -> Pixel {
        const TAPS: [[u32; 3]; 3] = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];
        let mut acc = 0u32;
        let mut weight = 0u32;
        for (off, px) in window.iter() {
            let t = TAPS[(off.y + 1) as usize][(off.x + 1) as usize];
            acc += t * u32::from(px.y);
            weight += t;
        }
        let mut out = window.centre_pixel();
        out.y = ((acc + weight / 2) / weight.max(1)) as u8;
        out
    }
}

/// Sobel gradient magnitude (|Gx| + |Gy|, the cheap L1 norm the hardware
/// favours), written to luminance; the raw magnitude (unclamped) goes to
/// the aux channel for downstream thresholding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SobelGradient;

impl SobelGradient {
    /// Creates the Sobel gradient operator.
    #[must_use]
    pub const fn new() -> Self {
        SobelGradient
    }

    /// Raw signed Sobel responses `(gx, gy)` for a window.
    #[must_use]
    pub fn responses(window: &Window) -> (i32, i32) {
        const GX: [[i32; 3]; 3] = [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]];
        const GY: [[i32; 3]; 3] = [[-1, -2, -1], [0, 0, 0], [1, 2, 1]];
        let mut gx = 0i32;
        let mut gy = 0i32;
        for (off, px) in window.iter() {
            let (ix, iy) = ((off.x + 1) as usize, (off.y + 1) as usize);
            gx += GX[iy][ix] * i32::from(px.y);
            gy += GY[iy][ix] * i32::from(px.y);
        }
        (gx, gy)
    }
}

impl IntraOp for SobelGradient {
    fn name(&self) -> &'static str {
        "sobel"
    }
    fn shape(&self) -> Connectivity {
        Connectivity::Con8
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y.union(ChannelSet::AUX)
    }
    fn apply(&self, window: &Window) -> Pixel {
        let (gx, gy) = SobelGradient::responses(window);
        let mag = gx.unsigned_abs() + gy.unsigned_abs();
        let mut out = window.centre_pixel();
        out.y = mag.min(255) as u8;
        out.aux = mag.min(u32::from(u16::MAX)) as u16;
        out
    }
}

/// Central-difference gradient pair: `gx → y`, `gy → aux` as *signed*
/// values biased by 128/32768. Used by the global motion estimator, which
/// needs signed spatial derivatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CentralGradient;

impl CentralGradient {
    /// Creates the central-difference gradient operator.
    #[must_use]
    pub const fn new() -> Self {
        CentralGradient
    }

    /// Bias added to the signed x-gradient when stored in `y`.
    pub const X_BIAS: i32 = 128;
    /// Bias added to the signed y-gradient when stored in `aux`.
    pub const Y_BIAS: i32 = 32_768;

    /// Recovers the signed `(gx, gy)` pair from an output pixel.
    #[must_use]
    pub fn decode(px: Pixel) -> (i32, i32) {
        (
            i32::from(px.y) - Self::X_BIAS,
            i32::from(px.aux) - Self::Y_BIAS,
        )
    }
}

impl IntraOp for CentralGradient {
    fn name(&self) -> &'static str {
        "central_gradient"
    }
    fn shape(&self) -> Connectivity {
        Connectivity::Con4
    }
    fn input_channels(&self) -> ChannelSet {
        ChannelSet::Y
    }
    fn output_channels(&self) -> ChannelSet {
        ChannelSet::Y.union(ChannelSet::AUX)
    }
    fn apply(&self, window: &Window) -> Pixel {
        let centre = window.centre_pixel();
        let sample = |dx: i32, dy: i32| {
            window
                .sample(crate::geometry::Point::new(dx, dy))
                .unwrap_or(centre)
        };
        let gx = (i32::from(sample(1, 0).y) - i32::from(sample(-1, 0).y)) / 2;
        let gy = (i32::from(sample(0, 1).y) - i32::from(sample(0, -1).y)) / 2;
        let mut out = centre;
        out.y = (gx + Self::X_BIAS).clamp(0, 255) as u8;
        out.aux = (gy + Self::Y_BIAS).clamp(0, 65_535) as u16;
        out
    }
}

/// Identity intra kernel on a `CON_0` window: copies the centre pixel.
///
/// This is the Table 2 "Intra CON_0" call — useful as a pure copy/transfer
/// workload and as the accounting baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Identity {
    channels: ChannelSet,
}

impl Identity {
    /// Identity on luminance only.
    #[must_use]
    pub const fn luma() -> Self {
        Identity {
            channels: ChannelSet::Y,
        }
    }

    /// Identity on Y, U and V.
    #[must_use]
    pub const fn yuv() -> Self {
        Identity {
            channels: ChannelSet::YUV,
        }
    }
}

impl IntraOp for Identity {
    fn name(&self) -> &'static str {
        "identity"
    }
    fn shape(&self) -> Connectivity {
        Connectivity::Con0
    }
    fn input_channels(&self) -> ChannelSet {
        self.channels
    }
    fn output_channels(&self) -> ChannelSet {
        self.channels
    }
    fn apply(&self, window: &Window) -> Pixel {
        window.centre_pixel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border::BorderPolicy;
    use crate::frame::Frame;
    use crate::geometry::{Dims, Point};

    fn window_at(f: &Frame, p: Point, shape: Connectivity) -> Window {
        Window::gather(f, p, shape, BorderPolicy::Clamp)
    }

    fn flat(value: u8) -> Frame {
        Frame::filled(Dims::new(5, 5), Pixel::from_luma(value))
    }

    #[test]
    fn convolution_validation() {
        assert!(Convolution::new("bad", 1, vec![1; 8], 1, 0).is_err());
        assert!(Convolution::new("bad", 5, vec![1; 121], 1, 0).is_err());
        assert!(Convolution::new("bad", 1, vec![1; 9], 0, 0).is_err());
        assert!(Convolution::new("ok", 1, vec![1; 9], 9, 0).is_ok());
    }

    #[test]
    fn convolution_flat_image_average() {
        let conv = Convolution::new("avg", 1, vec![1; 9], 9, 4).unwrap();
        let f = flat(90);
        let out = conv.apply(&window_at(&f, Point::new(2, 2), conv.shape()));
        assert_eq!(out.y, 90);
        assert_eq!(conv.radius(), 1);
        assert_eq!(conv.name(), "avg");
    }

    #[test]
    fn convolution_clamps_output() {
        let amplify = Convolution::new("amp", 0, vec![10], 1, 0).unwrap();
        let f = flat(200);
        let out = amplify.apply(&window_at(&f, Point::new(2, 2), amplify.shape()));
        assert_eq!(out.y, 255);
        assert_eq!(amplify.shape(), Connectivity::Con0);
    }

    #[test]
    fn box_blur_preserves_flat_and_smooths_impulse() {
        let b = BoxBlur::con8();
        let f = flat(80);
        assert_eq!(b.apply(&window_at(&f, Point::new(2, 2), b.shape())).y, 80);

        let mut imp = flat(0);
        imp.set(Point::new(2, 2), Pixel::from_luma(90));
        let out = b.apply(&window_at(&imp, Point::new(2, 2), b.shape()));
        assert_eq!(out.y, 10); // 90/9
        assert!(BoxBlur::with_radius(9).is_err());
        assert!(BoxBlur::with_radius(2).is_ok());
    }

    #[test]
    fn binomial_weights_centre_most() {
        let mut imp = flat(0);
        imp.set(Point::new(2, 2), Pixel::from_luma(160));
        let b = Binomial3::new();
        let at_centre = b.apply(&window_at(&imp, Point::new(2, 2), b.shape())).y;
        let at_side = b.apply(&window_at(&imp, Point::new(3, 2), b.shape())).y;
        let at_corner = b.apply(&window_at(&imp, Point::new(3, 3), b.shape())).y;
        assert!(at_centre > at_side && at_side > at_corner);
        assert_eq!(at_centre, 40); // 160·4/16
    }

    #[test]
    fn sobel_zero_on_flat() {
        let s = SobelGradient::new();
        let f = flat(123);
        let out = s.apply(&window_at(&f, Point::new(2, 2), s.shape()));
        assert_eq!(out.y, 0);
        assert_eq!(out.aux, 0);
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        let f = Frame::from_fn(Dims::new(5, 5), |p| {
            Pixel::from_luma(if p.x < 3 { 0 } else { 100 })
        });
        let s = SobelGradient::new();
        let at_edge = s.apply(&window_at(&f, Point::new(2, 2), s.shape()));
        assert_eq!(at_edge.y, 255); // |Gx| = 400, clamped
        assert_eq!(at_edge.aux, 400);
        let off_edge = s.apply(&window_at(&f, Point::new(0, 2), s.shape()));
        assert_eq!(off_edge.y, 0);
    }

    #[test]
    fn sobel_responses_signed() {
        let f = Frame::from_fn(Dims::new(5, 5), |p| Pixel::from_luma((p.y * 10) as u8));
        let w = window_at(&f, Point::new(2, 2), Connectivity::Con8);
        let (gx, gy) = SobelGradient::responses(&w);
        assert_eq!(gx, 0);
        assert_eq!(gy, 80); // 10/line × weight 8
    }

    #[test]
    fn central_gradient_encodes_signed_pair() {
        let f = Frame::from_fn(Dims::new(5, 5), |p| {
            Pixel::from_luma((10 + p.x * 4 - p.y * 2).max(0) as u8)
        });
        let g = CentralGradient::new();
        let out = g.apply(&window_at(&f, Point::new(2, 2), g.shape()));
        let (gx, gy) = CentralGradient::decode(out);
        assert_eq!(gx, 4);
        assert_eq!(gy, -2);
    }

    #[test]
    fn identity_copies_centre() {
        let i = Identity::yuv();
        let f = Frame::filled(Dims::new(3, 3), Pixel::new(1, 2, 3, 4, 5));
        let out = i.apply(&window_at(&f, Point::new(1, 1), i.shape()));
        assert_eq!(out, Pixel::new(1, 2, 3, 4, 5));
        assert_eq!(Identity::luma().input_channels(), ChannelSet::Y);
        assert_eq!(i.shape(), Connectivity::Con0);
    }

    #[test]
    fn declared_channels() {
        assert_eq!(SobelGradient::new().output_channels().len(), 2);
        assert_eq!(Binomial3::new().input_channels(), ChannelSet::Y);
        assert_eq!(CentralGradient::new().shape(), Connectivity::Con4);
    }
}
