//! Reductions: whole-frame accumulators layered over the inter/intra
//! kernels — SAD, SSD, histogram and luminance statistics.
//!
//! §2.1 names SAD as an inter-addressing application; §3.5 lists the
//! histogram among stage-3 operations. In the hardware these run through
//! the same datapath with an accumulator register instead of an OIM write.
//!
//! # Examples
//!
//! ```
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::ops::reduce::sad;
//! use vip_core::pixel::Pixel;
//!
//! let a = Frame::filled(Dims::new(4, 4), Pixel::from_luma(10));
//! let b = Frame::filled(Dims::new(4, 4), Pixel::from_luma(14));
//! assert_eq!(sad(&a, &b)?, 16 * 4);
//! # Ok::<(), vip_core::error::CoreError>(())
//! ```

use crate::error::{CoreError, CoreResult};
use crate::frame::Frame;
use crate::pixel::{Channel, Pixel};

fn check_dims(a: &Frame, b: &Frame) -> CoreResult<()> {
    if a.dims() != b.dims() {
        return Err(CoreError::DimsMismatch {
            left: a.dims(),
            right: b.dims(),
        });
    }
    Ok(())
}

/// Sum of absolute luminance differences between two equally sized frames.
///
/// # Errors
///
/// Returns [`CoreError::DimsMismatch`] when the frames differ in size.
pub fn sad(a: &Frame, b: &Frame) -> CoreResult<u64> {
    check_dims(a, b)?;
    Ok(a.pixels()
        .iter()
        .zip(b.pixels())
        .map(|(pa, pb)| u64::from(pa.y.abs_diff(pb.y)))
        .sum())
}

/// Sum of squared luminance differences between two equally sized frames.
///
/// # Errors
///
/// Returns [`CoreError::DimsMismatch`] when the frames differ in size.
pub fn ssd(a: &Frame, b: &Frame) -> CoreResult<u64> {
    check_dims(a, b)?;
    Ok(a.pixels()
        .iter()
        .zip(b.pixels())
        .map(|(pa, pb)| {
            let d = i64::from(pa.y) - i64::from(pb.y);
            (d * d) as u64
        })
        .sum())
}

/// Masked SAD: only positions whose `mask` alpha is non-zero contribute.
/// Returns `(sad, counted_pixels)` so callers can normalise.
///
/// # Errors
///
/// Returns [`CoreError::DimsMismatch`] when any two frames differ in size.
pub fn masked_sad(a: &Frame, b: &Frame, mask: &Frame) -> CoreResult<(u64, usize)> {
    check_dims(a, b)?;
    check_dims(a, mask)?;
    let mut total = 0u64;
    let mut n = 0usize;
    for ((pa, pb), pm) in a.pixels().iter().zip(b.pixels()).zip(mask.pixels()) {
        if pm.alpha != 0 {
            total += u64::from(pa.y.abs_diff(pb.y));
            n += 1;
        }
    }
    Ok((total, n))
}

/// A 256-bin histogram of one 8-bit video channel.
///
/// For the 16-bit side channels, values are clamped into the 0..=255 range
/// (label histograms beyond 255 belong to the indexed-table machinery of
/// segment-indexed addressing instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Box<[u64; 256]>,
    channel: Channel,
}

impl Histogram {
    /// Computes the histogram of `channel` over `frame`.
    #[must_use]
    pub fn of(frame: &Frame, channel: Channel) -> Self {
        let mut bins = Box::new([0u64; 256]);
        for p in frame.pixels() {
            let v = p.channel(channel).min(255) as usize;
            bins[v] += 1;
        }
        Histogram { bins, channel }
    }

    /// The channel this histogram was computed over.
    #[must_use]
    pub const fn channel(&self) -> Channel {
        self.channel
    }

    /// Count in bin `value`.
    #[must_use]
    pub fn bin(&self, value: u8) -> u64 {
        self.bins[value as usize]
    }

    /// Total number of samples (the frame's pixel count).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The most populated bin value (smallest value wins ties), or `None`
    /// for an empty histogram.
    #[must_use]
    pub fn mode(&self) -> Option<u8> {
        let (idx, &count) = self
            .bins
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
        if count == 0 {
            None
        } else {
            Some(idx as u8)
        }
    }

    /// Smallest value `v` such that at least `fraction` of the samples are
    /// ≤ `v`. `fraction` is clamped into `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, fraction: f64) -> u8 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let target = ((fraction.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (v, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return v as u8;
            }
        }
        255
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (u8, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u8, c))
    }
}

/// Summary statistics of the luminance channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LumaStats {
    /// Minimum luminance.
    pub min: u8,
    /// Maximum luminance.
    pub max: u8,
    /// Mean luminance.
    pub mean: f64,
    /// Population variance of the luminance.
    pub variance: f64,
}

impl LumaStats {
    /// Computes luminance statistics over a frame.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyFrame`] for zero-area frames.
    pub fn of(frame: &Frame) -> CoreResult<LumaStats> {
        if frame.pixel_count() == 0 {
            return Err(CoreError::EmptyFrame);
        }
        let mut min = u8::MAX;
        let mut max = u8::MIN;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        for p in frame.pixels() {
            min = min.min(p.y);
            max = max.max(p.y);
            let v = f64::from(p.y);
            sum += v;
            sum_sq += v * v;
        }
        let n = frame.pixel_count() as f64;
        let mean = sum / n;
        Ok(LumaStats {
            min,
            max,
            mean,
            variance: (sum_sq / n - mean * mean).max(0.0),
        })
    }
}

/// Counts pixels whose predicate holds (e.g. changed pixels after a
/// difference picture).
#[must_use]
pub fn count_pixels(frame: &Frame, pred: impl Fn(Pixel) -> bool) -> usize {
    frame.pixels().iter().filter(|&&p| pred(p)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Dims, Point};

    fn f(vals: &[u8], w: usize) -> Frame {
        Frame::from_luma(Dims::new(w, vals.len() / w), vals).unwrap()
    }

    #[test]
    fn sad_and_ssd_basics() {
        let a = f(&[0, 10, 20, 30], 2);
        let b = f(&[5, 10, 25, 20], 2);
        assert_eq!(sad(&a, &b).unwrap(), 20); // 5 + 0 + 5 + 10
        assert_eq!(ssd(&a, &b).unwrap(), 150); // 25 + 0 + 25 + 100
        assert_eq!(sad(&a, &a).unwrap(), 0);
    }

    #[test]
    fn sad_dim_mismatch() {
        let a = Frame::new(Dims::new(2, 2));
        let b = Frame::new(Dims::new(3, 2));
        assert!(matches!(sad(&a, &b), Err(CoreError::DimsMismatch { .. })));
        assert!(ssd(&a, &b).is_err());
    }

    #[test]
    fn masked_sad_counts_only_masked() {
        let a = f(&[10, 10, 10, 10], 2);
        let b = f(&[20, 20, 20, 20], 2);
        let mut mask = Frame::new(Dims::new(2, 2));
        mask.get_mut(Point::new(0, 0)).alpha = 1;
        mask.get_mut(Point::new(1, 1)).alpha = 1;
        let (total, n) = masked_sad(&a, &b, &mask).unwrap();
        assert_eq!((total, n), (20, 2));
        let bad_mask = Frame::new(Dims::new(1, 1));
        assert!(masked_sad(&a, &b, &bad_mask).is_err());
    }

    #[test]
    fn histogram_counts_and_total() {
        let frame = f(&[1, 1, 2, 255], 2);
        let h = Histogram::of(&frame, Channel::Y);
        assert_eq!(h.bin(1), 2);
        assert_eq!(h.bin(2), 1);
        assert_eq!(h.bin(255), 1);
        assert_eq!(h.bin(0), 0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.channel(), Channel::Y);
        assert_eq!(h.iter().count(), 3);
    }

    #[test]
    fn histogram_clamps_side_channels() {
        let mut frame = Frame::new(Dims::new(1, 1));
        frame.get_mut(Point::ORIGIN).alpha = 1000;
        let h = Histogram::of(&frame, Channel::Alpha);
        assert_eq!(h.bin(255), 1);
    }

    #[test]
    fn histogram_mode_and_quantile() {
        let frame = f(&[5, 5, 5, 9, 9, 200], 3);
        let h = Histogram::of(&frame, Channel::Y);
        assert_eq!(h.mode(), Some(5));
        assert_eq!(h.quantile(0.0), 5);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(0.8), 9);
        assert_eq!(h.quantile(1.0), 200);
        let empty = Histogram::of(&Frame::new(Dims::new(0, 0)), Channel::Y);
        assert_eq!(empty.mode(), None);
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn histogram_mode_tie_prefers_smaller() {
        let frame = f(&[3, 3, 7, 7], 2);
        let h = Histogram::of(&frame, Channel::Y);
        assert_eq!(h.mode(), Some(3));
    }

    #[test]
    fn luma_stats() {
        let frame = f(&[0, 10, 20, 30], 2);
        let s = LumaStats::of(&frame).unwrap();
        assert_eq!((s.min, s.max), (0, 30));
        assert!((s.mean - 15.0).abs() < 1e-9);
        assert!((s.variance - 125.0).abs() < 1e-9);
        assert!(LumaStats::of(&Frame::new(Dims::new(0, 5))).is_err());
    }

    #[test]
    fn stats_of_flat_frame_zero_variance() {
        let frame = Frame::filled(Dims::new(3, 3), Pixel::from_luma(42));
        let s = LumaStats::of(&frame).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.mean, 42.0);
    }

    #[test]
    fn count_pixels_predicate() {
        let frame = f(&[0, 100, 200, 50], 2);
        assert_eq!(count_pixels(&frame, |p| p.y >= 100), 2);
        assert_eq!(count_pixels(&frame, |_| false), 0);
    }
}
