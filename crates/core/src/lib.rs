//! # vip-core — the AddressLib
//!
//! Software implementation of the **AddressLib**, the structured pixel
//! addressing library of *"A Coprocessor for Accelerating Visual
//! Information Processing"* (Stechele et al., DATE 2005), together with
//! the pixel-operation kernels it executes and the memory-access
//! accounting model behind the paper's Table 2.
//!
//! The library is organised around the paper's observation that most
//! visual-information-processing algorithms access pixels in only four
//! ways (§2.1):
//!
//! 1. **Inter addressing** ([`addressing::inter`]) — each output pixel is
//!    computed from two input frames (difference pictures, SAD).
//! 2. **Intra addressing** ([`addressing::intra`]) — each output pixel is
//!    computed from a neighbourhood window within one frame (FIR filters,
//!    gradients, morphology).
//! 3. **Segment addressing** ([`addressing::segment`]) — arbitrarily
//!    shaped segments are expanded from seed pixels in order of geodesic
//!    distance, gated by a neighbourhood criterion.
//! 4. **Segment-indexed addressing** ([`addressing::indexed`]) — indexed
//!    table accesses carrying per-segment data, in parallel to another
//!    scheme.
//!
//! The `vip-engine` crate executes the same calls on a cycle-level
//! simulator of the AddressEngine FPGA coprocessor.
//!
//! ## Quick start
//!
//! ```
//! use vip_core::addressing::inter::run_inter;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::ops::arith::AbsDiff;
//! use vip_core::pixel::Pixel;
//!
//! # fn main() -> Result<(), vip_core::error::CoreError> {
//! // Two frames of a surveillance camera…
//! let background = Frame::filled(Dims::new(16, 16), Pixel::from_luma(30));
//! let current = Frame::filled(Dims::new(16, 16), Pixel::from_luma(35));
//!
//! // …and one AddressLib inter call computing the difference picture.
//! let result = run_inter(&background, &current, &AbsDiff::luma())?;
//! assert!(result.output.pixels().iter().all(|p| p.y == 5));
//!
//! // Every call reports its Table-2 access model.
//! let model = result.report.access_model();
//! assert_eq!(model.software_accesses, 3 * 16 * 16);
//! assert_eq!(model.hardware_accesses, 2 * 16 * 16);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod addressing;
pub mod border;
pub mod error;
pub mod frame;
pub mod geometry;
pub mod neighborhood;
pub mod ops;
pub mod pixel;
pub mod scan;

pub use accounting::{AccessModel, AddressingMode, CallDescriptor};
pub use border::BorderPolicy;
pub use error::{CoreError, CoreResult};
pub use frame::Frame;
pub use geometry::{Dims, ImageFormat, Point, Rect};
pub use neighborhood::{Connectivity, Window};
pub use pixel::{Channel, ChannelSet, Pixel};
pub use scan::ScanOrder;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_compile() {
        let _ = crate::Pixel::from_luma(1);
        let _ = crate::Dims::new(1, 1);
        let _ = crate::ScanOrder::RowMajor;
        let _ = crate::Connectivity::Con8;
        let _ = crate::BorderPolicy::Clamp;
    }
}
