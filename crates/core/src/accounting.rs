//! Memory-access accounting: the analytic model behind Table 2 of the
//! paper.
//!
//! §4.2 compares *"the number of memory access operations carried out by
//! the software solution and those made by the processor in the design"*.
//! This module reproduces both sides:
//!
//! **Software model.** The reference software stores frames as arrays and
//! walks them channel by channel. Per produced pixel it performs
//!
//! * one read per *new* pixel entering the sliding neighbourhood window of
//!   the primary input channel ([`Connectivity::new_pixels_per_step`]),
//! * one read for each *additional* input channel of the centre pixel
//!   (channels are stored and fetched sequentially — §4.2: *"in the
//!   software solution this is done sequentially"*),
//! * for inter addressing, the above once per input frame, and
//! * one write for the output pixel.
//!
//! **Hardware model.** The AddressEngine pairs ZBT banks so that a whole
//! 64-bit pixel — and, via the IIM, the whole neighbourhood update with
//! *all* channels — is available in a single memory cycle, and the OIM
//! buffers one write cycle per pixel. Per produced pixel: one read cycle +
//! one write cycle, independent of neighbourhood size or channel count.
//!
//! With these two models the four rows of Table 2 come out exactly:
//!
//! | call                  | sw/pixel | hw/pixel | sw total (CIF) | hw total |
//! |-----------------------|----------|----------|----------------|----------|
//! | Inter Y → Y           | 3        | 2        | 304 128        | 202 752  |
//! | Intra CON_0 Y → Y     | 2        | 2        | 202 752        | 202 752  |
//! | Intra CON_8 Y → Y     | 4        | 2        | 405 504        | 202 752  |
//! | Intra CON_8 YUV → YUV | 6        | 2        | 608 256        | 202 752  |
//!
//! # Examples
//!
//! ```
//! use vip_core::accounting::{AccessModel, CallDescriptor};
//! use vip_core::geometry::ImageFormat;
//! use vip_core::neighborhood::Connectivity;
//! use vip_core::pixel::ChannelSet;
//!
//! let call = CallDescriptor::intra(Connectivity::Con8, ChannelSet::YUV, ChannelSet::YUV);
//! let m = AccessModel::for_call(&call, ImageFormat::Cif.dims());
//! assert_eq!(m.software_accesses, 608_256);
//! assert_eq!(m.hardware_accesses, 202_752);
//! ```

use core::fmt;

use crate::geometry::Dims;
use crate::neighborhood::Connectivity;
use crate::pixel::ChannelSet;

/// The addressing class of a call, as counted by Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AddressingMode {
    /// Two input frames, one output frame (§2.1 inter addressing).
    Inter,
    /// One input frame, neighbourhood window (§2.1 intra addressing).
    Intra,
    /// Seeded expansion over arbitrarily shaped segments.
    Segment,
    /// Indexed table access running in parallel to another mode.
    SegmentIndexed,
}

impl fmt::Display for AddressingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddressingMode::Inter => "inter",
            AddressingMode::Intra => "intra",
            AddressingMode::Segment => "segment",
            AddressingMode::SegmentIndexed => "segment-indexed",
        };
        f.write_str(s)
    }
}

/// Static description of one AddressLib call: everything the accounting,
/// timing and dispatch layers need to know, independent of the kernel
/// closure itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CallDescriptor {
    /// Addressing class.
    pub mode: AddressingMode,
    /// Neighbourhood shape (CON_0 for inter calls, which have no window).
    pub shape: Connectivity,
    /// Channels read from each input pixel.
    pub input_channels: ChannelSet,
    /// Channels written to each output pixel.
    pub output_channels: ChannelSet,
}

impl CallDescriptor {
    /// Describes an intra call.
    #[must_use]
    pub const fn intra(shape: Connectivity, input: ChannelSet, output: ChannelSet) -> Self {
        CallDescriptor {
            mode: AddressingMode::Intra,
            shape,
            input_channels: input,
            output_channels: output,
        }
    }

    /// Describes an inter call (no neighbourhood window).
    #[must_use]
    pub const fn inter(input: ChannelSet, output: ChannelSet) -> Self {
        CallDescriptor {
            mode: AddressingMode::Inter,
            shape: Connectivity::Con0,
            input_channels: input,
            output_channels: output,
        }
    }

    /// Describes a segment call with the given expansion connectivity.
    #[must_use]
    pub const fn segment(shape: Connectivity, input: ChannelSet, output: ChannelSet) -> Self {
        CallDescriptor {
            mode: AddressingMode::Segment,
            shape,
            input_channels: input,
            output_channels: output,
        }
    }

    /// Software memory accesses *per produced pixel* under the model
    /// described at module level.
    #[must_use]
    pub fn software_accesses_per_pixel(&self) -> u64 {
        let extra_channels = self.input_channels.len().saturating_sub(1) as u64;
        let frames = match self.mode {
            AddressingMode::Inter => 2,
            _ => 1,
        };
        let per_frame = self.shape.new_pixels_per_step() as u64 + extra_channels;
        frames * per_frame + 1 // +1 output write
    }

    /// Hardware memory cycles *per produced pixel*: one parallel read
    /// cycle plus one buffered write cycle, regardless of shape and
    /// channels.
    #[must_use]
    pub const fn hardware_accesses_per_pixel(&self) -> u64 {
        2
    }
}

impl fmt::Display for CallDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}→{}",
            self.mode, self.shape, self.input_channels, self.output_channels
        )
    }
}

/// Total access counts of one call over a whole frame, software vs.
/// hardware, plus the paper's two "saving" figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccessModel {
    /// Pixels produced by the call.
    pub pixels: u64,
    /// Total software memory accesses.
    pub software_accesses: u64,
    /// Total hardware memory cycles.
    pub hardware_accesses: u64,
}

impl AccessModel {
    /// Evaluates the model for `call` over a frame of `dims`.
    #[must_use]
    pub fn for_call(call: &CallDescriptor, dims: Dims) -> Self {
        let pixels = dims.pixel_count() as u64;
        AccessModel {
            pixels,
            software_accesses: pixels * call.software_accesses_per_pixel(),
            hardware_accesses: pixels * call.hardware_accesses_per_pixel(),
        }
    }

    /// Saving as a fraction of the *software* accesses:
    /// `(sw − hw) / sw`. This is the convention behind the 33 % and 50 %
    /// rows of Table 2.
    #[must_use]
    pub fn saving_of_software(&self) -> f64 {
        if self.software_accesses == 0 {
            return 0.0;
        }
        (self.software_accesses as f64 - self.hardware_accesses as f64)
            / self.software_accesses as f64
    }

    /// Saving relative to the *hardware* accesses:
    /// `(sw − hw) / hw`. This is the convention behind the 200 % row of
    /// Table 2 (the paper mixes both conventions; we expose each).
    #[must_use]
    pub fn saving_of_hardware(&self) -> f64 {
        if self.hardware_accesses == 0 {
            return 0.0;
        }
        (self.software_accesses as f64 - self.hardware_accesses as f64)
            / self.hardware_accesses as f64
    }

    /// The saving figure as printed in Table 2: the paper uses
    /// saved/software for the first three rows and switches to
    /// saved/hardware once the ratio exceeds 1 (the 200 % row).
    #[must_use]
    pub fn paper_saving_percent(&self) -> f64 {
        let of_sw = self.saving_of_software();
        if self.software_accesses > 2 * self.hardware_accesses {
            self.saving_of_hardware() * 100.0
        } else {
            of_sw * 100.0
        }
    }
}

/// A live access counter that executors tick while running, for empirical
/// cross-checks of the analytic model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounter {
    reads: u64,
    writes: u64,
}

impl AccessCounter {
    /// Creates a zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        AccessCounter { reads: 0, writes: 0 }
    }

    /// Records `n` read accesses.
    pub fn read(&mut self, n: u64) {
        self.reads += n;
    }

    /// Records `n` write accesses.
    pub fn write(&mut self, n: u64) {
        self.writes += n;
    }

    /// Total reads so far.
    #[must_use]
    pub const fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes so far.
    #[must_use]
    pub const fn writes(&self) -> u64 {
        self.writes
    }

    /// Reads + writes.
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl fmt::Display for AccessCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}r + {}w = {}", self.reads, self.writes, self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ImageFormat;

    const CIF: Dims = Dims::new(352, 288);

    #[test]
    fn table2_row1_inter_y() {
        let call = CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y);
        let m = AccessModel::for_call(&call, CIF);
        assert_eq!(m.software_accesses, 304_128);
        assert_eq!(m.hardware_accesses, 202_752);
        assert!((m.saving_of_software() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.paper_saving_percent() - 33.333).abs() < 0.01);
    }

    #[test]
    fn table2_row2_intra_con0_y() {
        let call = CallDescriptor::intra(Connectivity::Con0, ChannelSet::Y, ChannelSet::Y);
        let m = AccessModel::for_call(&call, CIF);
        assert_eq!(m.software_accesses, 202_752);
        assert_eq!(m.hardware_accesses, 202_752);
        assert_eq!(m.paper_saving_percent(), 0.0);
    }

    #[test]
    fn table2_row3_intra_con8_y() {
        let call = CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y);
        let m = AccessModel::for_call(&call, CIF);
        assert_eq!(m.software_accesses, 405_504);
        assert_eq!(m.hardware_accesses, 202_752);
        assert!((m.paper_saving_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn table2_row4_intra_con8_yuv() {
        let call = CallDescriptor::intra(Connectivity::Con8, ChannelSet::YUV, ChannelSet::YUV);
        let m = AccessModel::for_call(&call, CIF);
        assert_eq!(m.software_accesses, 608_256);
        assert_eq!(m.hardware_accesses, 202_752);
        // Paper reports 200 % — the saved/hardware convention.
        assert!((m.paper_saving_percent() - 200.0).abs() < 1e-9);
        // The consistent saved/software figure would be 66.7 %.
        assert!((m.saving_of_software() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_pixel_counts() {
        assert_eq!(
            CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y).software_accesses_per_pixel(),
            3
        );
        assert_eq!(
            CallDescriptor::intra(Connectivity::Con0, ChannelSet::Y, ChannelSet::Y)
                .software_accesses_per_pixel(),
            2
        );
        assert_eq!(
            CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y)
                .software_accesses_per_pixel(),
            4
        );
        assert_eq!(
            CallDescriptor::intra(Connectivity::Con8, ChannelSet::YUV, ChannelSet::YUV)
                .software_accesses_per_pixel(),
            6
        );
        assert_eq!(
            CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y)
                .hardware_accesses_per_pixel(),
            2
        );
    }

    #[test]
    fn saving_grows_with_traffic() {
        // §4.2: "the benefit … increases with the amount of data traffic".
        let rows = [
            CallDescriptor::intra(Connectivity::Con0, ChannelSet::Y, ChannelSet::Y),
            CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y),
            CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y),
            CallDescriptor::intra(Connectivity::Con8, ChannelSet::YUV, ChannelSet::YUV),
        ];
        let savings: Vec<f64> = rows
            .iter()
            .map(|c| AccessModel::for_call(c, CIF).saving_of_software())
            .collect();
        for w in savings.windows(2) {
            assert!(w[0] <= w[1], "saving must be monotone in traffic: {savings:?}");
        }
    }

    #[test]
    fn qcif_scales_proportionally() {
        let call = CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y);
        let cif = AccessModel::for_call(&call, ImageFormat::Cif.dims());
        let qcif = AccessModel::for_call(&call, ImageFormat::Qcif.dims());
        assert_eq!(cif.software_accesses, 4 * qcif.software_accesses);
        assert_eq!(cif.hardware_accesses, 4 * qcif.hardware_accesses);
    }

    #[test]
    fn segment_mode_counts_like_intra() {
        let seg = CallDescriptor::segment(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y);
        assert_eq!(seg.software_accesses_per_pixel(), 4);
        assert_eq!(seg.mode, AddressingMode::Segment);
    }

    #[test]
    fn zero_area_model() {
        let call = CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y);
        let m = AccessModel::for_call(&call, Dims::new(0, 10));
        assert_eq!(m.software_accesses, 0);
        assert_eq!(m.saving_of_software(), 0.0);
        assert_eq!(m.saving_of_hardware(), 0.0);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = AccessCounter::new();
        c.read(3);
        c.write(2);
        c.read(1);
        assert_eq!((c.reads(), c.writes(), c.total()), (4, 2, 6));
        assert_eq!(c.to_string(), "4r + 2w = 6");
    }

    #[test]
    fn descriptor_display() {
        let call = CallDescriptor::intra(Connectivity::Con8, ChannelSet::YUV, ChannelSet::Y);
        assert_eq!(call.to_string(), "intra CON_8 Y,U,V→Y");
        assert_eq!(AddressingMode::SegmentIndexed.to_string(), "segment-indexed");
    }
}
