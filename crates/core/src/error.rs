//! Error types of the AddressLib core.

use core::fmt;

use crate::geometry::{Dims, Point};
use crate::pixel::ChannelSet;

/// Errors raised by AddressLib operations.
///
/// # Examples
///
/// ```
/// use vip_core::error::CoreError;
/// use vip_core::geometry::Dims;
///
/// let err = CoreError::DimsMismatch {
///     left: Dims::new(4, 4),
///     right: Dims::new(8, 8),
/// };
/// assert!(err.to_string().contains("4x4"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// Two frames that must agree in size do not.
    DimsMismatch {
        /// Dimensions of the first operand.
        left: Dims,
        /// Dimensions of the second operand.
        right: Dims,
    },
    /// A frame with zero area was supplied where pixels are required.
    EmptyFrame,
    /// A coordinate lies outside its frame.
    OutOfBounds {
        /// The offending position.
        point: Point,
        /// The frame bounds.
        dims: Dims,
    },
    /// An operation was asked to write a channel set it cannot produce.
    UnsupportedChannels {
        /// The requested channels.
        requested: ChannelSet,
        /// The channels the operation supports.
        supported: ChannelSet,
    },
    /// A segment expansion was started with no seed pixels.
    NoSeeds,
    /// An indexed-table access used an index beyond the table length.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The table length.
        len: usize,
    },
    /// A parameter failed validation.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimsMismatch { left, right } => {
                write!(f, "frame dimensions differ: {left} vs {right}")
            }
            CoreError::EmptyFrame => f.write_str("frame has zero area"),
            CoreError::OutOfBounds { point, dims } => {
                write!(f, "position {point} outside frame {dims}")
            }
            CoreError::UnsupportedChannels { requested, supported } => write!(
                f,
                "operation cannot produce channels {requested} (supports {supported})"
            ),
            CoreError::NoSeeds => f.write_str("segment expansion requires at least one seed"),
            CoreError::IndexOutOfRange { index, len } => {
                write!(f, "table index {index} out of range for length {len}")
            }
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience result alias for AddressLib operations.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<CoreError> = vec![
            CoreError::DimsMismatch {
                left: Dims::new(1, 1),
                right: Dims::new(2, 2),
            },
            CoreError::EmptyFrame,
            CoreError::OutOfBounds {
                point: Point::new(9, 9),
                dims: Dims::new(2, 2),
            },
            CoreError::UnsupportedChannels {
                requested: ChannelSet::ALL,
                supported: ChannelSet::Y,
            },
            CoreError::NoSeeds,
            CoreError::IndexOutOfRange { index: 5, len: 2 },
            CoreError::InvalidParameter {
                name: "radius",
                reason: "must be at most 4",
            },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase() || !msg.starts_with(char::is_uppercase),
                "message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<CoreError>();
    }
}
