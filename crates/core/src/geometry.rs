//! Image geometry: dimensions, points, rectangles and the standard frame
//! formats used by the paper (QCIF and CIF).
//!
//! # Examples
//!
//! ```
//! use vip_core::geometry::{Dims, ImageFormat};
//!
//! let cif = ImageFormat::Cif.dims();
//! assert_eq!((cif.width, cif.height), (352, 288));
//! assert_eq!(cif.pixel_count(), 101_376);
//! ```

use core::fmt;

/// Width × height of a frame, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dims {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels (number of lines).
    pub height: usize,
}

impl Dims {
    /// Creates a dimension pair.
    ///
    /// # Examples
    ///
    /// ```
    /// use vip_core::geometry::Dims;
    /// let d = Dims::new(4, 3);
    /// assert_eq!(d.pixel_count(), 12);
    /// ```
    #[must_use]
    pub const fn new(width: usize, height: usize) -> Self {
        Dims { width, height }
    }

    /// Total number of pixels.
    #[must_use]
    pub const fn pixel_count(self) -> usize {
        self.width * self.height
    }

    /// Whether either side is zero.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// Whether `p` lies inside the frame.
    #[must_use]
    pub const fn contains(self, p: Point) -> bool {
        p.x >= 0 && p.y >= 0 && (p.x as usize) < self.width && (p.y as usize) < self.height
    }

    /// Row-major linear index of `p`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `p` is out of bounds.
    #[must_use]
    pub fn index_of(self, p: Point) -> usize {
        debug_assert!(self.contains(p), "{p} out of bounds for {self}");
        p.y as usize * self.width + p.x as usize
    }

    /// Clamps `p` to the nearest in-bounds position.
    ///
    /// Returns `None` when the frame is empty.
    #[must_use]
    pub fn clamp(self, p: Point) -> Option<Point> {
        if self.is_empty() {
            return None;
        }
        Some(Point::new(
            p.x.clamp(0, self.width as i32 - 1),
            p.y.clamp(0, self.height as i32 - 1),
        ))
    }

    /// Dimensions halved (rounded up), as used by image pyramids.
    #[must_use]
    pub const fn halved(self) -> Dims {
        Dims::new(self.width.div_ceil(2), self.height.div_ceil(2))
    }

    /// The bounding rectangle `[0,0] .. [width,height)`.
    #[must_use]
    pub const fn bounds(self) -> Rect {
        Rect {
            x: 0,
            y: 0,
            width: self.width,
            height: self.height,
        }
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

impl From<(usize, usize)> for Dims {
    fn from((width, height): (usize, usize)) -> Self {
        Dims::new(width, height)
    }
}

/// A pixel position. Signed so that neighbourhood offsets can step outside
/// the frame before a border policy resolves them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate (column).
    pub x: i32,
    /// Vertical coordinate (line).
    pub y: i32,
}

impl Point {
    /// Creates a point.
    #[must_use]
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Component-wise translation.
    #[must_use]
    pub const fn offset(self, dx: i32, dy: i32) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Manhattan (city-block) distance to `other`; the geodesic metric used
    /// by 4-connected segment expansion.
    #[must_use]
    pub const fn manhattan_distance(self, other: Point) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Chessboard (Chebyshev) distance to `other`; the geodesic metric used
    /// by 8-connected segment expansion.
    #[must_use]
    pub fn chessboard_distance(self, other: Point) -> u32 {
        self.x.abs_diff(other.x).max(self.y.abs_diff(other.y))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Point {
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

impl core::ops::Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl core::ops::Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

/// An axis-aligned rectangle of pixels, anchored at `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Rect {
    /// Creates a rectangle.
    #[must_use]
    pub const fn new(x: i32, y: i32, width: usize, height: usize) -> Self {
        Rect { x, y, width, height }
    }

    /// Whether `p` lies inside the rectangle.
    #[must_use]
    pub const fn contains(&self, p: Point) -> bool {
        p.x >= self.x
            && p.y >= self.y
            && p.x < self.x + self.width as i32
            && p.y < self.y + self.height as i32
    }

    /// Number of pixels covered.
    #[must_use]
    pub const fn area(&self) -> usize {
        self.width * self.height
    }

    /// Intersection with another rectangle, or `None` if disjoint.
    #[must_use]
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = (self.x + self.width as i32).min(other.x + other.width as i32);
        let y1 = (self.y + self.height as i32).min(other.y + other.height as i32);
        if x1 > x0 && y1 > y0 {
            Some(Rect::new(x0, y0, (x1 - x0) as usize, (y1 - y0) as usize))
        } else {
            None
        }
    }

    /// Iterates over all points of the rectangle in row-major order.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        let (x, y, w, h) = (self.x, self.y, self.width as i32, self.height as i32);
        (y..y + h).flat_map(move |py| (x..x + w).map(move |px| Point::new(px, py)))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}@({},{})", self.width, self.height, self.x, self.y)
    }
}

/// The standard frame formats handled by the AddressEngine prototype.
///
/// The ZBT memory of the prototype board is sized to hold *two input and one
/// output image* of either format (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ImageFormat {
    /// 176 × 144 pixels, ≈ 200 kB at 64 bit/pixel.
    Qcif,
    /// 352 × 288 pixels, ≈ 800 kB at 64 bit/pixel.
    Cif,
}

impl ImageFormat {
    /// Frame dimensions of the format.
    #[must_use]
    pub const fn dims(self) -> Dims {
        match self {
            ImageFormat::Qcif => Dims::new(176, 144),
            ImageFormat::Cif => Dims::new(352, 288),
        }
    }

    /// Image size in bytes at the 64-bit pixel size of the AddressLib.
    #[must_use]
    pub const fn bytes(self) -> usize {
        self.dims().pixel_count() * 8
    }

    /// Detects the format from dimensions, if they match exactly.
    #[must_use]
    pub fn from_dims(dims: Dims) -> Option<ImageFormat> {
        [ImageFormat::Qcif, ImageFormat::Cif]
            .into_iter()
            .find(|f| f.dims() == dims)
    }
}

impl fmt::Display for ImageFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageFormat::Qcif => f.write_str("QCIF"),
            ImageFormat::Cif => f.write_str("CIF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_formats_match_paper() {
        assert_eq!(ImageFormat::Qcif.dims(), Dims::new(176, 144));
        assert_eq!(ImageFormat::Cif.dims(), Dims::new(352, 288));
        // §3.1: QCIF ≈ 200 kB, CIF ≈ 800 kB at 8 bytes/pixel.
        assert_eq!(ImageFormat::Qcif.bytes(), 202_752);
        assert_eq!(ImageFormat::Cif.bytes(), 811_008);
        // Strip size 16 divides both image heights (§3.1).
        assert_eq!(ImageFormat::Qcif.dims().height % 16, 0);
        assert_eq!(ImageFormat::Cif.dims().height % 16, 0);
    }

    #[test]
    fn format_detection() {
        assert_eq!(
            ImageFormat::from_dims(Dims::new(352, 288)),
            Some(ImageFormat::Cif)
        );
        assert_eq!(ImageFormat::from_dims(Dims::new(10, 10)), None);
    }

    #[test]
    fn dims_contains_and_index() {
        let d = Dims::new(4, 3);
        assert!(d.contains(Point::new(3, 2)));
        assert!(!d.contains(Point::new(4, 0)));
        assert!(!d.contains(Point::new(0, -1)));
        assert_eq!(d.index_of(Point::new(1, 2)), 9);
    }

    #[test]
    fn dims_clamp() {
        let d = Dims::new(4, 3);
        assert_eq!(d.clamp(Point::new(-5, 10)), Some(Point::new(0, 2)));
        assert_eq!(d.clamp(Point::new(2, 1)), Some(Point::new(2, 1)));
        assert_eq!(Dims::new(0, 3).clamp(Point::ORIGIN), None);
    }

    #[test]
    fn dims_halved_rounds_up() {
        assert_eq!(Dims::new(5, 4).halved(), Dims::new(3, 2));
        assert_eq!(Dims::new(1, 1).halved(), Dims::new(1, 1));
    }

    #[test]
    fn point_arithmetic_and_distances() {
        let a = Point::new(1, 2);
        let b = Point::new(4, -2);
        assert_eq!(a + b, Point::new(5, 0));
        assert_eq!(b - a, Point::new(3, -4));
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(a.chessboard_distance(b), 4);
        assert_eq!(a.offset(1, 1), Point::new(2, 3));
    }

    #[test]
    fn rect_contains_area_intersect() {
        let r = Rect::new(1, 1, 3, 2);
        assert!(r.contains(Point::new(3, 2)));
        assert!(!r.contains(Point::new(4, 1)));
        assert_eq!(r.area(), 6);
        let s = Rect::new(2, 0, 5, 5);
        assert_eq!(r.intersect(&s), Some(Rect::new(2, 1, 2, 2)));
        assert_eq!(r.intersect(&Rect::new(10, 10, 1, 1)), None);
    }

    #[test]
    fn rect_points_row_major() {
        let r = Rect::new(1, 1, 2, 2);
        let pts: Vec<_> = r.points().collect();
        assert_eq!(
            pts,
            vec![
                Point::new(1, 1),
                Point::new(2, 1),
                Point::new(1, 2),
                Point::new(2, 2)
            ]
        );
    }

    #[test]
    fn bounds_covers_whole_frame() {
        let d = Dims::new(3, 2);
        let b = d.bounds();
        assert_eq!(b.area(), d.pixel_count());
        assert!(b.points().all(|p| d.contains(p)));
    }

    #[test]
    fn displays() {
        assert_eq!(Dims::new(3, 2).to_string(), "3x2");
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
        assert_eq!(Rect::new(0, 0, 2, 2).to_string(), "2x2@(0,0)");
        assert_eq!(ImageFormat::Cif.to_string(), "CIF");
    }
}
