//! Scan orders: the way an AddressLib call sweeps an image.
//!
//! The paper transfers frames in *strips* whose orientation depends on "the
//! way of scanning the image" (§3.1) and calls out the worst case of a
//! neighbourhood perpendicular to the scan direction (fig. 4). This module
//! provides the scan orders and the strip decomposition used by both the
//! software library and the coprocessor simulator.
//!
//! # Examples
//!
//! ```
//! use vip_core::geometry::Dims;
//! use vip_core::scan::{ScanOrder, scan_points};
//!
//! let pts: Vec<_> = scan_points(Dims::new(2, 2), ScanOrder::RowMajor).collect();
//! assert_eq!(pts.len(), 4);
//! assert_eq!((pts[1].x, pts[1].y), (1, 0));
//! ```

use core::fmt;

use crate::geometry::{Dims, Point};

/// Direction in which an image is swept pixel by pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ScanOrder {
    /// Left-to-right within a line, lines top-to-bottom (the common case;
    /// horizontal strips).
    #[default]
    RowMajor,
    /// Top-to-bottom within a column, columns left-to-right (vertical
    /// strips; the fig. 4 worst case for a horizontal neighbourhood).
    ColumnMajor,
    /// Right-to-left within a line, lines bottom-to-top.
    ReverseRowMajor,
    /// Boustrophedon: alternate line directions, lines top-to-bottom.
    /// Maximises window reuse at line turns.
    Serpentine,
}

impl ScanOrder {
    /// All scan orders.
    pub const ALL: [ScanOrder; 4] = [
        ScanOrder::RowMajor,
        ScanOrder::ColumnMajor,
        ScanOrder::ReverseRowMajor,
        ScanOrder::Serpentine,
    ];

    /// Whether strips for this order are horizontal (bands of lines) rather
    /// than vertical (bands of columns).
    #[must_use]
    pub const fn horizontal_strips(self) -> bool {
        !matches!(self, ScanOrder::ColumnMajor)
    }

    /// The primary step between consecutively visited pixels (ignoring
    /// line/column wrap and serpentine turns).
    #[must_use]
    pub const fn primary_step(self) -> Point {
        match self {
            ScanOrder::RowMajor | ScanOrder::Serpentine => Point::new(1, 0),
            ScanOrder::ColumnMajor => Point::new(0, 1),
            ScanOrder::ReverseRowMajor => Point::new(-1, 0),
        }
    }
}

impl fmt::Display for ScanOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScanOrder::RowMajor => "row-major",
            ScanOrder::ColumnMajor => "column-major",
            ScanOrder::ReverseRowMajor => "reverse-row-major",
            ScanOrder::Serpentine => "serpentine",
        };
        f.write_str(s)
    }
}

/// Iterator over the pixel positions of a frame in a given scan order.
///
/// Produced by [`scan_points`].
#[derive(Debug, Clone)]
pub struct ScanPoints {
    dims: Dims,
    order: ScanOrder,
    next: usize,
    total: usize,
}

impl Iterator for ScanPoints {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.next >= self.total {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let w = self.dims.width;
        let h = self.dims.height;
        Some(match self.order {
            ScanOrder::RowMajor => Point::new((i % w) as i32, (i / w) as i32),
            ScanOrder::ColumnMajor => Point::new((i / h) as i32, (i % h) as i32),
            ScanOrder::ReverseRowMajor => {
                let j = self.total - 1 - i;
                Point::new((j % w) as i32, (j / w) as i32)
            }
            ScanOrder::Serpentine => {
                let line = i / w;
                let col = i % w;
                let x = if line.is_multiple_of(2) { col } else { w - 1 - col };
                Point::new(x as i32, line as i32)
            }
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ScanPoints {}

/// Returns an iterator over every pixel position of a `dims`-sized frame in
/// the given scan order.
///
/// # Examples
///
/// ```
/// use vip_core::geometry::Dims;
/// use vip_core::scan::{scan_points, ScanOrder};
///
/// let serp: Vec<_> = scan_points(Dims::new(3, 2), ScanOrder::Serpentine).collect();
/// assert_eq!((serp[3].x, serp[3].y), (2, 1)); // second line starts at the right
/// ```
#[must_use]
pub fn scan_points(dims: Dims, order: ScanOrder) -> ScanPoints {
    ScanPoints {
        dims,
        order,
        next: 0,
        total: dims.pixel_count(),
    }
}

/// A strip: the transfer unit between host memory and the ZBT banks.
///
/// The paper fixes the strip size to sixteen lines: *"The selected strip size
/// is sixteen lines, as the maximum range of input data required to process
/// one pixel is nine lines"* (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Strip {
    /// Index of the strip within the frame (0-based).
    pub index: usize,
    /// First line (or column, for vertical strips) covered.
    pub start: usize,
    /// Number of lines (or columns) covered; the last strip may be shorter.
    pub len: usize,
    /// Whether the strip is a band of lines (`true`) or columns (`false`).
    pub horizontal: bool,
}

impl Strip {
    /// Number of pixels in the strip for a frame of `dims`.
    #[must_use]
    pub const fn pixel_count(&self, dims: Dims) -> usize {
        if self.horizontal {
            self.len * dims.width
        } else {
            self.len * dims.height
        }
    }

    /// Number of bytes the strip occupies at 8 bytes/pixel.
    #[must_use]
    pub const fn bytes(&self, dims: Dims) -> usize {
        self.pixel_count(dims) * 8
    }
}

impl fmt::Display for Strip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "strip#{} [{}, {}) {}",
            self.index,
            self.start,
            self.start + self.len,
            if self.horizontal { "lines" } else { "columns" }
        )
    }
}

/// Decomposes a frame into transfer strips of `strip_len` lines (or columns
/// for a column-major scan), matching the DMA scheme of §3.1.
///
/// The final strip is truncated when the frame size is not a multiple of
/// `strip_len` (never the case for QCIF/CIF with the paper's 16).
///
/// # Panics
///
/// Panics if `strip_len` is zero.
///
/// # Examples
///
/// ```
/// use vip_core::geometry::{Dims, ImageFormat};
/// use vip_core::scan::{strips, ScanOrder};
///
/// let s = strips(ImageFormat::Cif.dims(), ScanOrder::RowMajor, 16);
/// assert_eq!(s.len(), 288 / 16);
/// assert!(s.iter().all(|st| st.len == 16));
/// ```
#[must_use]
pub fn strips(dims: Dims, order: ScanOrder, strip_len: usize) -> Vec<Strip> {
    assert!(strip_len > 0, "strip length must be positive");
    let horizontal = order.horizontal_strips();
    let extent = if horizontal { dims.height } else { dims.width };
    (0..extent.div_ceil(strip_len))
        .map(|index| {
            let start = index * strip_len;
            Strip {
                index,
                start,
                len: strip_len.min(extent - start),
                horizontal,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ImageFormat;
    use std::collections::HashSet;

    #[test]
    fn every_order_visits_every_pixel_once() {
        let dims = Dims::new(7, 5);
        for order in ScanOrder::ALL {
            let pts: Vec<_> = scan_points(dims, order).collect();
            assert_eq!(pts.len(), 35, "{order}");
            let set: HashSet<_> = pts.iter().copied().collect();
            assert_eq!(set.len(), 35, "{order} revisits pixels");
            assert!(pts.iter().all(|p| dims.contains(*p)), "{order}");
        }
    }

    #[test]
    fn row_major_order() {
        let pts: Vec<_> = scan_points(Dims::new(3, 2), ScanOrder::RowMajor).collect();
        assert_eq!(pts[0], Point::new(0, 0));
        assert_eq!(pts[2], Point::new(2, 0));
        assert_eq!(pts[3], Point::new(0, 1));
    }

    #[test]
    fn column_major_order() {
        let pts: Vec<_> = scan_points(Dims::new(3, 2), ScanOrder::ColumnMajor).collect();
        assert_eq!(pts[0], Point::new(0, 0));
        assert_eq!(pts[1], Point::new(0, 1));
        assert_eq!(pts[2], Point::new(1, 0));
    }

    #[test]
    fn reverse_row_major_starts_at_end() {
        let pts: Vec<_> = scan_points(Dims::new(2, 2), ScanOrder::ReverseRowMajor).collect();
        assert_eq!(pts[0], Point::new(1, 1));
        assert_eq!(pts[3], Point::new(0, 0));
    }

    #[test]
    fn serpentine_alternates() {
        let pts: Vec<_> = scan_points(Dims::new(3, 3), ScanOrder::Serpentine).collect();
        assert_eq!(pts[2], Point::new(2, 0));
        assert_eq!(pts[3], Point::new(2, 1)); // turn without horizontal jump
        assert_eq!(pts[5], Point::new(0, 1));
        assert_eq!(pts[6], Point::new(0, 2));
    }

    #[test]
    fn exact_size_iterator() {
        let mut it = scan_points(Dims::new(4, 4), ScanOrder::RowMajor);
        assert_eq!(it.len(), 16);
        it.next();
        assert_eq!(it.len(), 15);
    }

    #[test]
    fn strips_of_cif_are_eighteen_times_sixteen_lines() {
        // §3.1: "Sixteen is also divisor of the image size".
        let s = strips(ImageFormat::Cif.dims(), ScanOrder::RowMajor, 16);
        assert_eq!(s.len(), 18);
        assert!(s.iter().all(|st| st.len == 16 && st.horizontal));
        assert_eq!(s[17].start, 272);
        // Strip bytes: 16 lines × 352 pixels × 8 B = 45056.
        assert_eq!(s[0].bytes(ImageFormat::Cif.dims()), 45_056);
    }

    #[test]
    fn vertical_strips_for_column_major() {
        let s = strips(Dims::new(40, 32), ScanOrder::ColumnMajor, 16);
        assert_eq!(s.len(), 3);
        assert!(!s[0].horizontal);
        assert_eq!(s[2].len, 8); // 40 = 16+16+8
        assert_eq!(s[2].pixel_count(Dims::new(40, 32)), 8 * 32);
    }

    #[test]
    fn strips_cover_frame_exactly() {
        for (w, h) in [(33, 17), (16, 16), (1, 1), (100, 50)] {
            let dims = Dims::new(w, h);
            for order in [ScanOrder::RowMajor, ScanOrder::ColumnMajor] {
                let ss = strips(dims, order, 16);
                let covered: usize = ss.iter().map(|s| s.len).sum();
                let extent = if order.horizontal_strips() { h } else { w };
                assert_eq!(covered, extent);
                // Pixel counts sum to the frame size.
                let px: usize = ss.iter().map(|s| s.pixel_count(dims)).sum();
                assert_eq!(px, dims.pixel_count());
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_strip_len_panics() {
        let _ = strips(Dims::new(4, 4), ScanOrder::RowMajor, 0);
    }

    #[test]
    fn primary_steps() {
        assert_eq!(ScanOrder::RowMajor.primary_step(), Point::new(1, 0));
        assert_eq!(ScanOrder::ColumnMajor.primary_step(), Point::new(0, 1));
        assert_eq!(ScanOrder::ReverseRowMajor.primary_step(), Point::new(-1, 0));
    }

    #[test]
    fn display_names() {
        assert_eq!(ScanOrder::Serpentine.to_string(), "serpentine");
        let st = Strip {
            index: 1,
            start: 16,
            len: 16,
            horizontal: true,
        };
        assert_eq!(st.to_string(), "strip#1 [16, 32) lines");
    }
}
