//! Border policies: how neighbourhood accesses that step outside the frame
//! are resolved.
//!
//! The AddressLib processes whole rectangular frames, so any neighbourhood
//! operation needs a rule for pixels whose window sticks out of the image.
//!
//! # Examples
//!
//! ```
//! use vip_core::border::BorderPolicy;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::{Dims, Point};
//! use vip_core::pixel::Pixel;
//!
//! let f = Frame::from_fn(Dims::new(3, 1), |p| Pixel::from_luma(p.x as u8));
//! let clamped = BorderPolicy::Clamp.resolve(&f, Point::new(-2, 0));
//! assert_eq!(clamped.unwrap().y, 0);
//! ```

use core::fmt;

use crate::frame::Frame;
use crate::geometry::{Dims, Point};
use crate::pixel::Pixel;

/// Policy for out-of-frame neighbourhood accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BorderPolicy {
    /// Replicate the nearest edge pixel (the hardware's behaviour: the IIM
    /// simply re-delivers the boundary line).
    #[default]
    Clamp,
    /// Mirror the image at its edges (without repeating the edge pixel).
    Mirror,
    /// Wrap around torus-style.
    Wrap,
    /// Substitute a constant pixel.
    Constant(Pixel),
    /// Skip: out-of-frame neighbours are simply not delivered. The operation
    /// sees a smaller window near the border.
    Skip,
}

impl BorderPolicy {
    /// Maps an arbitrary position to an in-frame position according to the
    /// policy, or `None` when the access produces no pixel position
    /// ([`BorderPolicy::Constant`] and [`BorderPolicy::Skip`]).
    ///
    /// In-bounds positions are always returned unchanged.
    #[must_use]
    pub fn map_point(self, dims: Dims, p: Point) -> Option<Point> {
        if dims.contains(p) {
            return Some(p);
        }
        if dims.is_empty() {
            return None;
        }
        match self {
            BorderPolicy::Clamp => dims.clamp(p),
            BorderPolicy::Mirror => Some(Point::new(
                mirror_coord(p.x, dims.width),
                mirror_coord(p.y, dims.height),
            )),
            BorderPolicy::Wrap => Some(Point::new(
                wrap_coord(p.x, dims.width),
                wrap_coord(p.y, dims.height),
            )),
            BorderPolicy::Constant(_) | BorderPolicy::Skip => None,
        }
    }

    /// Resolves the pixel value at `p` in `frame` under this policy.
    ///
    /// Returns `None` only for [`BorderPolicy::Skip`] accesses outside the
    /// frame.
    #[must_use]
    pub fn resolve(self, frame: &Frame, p: Point) -> Option<Pixel> {
        if let Some(q) = self.map_point(frame.dims(), p) {
            return Some(frame.get(q));
        }
        match self {
            BorderPolicy::Constant(px) => Some(px),
            _ => None,
        }
    }
}

impl fmt::Display for BorderPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BorderPolicy::Clamp => f.write_str("clamp"),
            BorderPolicy::Mirror => f.write_str("mirror"),
            BorderPolicy::Wrap => f.write_str("wrap"),
            BorderPolicy::Constant(p) => write!(f, "constant({p})"),
            BorderPolicy::Skip => f.write_str("skip"),
        }
    }
}

/// Mirrors a coordinate into `[0, extent)` without repeating the edge
/// sample (reflect-101 for |c| < extent, with general folding beyond).
fn mirror_coord(c: i32, extent: usize) -> i32 {
    let n = extent as i64;
    if n == 1 {
        return 0;
    }
    let period = 2 * (n - 1);
    let mut m = (c as i64).rem_euclid(period);
    if m >= n {
        m = period - m;
    }
    m as i32
}

/// Wraps a coordinate into `[0, extent)`.
fn wrap_coord(c: i32, extent: usize) -> i32 {
    (c as i64).rem_euclid(extent as i64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        // 4x1 luminance ramp 0,10,20,30
        Frame::from_fn(Dims::new(4, 1), |p| Pixel::from_luma(p.x as u8 * 10))
    }

    #[test]
    fn in_bounds_identity_for_all_policies() {
        let f = frame();
        for pol in [
            BorderPolicy::Clamp,
            BorderPolicy::Mirror,
            BorderPolicy::Wrap,
            BorderPolicy::Constant(Pixel::WHITE),
            BorderPolicy::Skip,
        ] {
            let p = Point::new(2, 0);
            assert_eq!(pol.resolve(&f, p).unwrap().y, 20, "{pol}");
        }
    }

    #[test]
    fn clamp_replicates_edges() {
        let f = frame();
        assert_eq!(BorderPolicy::Clamp.resolve(&f, Point::new(-3, 0)).unwrap().y, 0);
        assert_eq!(BorderPolicy::Clamp.resolve(&f, Point::new(9, 0)).unwrap().y, 30);
        assert_eq!(BorderPolicy::Clamp.resolve(&f, Point::new(1, 5)).unwrap().y, 10);
    }

    #[test]
    fn mirror_reflects_without_edge_repeat() {
        let f = frame();
        // x = -1 mirrors to 1, x = 4 mirrors to 2.
        assert_eq!(BorderPolicy::Mirror.resolve(&f, Point::new(-1, 0)).unwrap().y, 10);
        assert_eq!(BorderPolicy::Mirror.resolve(&f, Point::new(4, 0)).unwrap().y, 20);
        // Deep reflection: x = -4 → 4 → period fold → 2.
        assert_eq!(mirror_coord(-4, 4), 2);
        assert_eq!(mirror_coord(0, 1), 0);
        assert_eq!(mirror_coord(7, 1), 0);
    }

    #[test]
    fn wrap_is_torus() {
        let f = frame();
        assert_eq!(BorderPolicy::Wrap.resolve(&f, Point::new(-1, 0)).unwrap().y, 30);
        assert_eq!(BorderPolicy::Wrap.resolve(&f, Point::new(5, 0)).unwrap().y, 10);
    }

    #[test]
    fn constant_substitutes() {
        let f = frame();
        let pol = BorderPolicy::Constant(Pixel::from_luma(99));
        assert_eq!(pol.resolve(&f, Point::new(-1, 0)).unwrap().y, 99);
        assert_eq!(pol.map_point(f.dims(), Point::new(-1, 0)), None);
    }

    #[test]
    fn skip_returns_none_outside() {
        let f = frame();
        assert_eq!(BorderPolicy::Skip.resolve(&f, Point::new(-1, 0)), None);
        assert!(BorderPolicy::Skip.resolve(&f, Point::new(0, 0)).is_some());
    }

    #[test]
    fn empty_frame_maps_nothing() {
        assert_eq!(
            BorderPolicy::Clamp.map_point(Dims::new(0, 0), Point::ORIGIN),
            None
        );
    }

    #[test]
    fn mapped_points_always_in_bounds() {
        let dims = Dims::new(5, 3);
        for pol in [BorderPolicy::Clamp, BorderPolicy::Mirror, BorderPolicy::Wrap] {
            for x in -12..12 {
                for y in -12..12 {
                    let q = pol.map_point(dims, Point::new(x, y)).unwrap();
                    assert!(dims.contains(q), "{pol} mapped ({x},{y}) to {q}");
                }
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(BorderPolicy::Clamp.to_string(), "clamp");
        assert!(BorderPolicy::Constant(Pixel::BLACK).to_string().starts_with("constant("));
    }
}
