//! Whole-frame segmentation by repeated segment addressing: every pixel
//! becomes a seed of some segment, yielding a complete connected-
//! component labelling — the core loop of the video-object-segmentation
//! algorithms the AddressLib was designed for (\[2\]).
//!
//! # Examples
//!
//! ```
//! use vip_core::addressing::labeling::label_all_segments;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::ops::segment_ops::HomogeneityCriterion;
//! use vip_core::pixel::Pixel;
//!
//! // Left half dark, right half bright → two segments.
//! let f = Frame::from_fn(Dims::new(8, 4), |p| {
//!     Pixel::from_luma(if p.x < 4 { 20 } else { 200 })
//! });
//! let labelling = label_all_segments(&f, &HomogeneityCriterion::luma(10), Default::default())?;
//! assert_eq!(labelling.segment_count(), 2);
//! # Ok::<(), vip_core::error::CoreError>(())
//! ```

use crate::accounting::AccessCounter;
use crate::addressing::segment::{run_segment, SegmentOptions, SegmentPixel};
use crate::error::{CoreError, CoreResult};
use crate::frame::Frame;
use crate::geometry::Point;
use crate::ops::segment_ops::NeighborCriterion;
use crate::scan::{scan_points, ScanOrder};

/// A complete frame labelling.
#[derive(Debug, Clone)]
pub struct Labelling {
    /// Frame with segment labels in alpha (1-based) and geodesic
    /// distances in aux.
    pub output: Frame,
    /// Per-segment member lists in label order (`segments[0]` = label 1).
    pub segments: Vec<Vec<SegmentPixel>>,
    /// Accumulated access counters over all expansions.
    pub counter: AccessCounter,
}

impl Labelling {
    /// Number of segments found.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The label of the pixel at `p` (0 = never labelled, which cannot
    /// happen after [`label_all_segments`]).
    #[must_use]
    pub fn label_at(&self, p: Point) -> u16 {
        self.output.get(p).alpha
    }

    /// Size of the largest segment.
    #[must_use]
    pub fn largest_segment(&self) -> usize {
        self.segments.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean segment size.
    #[must_use]
    pub fn mean_segment_size(&self) -> f64 {
        if self.segments.is_empty() {
            return 0.0;
        }
        let total: usize = self.segments.iter().map(Vec::len).sum();
        total as f64 / self.segments.len() as f64
    }
}

/// Labels every pixel of the frame by expanding segments from unlabelled
/// seeds in scan order. Segment `k` (1-based) grows from the first
/// unlabelled pixel under `criterion`; pixels rejected by every
/// expansion become single-pixel segments of their own.
///
/// The `options.label` field is ignored (labels are assigned
/// sequentially); `connectivity` and `border` are honoured.
///
/// # Errors
///
/// Returns [`CoreError::EmptyFrame`] for zero-area frames and
/// [`CoreError::InvalidParameter`] when the frame needs more than
/// `u16::MAX` labels.
pub fn label_all_segments(
    frame: &Frame,
    criterion: &impl NeighborCriterion,
    options: SegmentOptions,
) -> CoreResult<Labelling> {
    if frame.dims().is_empty() {
        return Err(CoreError::EmptyFrame);
    }
    let dims = frame.dims();
    // Working frame: alpha carries committed labels (cleared first), so
    // expansions can be gated against already-labelled pixels through
    // the candidate's value — path-dependent criteria must never leak a
    // later segment into an earlier one.
    let mut work = frame.clone();
    for px in work.pixels_mut() {
        px.alpha = 0;
    }
    let mut segments: Vec<Vec<SegmentPixel>> = Vec::new();
    let mut counter = AccessCounter::new();

    for seed in scan_points(dims, ScanOrder::RowMajor) {
        if work.get(seed).alpha != 0 {
            continue;
        }
        let label = u16::try_from(segments.len() + 1).map_err(|_| CoreError::InvalidParameter {
            name: "frame",
            reason: "more segments than u16 labels",
        })?;

        let gated = UnlabelledCriterion { inner: criterion };
        let result = run_segment(
            &work,
            &[seed],
            &gated,
            SegmentOptions { label, ..options },
        )?;

        // Commit the members into the working frame.
        for member in &result.segment {
            let mut px = work.get(member.point);
            debug_assert_eq!(px.alpha, 0, "segments must not overlap");
            px.alpha = label;
            px.aux = member.distance.min(u32::from(u16::MAX)) as u16;
            work.set(member.point, px);
        }
        counter.read(result.report.counter.reads());
        counter.write(result.report.counter.writes());
        segments.push(result.segment);
    }

    Ok(Labelling {
        output: work,
        segments,
        counter,
    })
}

/// Wraps a criterion so expansions never enter already-labelled pixels
/// (non-zero alpha in the working frame).
struct UnlabelledCriterion<'a, C: NeighborCriterion> {
    inner: &'a C,
}

impl<C: NeighborCriterion> NeighborCriterion for UnlabelledCriterion<'_, C> {
    fn name(&self) -> &'static str {
        "unlabelled"
    }
    fn admits(&self, from: crate::pixel::Pixel, candidate: crate::pixel::Pixel) -> bool {
        candidate.alpha == 0 && self.inner.admits(from, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;
    use crate::ops::segment_ops::HomogeneityCriterion;
    use crate::pixel::Pixel;

    fn two_band_frame() -> Frame {
        Frame::from_fn(Dims::new(8, 4), |p| {
            Pixel::from_luma(if p.x < 4 { 20 } else { 200 })
        })
    }

    #[test]
    fn two_bands_two_segments() {
        let l = label_all_segments(
            &two_band_frame(),
            &HomogeneityCriterion::luma(10),
            SegmentOptions::default(),
        )
        .unwrap();
        assert_eq!(l.segment_count(), 2);
        assert_eq!(l.label_at(Point::new(0, 0)), 1);
        assert_eq!(l.label_at(Point::new(7, 3)), 2);
        assert_eq!(l.largest_segment(), 16);
        assert!((l.mean_segment_size() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn every_pixel_labelled_exactly_once() {
        let f = Frame::from_fn(Dims::new(12, 9), |p| {
            Pixel::from_luma(((p.x / 3) * 60 + (p.y / 3) * 17) as u8)
        });
        let l = label_all_segments(
            &f,
            &HomogeneityCriterion::luma(5),
            SegmentOptions::default(),
        )
        .unwrap();
        // Coverage: every pixel has a non-zero label.
        assert!(l.output.pixels().iter().all(|p| p.alpha > 0));
        // Disjointness: total member count equals the pixel count.
        let total: usize = l.segments.iter().map(Vec::len).sum();
        assert_eq!(total, 108);
    }

    #[test]
    fn flat_frame_is_one_segment() {
        let f = Frame::filled(Dims::new(10, 10), Pixel::from_luma(99));
        let l = label_all_segments(
            &f,
            &HomogeneityCriterion::luma(0),
            SegmentOptions::default(),
        )
        .unwrap();
        assert_eq!(l.segment_count(), 1);
        assert_eq!(l.largest_segment(), 100);
    }

    #[test]
    fn checkerboard_maximally_fragments() {
        // Alternating pixels with zero tolerance: every pixel its own
        // segment under CON_4 (no equal 4-neighbours).
        let f = Frame::from_fn(Dims::new(6, 6), |p| {
            Pixel::from_luma(if (p.x + p.y) % 2 == 0 { 0 } else { 255 })
        });
        let l = label_all_segments(
            &f,
            &HomogeneityCriterion::luma(0),
            SegmentOptions::default(),
        )
        .unwrap();
        assert_eq!(l.segment_count(), 36);
        assert_eq!(l.largest_segment(), 1);
    }

    #[test]
    fn labels_are_scan_ordered() {
        let l = label_all_segments(
            &two_band_frame(),
            &HomogeneityCriterion::luma(10),
            SegmentOptions::default(),
        )
        .unwrap();
        // First label belongs to the first scan pixel.
        assert_eq!(l.segments[0][0].point, Point::new(0, 0));
        assert_eq!(l.segments[1][0].point, Point::new(4, 0));
    }

    #[test]
    fn distances_recorded_per_segment() {
        let l = label_all_segments(
            &two_band_frame(),
            &HomogeneityCriterion::luma(10),
            SegmentOptions::default(),
        )
        .unwrap();
        // Seed has distance 0; the far corner of a 4×4 band is 6 steps.
        assert_eq!(l.output.get(Point::new(0, 0)).aux, 0);
        assert_eq!(l.output.get(Point::new(3, 3)).aux, 6);
    }

    #[test]
    fn empty_frame_rejected() {
        assert!(matches!(
            label_all_segments(
                &Frame::new(Dims::new(0, 3)),
                &HomogeneityCriterion::luma(1),
                SegmentOptions::default()
            ),
            Err(CoreError::EmptyFrame)
        ));
    }

    #[test]
    fn counters_accumulate_across_segments() {
        let l = label_all_segments(
            &two_band_frame(),
            &HomogeneityCriterion::luma(10),
            SegmentOptions::default(),
        )
        .unwrap();
        assert!(l.counter.reads() > 0);
        assert_eq!(l.counter.writes(), 32, "one write per pixel overall");
    }

    #[test]
    fn works_with_indexed_stats() {
        let l = label_all_segments(
            &two_band_frame(),
            &HomogeneityCriterion::luma(10),
            SegmentOptions::default(),
        )
        .unwrap();
        let table =
            crate::addressing::indexed::accumulate_segment_stats(&l.output).unwrap();
        assert_eq!(table.as_ref()[1].area, 16);
        assert_eq!(table.as_ref()[2].area, 16);
        assert!((table.as_ref()[2].mean_luma() - 200.0).abs() < 1e-9);
    }
}
