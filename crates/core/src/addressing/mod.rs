//! The four pixel-addressing schemes of the AddressLib (§2.1, fig. 1).
//!
//! * [`inter`] — per-pixel combination of two frames (difference pictures,
//!   SAD).
//! * [`intra`] — per-pixel neighbourhood operations within one frame
//!   (FIR-like filters, gradients, morphology).
//! * [`segment`] — seeded expansion over arbitrarily shaped segments in
//!   order of geodesic distance.
//! * [`indexed`] — indexed-table accesses running in parallel to another
//!   scheme (segment-indexed addressing).
//! * [`labeling`] — whole-frame segmentation by repeated segment
//!   expansion (complete connected-component labelling).
//!
//! Each executor returns both the produced data and a [`CallReport`]
//! carrying the [`CallDescriptor`] and empirical counters, so callers can
//! feed dispatch statistics (Table 3) and access accounting (Table 2)
//! without re-deriving anything.

pub mod indexed;
pub mod inter;
pub mod labeling;
pub mod intra;
pub mod segment;

use core::fmt;

use crate::accounting::{AccessCounter, AccessModel, CallDescriptor};
use crate::geometry::Dims;

/// Execution report of one AddressLib call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallReport {
    /// Static call description (mode, shape, channels).
    pub descriptor: CallDescriptor,
    /// Frame dimensions the call ran over.
    pub dims: Dims,
    /// Pixels actually produced (equals the frame size for inter/intra;
    /// the segment size for segment calls).
    pub pixels_processed: u64,
    /// Kernel invocations (equals `pixels_processed` for map-style calls).
    pub op_applies: u64,
    /// Empirical software access counter ticked by the executor.
    pub counter: AccessCounter,
}

impl CallReport {
    /// Analytic Table 2 access model for this call over its full frame.
    #[must_use]
    pub fn access_model(&self) -> AccessModel {
        AccessModel::for_call(&self.descriptor, self.dims)
    }
}

impl fmt::Display for CallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} over {}: {} px, {}",
            self.descriptor, self.dims, self.pixels_processed, self.counter
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighborhood::Connectivity;
    use crate::pixel::ChannelSet;

    #[test]
    fn report_exposes_model() {
        let report = CallReport {
            descriptor: CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y),
            dims: Dims::new(352, 288),
            pixels_processed: 101_376,
            op_applies: 101_376,
            counter: AccessCounter::new(),
        };
        assert_eq!(report.access_model().software_accesses, 405_504);
        assert!(report.to_string().contains("CON_8"));
    }
}
