//! Segment-indexed addressing: indexed-table accesses running in parallel
//! to another addressing scheme.
//!
//! §2.1: *"Segment indexed addressing is an addressing method, which is
//! used in parallel to one of the above addressing methods, when data
//! associated to a segment is needed or generated during the pixel
//! processing, e.g. segment identification numbers. This is done accessing
//! an indexed table."* The scheme *"differs from the other schemes by not
//! addressing pixel data"*.
//!
//! # Examples
//!
//! ```
//! use vip_core::addressing::indexed::SegmentTable;
//!
//! let mut table: SegmentTable<u32> = SegmentTable::with_len(4);
//! *table.entry_mut(2)? += 10;
//! assert_eq!(*table.entry(2)?, 10);
//! assert_eq!(table.accesses().total(), 2);
//! # Ok::<(), vip_core::error::CoreError>(())
//! ```

use core::fmt;

use crate::accounting::AccessCounter;
use crate::error::{CoreError, CoreResult};
use crate::frame::Frame;
use crate::geometry::Point;

/// An indexed table with access accounting: the storage behind
/// segment-indexed addressing.
///
/// Indices are segment identification numbers (or any other per-segment
/// key); entries are arbitrary per-segment records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentTable<T> {
    entries: Vec<T>,
    accesses: AccessCounter,
}

impl<T: Default + Clone> SegmentTable<T> {
    /// Creates a table of `len` default-initialised entries.
    #[must_use]
    pub fn with_len(len: usize) -> Self {
        SegmentTable {
            entries: vec![T::default(); len],
            accesses: AccessCounter::new(),
        }
    }
}

impl<T> SegmentTable<T> {
    /// Creates a table from existing entries.
    #[must_use]
    pub fn from_entries(entries: Vec<T>) -> Self {
        SegmentTable {
            entries,
            accesses: AccessCounter::new(),
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads entry `index`, counting one table read.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IndexOutOfRange`] for invalid indices.
    pub fn entry(&mut self, index: usize) -> CoreResult<&T> {
        self.accesses.read(1);
        self.entries.get(index).ok_or(CoreError::IndexOutOfRange {
            index,
            len: self.entries.len(),
        })
    }

    /// Mutably accesses entry `index`, counting one table write.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IndexOutOfRange`] for invalid indices.
    pub fn entry_mut(&mut self, index: usize) -> CoreResult<&mut T> {
        self.accesses.write(1);
        let len = self.entries.len();
        self.entries
            .get_mut(index)
            .ok_or(CoreError::IndexOutOfRange { index, len })
    }

    /// The accumulated table access counts.
    #[must_use]
    pub const fn accesses(&self) -> AccessCounter {
        self.accesses
    }

    /// Iterates over the entries (without counting accesses — this is the
    /// host-side bulk read after a call completes).
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.entries.iter()
    }

    /// Consumes the table, returning its entries.
    #[must_use]
    pub fn into_entries(self) -> Vec<T> {
        self.entries
    }
}

impl<T> AsRef<[T]> for SegmentTable<T> {
    fn as_ref(&self) -> &[T] {
        &self.entries
    }
}

impl<T: fmt::Debug> fmt::Display for SegmentTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SegmentTable[{} entries, {}]", self.entries.len(), self.accesses)
    }
}

/// Per-segment statistics accumulated during a labelled pass — the
/// canonical "data associated to a segment" of §2.1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentRecord {
    /// Number of member pixels.
    pub area: u64,
    /// Sum of member luminance values.
    pub luma_sum: u64,
    /// Bounding-box minimum (x, y), or the maximum point when empty.
    pub min: (i32, i32),
    /// Bounding-box maximum (x, y).
    pub max: (i32, i32),
}

impl SegmentRecord {
    /// Folds one member pixel into the record.
    pub fn add_pixel(&mut self, point: Point, luma: u8) {
        if self.area == 0 {
            self.min = (point.x, point.y);
            self.max = (point.x, point.y);
        } else {
            self.min = (self.min.0.min(point.x), self.min.1.min(point.y));
            self.max = (self.max.0.max(point.x), self.max.1.max(point.y));
        }
        self.area += 1;
        self.luma_sum += u64::from(luma);
    }

    /// Mean luminance of the segment (0 when empty).
    #[must_use]
    pub fn mean_luma(&self) -> f64 {
        if self.area == 0 {
            0.0
        } else {
            self.luma_sum as f64 / self.area as f64
        }
    }
}

/// Scans a labelled frame (labels in the alpha channel; 0 = unlabelled)
/// and accumulates a [`SegmentRecord`] per label into an indexed table —
/// an intra sweep with parallel segment-indexed addressing.
///
/// The table is sized to the largest label + 1; entry 0 collects the
/// unlabelled background.
///
/// # Errors
///
/// Returns [`CoreError::EmptyFrame`] for zero-area frames.
pub fn accumulate_segment_stats(frame: &Frame) -> CoreResult<SegmentTable<SegmentRecord>> {
    if frame.dims().is_empty() {
        return Err(CoreError::EmptyFrame);
    }
    let max_label = frame.pixels().iter().map(|p| p.alpha).max().unwrap_or(0);
    let mut table: SegmentTable<SegmentRecord> = SegmentTable::with_len(max_label as usize + 1);
    for (point, px) in frame.enumerate() {
        // Every pixel performs one indexed write in parallel to the sweep.
        table.entry_mut(px.alpha as usize)?.add_pixel(point, px.y);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;
    use crate::pixel::Pixel;

    #[test]
    fn table_read_write_and_accounting() {
        let mut t: SegmentTable<u32> = SegmentTable::with_len(3);
        *t.entry_mut(0).unwrap() = 5;
        *t.entry_mut(0).unwrap() += 1;
        assert_eq!(*t.entry(0).unwrap(), 6);
        assert_eq!(t.accesses().writes(), 2);
        assert_eq!(t.accesses().reads(), 1);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn out_of_range_is_error_and_counted() {
        let mut t: SegmentTable<u8> = SegmentTable::with_len(1);
        assert!(matches!(
            t.entry(3),
            Err(CoreError::IndexOutOfRange { index: 3, len: 1 })
        ));
        assert!(t.entry_mut(1).is_err());
        // Failed accesses still count (the hardware issues them too).
        assert_eq!(t.accesses().total(), 2);
    }

    #[test]
    fn from_entries_and_into_entries() {
        let t = SegmentTable::from_entries(vec![1, 2, 3]);
        assert_eq!(t.as_ref(), &[1, 2, 3]);
        assert_eq!(t.iter().sum::<i32>(), 6);
        assert_eq!(t.into_entries(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_table() {
        let t: SegmentTable<u8> = SegmentTable::with_len(0);
        assert!(t.is_empty());
        assert!(t.to_string().contains("0 entries"));
    }

    #[test]
    fn record_accumulates_area_and_bbox() {
        let mut r = SegmentRecord::default();
        assert_eq!(r.mean_luma(), 0.0);
        r.add_pixel(Point::new(3, 4), 10);
        r.add_pixel(Point::new(1, 6), 30);
        assert_eq!(r.area, 2);
        assert_eq!(r.min, (1, 4));
        assert_eq!(r.max, (3, 6));
        assert!((r.mean_luma() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate_stats_over_labelled_frame() {
        let mut f = Frame::filled(Dims::new(4, 2), Pixel::from_luma(10));
        // Label 1: two pixels at (0,0) and (1,0) with luma 100.
        for x in 0..2 {
            f.set(Point::new(x, 0), Pixel::from_luma(100).with_alpha(1));
        }
        // Label 3: one pixel at (3,1).
        f.set(Point::new(3, 1), Pixel::from_luma(40).with_alpha(3));

        let table = accumulate_segment_stats(&f).unwrap();
        assert_eq!(table.len(), 4);
        let entries = table.as_ref();
        assert_eq!(entries[1].area, 2);
        assert!((entries[1].mean_luma() - 100.0).abs() < 1e-12);
        assert_eq!(entries[1].min, (0, 0));
        assert_eq!(entries[1].max, (1, 0));
        assert_eq!(entries[3].area, 1);
        assert_eq!(entries[2].area, 0);
        assert_eq!(entries[0].area, 5); // background
    }

    #[test]
    fn accumulate_counts_one_write_per_pixel() {
        let f = Frame::new(Dims::new(3, 3));
        let table = accumulate_segment_stats(&f).unwrap();
        assert_eq!(table.accesses().writes(), 9);
    }

    #[test]
    fn accumulate_rejects_empty_frame() {
        assert!(matches!(
            accumulate_segment_stats(&Frame::new(Dims::new(0, 1))),
            Err(CoreError::EmptyFrame)
        ));
    }
}
