//! Intra addressing: *"a result is calculated for each pixel as a function
//! of the pixel's original value and the values of its neighbors within
//! the same image"* (§2.1).
//!
//! # Examples
//!
//! ```
//! use vip_core::addressing::intra::run_intra;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::ops::filter::BoxBlur;
//! use vip_core::pixel::Pixel;
//!
//! let f = Frame::filled(Dims::new(8, 8), Pixel::from_luma(50));
//! let r = run_intra(&f, &BoxBlur::con8())?;
//! assert!(r.output.pixels().iter().all(|p| p.y == 50));
//! # Ok::<(), vip_core::error::CoreError>(())
//! ```

use crate::accounting::{AccessCounter, CallDescriptor};
use crate::addressing::CallReport;
use crate::border::BorderPolicy;
use crate::error::{CoreError, CoreResult};
use crate::frame::Frame;
use crate::geometry::Point;
use crate::neighborhood::Window;
use crate::ops::IntraOp;
use crate::scan::{scan_points, ScanOrder};

/// Options of an intra call beyond the kernel itself.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IntraOptions {
    /// Scan order of the sweep (default row-major).
    pub scan: ScanOrder,
    /// Border policy for window samples outside the frame (default clamp,
    /// matching the IIM's edge-line replication).
    pub border: BorderPolicy,
}

/// Result of an intra call: the output frame plus the execution report.
#[derive(Debug, Clone)]
pub struct IntraResult {
    /// The produced frame. Channels outside the kernel's output set carry
    /// the input frame's values.
    pub output: Frame,
    /// Execution statistics for accounting and dispatch counting.
    pub report: CallReport,
}

/// Runs an intra-addressing call with default options.
///
/// # Errors
///
/// Returns [`CoreError::EmptyFrame`] when the frame has zero area.
pub fn run_intra(frame: &Frame, op: &impl IntraOp) -> CoreResult<IntraResult> {
    run_intra_with(frame, op, IntraOptions::default())
}

/// Runs an intra-addressing call with explicit scan order and border
/// policy.
///
/// # Errors
///
/// Returns [`CoreError::EmptyFrame`] when the frame has zero area.
pub fn run_intra_with(
    frame: &Frame,
    op: &impl IntraOp,
    options: IntraOptions,
) -> CoreResult<IntraResult> {
    if frame.dims().is_empty() {
        return Err(CoreError::EmptyFrame);
    }

    let descriptor = CallDescriptor::intra(op.shape(), op.input_channels(), op.output_channels());
    let per_pixel_reads = descriptor.software_accesses_per_pixel() - 1;
    let mut counter = AccessCounter::new();
    let mut output = frame.clone();

    let mut applied = 0u64;
    // One window reused across the sweep: `regather` refills the sample
    // buffer in place instead of allocating per pixel.
    let mut window = Window::from_samples(Point::ORIGIN, op.shape(), std::iter::empty());
    for p in scan_points(frame.dims(), options.scan) {
        window.regather(frame, p, options.border);
        counter.read(per_pixel_reads);
        let result = op.apply(&window);
        let mut out = frame.get(p);
        out.merge_channels(result, op.output_channels());
        output.set(p, out);
        counter.write(1);
        applied += 1;
    }

    Ok(IntraResult {
        output,
        report: CallReport {
            descriptor,
            dims: frame.dims(),
            pixels_processed: applied,
            op_applies: applied,
            counter,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Dims, Point};
    use crate::neighborhood::Connectivity;
    use crate::ops::filter::{Binomial3, BoxBlur, Identity, SobelGradient};
    use crate::ops::morph::{Dilate, Erode, MorphGradient};
    use crate::pixel::{ChannelSet, Pixel};

    fn spot() -> Frame {
        let mut f = Frame::filled(Dims::new(6, 6), Pixel::from_luma(10));
        f.set(Point::new(3, 3), Pixel::from_luma(190));
        f
    }

    #[test]
    fn identity_preserves_frame() {
        let f = spot();
        let r = run_intra(&f, &Identity::yuv()).unwrap();
        assert_eq!(r.output, f);
        assert_eq!(r.report.pixels_processed, 36);
    }

    #[test]
    fn box_blur_spreads_energy() {
        let f = spot();
        let r = run_intra(&f, &BoxBlur::con8()).unwrap();
        assert_eq!(r.output.get(Point::new(3, 3)).y, 30); // (190 + 8·10)/9
        assert_eq!(r.output.get(Point::new(2, 2)).y, 30);
        assert_eq!(r.output.get(Point::new(0, 0)).y, 10);
    }

    #[test]
    fn empty_frame_rejected() {
        let f = Frame::new(Dims::new(0, 4));
        assert!(matches!(
            run_intra(&f, &BoxBlur::con8()),
            Err(CoreError::EmptyFrame)
        ));
    }

    #[test]
    fn report_matches_analytic_model_con8() {
        let f = spot();
        let r = run_intra(&f, &BoxBlur::con8()).unwrap();
        let model = r.report.access_model();
        assert_eq!(r.report.counter.total(), model.software_accesses);
        assert_eq!(r.report.counter.total(), 36 * 4);
    }

    #[test]
    fn report_matches_analytic_model_con0() {
        let f = spot();
        let r = run_intra(&f, &Identity::luma()).unwrap();
        assert_eq!(r.report.counter.total(), 36 * 2);
        assert_eq!(r.report.descriptor.shape, Connectivity::Con0);
    }

    #[test]
    fn scan_order_invariance() {
        // Intra kernels read only the input frame, so results are
        // scan-order independent (the engine relies on this to choose its
        // strip orientation freely).
        let f = spot();
        let base = run_intra(&f, &Binomial3::new()).unwrap().output;
        for order in ScanOrder::ALL {
            let opts = IntraOptions {
                scan: order,
                ..IntraOptions::default()
            };
            let r = run_intra_with(&f, &Binomial3::new(), opts).unwrap();
            assert_eq!(r.output, base, "{order}");
        }
    }

    #[test]
    fn border_policy_changes_edges_only() {
        let f = spot();
        let clamp = run_intra_with(
            &f,
            &BoxBlur::con8(),
            IntraOptions {
                border: BorderPolicy::Clamp,
                ..Default::default()
            },
        )
        .unwrap()
        .output;
        let constant = run_intra_with(
            &f,
            &BoxBlur::con8(),
            IntraOptions {
                border: BorderPolicy::Constant(Pixel::from_luma(255)),
                ..Default::default()
            },
        )
        .unwrap()
        .output;
        // Interior identical.
        for y in 1..5 {
            for x in 1..5 {
                let p = Point::new(x, y);
                assert_eq!(clamp.get(p), constant.get(p), "interior at {p}");
            }
        }
        // Border differs.
        assert_ne!(clamp.get(Point::new(0, 0)), constant.get(Point::new(0, 0)));
    }

    #[test]
    fn morph_gradient_composition_matches() {
        // morph_gradient == dilate − erode, as whole-frame passes.
        let f = spot();
        let g = run_intra(&f, &MorphGradient::con8()).unwrap().output;
        let d = run_intra(&f, &Dilate::con8()).unwrap().output;
        let e = run_intra(&f, &Erode::con8()).unwrap().output;
        for (p, px) in g.enumerate() {
            assert_eq!(px.y, d.get(p).y - e.get(p).y, "at {p}");
        }
    }

    #[test]
    fn sobel_output_channels_merged() {
        let mut f = spot();
        f.get_mut(Point::new(1, 1)).alpha = 42; // must survive the call
        let r = run_intra(&f, &SobelGradient::new()).unwrap();
        assert_eq!(r.output.get(Point::new(1, 1)).alpha, 42);
        assert_eq!(
            r.report.descriptor.output_channels,
            ChannelSet::Y.union(ChannelSet::AUX)
        );
        // Chroma untouched.
        assert_eq!(r.output.get(Point::new(3, 3)).u, 128);
    }

    #[test]
    fn one_pixel_frame_works_with_clamp() {
        let f = Frame::filled(Dims::new(1, 1), Pixel::from_luma(77));
        let r = run_intra(&f, &BoxBlur::con8()).unwrap();
        assert_eq!(r.output.get(Point::ORIGIN).y, 77);
    }
}
