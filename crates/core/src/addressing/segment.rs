//! Segment addressing: seeded expansion over arbitrarily shaped segments.
//!
//! §2.1: *"Beginning with a set of start pixels, all pixels of the segment
//! are processed in order of geodesic distance."* Each processed pixel is
//! handled like an intra pixel (a neighbourhood window is gathered and a
//! kernel applied); afterwards its not-yet-visited neighbours are tested
//! against a [`NeighborCriterion`] and, if admitted, scheduled for a later
//! expansion step.
//!
//! The expansion is a breadth-first traversal, so pixels are visited in
//! non-decreasing geodesic distance from the seed set — exactly the
//! ordering the paper describes.
//!
//! # Examples
//!
//! ```
//! use vip_core::addressing::segment::{run_segment, SegmentOptions};
//! use vip_core::frame::Frame;
//! use vip_core::geometry::{Dims, Point};
//! use vip_core::ops::segment_ops::HomogeneityCriterion;
//! use vip_core::pixel::Pixel;
//!
//! // A bright plus-shaped region on dark background.
//! let mut f = Frame::filled(Dims::new(5, 5), Pixel::from_luma(0));
//! for p in [(2, 1), (1, 2), (2, 2), (3, 2), (2, 3)] {
//!     f.set(Point::new(p.0, p.1), Pixel::from_luma(200));
//! }
//! let r = run_segment(
//!     &f,
//!     &[Point::new(2, 2)],
//!     &HomogeneityCriterion::luma(10),
//!     SegmentOptions::default(),
//! )?;
//! assert_eq!(r.segment.len(), 5);
//! # Ok::<(), vip_core::error::CoreError>(())
//! ```

use std::collections::VecDeque;

use crate::accounting::{AccessCounter, CallDescriptor};
use crate::addressing::CallReport;
use crate::border::BorderPolicy;
use crate::error::{CoreError, CoreResult};
use crate::frame::Frame;
use crate::geometry::Point;
use crate::neighborhood::{Connectivity, Window};
use crate::ops::segment_ops::{LabelWriter, NeighborCriterion};
use crate::ops::IntraOp;
use crate::pixel::{ChannelSet, Pixel};

/// Options of a segment-addressing call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentOptions {
    /// Connectivity used for the expansion test (default `CON_4`: the
    /// geodesic city-block expansion).
    pub connectivity: Connectivity,
    /// Border policy for windows gathered at segment pixels.
    pub border: BorderPolicy,
    /// Upper bound on the number of processed pixels (safety valve for
    /// run-away criteria); `None` means the whole frame.
    pub max_pixels: Option<usize>,
    /// Label written by [`run_segment`] to the alpha channel of segment
    /// members (geodesic distance goes to `aux`).
    pub label: u16,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        SegmentOptions {
            connectivity: Connectivity::Con4,
            border: BorderPolicy::Clamp,
            max_pixels: None,
            label: 1,
        }
    }
}

/// One visited segment pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPixel {
    /// Position in the frame.
    pub point: Point,
    /// Geodesic distance from the seed set (seeds have distance 0).
    pub distance: u32,
}

/// Result of a segment-addressing call.
#[derive(Debug, Clone)]
pub struct SegmentResult {
    /// Frame with segment labels in alpha and geodesic distances in aux
    /// (plus any kernel output when produced by [`run_segment_op`]).
    pub output: Frame,
    /// The visited pixels in processing order (non-decreasing distance).
    pub segment: Vec<SegmentPixel>,
    /// Execution statistics.
    pub report: CallReport,
}

impl SegmentResult {
    /// The geodesic radius of the segment: the largest distance reached.
    #[must_use]
    pub fn max_distance(&self) -> u32 {
        self.segment.last().map_or(0, |s| s.distance)
    }
}

/// Expands a segment from `seeds` under `criterion`, labelling members in
/// the alpha channel and recording geodesic distance in aux.
///
/// # Errors
///
/// * [`CoreError::EmptyFrame`] for zero-area frames.
/// * [`CoreError::NoSeeds`] when `seeds` is empty.
/// * [`CoreError::OutOfBounds`] when a seed lies outside the frame.
pub fn run_segment(
    frame: &Frame,
    seeds: &[Point],
    criterion: &impl NeighborCriterion,
    options: SegmentOptions,
) -> CoreResult<SegmentResult> {
    let writer = LabelWriter::new(options.label);
    run_segment_visit(
        frame,
        seeds,
        criterion,
        options,
        options.connectivity,
        |px, dist, _window| writer.apply(px, dist),
    )
}

/// Expands a segment and additionally applies an intra kernel to every
/// member (the *"pixel processing is done in the same way as for intra
/// addressing"* part of §2.1). The kernel's output channels are merged
/// over the label writer's output.
///
/// # Errors
///
/// Same conditions as [`run_segment`].
pub fn run_segment_op(
    frame: &Frame,
    seeds: &[Point],
    criterion: &impl NeighborCriterion,
    op: &impl IntraOp,
    options: SegmentOptions,
) -> CoreResult<SegmentResult> {
    let writer = LabelWriter::new(options.label);
    let out_channels = op.output_channels();
    // The kernel needs its own window shape, which may differ from the
    // expansion connectivity (e.g. a CON_8 Sobel inside a CON_4 expansion).
    run_segment_visit(
        frame,
        seeds,
        criterion,
        options,
        op.shape(),
        |px, dist, window| {
            let mut out = writer.apply(px, dist);
            out.merge_channels(op.apply(window), out_channels);
            out
        },
    )
}

fn run_segment_visit(
    frame: &Frame,
    seeds: &[Point],
    criterion: &impl NeighborCriterion,
    options: SegmentOptions,
    gather_shape: Connectivity,
    mut visit: impl FnMut(Pixel, u32, &Window) -> Pixel,
) -> CoreResult<SegmentResult> {
    if frame.dims().is_empty() {
        return Err(CoreError::EmptyFrame);
    }
    if seeds.is_empty() {
        return Err(CoreError::NoSeeds);
    }
    for &seed in seeds {
        if !frame.dims().contains(seed) {
            return Err(CoreError::OutOfBounds {
                point: seed,
                dims: frame.dims(),
            });
        }
    }

    let descriptor = CallDescriptor::segment(
        options.connectivity,
        ChannelSet::Y,
        ChannelSet::ALPHA.union(ChannelSet::AUX),
    );
    let per_pixel_reads = descriptor.software_accesses_per_pixel() - 1;
    let mut counter = AccessCounter::new();

    let dims = frame.dims();
    let mut output = frame.clone();
    let mut scheduled = vec![false; dims.pixel_count()];
    let mut queue: VecDeque<SegmentPixel> = VecDeque::new();
    for &seed in seeds {
        let idx = dims.index_of(seed);
        if !scheduled[idx] {
            scheduled[idx] = true;
            queue.push_back(SegmentPixel {
                point: seed,
                distance: 0,
            });
        }
    }

    let budget = options.max_pixels.unwrap_or(dims.pixel_count());
    let offsets = options.connectivity.expansion_offsets();
    let mut segment = Vec::new();

    while let Some(current) = queue.pop_front() {
        if segment.len() >= budget {
            break;
        }
        // Process like an intra pixel: gather the window, apply the visit.
        let window = Window::gather(frame, current.point, gather_shape, options.border);
        counter.read(per_pixel_reads);
        let out = visit(frame.get(current.point), current.distance, &window);
        output.set(current.point, out);
        counter.write(1);
        segment.push(current);

        // Expansion: test unprocessed neighbours against the criterion.
        let from = frame.get(current.point);
        for off in &offsets {
            let np = current.point + *off;
            if !dims.contains(np) {
                continue;
            }
            let idx = dims.index_of(np);
            if scheduled[idx] {
                continue;
            }
            counter.read(1); // candidate test reads its pixel
            if criterion.admits(from, frame.get(np)) {
                scheduled[idx] = true;
                queue.push_back(SegmentPixel {
                    point: np,
                    distance: current.distance + 1,
                });
            }
        }
    }

    let processed = segment.len() as u64;
    Ok(SegmentResult {
        output,
        segment,
        report: CallReport {
            descriptor,
            dims,
            pixels_processed: processed,
            op_applies: processed,
            counter,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;
    use crate::ops::filter::SobelGradient;
    use crate::ops::segment_ops::{AlphaMaskCriterion, BandCriterion, HomogeneityCriterion};

    /// 7x7 frame: bright 3x3 block at (2..5, 2..5) on dark background.
    fn block_frame() -> Frame {
        Frame::from_fn(Dims::new(7, 7), |p| {
            if (2..5).contains(&p.x) && (2..5).contains(&p.y) {
                Pixel::from_luma(200)
            } else {
                Pixel::from_luma(10)
            }
        })
    }

    #[test]
    fn expands_exactly_the_block() {
        let f = block_frame();
        let r = run_segment(
            &f,
            &[Point::new(3, 3)],
            &HomogeneityCriterion::luma(20),
            SegmentOptions::default(),
        )
        .unwrap();
        assert_eq!(r.segment.len(), 9);
        // All members labelled, all non-members untouched.
        for (p, px) in r.output.enumerate() {
            let inside = (2..5).contains(&p.x) && (2..5).contains(&p.y);
            assert_eq!(px.alpha != 0, inside, "at {p}");
        }
    }

    #[test]
    fn geodesic_order_non_decreasing() {
        let f = block_frame();
        let r = run_segment(
            &f,
            &[Point::new(2, 2)],
            &HomogeneityCriterion::luma(20),
            SegmentOptions::default(),
        )
        .unwrap();
        let dists: Vec<u32> = r.segment.iter().map(|s| s.distance).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
        // Corner seed: farthest block pixel (4,4) is 4 city-block steps away.
        assert_eq!(r.max_distance(), 4);
    }

    #[test]
    fn distance_written_to_aux() {
        let f = block_frame();
        let r = run_segment(
            &f,
            &[Point::new(2, 2)],
            &HomogeneityCriterion::luma(20),
            SegmentOptions::default(),
        )
        .unwrap();
        assert_eq!(r.output.get(Point::new(2, 2)).aux, 0);
        assert_eq!(r.output.get(Point::new(4, 4)).aux, 4);
        assert_eq!(r.output.get(Point::new(3, 2)).aux, 1);
    }

    #[test]
    fn con8_reaches_diagonals_in_one_step() {
        let f = block_frame();
        let opts = SegmentOptions {
            connectivity: Connectivity::Con8,
            ..SegmentOptions::default()
        };
        let r = run_segment(&f, &[Point::new(3, 3)], &HomogeneityCriterion::luma(20), opts)
            .unwrap();
        assert_eq!(r.segment.len(), 9);
        assert_eq!(r.max_distance(), 1); // all 8 neighbours at distance 1
    }

    #[test]
    fn multiple_seeds_share_distance_zero() {
        let f = block_frame();
        let r = run_segment(
            &f,
            &[Point::new(2, 2), Point::new(4, 4)],
            &HomogeneityCriterion::luma(20),
            SegmentOptions::default(),
        )
        .unwrap();
        assert_eq!(r.output.get(Point::new(2, 2)).aux, 0);
        assert_eq!(r.output.get(Point::new(4, 4)).aux, 0);
        // (3,3) is diagonal to both seeds: two CON_4 steps from either.
        assert_eq!(r.output.get(Point::new(3, 3)).aux, 2);
        assert_eq!(r.segment.len(), 9);
    }

    #[test]
    fn duplicate_seeds_processed_once() {
        let f = block_frame();
        let seeds = [Point::new(3, 3), Point::new(3, 3)];
        let r = run_segment(
            &f,
            &seeds,
            &HomogeneityCriterion::luma(20),
            SegmentOptions::default(),
        )
        .unwrap();
        assert_eq!(
            r.segment.iter().filter(|s| s.point == Point::new(3, 3)).count(),
            1
        );
    }

    #[test]
    fn errors() {
        let f = block_frame();
        assert!(matches!(
            run_segment(&f, &[], &HomogeneityCriterion::luma(1), SegmentOptions::default()),
            Err(CoreError::NoSeeds)
        ));
        assert!(matches!(
            run_segment(
                &f,
                &[Point::new(99, 0)],
                &HomogeneityCriterion::luma(1),
                SegmentOptions::default()
            ),
            Err(CoreError::OutOfBounds { .. })
        ));
        let empty = Frame::new(Dims::new(0, 0));
        assert!(matches!(
            run_segment(&empty, &[Point::ORIGIN], &HomogeneityCriterion::luma(1), SegmentOptions::default()),
            Err(CoreError::EmptyFrame)
        ));
    }

    #[test]
    fn max_pixels_budget_stops_expansion() {
        let f = Frame::filled(Dims::new(10, 10), Pixel::from_luma(50));
        let opts = SegmentOptions {
            max_pixels: Some(5),
            ..SegmentOptions::default()
        };
        let r = run_segment(&f, &[Point::new(5, 5)], &HomogeneityCriterion::luma(5), opts)
            .unwrap();
        assert_eq!(r.segment.len(), 5);
    }

    #[test]
    fn band_criterion_flood_fill() {
        let f = block_frame();
        let r = run_segment(
            &f,
            &[Point::new(0, 0)],
            &BandCriterion::new(0, 50),
            SegmentOptions::default(),
        )
        .unwrap();
        // Fills the dark background: 49 − 9 = 40 pixels.
        assert_eq!(r.segment.len(), 40);
    }

    #[test]
    fn alpha_mask_walk() {
        let mut f = Frame::new(Dims::new(5, 1));
        for x in 0..3 {
            f.get_mut(Point::new(x, 0)).alpha = 1;
        }
        let r = run_segment(
            &f,
            &[Point::new(0, 0)],
            &AlphaMaskCriterion::new(),
            SegmentOptions {
                label: 7,
                ..SegmentOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.segment.len(), 3);
        assert_eq!(r.output.get(Point::new(1, 0)).alpha, 7);
        assert_eq!(r.output.get(Point::new(3, 0)).alpha, 0);
    }

    #[test]
    fn segment_op_applies_kernel_to_members() {
        let f = block_frame();
        let r = run_segment_op(
            &f,
            &[Point::new(3, 3)],
            &HomogeneityCriterion::luma(20),
            &SobelGradient::new(),
            SegmentOptions {
                connectivity: Connectivity::Con8,
                ..SegmentOptions::default()
            },
        )
        .unwrap();
        // Centre of the block: flat 200 neighbourhood → zero gradient.
        assert_eq!(r.output.get(Point::new(3, 3)).y, 0);
        // Block corner touches background → strong gradient.
        assert!(r.output.get(Point::new(2, 2)).y > 0);
        // Labels still written.
        assert_eq!(r.output.get(Point::new(3, 3)).alpha, 1);
        // Outside pixels untouched.
        assert_eq!(r.output.get(Point::new(0, 0)).y, 10);
    }

    #[test]
    fn segment_op_uses_kernel_shape_not_expansion_shape() {
        // Regression: a CON_8 kernel inside the default CON_4 expansion
        // must still see its full 3×3 window.
        let f = block_frame();
        let r = run_segment_op(
            &f,
            &[Point::new(3, 3)],
            &HomogeneityCriterion::luma(20),
            &SobelGradient::new(),
            SegmentOptions::default(), // CON_4 expansion
        )
        .unwrap();
        // Compare against a plain intra Sobel at the same points.
        let sw = crate::addressing::intra::run_intra(&f, &SobelGradient::new())
            .unwrap()
            .output;
        for member in &r.segment {
            assert_eq!(
                r.output.get(member.point).y,
                sw.get(member.point).y,
                "kernel output must match the intra pass at {}",
                member.point
            );
        }
    }

    #[test]
    fn report_counts_accesses() {
        let f = block_frame();
        let r = run_segment(
            &f,
            &[Point::new(3, 3)],
            &HomogeneityCriterion::luma(20),
            SegmentOptions::default(),
        )
        .unwrap();
        assert_eq!(r.report.pixels_processed, 9);
        assert!(r.report.counter.reads() > 0);
        assert_eq!(r.report.counter.writes(), 9);
        assert_eq!(
            r.report.descriptor.mode,
            crate::accounting::AddressingMode::Segment
        );
    }

    #[test]
    fn seed_not_matching_criterion_still_processed() {
        // Seeds are processed unconditionally; the criterion gates only
        // the expansion (per §2.1 the start pixels are given).
        let f = block_frame();
        let r = run_segment(
            &f,
            &[Point::new(0, 0)],
            &HomogeneityCriterion::luma(0),
            SegmentOptions::default(),
        )
        .unwrap();
        assert!(!r.segment.is_empty());
        assert_eq!(r.segment[0].point, Point::new(0, 0));
    }
}
