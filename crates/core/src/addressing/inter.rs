//! Inter addressing: *"a result for each pixel position is calculated
//! using data from two different frames"* (§2.1).
//!
//! # Examples
//!
//! ```
//! use vip_core::addressing::inter::run_inter;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::ops::arith::AbsDiff;
//! use vip_core::pixel::Pixel;
//!
//! let a = Frame::filled(Dims::new(4, 4), Pixel::from_luma(100));
//! let b = Frame::filled(Dims::new(4, 4), Pixel::from_luma(90));
//! let result = run_inter(&a, &b, &AbsDiff::luma())?;
//! assert!(result.output.pixels().iter().all(|p| p.y == 10));
//! # Ok::<(), vip_core::error::CoreError>(())
//! ```

use crate::accounting::{AccessCounter, CallDescriptor};
use crate::addressing::CallReport;
use crate::error::{CoreError, CoreResult};
use crate::frame::Frame;
use crate::ops::InterOp;
use crate::scan::{scan_points, ScanOrder};

/// Result of an inter call: the output frame plus the execution report.
#[derive(Debug, Clone)]
pub struct InterResult {
    /// The produced frame. Channels outside the kernel's output set carry
    /// the corresponding values of frame A.
    pub output: Frame,
    /// Execution statistics for accounting and dispatch counting.
    pub report: CallReport,
}

/// Runs an inter-addressing call over two frames with the default
/// row-major scan.
///
/// # Errors
///
/// Returns [`CoreError::DimsMismatch`] when the frames differ in size and
/// [`CoreError::EmptyFrame`] when they have zero area.
pub fn run_inter(a: &Frame, b: &Frame, op: &impl InterOp) -> CoreResult<InterResult> {
    run_inter_scanned(a, b, op, ScanOrder::RowMajor)
}

/// Runs an inter-addressing call with an explicit scan order.
///
/// The scan order does not change the result (inter kernels are pointwise)
/// but determines the access pattern, which the engine simulator's strip
/// transfer mirrors.
///
/// # Errors
///
/// Returns [`CoreError::DimsMismatch`] when the frames differ in size and
/// [`CoreError::EmptyFrame`] when they have zero area.
pub fn run_inter_scanned(
    a: &Frame,
    b: &Frame,
    op: &impl InterOp,
    scan: ScanOrder,
) -> CoreResult<InterResult> {
    if a.dims() != b.dims() {
        return Err(CoreError::DimsMismatch {
            left: a.dims(),
            right: b.dims(),
        });
    }
    if a.dims().is_empty() {
        return Err(CoreError::EmptyFrame);
    }

    let descriptor = CallDescriptor::inter(op.input_channels(), op.output_channels());
    let mut counter = AccessCounter::new();
    let mut output = a.clone();
    let per_pixel_reads = descriptor.software_accesses_per_pixel() - 1;

    let mut applied = 0u64;
    for p in scan_points(a.dims(), scan) {
        let pa = a.get(p);
        let pb = b.get(p);
        counter.read(per_pixel_reads);
        let result = op.apply(pa, pb);
        let mut out = pa;
        out.merge_channels(result, op.output_channels());
        output.set(p, out);
        counter.write(1);
        applied += 1;
    }

    Ok(InterResult {
        output,
        report: CallReport {
            descriptor,
            dims: a.dims(),
            pixels_processed: applied,
            op_applies: applied,
            counter,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Dims, Point};
    use crate::ops::arith::{AbsDiff, Add, ChangeMask, Sub};
    use crate::pixel::{ChannelSet, Pixel};

    fn frames() -> (Frame, Frame) {
        let a = Frame::from_fn(Dims::new(4, 3), |p| {
            Pixel::from_yuv((p.x * 10) as u8, 100, 50).with_alpha(7)
        });
        let b = Frame::from_fn(Dims::new(4, 3), |p| {
            Pixel::from_yuv((p.y * 20) as u8, 90, 60)
        });
        (a, b)
    }

    #[test]
    fn absdiff_pointwise() {
        let (a, b) = frames();
        let r = run_inter(&a, &b, &AbsDiff::luma()).unwrap();
        for (p, px) in r.output.enumerate() {
            let expect = ((p.x * 10) as u8).abs_diff((p.y * 20) as u8);
            assert_eq!(px.y, expect, "at {p}");
            // Non-output channels come from frame A.
            assert_eq!(px.u, 100);
            assert_eq!(px.alpha, 7);
        }
    }

    #[test]
    fn report_matches_table2_model() {
        let (a, b) = frames();
        let r = run_inter(&a, &b, &AbsDiff::luma()).unwrap();
        let model = r.report.access_model();
        // Empirical counter equals the analytic software model.
        assert_eq!(r.report.counter.total(), model.software_accesses);
        assert_eq!(r.report.pixels_processed, 12);
        assert_eq!(r.report.counter.total(), 12 * 3);
    }

    #[test]
    fn yuv_kernel_counts_more_accesses() {
        let (a, b) = frames();
        let y = run_inter(&a, &b, &AbsDiff::luma()).unwrap();
        let yuv = run_inter(&a, &b, &AbsDiff::yuv()).unwrap();
        assert!(yuv.report.counter.total() > y.report.counter.total());
        // YUV inter: 2 frames × 3 channels + 1 write = 7/pixel.
        assert_eq!(yuv.report.counter.total(), 12 * 7);
    }

    #[test]
    fn dims_mismatch_rejected() {
        let a = Frame::new(Dims::new(2, 2));
        let b = Frame::new(Dims::new(2, 3));
        assert!(matches!(
            run_inter(&a, &b, &Add::luma()),
            Err(CoreError::DimsMismatch { .. })
        ));
    }

    #[test]
    fn empty_frames_rejected() {
        let a = Frame::new(Dims::new(0, 0));
        assert!(matches!(
            run_inter(&a, &a, &Add::luma()),
            Err(CoreError::EmptyFrame)
        ));
    }

    #[test]
    fn scan_order_does_not_change_result() {
        let (a, b) = frames();
        let base = run_inter(&a, &b, &Sub::yuv()).unwrap().output;
        for order in ScanOrder::ALL {
            let r = run_inter_scanned(&a, &b, &Sub::yuv(), order).unwrap();
            assert_eq!(r.output, base, "{order}");
        }
    }

    #[test]
    fn change_mask_merges_alpha_output() {
        let (a, b) = frames();
        let r = run_inter(&a, &b, &ChangeMask::new(15)).unwrap();
        let px = r.output.get(Point::new(3, 0)); // |30 - 0| = 30 > 15
        assert_eq!(px.alpha, 1);
        let px2 = r.output.get(Point::new(0, 0)); // |0 - 0| = 0
        assert_eq!(px2.alpha, 0);
        assert_eq!(
            r.report.descriptor.output_channels,
            ChannelSet::Y.union(ChannelSet::ALPHA)
        );
    }

    #[test]
    fn descriptor_mode_is_inter() {
        let (a, b) = frames();
        let r = run_inter(&a, &b, &Add::luma()).unwrap();
        assert_eq!(
            r.report.descriptor.mode,
            crate::accounting::AddressingMode::Inter
        );
    }
}
