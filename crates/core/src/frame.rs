//! The frame container: a row-major grid of 64-bit [`Pixel`]s.
//!
//! A [`Frame`] is the unit of data that an AddressLib call reads and writes.
//! The AddressEngine board stores *two input and one output* frame of either
//! QCIF or CIF format in its ZBT memory (§3.1 of the paper).
//!
//! # Examples
//!
//! ```
//! use vip_core::frame::Frame;
//! use vip_core::geometry::{Dims, Point};
//! use vip_core::pixel::Pixel;
//!
//! let mut frame = Frame::filled(Dims::new(8, 8), Pixel::from_luma(10));
//! frame.set(Point::new(3, 4), Pixel::from_luma(200));
//! assert_eq!(frame.get(Point::new(3, 4)).y, 200);
//! ```

use core::fmt;

use crate::error::{CoreError, CoreResult};
use crate::geometry::{Dims, ImageFormat, Point, Rect};
use crate::pixel::{Channel, Pixel};

/// A row-major frame of [`Pixel`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Frame {
    dims: Dims,
    data: Vec<Pixel>,
}

impl Frame {
    /// Creates a frame of the given size with all pixels defaulted
    /// (black, zero side channels).
    ///
    /// # Examples
    ///
    /// ```
    /// use vip_core::frame::Frame;
    /// use vip_core::geometry::Dims;
    /// let f = Frame::new(Dims::new(2, 2));
    /// assert_eq!(f.pixel_count(), 4);
    /// ```
    #[must_use]
    pub fn new(dims: Dims) -> Self {
        Frame::filled(dims, Pixel::default())
    }

    /// Creates a frame in one of the standard formats.
    #[must_use]
    pub fn with_format(format: ImageFormat) -> Self {
        Frame::new(format.dims())
    }

    /// Creates a frame with every pixel set to `fill`.
    #[must_use]
    pub fn filled(dims: Dims, fill: Pixel) -> Self {
        Frame {
            dims,
            data: vec![fill; dims.pixel_count()],
        }
    }

    /// Creates a frame by evaluating `f` at every position (row-major).
    ///
    /// # Examples
    ///
    /// ```
    /// use vip_core::frame::Frame;
    /// use vip_core::geometry::Dims;
    /// use vip_core::pixel::Pixel;
    ///
    /// let ramp = Frame::from_fn(Dims::new(4, 1), |p| Pixel::from_luma(p.x as u8 * 10));
    /// assert_eq!(ramp.get((2, 0).into()).y, 20);
    /// ```
    #[must_use]
    pub fn from_fn(dims: Dims, mut f: impl FnMut(Point) -> Pixel) -> Self {
        let mut data = Vec::with_capacity(dims.pixel_count());
        for y in 0..dims.height as i32 {
            for x in 0..dims.width as i32 {
                data.push(f(Point::new(x, y)));
            }
        }
        Frame { dims, data }
    }

    /// Creates a frame from an existing pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `data.len()` does not
    /// equal `dims.pixel_count()`.
    pub fn from_pixels(dims: Dims, data: Vec<Pixel>) -> CoreResult<Self> {
        if data.len() != dims.pixel_count() {
            return Err(CoreError::InvalidParameter {
                name: "data",
                reason: "pixel buffer length must equal dims.pixel_count()",
            });
        }
        Ok(Frame { dims, data })
    }

    /// Creates a luminance-only frame from 8-bit grey samples
    /// (chroma neutral, side channels zero).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `luma.len()` does not
    /// equal `dims.pixel_count()`.
    pub fn from_luma(dims: Dims, luma: &[u8]) -> CoreResult<Self> {
        if luma.len() != dims.pixel_count() {
            return Err(CoreError::InvalidParameter {
                name: "luma",
                reason: "luma buffer length must equal dims.pixel_count()",
            });
        }
        Ok(Frame {
            dims,
            data: luma.iter().map(|&y| Pixel::from_luma(y)).collect(),
        })
    }

    /// Frame dimensions.
    #[must_use]
    pub const fn dims(&self) -> Dims {
        self.dims
    }

    /// Frame width in pixels.
    #[must_use]
    pub const fn width(&self) -> usize {
        self.dims.width
    }

    /// Frame height in pixels (lines).
    #[must_use]
    pub const fn height(&self) -> usize {
        self.dims.height
    }

    /// Total number of pixels.
    #[must_use]
    pub const fn pixel_count(&self) -> usize {
        self.dims.pixel_count()
    }

    /// Detected standard format, if the dimensions match one.
    #[must_use]
    pub fn format(&self) -> Option<ImageFormat> {
        ImageFormat::from_dims(self.dims)
    }

    /// Reads the pixel at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds; use [`Frame::try_get`] for a checked
    /// variant.
    #[must_use]
    pub fn get(&self, p: Point) -> Pixel {
        self.data[self.dims.index_of(p)]
    }

    /// Reads the pixel at `p`, or `None` when out of bounds.
    #[must_use]
    pub fn try_get(&self, p: Point) -> Option<Pixel> {
        if self.dims.contains(p) {
            Some(self.data[self.dims.index_of(p)])
        } else {
            None
        }
    }

    /// Writes the pixel at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds; use [`Frame::try_set`] for a checked
    /// variant.
    pub fn set(&mut self, p: Point, pixel: Pixel) {
        let idx = self.dims.index_of(p);
        self.data[idx] = pixel;
    }

    /// Writes the pixel at `p`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfBounds`] when `p` lies outside the frame.
    pub fn try_set(&mut self, p: Point, pixel: Pixel) -> CoreResult<()> {
        if !self.dims.contains(p) {
            return Err(CoreError::OutOfBounds {
                point: p,
                dims: self.dims,
            });
        }
        self.set(p, pixel);
        Ok(())
    }

    /// Mutable access to the pixel at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of bounds.
    pub fn get_mut(&mut self, p: Point) -> &mut Pixel {
        let idx = self.dims.index_of(p);
        &mut self.data[idx]
    }

    /// Borrows one line (row) of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `line >= height`.
    #[must_use]
    pub fn line(&self, line: usize) -> &[Pixel] {
        assert!(line < self.dims.height, "line {line} out of bounds");
        let start = line * self.dims.width;
        &self.data[start..start + self.dims.width]
    }

    /// Mutably borrows one line (row) of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `line >= height`.
    pub fn line_mut(&mut self, line: usize) -> &mut [Pixel] {
        assert!(line < self.dims.height, "line {line} out of bounds");
        let start = line * self.dims.width;
        &mut self.data[start..start + self.dims.width]
    }

    /// The whole pixel buffer in row-major order.
    #[must_use]
    pub fn pixels(&self) -> &[Pixel] {
        &self.data
    }

    /// Mutable view of the whole pixel buffer in row-major order.
    pub fn pixels_mut(&mut self) -> &mut [Pixel] {
        &mut self.data
    }

    /// Consumes the frame and returns its pixel buffer.
    #[must_use]
    pub fn into_pixels(self) -> Vec<Pixel> {
        self.data
    }

    /// Iterates over `(Point, Pixel)` pairs in row-major order.
    pub fn enumerate(&self) -> impl Iterator<Item = (Point, Pixel)> + '_ {
        let w = self.dims.width;
        self.data.iter().enumerate().map(move |(i, &px)| {
            (Point::new((i % w) as i32, (i / w) as i32), px)
        })
    }

    /// Extracts one channel as a plane of widened samples.
    #[must_use]
    pub fn channel_plane(&self, channel: Channel) -> Vec<u16> {
        self.data.iter().map(|p| p.channel(channel)).collect()
    }

    /// Extracts the luminance plane as bytes (useful for image I/O).
    #[must_use]
    pub fn luma_plane(&self) -> Vec<u8> {
        self.data.iter().map(|p| p.y).collect()
    }

    /// Copies the rectangle `src_rect` of `src` to position `dst_pos` of
    /// `self`, clipping against both frames.
    ///
    /// Returns the number of pixels copied.
    pub fn blit(&mut self, src: &Frame, src_rect: Rect, dst_pos: Point) -> usize {
        let clipped = match src_rect.intersect(&src.dims.bounds()) {
            Some(r) => r,
            None => return 0,
        };
        // Keep source↔destination correspondence when the source
        // rectangle was clipped at its top/left edge.
        let shift = Point::new(clipped.x - src_rect.x, clipped.y - src_rect.y);
        let src_rect = clipped;
        let mut copied = 0;
        for dy in 0..src_rect.height as i32 {
            for dx in 0..src_rect.width as i32 {
                let sp = Point::new(src_rect.x + dx, src_rect.y + dy);
                let dp = dst_pos.offset(dx + shift.x, dy + shift.y);
                if self.dims.contains(dp) {
                    let px = src.get(sp);
                    self.set(dp, px);
                    copied += 1;
                }
            }
        }
        copied
    }

    /// Sum of absolute luminance differences against another frame.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimsMismatch`] when the frames differ in size.
    pub fn luma_sad(&self, other: &Frame) -> CoreResult<u64> {
        if self.dims != other.dims {
            return Err(CoreError::DimsMismatch {
                left: self.dims,
                right: other.dims,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| u64::from(a.y.abs_diff(b.y)))
            .sum())
    }

    /// Mean luminance of the frame (0 for an empty frame).
    #[must_use]
    pub fn mean_luma(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|p| f64::from(p.y)).sum::<f64>() / self.data.len() as f64
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame({})", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::ChannelSet;

    fn ramp(dims: Dims) -> Frame {
        Frame::from_fn(dims, |p| {
            Pixel::from_luma((p.y as usize * dims.width + p.x as usize) as u8)
        })
    }

    #[test]
    fn new_is_black() {
        let f = Frame::new(Dims::new(3, 2));
        assert_eq!(f.pixel_count(), 6);
        assert!(f.pixels().iter().all(|&p| p == Pixel::default()));
    }

    #[test]
    fn with_format_sizes() {
        assert_eq!(Frame::with_format(ImageFormat::Cif).pixel_count(), 101_376);
        assert_eq!(
            Frame::with_format(ImageFormat::Qcif).format(),
            Some(ImageFormat::Qcif)
        );
    }

    #[test]
    fn from_fn_row_major() {
        let f = ramp(Dims::new(4, 2));
        assert_eq!(f.get(Point::new(0, 0)).y, 0);
        assert_eq!(f.get(Point::new(3, 0)).y, 3);
        assert_eq!(f.get(Point::new(0, 1)).y, 4);
    }

    #[test]
    fn from_pixels_validates_length() {
        let err = Frame::from_pixels(Dims::new(2, 2), vec![Pixel::default(); 3]);
        assert!(err.is_err());
        let ok = Frame::from_pixels(Dims::new(2, 2), vec![Pixel::default(); 4]);
        assert!(ok.is_ok());
    }

    #[test]
    fn from_luma_roundtrip() {
        let f = Frame::from_luma(Dims::new(2, 2), &[1, 2, 3, 4]).unwrap();
        assert_eq!(f.luma_plane(), vec![1, 2, 3, 4]);
        assert!(Frame::from_luma(Dims::new(2, 2), &[1]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut f = Frame::new(Dims::new(2, 2));
        let p = Pixel::new(1, 2, 3, 4, 5);
        f.set(Point::new(1, 1), p);
        assert_eq!(f.get(Point::new(1, 1)), p);
        assert_eq!(f.try_get(Point::new(2, 0)), None);
        assert!(f.try_set(Point::new(0, 2), p).is_err());
        f.get_mut(Point::new(0, 0)).y = 9;
        assert_eq!(f.get(Point::new(0, 0)).y, 9);
    }

    #[test]
    fn line_access() {
        let f = ramp(Dims::new(3, 2));
        assert_eq!(f.line(1).iter().map(|p| p.y).collect::<Vec<_>>(), [3, 4, 5]);
        let mut g = f.clone();
        g.line_mut(0)[2] = Pixel::from_luma(99);
        assert_eq!(g.get(Point::new(2, 0)).y, 99);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn line_out_of_bounds_panics() {
        let f = Frame::new(Dims::new(2, 2));
        let _ = f.line(2);
    }

    #[test]
    fn enumerate_visits_all_row_major() {
        let f = ramp(Dims::new(3, 2));
        let pts: Vec<_> = f.enumerate().map(|(p, px)| (p, px.y)).collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], (Point::new(0, 0), 0));
        assert_eq!(pts[4], (Point::new(1, 1), 4));
    }

    #[test]
    fn channel_plane_extraction() {
        let f = Frame::filled(Dims::new(2, 1), Pixel::new(1, 2, 3, 4, 5));
        assert_eq!(f.channel_plane(Channel::Aux), vec![5, 5]);
        assert_eq!(f.channel_plane(Channel::U), vec![2, 2]);
    }

    #[test]
    fn blit_clips_on_both_sides() {
        let src = Frame::filled(Dims::new(4, 4), Pixel::from_luma(7));
        let mut dst = Frame::new(Dims::new(4, 4));
        // Source rect partially outside src; destination partially outside dst.
        let n = dst.blit(&src, Rect::new(2, 2, 4, 4), Point::new(3, 3));
        assert_eq!(n, 1);
        assert_eq!(dst.get(Point::new(3, 3)).y, 7);
        assert_eq!(dst.get(Point::new(0, 0)).y, 0);
    }

    #[test]
    fn blit_clipped_source_keeps_correspondence() {
        // Regression: clipping the source rect at its top/left must shift
        // the destination by the clipped amount, not translate the block.
        let src = Frame::from_fn(Dims::new(4, 4), |p| Pixel::from_luma((p.y * 4 + p.x) as u8));
        let mut dst = Frame::new(Dims::new(8, 8));
        // src_rect starts at (-2, -2): only the src quadrant (0..2, 0..2)
        // exists, and it corresponds to dst positions (2..4, 2..4).
        let n = dst.blit(&src, Rect::new(-2, -2, 4, 4), Point::new(0, 0));
        assert_eq!(n, 4);
        assert_eq!(dst.get(Point::new(2, 2)).y, src.get(Point::new(0, 0)).y);
        assert_eq!(dst.get(Point::new(3, 3)).y, src.get(Point::new(1, 1)).y);
        assert_eq!(dst.get(Point::new(0, 0)).y, 0, "untouched");
    }

    #[test]
    fn blit_disjoint_copies_nothing() {
        let src = Frame::new(Dims::new(2, 2));
        let mut dst = Frame::new(Dims::new(2, 2));
        assert_eq!(dst.blit(&src, Rect::new(5, 5, 2, 2), Point::ORIGIN), 0);
    }

    #[test]
    fn luma_sad_and_mean() {
        let a = Frame::filled(Dims::new(2, 2), Pixel::from_luma(10));
        let b = Frame::filled(Dims::new(2, 2), Pixel::from_luma(13));
        assert_eq!(a.luma_sad(&b).unwrap(), 12);
        assert!(a.luma_sad(&Frame::new(Dims::new(1, 1))).is_err());
        assert!((a.mean_luma() - 10.0).abs() < 1e-9);
        assert_eq!(Frame::new(Dims::new(0, 0)).mean_luma(), 0.0);
    }

    #[test]
    fn merge_channels_on_frame_pixels() {
        let mut f = Frame::filled(Dims::new(1, 1), Pixel::new(1, 2, 3, 4, 5));
        let src = Pixel::new(9, 9, 9, 9, 9);
        f.get_mut(Point::ORIGIN).merge_channels(src, ChannelSet::ALPHA);
        assert_eq!(f.get(Point::ORIGIN), Pixel::new(1, 2, 3, 9, 5));
    }

    #[test]
    fn display() {
        assert_eq!(Frame::new(Dims::new(3, 2)).to_string(), "Frame(3x2)");
    }
}
