//! Neighbourhood shapes and windows.
//!
//! Intra addressing computes each output pixel from the pixel's original
//! value *and the values of its neighbours within the same image* (§2.1).
//! Table 2 of the paper names two concrete shapes: `CON_0` (the pixel
//! itself) and `CON_8` (the squared 8-pixel neighbourhood of fig. 4). The
//! transfer-strip size of 16 lines is derived from the *maximum* input
//! range of nine lines, so shapes up to 9×9 are representable.
//!
//! # Examples
//!
//! ```
//! use vip_core::neighborhood::Connectivity;
//!
//! assert_eq!(Connectivity::Con8.offsets().len(), 9); // centre + 8 neighbours
//! assert_eq!(Connectivity::Con0.offsets().len(), 1);
//! ```

use core::fmt;

use crate::border::BorderPolicy;
use crate::error::{CoreError, CoreResult};
use crate::frame::Frame;
use crate::geometry::Point;
use crate::pixel::Pixel;

/// Maximum neighbourhood extent supported by the transfer scheme: nine
/// lines (§3.1), i.e. a radius of four around the centre pixel.
pub const MAX_RADIUS: usize = 4;

/// Maximum number of lines a neighbourhood may span (9, per §3.1).
pub const MAX_LINES: usize = 2 * MAX_RADIUS + 1;

/// Named neighbourhood shapes of the AddressLib.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Connectivity {
    /// The pixel itself only (`CON_0` in Table 2).
    Con0,
    /// The 4-connected cross (centre + N, S, E, W).
    Con4,
    /// The squared 8-pixel neighbourhood (`CON_8` in Table 2 / fig. 4):
    /// centre + its 8 surrounding pixels, a 3×3 window.
    #[default]
    Con8,
    /// A full square window of the given radius (1 ⇒ identical to
    /// [`Connectivity::Con8`]). Radius is validated to [`MAX_RADIUS`] by
    /// [`Connectivity::try_square`].
    Square(u8),
}

impl Connectivity {
    /// Creates a square window of radius `radius`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `radius > MAX_RADIUS`
    /// (the strip scheme of §3.1 only guarantees nine lines).
    pub fn try_square(radius: usize) -> CoreResult<Self> {
        if radius > MAX_RADIUS {
            return Err(CoreError::InvalidParameter {
                name: "radius",
                reason: "neighbourhood may span at most nine lines (radius 4)",
            });
        }
        Ok(Connectivity::Square(radius as u8))
    }

    /// Window radius: the largest |offset| in either axis.
    #[must_use]
    pub const fn radius(self) -> usize {
        match self {
            Connectivity::Con0 => 0,
            Connectivity::Con4 | Connectivity::Con8 => 1,
            Connectivity::Square(r) => r as usize,
        }
    }

    /// Number of image lines the window spans (`2·radius + 1`).
    #[must_use]
    pub const fn lines(self) -> usize {
        2 * self.radius() + 1
    }

    /// The offsets of the window relative to the centre, in row-major
    /// order. The centre `(0,0)` is always included.
    ///
    /// Allocates; the hot paths (window gathers, IIM fetches) use the
    /// allocation-free [`Connectivity::offsets_iter`] instead.
    #[must_use]
    pub fn offsets(self) -> Vec<Point> {
        self.offsets_iter().collect()
    }

    /// Iterates the window offsets in the same row-major order as
    /// [`Connectivity::offsets`], without allocating.
    #[must_use]
    pub fn offsets_iter(self) -> Offsets {
        Offsets {
            shape: self,
            idx: 0,
            len: self.offset_count(),
        }
    }

    /// Number of offsets in the window.
    #[must_use]
    pub const fn offset_count(self) -> usize {
        match self {
            Connectivity::Con0 => 1,
            Connectivity::Con4 => 5,
            Connectivity::Con8 | Connectivity::Square(_) => {
                let side = 2 * self.radius() + 1;
                side * side
            }
        }
    }

    /// Whether `off` is one of the window's offsets — O(1), the hot-path
    /// replacement for `offsets().contains(&off)`.
    #[must_use]
    pub const fn contains_offset(self, off: Point) -> bool {
        match self {
            Connectivity::Con0 => off.x == 0 && off.y == 0,
            Connectivity::Con4 => off.x.abs() + off.y.abs() <= 1,
            Connectivity::Con8 | Connectivity::Square(_) => {
                let r = self.radius() as i32;
                off.x.abs() <= r && off.y.abs() <= r
            }
        }
    }

    /// The *expansion* offsets used by segment addressing: the neighbours
    /// (centre excluded) that are tested against the neighbourhood
    /// criterion.
    #[must_use]
    pub fn expansion_offsets(self) -> Vec<Point> {
        self.offsets_iter().filter(|p| *p != Point::ORIGIN).collect()
    }

    /// Number of *new* pixels that enter a sliding window per unit step in
    /// the scan direction; e.g. 3 for `CON_8` moving horizontally.
    ///
    /// This is the quantity the software memory-access model of Table 2 is
    /// built on: a software sweep re-loads exactly these pixels per step,
    /// while the AddressEngine loads them all in parallel in one IIM cycle.
    #[must_use]
    pub fn new_pixels_per_step(self) -> usize {
        match self {
            Connectivity::Con0 => 1,
            Connectivity::Con4 => 3, // leading cross arm: E plus N/S become loadable
            Connectivity::Con8 => 3,
            Connectivity::Square(r) => 2 * r as usize + 1,
        }
    }
}

/// Allocation-free iterator over a window's offsets, in row-major order
/// (see [`Connectivity::offsets_iter`]).
#[derive(Debug, Clone)]
pub struct Offsets {
    shape: Connectivity,
    idx: usize,
    len: usize,
}

/// `CON_4` offsets in row-major order.
const CON4_OFFSETS: [Point; 5] = [
    Point::new(0, -1),
    Point::new(-1, 0),
    Point::ORIGIN,
    Point::new(1, 0),
    Point::new(0, 1),
];

impl Iterator for Offsets {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.idx >= self.len {
            return None;
        }
        let i = self.idx;
        self.idx += 1;
        Some(match self.shape {
            Connectivity::Con0 => Point::ORIGIN,
            Connectivity::Con4 => CON4_OFFSETS[i],
            Connectivity::Con8 | Connectivity::Square(_) => {
                let r = self.shape.radius() as i32;
                let side = 2 * self.shape.radius() + 1;
                Point::new((i % side) as i32 - r, (i / side) as i32 - r)
            }
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Offsets {}

impl fmt::Display for Connectivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Connectivity::Con0 => f.write_str("CON_0"),
            Connectivity::Con4 => f.write_str("CON_4"),
            Connectivity::Con8 => f.write_str("CON_8"),
            Connectivity::Square(r) => write!(f, "SQ_{r}"),
        }
    }
}

/// A materialised neighbourhood: the window of pixels around one centre
/// position, as delivered to a pixel operation.
///
/// In the coprocessor this is the content of the *matrix register* filled
/// by stage 2 of the Process Unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    centre: Point,
    shape: Connectivity,
    /// `(offset, pixel)` pairs; offsets as in [`Connectivity::offsets`],
    /// minus any skipped border accesses.
    samples: Vec<(Point, Pixel)>,
}

impl Window {
    /// Gathers the window around `centre` from `frame` under `policy`.
    ///
    /// With [`BorderPolicy::Skip`], out-of-frame samples are omitted; all
    /// other policies always deliver the full window.
    #[must_use]
    pub fn gather(
        frame: &Frame,
        centre: Point,
        shape: Connectivity,
        policy: BorderPolicy,
    ) -> Window {
        let mut window = Window {
            centre,
            shape,
            samples: Vec::with_capacity(shape.offset_count()),
        };
        window.regather(frame, centre, policy);
        window
    }

    /// Re-gathers the window in place around a new `centre`, reusing the
    /// sample buffer — the allocation-free path sweep loops drive.
    /// Produces exactly the samples of
    /// [`Window::gather`]`(frame, centre, self.shape(), policy)`.
    pub fn regather(&mut self, frame: &Frame, centre: Point, policy: BorderPolicy) {
        self.centre = centre;
        self.samples.clear();
        let dims = frame.dims();
        let r = self.shape.radius() as i32;
        let side = 2 * r + 1;
        let interior = centre.x >= r
            && centre.y >= r
            && centre.x + r < dims.width as i32
            && centre.y + r < dims.height as i32;
        if interior && self.shape.offset_count() == (side * side) as usize {
            // Full-square interior window: take row slices directly — no
            // border resolution, no per-sample index arithmetic. Offsets
            // come out in the same row-major order as `offsets_iter`.
            for dy in -r..=r {
                let line = frame.line((centre.y + dy) as usize);
                let x0 = (centre.x - r) as usize;
                self.samples.extend(
                    line[x0..=(centre.x + r) as usize]
                        .iter()
                        .enumerate()
                        .map(|(i, px)| (Point::new(i as i32 - r, dy), *px)),
                );
            }
        } else if interior {
            // Sparse shape, still fully in bounds: skip border resolution.
            self.samples.extend(
                self.shape
                    .offsets_iter()
                    .map(|off| (off, frame.get(centre + off))),
            );
        } else {
            self.samples.extend(
                self.shape
                    .offsets_iter()
                    .filter_map(|off| policy.resolve(frame, centre + off).map(|px| (off, px))),
            );
        }
    }

    /// Builds a window from externally gathered `(offset, pixel)` samples
    /// — the path hardware models use when the neighbourhood comes out of
    /// an intermediate memory instead of a [`Frame`].
    ///
    /// Samples whose offsets are not part of `shape` are discarded, so a
    /// full-square fetch can back any sub-shape (the matrix register holds
    /// the full square; the operation reads its subset).
    #[must_use]
    pub fn from_samples(
        centre: Point,
        shape: Connectivity,
        samples: impl IntoIterator<Item = (Point, Pixel)>,
    ) -> Window {
        let mut collected: Vec<(Point, Pixel)> = samples
            .into_iter()
            .filter(|(off, _)| shape.contains_offset(*off))
            .collect();
        collected.sort_by_key(|(off, _)| (off.y, off.x));
        Window {
            centre,
            shape,
            samples: collected,
        }
    }

    /// The centre position in the source frame.
    #[must_use]
    pub const fn centre(&self) -> Point {
        self.centre
    }

    /// The shape this window was gathered with.
    #[must_use]
    pub const fn shape(&self) -> Connectivity {
        self.shape
    }

    /// The pixel at the centre offset.
    ///
    /// # Panics
    ///
    /// Panics if the centre sample was skipped, which cannot happen for
    /// windows gathered at in-bounds centres.
    #[must_use]
    pub fn centre_pixel(&self) -> Pixel {
        self.sample(Point::ORIGIN)
            .expect("window gathered at an in-bounds centre always contains its centre")
    }

    /// The pixel at relative offset `off`, if present.
    #[must_use]
    pub fn sample(&self, off: Point) -> Option<Pixel> {
        self.samples
            .iter()
            .find(|(o, _)| *o == off)
            .map(|(_, p)| *p)
    }

    /// Number of delivered samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were delivered (only possible under
    /// [`BorderPolicy::Skip`] with an out-of-bounds centre).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over `(offset, pixel)` samples in row-major offset order.
    pub fn iter(&self) -> impl Iterator<Item = (Point, Pixel)> + '_ {
        self.samples.iter().copied()
    }

    /// Iterates over the sample pixels only.
    pub fn pixels(&self) -> impl Iterator<Item = Pixel> + '_ {
        self.samples.iter().map(|(_, p)| *p)
    }

    /// Minimum and maximum luminance over the window, or `None` if empty.
    #[must_use]
    pub fn luma_min_max(&self) -> Option<(u8, u8)> {
        let mut it = self.pixels();
        let first = it.next()?.y;
        let (mut lo, mut hi) = (first, first);
        for p in it {
            lo = lo.min(p.y);
            hi = hi.max(p.y);
        }
        Some((lo, hi))
    }
}

impl<'a> IntoIterator for &'a Window {
    type Item = (Point, Pixel);
    type IntoIter = core::iter::Copied<core::slice::Iter<'a, (Point, Pixel)>>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;

    fn ramp() -> Frame {
        Frame::from_fn(Dims::new(5, 5), |p| {
            Pixel::from_luma((p.y * 5 + p.x) as u8)
        })
    }

    #[test]
    fn offset_counts() {
        assert_eq!(Connectivity::Con0.offsets().len(), 1);
        assert_eq!(Connectivity::Con4.offsets().len(), 5);
        assert_eq!(Connectivity::Con8.offsets().len(), 9);
        assert_eq!(Connectivity::Square(2).offsets().len(), 25);
        assert_eq!(Connectivity::Square(4).offsets().len(), 81);
    }

    #[test]
    fn centre_always_included() {
        for c in [
            Connectivity::Con0,
            Connectivity::Con4,
            Connectivity::Con8,
            Connectivity::Square(3),
        ] {
            assert!(c.offsets().contains(&Point::ORIGIN), "{c}");
            assert!(!c.expansion_offsets().contains(&Point::ORIGIN), "{c}");
        }
    }

    #[test]
    fn regather_matches_gather_everywhere() {
        // The in-place refill must be sample-for-sample identical to a
        // fresh gather at every position (interior fast path, sparse
        // shapes, and all border policies), for any previous centre.
        let f = ramp();
        let policies = [
            BorderPolicy::Clamp,
            BorderPolicy::Mirror,
            BorderPolicy::Wrap,
            BorderPolicy::Constant(Pixel::from_luma(7)),
            BorderPolicy::Skip,
        ];
        for shape in [
            Connectivity::Con0,
            Connectivity::Con4,
            Connectivity::Con8,
            Connectivity::Square(2),
        ] {
            for policy in policies {
                let mut reused = Window::from_samples(Point::ORIGIN, shape, std::iter::empty());
                for y in 0..5 {
                    for x in 0..5 {
                        let p = Point::new(x, y);
                        reused.regather(&f, p, policy);
                        let fresh = Window::gather(&f, p, shape, policy);
                        assert_eq!(reused.centre(), fresh.centre(), "{shape} {policy} {p}");
                        assert_eq!(
                            reused.iter().collect::<Vec<_>>(),
                            fresh.iter().collect::<Vec<_>>(),
                            "{shape} {policy} {p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn offsets_iter_matches_offsets_everywhere() {
        for c in [
            Connectivity::Con0,
            Connectivity::Con4,
            Connectivity::Con8,
            Connectivity::Square(2),
            Connectivity::Square(4),
        ] {
            let vec = c.offsets();
            let iter: Vec<Point> = c.offsets_iter().collect();
            assert_eq!(iter, vec, "{c}");
            assert_eq!(c.offsets_iter().len(), c.offset_count(), "{c}");
            // O(1) membership agrees with the list on a superset of points.
            for y in -5..=5 {
                for x in -5..=5 {
                    let p = Point::new(x, y);
                    assert_eq!(c.contains_offset(p), vec.contains(&p), "{c} at {p}");
                }
            }
        }
    }

    #[test]
    fn radius_and_lines_match_paper_limit() {
        assert_eq!(Connectivity::Con8.lines(), 3);
        assert_eq!(Connectivity::Square(4).lines(), MAX_LINES);
        assert_eq!(MAX_LINES, 9); // §3.1: nine lines max
        assert!(Connectivity::try_square(4).is_ok());
        assert!(Connectivity::try_square(5).is_err());
    }

    #[test]
    fn new_pixels_per_step_for_table2_model() {
        // CON_8 sliding horizontally loads one new 3-pixel column per step.
        assert_eq!(Connectivity::Con8.new_pixels_per_step(), 3);
        assert_eq!(Connectivity::Con0.new_pixels_per_step(), 1);
        assert_eq!(Connectivity::Square(2).new_pixels_per_step(), 5);
    }

    #[test]
    fn gather_interior_full_window() {
        let f = ramp();
        let w = Window::gather(&f, Point::new(2, 2), Connectivity::Con8, BorderPolicy::Clamp);
        assert_eq!(w.len(), 9);
        assert_eq!(w.centre_pixel().y, 12);
        assert_eq!(w.sample(Point::new(-1, -1)).unwrap().y, 6);
        assert_eq!(w.sample(Point::new(1, 1)).unwrap().y, 18);
        assert_eq!(w.sample(Point::new(2, 2)), None); // outside shape
    }

    #[test]
    fn gather_corner_clamps() {
        let f = ramp();
        let w = Window::gather(&f, Point::ORIGIN, Connectivity::Con8, BorderPolicy::Clamp);
        assert_eq!(w.len(), 9);
        // North-west neighbour clamps to (0,0).
        assert_eq!(w.sample(Point::new(-1, -1)).unwrap().y, 0);
    }

    #[test]
    fn gather_corner_skip_shrinks() {
        let f = ramp();
        let w = Window::gather(&f, Point::ORIGIN, Connectivity::Con8, BorderPolicy::Skip);
        assert_eq!(w.len(), 4); // 2x2 in-frame quadrant
        assert!(!w.is_empty());
    }

    #[test]
    fn gather_constant_fills_outside() {
        let f = ramp();
        let pol = BorderPolicy::Constant(Pixel::from_luma(77));
        let w = Window::gather(&f, Point::ORIGIN, Connectivity::Con8, pol);
        assert_eq!(w.sample(Point::new(-1, -1)).unwrap().y, 77);
        assert_eq!(w.sample(Point::new(1, 1)).unwrap().y, 6);
    }

    #[test]
    fn luma_min_max() {
        let f = ramp();
        let w = Window::gather(&f, Point::new(2, 2), Connectivity::Con8, BorderPolicy::Clamp);
        assert_eq!(w.luma_min_max(), Some((6, 18)));
        let empty = Window {
            centre: Point::ORIGIN,
            shape: Connectivity::Con0,
            samples: vec![],
        };
        assert_eq!(empty.luma_min_max(), None);
        assert!(empty.is_empty());
    }

    #[test]
    fn window_iteration() {
        let f = ramp();
        let w = Window::gather(&f, Point::new(1, 1), Connectivity::Con4, BorderPolicy::Clamp);
        assert_eq!(w.iter().count(), 5);
        assert_eq!((&w).into_iter().count(), 5);
        assert_eq!(w.pixels().count(), 5);
        assert_eq!(w.shape(), Connectivity::Con4);
        assert_eq!(w.centre(), Point::new(1, 1));
    }

    #[test]
    fn from_samples_matches_gather() {
        let f = ramp();
        let centre = Point::new(2, 2);
        let direct = Window::gather(&f, centre, Connectivity::Con8, BorderPolicy::Clamp);
        let rebuilt = Window::from_samples(centre, Connectivity::Con8, direct.iter());
        assert_eq!(rebuilt, direct);
    }

    #[test]
    fn from_samples_filters_to_shape() {
        let f = ramp();
        let centre = Point::new(2, 2);
        // Gather the full square, rebuild as CON_4: extra corners dropped.
        let square = Window::gather(&f, centre, Connectivity::Con8, BorderPolicy::Clamp);
        let cross = Window::from_samples(centre, Connectivity::Con4, square.iter());
        assert_eq!(cross.len(), 5);
        let direct = Window::gather(&f, centre, Connectivity::Con4, BorderPolicy::Clamp);
        for off in Connectivity::Con4.offsets() {
            assert_eq!(cross.sample(off), direct.sample(off), "offset {off}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Connectivity::Con0.to_string(), "CON_0");
        assert_eq!(Connectivity::Con8.to_string(), "CON_8");
        assert_eq!(Connectivity::Square(3).to_string(), "SQ_3");
    }
}
