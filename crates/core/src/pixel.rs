//! The 64-bit pixel type of the AddressLib.
//!
//! The paper stores each pixel as 64 bits: 8 bits for each of the `Y`, `U`
//! and `V` video channels plus 16 bits for each of the `Alpha` and `Aux`
//! channels (§3.1: *"the pixel size is 64 bits (i.e. 8 bits per Y,U,V
//! channels and 16 bits per Alfa and Aux channels)"*). Because the on-board
//! ZBT memory is 32 bits wide, a pixel occupies exactly two 32-bit words:
//! the *low word* carries `Y`, `U`, `V` (and 8 bits of padding), the *high
//! word* carries `Alpha` and `Aux`. The AddressEngine stores both words at
//! the same address of two different ZBT banks so that a whole pixel is
//! fetched in a single memory cycle.
//!
//! # Examples
//!
//! ```
//! use vip_core::pixel::Pixel;
//!
//! let p = Pixel::from_yuv(16, 128, 128).with_alpha(7).with_aux(42);
//! assert_eq!(p.y, 16);
//! let (lo, hi) = p.to_words();
//! assert_eq!(Pixel::from_words(lo, hi), p);
//! ```

use core::fmt;

/// One 64-bit AddressLib pixel: three 8-bit video channels plus two 16-bit
/// side channels.
///
/// `alpha` typically carries segment labels or masks during video object
/// segmentation; `aux` carries per-pixel scratch data (e.g. geodesic
/// distance, gradient magnitude).
///
/// # Examples
///
/// ```
/// use vip_core::pixel::Pixel;
///
/// let grey = Pixel::from_luma(200);
/// assert_eq!((grey.u, grey.v), (128, 128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pixel {
    /// Luminance channel (8 bit).
    pub y: u8,
    /// First chrominance channel (8 bit).
    pub u: u8,
    /// Second chrominance channel (8 bit).
    pub v: u8,
    /// 16-bit alpha/label channel ("Alfa" in the paper).
    pub alpha: u16,
    /// 16-bit auxiliary channel.
    pub aux: u16,
}

impl Pixel {
    /// A black pixel with neutral chroma and cleared side channels.
    pub const BLACK: Pixel = Pixel {
        y: 0,
        u: 128,
        v: 128,
        alpha: 0,
        aux: 0,
    };

    /// A white pixel with neutral chroma and cleared side channels.
    pub const WHITE: Pixel = Pixel {
        y: 255,
        u: 128,
        v: 128,
        alpha: 0,
        aux: 0,
    };

    /// Creates a pixel from explicit values of all five channels.
    ///
    /// # Examples
    ///
    /// ```
    /// use vip_core::pixel::Pixel;
    /// let p = Pixel::new(1, 2, 3, 4, 5);
    /// assert_eq!(p.aux, 5);
    /// ```
    #[must_use]
    pub const fn new(y: u8, u: u8, v: u8, alpha: u16, aux: u16) -> Self {
        Pixel { y, u, v, alpha, aux }
    }

    /// Creates a pixel from the three video channels with zeroed side
    /// channels.
    #[must_use]
    pub const fn from_yuv(y: u8, u: u8, v: u8) -> Self {
        Pixel::new(y, u, v, 0, 0)
    }

    /// Creates a grey pixel: luminance `y`, neutral chroma (128).
    #[must_use]
    pub const fn from_luma(y: u8) -> Self {
        Pixel::new(y, 128, 128, 0, 0)
    }

    /// Returns a copy with the alpha channel replaced.
    #[must_use]
    pub const fn with_alpha(mut self, alpha: u16) -> Self {
        self.alpha = alpha;
        self
    }

    /// Returns a copy with the aux channel replaced.
    #[must_use]
    pub const fn with_aux(mut self, aux: u16) -> Self {
        self.aux = aux;
        self
    }

    /// Returns a copy with the luminance channel replaced.
    #[must_use]
    pub const fn with_luma(mut self, y: u8) -> Self {
        self.y = y;
        self
    }

    /// Packs the pixel into its two 32-bit ZBT words `(lo, hi)`.
    ///
    /// Layout (little-endian within the word):
    /// `lo = Y | U<<8 | V<<16`, `hi = alpha | aux<<16`. The byte at
    /// `lo[31..24]` is padding and always zero, mirroring the unused byte of
    /// the 32-bit ZBT word in the hardware.
    #[must_use]
    pub const fn to_words(self) -> (u32, u32) {
        let lo = self.y as u32 | (self.u as u32) << 8 | (self.v as u32) << 16;
        let hi = self.alpha as u32 | (self.aux as u32) << 16;
        (lo, hi)
    }

    /// Reconstructs a pixel from its two 32-bit ZBT words.
    ///
    /// The padding byte of `lo` is ignored, as the hardware does.
    #[must_use]
    pub const fn from_words(lo: u32, hi: u32) -> Self {
        Pixel {
            y: (lo & 0xff) as u8,
            u: ((lo >> 8) & 0xff) as u8,
            v: ((lo >> 16) & 0xff) as u8,
            alpha: (hi & 0xffff) as u16,
            aux: (hi >> 16) as u16,
        }
    }

    /// Packs the pixel into a single 64-bit value (`hi:lo`).
    #[must_use]
    pub const fn to_bits(self) -> u64 {
        let (lo, hi) = self.to_words();
        (hi as u64) << 32 | lo as u64
    }

    /// Reconstructs a pixel from a packed 64-bit value produced by
    /// [`Pixel::to_bits`].
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        Pixel::from_words(bits as u32, (bits >> 32) as u32)
    }

    /// Reads one channel as a widened `u16` (video channels zero-extend).
    #[must_use]
    pub const fn channel(&self, channel: Channel) -> u16 {
        match channel {
            Channel::Y => self.y as u16,
            Channel::U => self.u as u16,
            Channel::V => self.v as u16,
            Channel::Alpha => self.alpha,
            Channel::Aux => self.aux,
        }
    }

    /// Writes one channel from a `u16` (video channels saturate to 8 bits).
    pub fn set_channel(&mut self, channel: Channel, value: u16) {
        match channel {
            Channel::Y => self.y = value.min(255) as u8,
            Channel::U => self.u = value.min(255) as u8,
            Channel::V => self.v = value.min(255) as u8,
            Channel::Alpha => self.alpha = value,
            Channel::Aux => self.aux = value,
        }
    }

    /// Copies the channels selected by `set` from `src` into `self`,
    /// leaving the others untouched.
    ///
    /// This models an AddressLib call writing only its output channels.
    pub fn merge_channels(&mut self, src: Pixel, set: ChannelSet) {
        for channel in set.iter() {
            self.set_channel(channel, src.channel(channel));
        }
    }
}

impl fmt::Display for Pixel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Y{} U{} V{} A{} X{}",
            self.y, self.u, self.v, self.alpha, self.aux
        )
    }
}

impl From<u64> for Pixel {
    fn from(bits: u64) -> Self {
        Pixel::from_bits(bits)
    }
}

impl From<Pixel> for u64 {
    fn from(p: Pixel) -> u64 {
        p.to_bits()
    }
}

/// One of the five pixel channels.
///
/// # Examples
///
/// ```
/// use vip_core::pixel::{Channel, Pixel};
/// let p = Pixel::from_yuv(9, 8, 7);
/// assert_eq!(p.channel(Channel::V), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Channel {
    /// Luminance.
    Y,
    /// First chrominance.
    U,
    /// Second chrominance.
    V,
    /// 16-bit label/mask channel.
    Alpha,
    /// 16-bit auxiliary channel.
    Aux,
}

impl Channel {
    /// All channels in canonical order.
    pub const ALL: [Channel; 5] = [
        Channel::Y,
        Channel::U,
        Channel::V,
        Channel::Alpha,
        Channel::Aux,
    ];

    /// Channel width in bits (8 for video channels, 16 for side channels).
    #[must_use]
    pub const fn bits(self) -> u32 {
        match self {
            Channel::Y | Channel::U | Channel::V => 8,
            Channel::Alpha | Channel::Aux => 16,
        }
    }

    /// Index of the 32-bit ZBT word that holds this channel: 0 for the video
    /// word, 1 for the side-channel word.
    #[must_use]
    pub const fn word_index(self) -> usize {
        match self {
            Channel::Y | Channel::U | Channel::V => 0,
            Channel::Alpha | Channel::Aux => 1,
        }
    }

    fn mask_bit(self) -> u8 {
        match self {
            Channel::Y => 1,
            Channel::U => 1 << 1,
            Channel::V => 1 << 2,
            Channel::Alpha => 1 << 3,
            Channel::Aux => 1 << 4,
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Channel::Y => "Y",
            Channel::U => "U",
            Channel::V => "V",
            Channel::Alpha => "Alpha",
            Channel::Aux => "Aux",
        };
        f.write_str(s)
    }
}

/// A set of pixel channels, used to describe the input and output channels
/// of an AddressLib call (Table 2 of the paper distinguishes e.g. `Y` from
/// `Y,U,V` calls).
///
/// # Examples
///
/// ```
/// use vip_core::pixel::{Channel, ChannelSet};
///
/// let yuv = ChannelSet::YUV;
/// assert!(yuv.contains(Channel::U));
/// assert!(!yuv.contains(Channel::Alpha));
/// assert_eq!(yuv.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelSet(u8);

impl ChannelSet {
    /// The empty channel set.
    pub const EMPTY: ChannelSet = ChannelSet(0);
    /// Only the luminance channel.
    pub const Y: ChannelSet = ChannelSet(1);
    /// The three video channels.
    pub const YUV: ChannelSet = ChannelSet(0b111);
    /// All five channels.
    pub const ALL: ChannelSet = ChannelSet(0b1_1111);
    /// Only the alpha channel.
    pub const ALPHA: ChannelSet = ChannelSet(0b1000);
    /// Only the aux channel.
    pub const AUX: ChannelSet = ChannelSet(0b1_0000);

    /// Creates an empty set.
    #[must_use]
    pub const fn new() -> Self {
        ChannelSet(0)
    }

    /// Returns a copy of the set with `channel` inserted.
    #[must_use]
    pub fn with(mut self, channel: Channel) -> Self {
        self.insert(channel);
        self
    }

    /// Inserts a channel into the set.
    pub fn insert(&mut self, channel: Channel) {
        self.0 |= channel.mask_bit();
    }

    /// Removes a channel from the set.
    pub fn remove(&mut self, channel: Channel) {
        self.0 &= !channel.mask_bit();
    }

    /// Whether the set contains `channel`.
    #[must_use]
    pub fn contains(self, channel: Channel) -> bool {
        self.0 & channel.mask_bit() != 0
    }

    /// Number of channels in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two sets.
    #[must_use]
    pub fn union(self, other: ChannelSet) -> ChannelSet {
        ChannelSet(self.0 | other.0)
    }

    /// Intersection of two sets.
    #[must_use]
    pub fn intersection(self, other: ChannelSet) -> ChannelSet {
        ChannelSet(self.0 & other.0)
    }

    /// Iterates over the channels of the set in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Channel> {
        Channel::ALL.into_iter().filter(move |c| self.contains(*c))
    }

    /// Number of distinct 32-bit ZBT words touched by the channels of the
    /// set (0, 1 or 2). Used by the memory-access accounting.
    #[must_use]
    pub fn word_count(self) -> usize {
        let video = self.intersection(ChannelSet::YUV);
        let side = self.intersection(ChannelSet::ALPHA.union(ChannelSet::AUX));
        usize::from(!video.is_empty()) + usize::from(!side.is_empty())
    }
}

impl FromIterator<Channel> for ChannelSet {
    fn from_iter<I: IntoIterator<Item = Channel>>(iter: I) -> Self {
        let mut set = ChannelSet::new();
        for c in iter {
            set.insert(c);
        }
        set
    }
}

impl Extend<Channel> for ChannelSet {
    fn extend<I: IntoIterator<Item = Channel>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Display for ChannelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("∅");
        }
        let mut first = true;
        for c in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_preserves_all_channels() {
        let p = Pixel::new(0xab, 0xcd, 0xef, 0x1234, 0x5678);
        let (lo, hi) = p.to_words();
        assert_eq!(lo, 0x00ef_cdab);
        assert_eq!(hi, 0x5678_1234);
        assert_eq!(Pixel::from_words(lo, hi), p);
    }

    #[test]
    fn bits_roundtrip() {
        let p = Pixel::new(1, 2, 3, 4, 5);
        assert_eq!(Pixel::from_bits(p.to_bits()), p);
        assert_eq!(u64::from(p), p.to_bits());
        assert_eq!(Pixel::from(p.to_bits()), p);
    }

    #[test]
    fn padding_byte_is_zero_and_ignored() {
        let p = Pixel::from_yuv(1, 2, 3);
        let (lo, _) = p.to_words();
        assert_eq!(lo >> 24, 0, "padding byte must be zero");
        // A dirty padding byte must not leak into the pixel.
        let dirty = lo | 0xff00_0000;
        assert_eq!(Pixel::from_words(dirty, 0), p);
    }

    #[test]
    fn channel_get_set_roundtrip() {
        let mut p = Pixel::default();
        for c in Channel::ALL {
            p.set_channel(c, 100);
            assert_eq!(p.channel(c), 100);
        }
    }

    #[test]
    fn video_channels_saturate_on_set() {
        let mut p = Pixel::default();
        p.set_channel(Channel::Y, 1000);
        assert_eq!(p.y, 255);
        p.set_channel(Channel::Alpha, 1000);
        assert_eq!(p.alpha, 1000);
    }

    #[test]
    fn channel_bits_and_words() {
        assert_eq!(Channel::Y.bits(), 8);
        assert_eq!(Channel::Aux.bits(), 16);
        assert_eq!(Channel::V.word_index(), 0);
        assert_eq!(Channel::Alpha.word_index(), 1);
    }

    #[test]
    fn channel_set_basics() {
        let mut s = ChannelSet::new();
        assert!(s.is_empty());
        s.insert(Channel::Y);
        s.insert(Channel::Aux);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Channel::Y));
        assert!(!s.contains(Channel::U));
        s.remove(Channel::Y);
        assert!(!s.contains(Channel::Y));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn channel_set_word_count() {
        assert_eq!(ChannelSet::Y.word_count(), 1);
        assert_eq!(ChannelSet::YUV.word_count(), 1);
        assert_eq!(ChannelSet::ALL.word_count(), 2);
        assert_eq!(ChannelSet::ALPHA.word_count(), 1);
        assert_eq!(ChannelSet::EMPTY.word_count(), 0);
        assert_eq!(ChannelSet::Y.union(ChannelSet::AUX).word_count(), 2);
    }

    #[test]
    fn channel_set_from_iterator_and_union() {
        let s: ChannelSet = [Channel::Y, Channel::U].into_iter().collect();
        assert_eq!(s.len(), 2);
        let t = s.union(ChannelSet::ALPHA);
        assert_eq!(t.len(), 3);
        assert_eq!(t.intersection(ChannelSet::YUV).len(), 2);
    }

    #[test]
    fn channel_set_display() {
        assert_eq!(ChannelSet::YUV.to_string(), "Y,U,V");
        assert_eq!(ChannelSet::EMPTY.to_string(), "∅");
    }

    #[test]
    fn merge_channels_only_touches_selected() {
        let mut dst = Pixel::new(1, 2, 3, 4, 5);
        let src = Pixel::new(10, 20, 30, 40, 50);
        dst.merge_channels(src, ChannelSet::Y.with(Channel::Alpha));
        assert_eq!(dst, Pixel::new(10, 2, 3, 40, 5));
    }

    #[test]
    fn display_formats() {
        let p = Pixel::new(1, 2, 3, 4, 5);
        assert_eq!(p.to_string(), "Y1 U2 V3 A4 X5");
        assert_eq!(Channel::Alpha.to_string(), "Alpha");
    }
}
