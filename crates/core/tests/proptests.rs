//! Property-based tests of the AddressLib core invariants.

// Property tests need the external `proptest` crate, unavailable in
// this offline workspace; the (empty) feature keeps the cfg name valid.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use vip_core::accounting::CallDescriptor;
use vip_core::addressing::inter::run_inter;
use vip_core::addressing::intra::{run_intra, run_intra_with, IntraOptions};
use vip_core::addressing::segment::{run_segment, SegmentOptions};
use vip_core::border::BorderPolicy;
use vip_core::frame::Frame;
use vip_core::geometry::{Dims, Point};
use vip_core::neighborhood::Connectivity;
use vip_core::ops::arith::{AbsDiff, Add, Blend, Sub};
use vip_core::ops::filter::{BoxBlur, Identity};
use vip_core::ops::morph::{Dilate, Erode};
use vip_core::ops::reduce::{sad, ssd, Histogram, LumaStats};
use vip_core::ops::segment_ops::HomogeneityCriterion;
use vip_core::ops::InterOp;
use vip_core::pixel::{Channel, ChannelSet, Pixel};
use vip_core::scan::{scan_points, strips, ScanOrder};

fn arb_pixel() -> impl Strategy<Value = Pixel> {
    (any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>(), any::<u16>())
        .prop_map(|(y, u, v, a, x)| Pixel::new(y, u, v, a, x))
}

fn arb_dims() -> impl Strategy<Value = Dims> {
    (1usize..24, 1usize..24).prop_map(|(w, h)| Dims::new(w, h))
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    arb_dims().prop_flat_map(|dims| {
        proptest::collection::vec(arb_pixel(), dims.pixel_count())
            .prop_map(move |px| Frame::from_pixels(dims, px).expect("length matches"))
    })
}

fn arb_frame_pair() -> impl Strategy<Value = (Frame, Frame)> {
    arb_dims().prop_flat_map(|dims| {
        let n = dims.pixel_count();
        (
            proptest::collection::vec(arb_pixel(), n),
            proptest::collection::vec(arb_pixel(), n),
        )
            .prop_map(move |(a, b)| {
                (
                    Frame::from_pixels(dims, a).expect("length matches"),
                    Frame::from_pixels(dims, b).expect("length matches"),
                )
            })
    })
}

proptest! {
    #[test]
    fn pixel_word_roundtrip(p in arb_pixel()) {
        let (lo, hi) = p.to_words();
        prop_assert_eq!(Pixel::from_words(lo, hi), p);
        prop_assert_eq!(Pixel::from_bits(p.to_bits()), p);
        // Padding byte always zero.
        prop_assert_eq!(lo >> 24, 0);
    }

    #[test]
    fn scan_orders_are_permutations(dims in arb_dims()) {
        for order in ScanOrder::ALL {
            let mut seen = vec![false; dims.pixel_count()];
            for p in scan_points(dims, order) {
                prop_assert!(dims.contains(p));
                let idx = dims.index_of(p);
                prop_assert!(!seen[idx], "{} revisits {}", order, p);
                seen[idx] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn strips_partition_frame(dims in arb_dims(), strip_len in 1usize..20) {
        for order in [ScanOrder::RowMajor, ScanOrder::ColumnMajor] {
            let ss = strips(dims, order, strip_len);
            let total: usize = ss.iter().map(|s| s.pixel_count(dims)).sum();
            prop_assert_eq!(total, dims.pixel_count());
            // Contiguous, non-overlapping.
            let mut expected_start = 0;
            for s in &ss {
                prop_assert_eq!(s.start, expected_start);
                expected_start += s.len;
            }
        }
    }

    #[test]
    fn border_policies_map_in_bounds(
        dims in arb_dims(),
        x in -50i32..50,
        y in -50i32..50,
    ) {
        for pol in [BorderPolicy::Clamp, BorderPolicy::Mirror, BorderPolicy::Wrap] {
            let q = pol.map_point(dims, Point::new(x, y)).expect("non-empty frame");
            prop_assert!(dims.contains(q), "{} mapped to {}", pol, q);
        }
    }

    #[test]
    fn absdiff_symmetry_and_triangle(a in arb_pixel(), b in arb_pixel(), c in arb_pixel()) {
        let op = AbsDiff::yuv();
        let ab = op.apply(a, b);
        let ba = op.apply(b, a);
        prop_assert_eq!((ab.y, ab.u, ab.v), (ba.y, ba.u, ba.v));
        // Triangle inequality on luminance.
        let ac = op.apply(a, c);
        let cb = op.apply(c, b);
        prop_assert!(u16::from(ab.y) <= u16::from(ac.y) + u16::from(cb.y));
    }

    #[test]
    fn add_sub_are_monotone_saturating(a in arb_pixel(), b in arb_pixel()) {
        let sum = Add::yuv().apply(a, b);
        prop_assert!(sum.y >= a.y.min(255 - b.y));
        let diff = Sub::yuv().apply(a, b);
        prop_assert!(diff.y <= a.y);
    }

    #[test]
    fn blend_bounded_by_operands(a in arb_pixel(), b in arb_pixel(), w in 0u16..=256) {
        let out = Blend::new(w).apply(a, b);
        let lo = a.y.min(b.y);
        let hi = a.y.max(b.y);
        prop_assert!(out.y >= lo.saturating_sub(1) && out.y <= hi.saturating_add(1),
            "blend {} outside [{}, {}]", out.y, lo, hi);
    }

    #[test]
    fn inter_output_nonop_channels_from_a((a, b) in arb_frame_pair()) {
        let r = run_inter(&a, &b, &AbsDiff::luma()).expect("valid frames");
        for (p, px) in r.output.enumerate() {
            let pa = a.get(p);
            prop_assert_eq!(px.u, pa.u);
            prop_assert_eq!(px.v, pa.v);
            prop_assert_eq!(px.alpha, pa.alpha);
            prop_assert_eq!(px.aux, pa.aux);
        }
    }

    #[test]
    fn intra_identity_is_noop(f in arb_frame()) {
        let r = run_intra(&f, &Identity::yuv()).expect("valid frame");
        // YUV identical; side channels preserved by merge semantics.
        prop_assert_eq!(r.output, f.clone());
    }

    #[test]
    fn erode_le_dilate_everywhere(f in arb_frame()) {
        let e = run_intra(&f, &Erode::con8()).expect("valid").output;
        let d = run_intra(&f, &Dilate::con8()).expect("valid").output;
        for (p, ep) in e.enumerate() {
            let dv = d.get(p).y;
            let orig = f.get(p).y;
            prop_assert!(ep.y <= orig && orig <= dv, "at {}", p);
        }
    }

    #[test]
    fn erode_dilate_idempotent_on_extremes(f in arb_frame()) {
        // erode(erode(f)) <= erode(f), dilate grows monotonically.
        let e1 = run_intra(&f, &Erode::con8()).expect("valid").output;
        let e2 = run_intra(&e1, &Erode::con8()).expect("valid").output;
        for (p, px) in e2.enumerate() {
            prop_assert!(px.y <= e1.get(p).y);
        }
    }

    #[test]
    fn box_blur_preserves_mean_bounds(f in arb_frame()) {
        let stats_in = LumaStats::of(&f).expect("non-empty");
        let blurred = run_intra(&f, &BoxBlur::con8()).expect("valid").output;
        let stats_out = LumaStats::of(&blurred).expect("non-empty");
        prop_assert!(stats_out.min >= stats_in.min);
        prop_assert!(stats_out.max <= stats_in.max);
        // Smoothing never increases variance beyond input (allow rounding).
        prop_assert!(stats_out.variance <= stats_in.variance + 1.0);
    }

    #[test]
    fn intra_scan_order_invariant(f in arb_frame()) {
        let base = run_intra(&f, &BoxBlur::con8()).expect("valid").output;
        for order in ScanOrder::ALL {
            let r = run_intra_with(&f, &BoxBlur::con8(),
                IntraOptions { scan: order, ..Default::default() }).expect("valid");
            prop_assert_eq!(&r.output, &base);
        }
    }

    #[test]
    fn sad_is_a_metric((a, b) in arb_frame_pair()) {
        prop_assert_eq!(sad(&a, &a).expect("same dims"), 0);
        prop_assert_eq!(sad(&a, &b).expect("same dims"), sad(&b, &a).expect("same dims"));
        let s = sad(&a, &b).expect("same dims");
        let q = ssd(&a, &b).expect("same dims");
        // SSD >= SAD when every |d| >= 1 contributes d^2 >= d; and both 0 together.
        prop_assert_eq!(s == 0, q == 0);
    }

    #[test]
    fn histogram_total_equals_pixels(f in arb_frame()) {
        let h = Histogram::of(&f, Channel::Y);
        prop_assert_eq!(h.total(), f.pixel_count() as u64);
        let sum: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(sum, h.total());
        // Quantiles are monotone.
        prop_assert!(h.quantile(0.1) <= h.quantile(0.9));
    }

    #[test]
    fn segment_stays_within_frame_and_unique(f in arb_frame(), tol in 0u8..40) {
        let seed = Point::new((f.width() / 2) as i32, (f.height() / 2) as i32);
        let r = run_segment(&f, &[seed], &HomogeneityCriterion::luma(tol),
            SegmentOptions::default()).expect("valid");
        let mut seen = std::collections::HashSet::new();
        for s in &r.segment {
            prop_assert!(f.dims().contains(s.point));
            prop_assert!(seen.insert(s.point), "duplicate {}", s.point);
        }
        // Distances non-decreasing (geodesic order).
        prop_assert!(r.segment.windows(2).all(|w| w[0].distance <= w[1].distance));
        // Larger tolerance never yields a smaller segment.
        if tol < 39 {
            let r2 = run_segment(&f, &[seed], &HomogeneityCriterion::luma(tol + 1),
                SegmentOptions::default()).expect("valid");
            prop_assert!(r2.segment.len() >= r.segment.len());
        }
    }

    #[test]
    fn access_model_hw_never_exceeds_sw(
        shape_idx in 0usize..4,
        in_ch in 1usize..=3,
        dims in arb_dims(),
    ) {
        let shape = [Connectivity::Con0, Connectivity::Con4, Connectivity::Con8,
                     Connectivity::Square(2)][shape_idx];
        let mut channels = ChannelSet::Y;
        if in_ch >= 2 { channels.insert(Channel::U); }
        if in_ch >= 3 { channels.insert(Channel::V); }
        let call = CallDescriptor::intra(shape, channels, channels);
        let m = vip_core::AccessModel::for_call(&call, dims);
        prop_assert!(m.hardware_accesses <= m.software_accesses);
        prop_assert_eq!(m.hardware_accesses, 2 * dims.pixel_count() as u64);
    }

    #[test]
    fn empirical_counter_matches_model_intra(f in arb_frame()) {
        let r = run_intra(&f, &BoxBlur::con8()).expect("valid");
        prop_assert_eq!(r.report.counter.total(), r.report.access_model().software_accesses);
    }

    #[test]
    fn empirical_counter_matches_model_inter((a, b) in arb_frame_pair()) {
        let r = run_inter(&a, &b, &AbsDiff::yuv()).expect("valid");
        prop_assert_eq!(r.report.counter.total(), r.report.access_model().software_accesses);
    }
}

proptest! {
    /// Whole-frame labelling is a partition: every pixel gets exactly one
    /// label, segments are disjoint and labels are dense from 1.
    #[test]
    fn labelling_is_a_partition(f in arb_frame(), tol in 0u8..60) {
        use vip_core::addressing::labeling::label_all_segments;
        use vip_core::addressing::segment::SegmentOptions;
        use vip_core::ops::segment_ops::HomogeneityCriterion;

        let l = label_all_segments(&f, &HomogeneityCriterion::luma(tol),
            SegmentOptions::default()).expect("non-empty frame");
        // Coverage.
        prop_assert!(l.output.pixels().iter().all(|p| p.alpha > 0));
        // Disjoint + complete.
        let total: usize = l.segments.iter().map(Vec::len).sum();
        prop_assert_eq!(total, f.pixel_count());
        // Dense labels: max label == segment count.
        let max_label = l.output.pixels().iter().map(|p| p.alpha).max().unwrap();
        prop_assert_eq!(usize::from(max_label), l.segment_count());
        // Monotonicity: larger tolerance never yields more segments.
        if tol < 59 {
            let l2 = label_all_segments(&f, &HomogeneityCriterion::luma(tol + 1),
                SegmentOptions::default()).expect("valid");
            prop_assert!(l2.segment_count() <= l.segment_count());
        }
    }

    /// The ZipWith combinator agrees with running its parts as separate
    /// whole-frame calls fused pointwise.
    #[test]
    fn zip_with_equals_two_pass(f in arb_frame()) {
        use vip_core::ops::compose::ZipWith;
        use vip_core::ops::morph::{Dilate, Erode};

        let z = ZipWith::new("mg", Dilate::con8(), Erode::con8(), Sub::luma());
        let one_pass = run_intra(&f, &z).expect("valid").output;
        let d = run_intra(&f, &Dilate::con8()).expect("valid").output;
        let e = run_intra(&f, &Erode::con8()).expect("valid").output;
        let two_pass = vip_core::addressing::inter::run_inter(&d, &e, &Sub::luma())
            .expect("same dims").output;
        prop_assert_eq!(one_pass.luma_plane(), two_pass.luma_plane());
    }

    /// Median is always bracketed by erosion and dilation.
    #[test]
    fn median_bracketed(f in arb_frame()) {
        use vip_core::ops::rank::Median;
        use vip_core::ops::morph::{Dilate, Erode};
        let m = run_intra(&f, &Median::con8()).expect("valid").output;
        let lo = run_intra(&f, &Erode::con8()).expect("valid").output;
        let hi = run_intra(&f, &Dilate::con8()).expect("valid").output;
        for (p, px) in m.enumerate() {
            prop_assert!(lo.get(p).y <= px.y && px.y <= hi.get(p).y, "at {}", p);
        }
    }

    /// Point LUT ops commute with any permutation of application order on
    /// disjoint channels and never touch chroma/side channels.
    #[test]
    fn lut_ops_preserve_non_luma(f in arb_frame(), gamma_tenths in 3u8..30) {
        use vip_core::ops::lut::LumaLut;
        let lut = LumaLut::gamma(f64::from(gamma_tenths) / 10.0);
        let out = run_intra(&f, &lut).expect("valid").output;
        for (p, px) in out.enumerate() {
            let orig = f.get(p);
            prop_assert_eq!(px.u, orig.u);
            prop_assert_eq!(px.v, orig.v);
            prop_assert_eq!(px.alpha, orig.alpha);
            prop_assert_eq!(px.aux, orig.aux);
        }
    }
}
