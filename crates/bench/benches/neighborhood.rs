//! Micro-benches: neighbourhood delivery strategies — software window
//! gathering vs the IIM's single-cycle fetch vs matrix-register reuse
//! (the design point fig. 4 motivates).

use vip_bench::harness::Bench;
use vip_core::border::BorderPolicy;
use vip_core::frame::Frame;
use vip_core::geometry::{Dims, Point};
use vip_core::neighborhood::{Connectivity, Window};
use vip_core::pixel::Pixel;
use vip_engine::iim::Iim;
use vip_engine::matrix::MatrixRegister;

fn frame(dims: Dims) -> Frame {
    Frame::from_fn(dims, |p| Pixel::from_luma(((p.x + p.y * 5) % 256) as u8))
}

fn bench_gather() {
    let dims = Dims::new(64, 64);
    let f = frame(dims);
    let g = Bench::group("window_gather_row");
    for shape in [
        Connectivity::Con0,
        Connectivity::Con4,
        Connectivity::Con8,
        Connectivity::Square(4),
    ] {
        g.run(&format!("{shape}"), || {
            let mut acc = 0u32;
            for x in 1..63 {
                let w = Window::gather(&f, Point::new(x, 32), shape, BorderPolicy::Clamp);
                acc = acc.wrapping_add(u32::from(w.centre_pixel().y));
            }
            acc
        });
    }
}

fn bench_iim_fetch() {
    let dims = Dims::new(64, 64);
    let f = frame(dims);
    let g = Bench::group("iim_fetch_row");
    let mut iim = Iim::new(64, 64);
    for l in 0..64 {
        iim.load_line(l, f.line(l));
    }
    g.run("con8", || {
        let mut acc = 0usize;
        for x in 1..63 {
            let w = iim
                .fetch_window(Point::new(x, 32), Connectivity::Con8, dims, BorderPolicy::Clamp)
                .unwrap();
            acc += w.len();
        }
        acc
    });
}

fn bench_matrix_shift() {
    let g = Bench::group("matrix_register");
    let col = vec![Pixel::from_luma(7); 3];
    let mut m = MatrixRegister::new(Connectivity::Con8);
    m.load(vec![col.clone(), col.clone(), col.clone()]);
    g.run("shift_vs_load", || {
        m.shift(col.clone());
        m.centre()
    });
    let mut m = MatrixRegister::new(Connectivity::Con8);
    g.run("full_load", || {
        m.load(vec![col.clone(), col.clone(), col.clone()]);
        m.centre()
    });
}

fn main() {
    bench_gather();
    bench_iim_fetch();
    bench_matrix_shift();
}
