//! Criterion benches: software AddressLib throughput per addressing
//! scheme and neighbourhood shape (the Table 2 workloads as wall time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vip_core::addressing::inter::run_inter;
use vip_core::addressing::intra::run_intra;
use vip_core::addressing::segment::{run_segment, SegmentOptions};
use vip_core::frame::Frame;
use vip_core::geometry::{Dims, ImageFormat, Point};
use vip_core::ops::arith::AbsDiff;
use vip_core::ops::filter::{BoxBlur, Identity};
use vip_core::ops::segment_ops::HomogeneityCriterion;
use vip_core::pixel::Pixel;

fn qcif_frame(seed: u8) -> Frame {
    Frame::from_fn(ImageFormat::Qcif.dims(), |p| {
        Pixel::from_luma(((p.x * 7 + p.y * 13 + i32::from(seed) * 31) % 256) as u8)
    })
}

fn bench_intra(c: &mut Criterion) {
    let frame = qcif_frame(1);
    let px = frame.pixel_count() as u64;
    let mut g = c.benchmark_group("software_intra_qcif");
    g.throughput(Throughput::Elements(px));
    g.bench_function("con0_identity", |b| {
        b.iter(|| run_intra(&frame, &Identity::luma()).unwrap())
    });
    g.bench_function("con8_boxblur", |b| {
        b.iter(|| run_intra(&frame, &BoxBlur::con8()).unwrap())
    });
    g.bench_function("sq4_boxblur", |b| {
        let op = BoxBlur::with_radius(4).unwrap();
        b.iter(|| run_intra(&frame, &op).unwrap())
    });
    g.finish();
}

fn bench_inter(c: &mut Criterion) {
    let a = qcif_frame(1);
    let b2 = qcif_frame(2);
    let mut g = c.benchmark_group("software_inter_qcif");
    g.throughput(Throughput::Elements(a.pixel_count() as u64));
    g.bench_function("absdiff_y", |b| {
        b.iter(|| run_inter(&a, &b2, &AbsDiff::luma()).unwrap())
    });
    g.bench_function("absdiff_yuv", |b| {
        b.iter(|| run_inter(&a, &b2, &AbsDiff::yuv()).unwrap())
    });
    g.finish();
}

fn bench_segment(c: &mut Criterion) {
    // Flat frame: the segment floods a bounded region.
    let frame = Frame::filled(Dims::new(128, 128), Pixel::from_luma(100));
    let mut g = c.benchmark_group("software_segment");
    for budget in [256usize, 4096] {
        g.bench_with_input(BenchmarkId::new("flood", budget), &budget, |b, &budget| {
            let opts = SegmentOptions {
                max_pixels: Some(budget),
                ..SegmentOptions::default()
            };
            b.iter(|| {
                run_segment(
                    &frame,
                    &[Point::new(64, 64)],
                    &HomogeneityCriterion::luma(5),
                    opts,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_intra, bench_inter, bench_segment);
criterion_main!(benches);
