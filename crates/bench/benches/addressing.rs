//! Micro-benches: software AddressLib throughput per addressing scheme
//! and neighbourhood shape (the Table 2 workloads as wall time).

use vip_bench::harness::Bench;
use vip_core::addressing::inter::run_inter;
use vip_core::addressing::intra::run_intra;
use vip_core::addressing::segment::{run_segment, SegmentOptions};
use vip_core::frame::Frame;
use vip_core::geometry::{Dims, ImageFormat, Point};
use vip_core::ops::arith::AbsDiff;
use vip_core::ops::filter::{BoxBlur, Identity};
use vip_core::ops::segment_ops::HomogeneityCriterion;
use vip_core::pixel::Pixel;

fn qcif_frame(seed: u8) -> Frame {
    Frame::from_fn(ImageFormat::Qcif.dims(), |p| {
        Pixel::from_luma(((p.x * 7 + p.y * 13 + i32::from(seed) * 31) % 256) as u8)
    })
}

fn bench_intra() {
    let frame = qcif_frame(1);
    let g = Bench::group("software_intra_qcif");
    g.run("con0_identity", || run_intra(&frame, &Identity::luma()).unwrap());
    g.run("con8_boxblur", || run_intra(&frame, &BoxBlur::con8()).unwrap());
    let op = BoxBlur::with_radius(4).unwrap();
    g.run("sq4_boxblur", || run_intra(&frame, &op).unwrap());
}

fn bench_inter() {
    let a = qcif_frame(1);
    let b = qcif_frame(2);
    let g = Bench::group("software_inter_qcif");
    g.run("absdiff_y", || run_inter(&a, &b, &AbsDiff::luma()).unwrap());
    g.run("absdiff_yuv", || run_inter(&a, &b, &AbsDiff::yuv()).unwrap());
}

fn bench_segment() {
    // Flat frame: the segment floods a bounded region.
    let frame = Frame::filled(Dims::new(128, 128), Pixel::from_luma(100));
    let g = Bench::group("software_segment");
    for budget in [256usize, 4096] {
        let opts = SegmentOptions {
            max_pixels: Some(budget),
            ..SegmentOptions::default()
        };
        g.run(&format!("flood_{budget}"), || {
            run_segment(
                &frame,
                &[Point::new(64, 64)],
                &HomogeneityCriterion::luma(5),
                opts,
            )
            .unwrap()
        });
    }
}

fn main() {
    bench_intra();
    bench_inter();
    bench_segment();
}
