//! Micro-benches: global motion estimation — per-frame-pair cost by
//! motion model, pyramid construction, and warping.

use vip_bench::harness::Bench;
use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_core::pixel::Pixel;
use vip_gme::{Estimator, GmeConfig, Motion, MotionModel, Pyramid, SoftwareBackend};

fn textured(dims: Dims) -> Frame {
    Frame::from_fn(dims, |p| {
        let x = p.x as f64;
        let y = p.y as f64;
        let v = 120.0 + 55.0 * ((x / 6.0).sin() * (y / 8.0).cos())
            + 35.0 * ((x / 19.0 + y / 23.0).sin());
        Pixel::from_luma(v.clamp(0.0, 255.0) as u8)
    })
}

fn shifted(dims: Dims, dx: f64) -> Frame {
    Frame::from_fn(dims, |p| {
        let x = p.x as f64 + dx;
        let y = p.y as f64;
        let v = 120.0 + 55.0 * ((x / 6.0).sin() * (y / 8.0).cos())
            + 35.0 * ((x / 19.0 + y / 23.0).sin());
        Pixel::from_luma(v.clamp(0.0, 255.0) as u8)
    })
}

fn bench_estimate() {
    let dims = Dims::new(96, 80);
    let reference = textured(dims);
    let current = shifted(dims, 2.0);
    let g = Bench::group("gme_estimate_96x80");
    for model in [
        MotionModel::Translational,
        MotionModel::Affine,
        MotionModel::Perspective,
    ] {
        let est = Estimator::new(GmeConfig {
            model,
            ..GmeConfig::default()
        });
        g.run(&format!("{model}"), || {
            let mut backend = SoftwareBackend::new();
            est.estimate(&reference, &current, Motion::identity(), &mut backend)
                .unwrap()
        });
    }
    let est = Estimator::new(GmeConfig {
        subsample: 2,
        ..GmeConfig::default()
    });
    g.run("affine_subsample2", || {
        let mut backend = SoftwareBackend::new();
        est.estimate(&reference, &current, Motion::identity(), &mut backend)
            .unwrap()
    });
}

fn bench_pyramid_and_warp() {
    let dims = Dims::new(96, 80);
    let f = textured(dims);
    let g = Bench::group("gme_components");
    g.run("pyramid_3_levels", || {
        let mut backend = SoftwareBackend::new();
        Pyramid::build(&f, 3, &mut backend).unwrap()
    });
    let m = Motion::similarity(1.02, 0.01, 1.5, -0.5);
    g.run("warp_affine", || vip_gme::warp::warp_frame(&f, &m));
}

fn main() {
    bench_estimate();
    bench_pyramid_and_warp();
}
