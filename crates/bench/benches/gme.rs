//! Criterion benches: global motion estimation — per-frame-pair cost by
//! motion model, pyramid construction, and warping.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_core::pixel::Pixel;
use vip_gme::{Estimator, GmeConfig, Motion, MotionModel, Pyramid, SoftwareBackend};

fn textured(dims: Dims) -> Frame {
    Frame::from_fn(dims, |p| {
        let x = p.x as f64;
        let y = p.y as f64;
        let v = 120.0 + 55.0 * ((x / 6.0).sin() * (y / 8.0).cos())
            + 35.0 * ((x / 19.0 + y / 23.0).sin());
        Pixel::from_luma(v.clamp(0.0, 255.0) as u8)
    })
}

fn shifted(dims: Dims, dx: f64) -> Frame {
    Frame::from_fn(dims, |p| {
        let x = p.x as f64 + dx;
        let y = p.y as f64;
        let v = 120.0 + 55.0 * ((x / 6.0).sin() * (y / 8.0).cos())
            + 35.0 * ((x / 19.0 + y / 23.0).sin());
        Pixel::from_luma(v.clamp(0.0, 255.0) as u8)
    })
}

fn bench_estimate(c: &mut Criterion) {
    let dims = Dims::new(96, 80);
    let reference = textured(dims);
    let current = shifted(dims, 2.0);
    let mut g = c.benchmark_group("gme_estimate_96x80");
    g.throughput(Throughput::Elements(dims.pixel_count() as u64));
    for model in [MotionModel::Translational, MotionModel::Affine, MotionModel::Perspective] {
        g.bench_function(format!("{model}"), |b| {
            let est = Estimator::new(GmeConfig {
                model,
                ..GmeConfig::default()
            });
            b.iter(|| {
                let mut backend = SoftwareBackend::new();
                est.estimate(&reference, &current, Motion::identity(), &mut backend)
                    .unwrap()
            })
        });
    }
    g.bench_function("affine_subsample2", |b| {
        let est = Estimator::new(GmeConfig {
            subsample: 2,
            ..GmeConfig::default()
        });
        b.iter(|| {
            let mut backend = SoftwareBackend::new();
            est.estimate(&reference, &current, Motion::identity(), &mut backend)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_pyramid_and_warp(c: &mut Criterion) {
    let dims = Dims::new(96, 80);
    let f = textured(dims);
    let mut g = c.benchmark_group("gme_components");
    g.bench_function("pyramid_3_levels", |b| {
        b.iter(|| {
            let mut backend = SoftwareBackend::new();
            Pyramid::build(&f, 3, &mut backend).unwrap()
        })
    });
    g.bench_function("warp_affine", |b| {
        let m = Motion::similarity(1.02, 0.01, 1.5, -0.5);
        b.iter(|| vip_gme::warp::warp_frame(&f, &m))
    });
    g.finish();
}

criterion_group!(benches, bench_estimate, bench_pyramid_and_warp);
criterion_main!(benches);
