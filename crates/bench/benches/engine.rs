//! Criterion benches: engine-simulator cost — analytic vs cycle-stepped
//! fidelity, and per-call dispatch overhead (the simulator's own
//! performance, not the modelled FPGA time).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_core::ops::arith::AbsDiff;
use vip_core::ops::filter::BoxBlur;
use vip_core::pixel::Pixel;
use vip_engine::{AddressEngine, EngineConfig};

fn frame(dims: Dims) -> Frame {
    Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 11 + p.y * 3) % 256) as u8))
}

fn bench_fidelity(c: &mut Criterion) {
    let dims = Dims::new(64, 64);
    let f = frame(dims);
    let mut g = c.benchmark_group("engine_call_64x64");
    g.throughput(Throughput::Elements(dims.pixel_count() as u64));

    g.bench_function("analytic_intra", |b| {
        let mut engine = AddressEngine::new(EngineConfig::prototype()).unwrap();
        b.iter(|| engine.run_intra(&f, &BoxBlur::con8()).unwrap())
    });
    g.bench_function("detailed_intra", |b| {
        let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        b.iter(|| engine.run_intra(&f, &BoxBlur::con8()).unwrap())
    });
    g.bench_function("analytic_inter", |b| {
        let mut engine = AddressEngine::new(EngineConfig::prototype()).unwrap();
        b.iter(|| engine.run_inter(&f, &f, &AbsDiff::luma()).unwrap())
    });
    g.bench_function("detailed_inter", |b| {
        let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        b.iter(|| engine.run_inter(&f, &f, &AbsDiff::luma()).unwrap())
    });
    g.finish();
}

fn bench_drain_ablation(c: &mut Criterion) {
    // Simulator wall time per drain configuration (the modelled-time
    // ablation lives in the `ablation` binary).
    let dims = Dims::new(48, 48);
    let f = frame(dims);
    let mut g = c.benchmark_group("detailed_sim_drain");
    for drain in [1u64, 2, 4] {
        g.bench_function(format!("drain_{drain}cyc"), |b| {
            let mut cfg = EngineConfig::prototype_detailed();
            cfg.oim_drain_cycles_per_pixel = drain;
            let mut engine = AddressEngine::new(cfg).unwrap();
            b.iter(|| engine.run_intra(&f, &BoxBlur::con8()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fidelity, bench_drain_ablation);
criterion_main!(benches);
