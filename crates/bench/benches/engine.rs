//! Micro-benches: engine-simulator cost — analytic vs cycle-stepped
//! fidelity, and per-call dispatch overhead (the simulator's own
//! performance, not the modelled FPGA time).

use vip_bench::harness::Bench;
use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_core::ops::arith::AbsDiff;
use vip_core::ops::filter::BoxBlur;
use vip_core::pixel::Pixel;
use vip_engine::{AddressEngine, EngineConfig};

fn frame(dims: Dims) -> Frame {
    Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 11 + p.y * 3) % 256) as u8))
}

fn bench_fidelity() {
    let dims = Dims::new(64, 64);
    let f = frame(dims);
    let g = Bench::group("engine_call_64x64");

    let mut engine = AddressEngine::new(EngineConfig::prototype()).unwrap();
    g.run("analytic_intra", || engine.run_intra(&f, &BoxBlur::con8()).unwrap());
    let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
    g.run("detailed_intra", || engine.run_intra(&f, &BoxBlur::con8()).unwrap());
    let mut engine = AddressEngine::new(EngineConfig::prototype()).unwrap();
    g.run("analytic_inter", || engine.run_inter(&f, &f, &AbsDiff::luma()).unwrap());
    let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
    g.run("detailed_inter", || engine.run_inter(&f, &f, &AbsDiff::luma()).unwrap());
}

fn bench_drain_ablation() {
    // Simulator wall time per drain configuration (the modelled-time
    // ablation lives in the `ablation` binary).
    let dims = Dims::new(48, 48);
    let f = frame(dims);
    let g = Bench::group("detailed_sim_drain");
    for drain in [1u64, 2, 4] {
        let mut cfg = EngineConfig::prototype_detailed();
        cfg.oim_drain_cycles_per_pixel = drain;
        let mut engine = AddressEngine::new(cfg).unwrap();
        g.run(&format!("drain_{drain}cyc"), || {
            engine.run_intra(&f, &BoxBlur::con8()).unwrap()
        });
    }
}

fn main() {
    bench_fidelity();
    bench_drain_ablation();
}
