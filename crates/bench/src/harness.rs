//! A minimal wall-clock micro-benchmark harness.
//!
//! Stands in for criterion in this no-network workspace: the `benches/`
//! targets (`harness = false`) call [`Bench::run`] with the same workloads
//! the criterion groups used to wrap, and print a fixed-width table of
//! per-iteration times. No statistics beyond min/mean — the targets exist
//! to catch gross regressions and to keep the workloads compiling.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A named group of micro-benchmarks, printed as one table.
#[derive(Debug)]
pub struct Bench {
    group: &'static str,
    /// Minimum measurement time per case.
    budget: Duration,
}

impl Bench {
    /// Creates a group with the default 200 ms per-case budget.
    #[must_use]
    pub fn group(name: &'static str) -> Self {
        println!("\n== {name} ==");
        Bench {
            group: name,
            budget: Duration::from_millis(200),
        }
    }

    /// Overrides the per-case measurement budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Measures `f`, printing mean and best per-iteration time. The
    /// closure's result is passed through [`black_box`] so the work is
    /// not optimised away.
    pub fn run<T>(&self, case: &str, mut f: impl FnMut() -> T) {
        // Warm-up + calibration: find an iteration count that fills the
        // budget without timing each call individually.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_batch = ((self.budget.as_secs_f64() / 5.0) / once.as_secs_f64())
            .ceil()
            .clamp(1.0, 1e7) as u64;

        let mut best = f64::INFINITY;
        let mut total = 0.0;
        let mut iters = 0u64;
        while total < self.budget.as_secs_f64() {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let batch = start.elapsed().as_secs_f64();
            best = best.min(batch / per_batch as f64);
            total += batch;
            iters += per_batch;
        }
        let mean = total / iters as f64;
        println!(
            "{:<34} mean {:>12}  best {:>12}  ({iters} iters)",
            format!("{}/{case}", self.group),
            fmt_time(mean),
            fmt_time(best),
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_measures_and_terminates() {
        let b = Bench::group("test").with_budget(Duration::from_millis(5));
        let mut calls = 0u64;
        b.run("noop", || {
            calls += 1;
            calls
        });
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-8), "25.0 ns");
    }
}
