//! Regenerates **Fig. 2**: the architecture general diagram — a textual
//! dump of the simulated engine's blocks, their parameters and
//! connectivity, straight from the live configuration.
//!
//! ```text
//! cargo run -p vip-bench --bin fig2
//! ```

use vip_core::geometry::ImageFormat;
use vip_engine::{EngineConfig, ResourceEstimate};

fn main() {
    let cfg = EngineConfig::prototype();
    cfg.validate().expect("prototype is valid");
    let cif = ImageFormat::Cif.dims();

    println!("================== Fig. 2 — AddressEngine architecture ==================");
    println!();
    println!("  PC (host CPU: high-level algorithm, AddressLib call dispatch)");
    println!("    │ interrupt-oriented DMA, {} overhead cycles/call", cfg.interrupt_overhead_cycles);
    println!("    ▼");
    println!(
        "  PCI bus          {} × {} B  = {:.0} MB/s  ← the system bottleneck (§4.1)",
        cfg.pci_clock,
        cfg.pci_bytes_per_cycle,
        cfg.pci_bandwidth() / 1e6
    );
    println!("    │ strips of {} lines, alternating block_A/block_B", cfg.strip_lines);
    println!("    ▼");
    println!(
        "  ZBT on-board memory   {} banks × {} words × 32 bit = {} MB",
        cfg.zbt_banks,
        cfg.zbt_bank_words,
        cfg.zbt_bytes() / (1024 * 1024)
    );
    println!("    │ input: lo/hi paired banks (1 cycle/pixel)");
    println!("    │ result: sequential words in Res_block_A/B ({} cycles/pixel)", cfg.oim_drain_cycles_per_pixel);
    println!("    ▼                                   ▲");
    println!("  TxU (transmission units)            TxU");
    println!("    ▼                                   │");
    println!(
        "  IIM  {} line blocks × 2 BRAM banks   OIM  {} line blocks × 2 BRAM banks",
        cfg.iim_lines, cfg.oim_lines
    );
    println!("    │ whole neighbourhood in 1 cycle     ▲ buffers the 2× write-speed mismatch");
    println!("    ▼                                    │");
    println!("  Process Unit — {} pipeline stages:", cfg.pipeline_stages);
    println!("    stage 1: scan (pixel position counters)");
    println!("    stage 2: LOAD/SHIFT matrix register from IIM");
    println!("    stage 3: execute pixel operation");
    println!("    stage 4: store result pixel to OIM");
    println!("  controlled by the Pixel Level Controller");
    println!("    (control FSM → instructions FSM → arbiter → start-pipeline)");
    println!("  orchestrated by the Image Level Controller (halting, interrupts)");
    println!();
    println!(
        "  capacity check: 2 input + 1 output CIF image = {} kB of {} kB ZBT",
        3 * ImageFormat::Cif.bytes() / 1024,
        cfg.zbt_bytes() / 1024
    );
    println!(
        "  one CIF frame = {} pixels = {} strips of {} lines",
        cif.pixel_count(),
        cif.height / cfg.strip_lines,
        cfg.strip_lines
    );
    println!(
        "  addressing modes: intra ✓  inter ✓  segment {}  (v1: §6 defers segment)",
        if cfg.segment_capable { "✓" } else { "✗" }
    );

    let res = ResourceEstimate::for_config(&cfg);
    println!(
        "\n  synthesis estimate: {} slices, {} BRAMs, fmax {:.1} MHz (Table 1)",
        res.slices, res.brams, res.fmax_mhz
    );
}
