//! Regenerates **Fig. 5/6**: the pixel-level controller and Process Unit
//! in action — a cycle-by-cycle stage-occupancy trace of the 4-stage
//! pipeline showing instructions of different pixel-cycles overlapping.
//!
//! ```text
//! cargo run -p vip-bench --bin fig5
//! ```

use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_core::ops::filter::BoxBlur;
use vip_core::pixel::Pixel;
use vip_engine::{AddressEngine, EngineConfig};

fn main() {
    let dims = Dims::new(8, 6);
    let frame = Frame::from_fn(dims, |p| Pixel::from_luma((p.x * 7 + p.y * 3) as u8));

    let mut engine = AddressEngine::new(EngineConfig::prototype_detailed())
        .expect("prototype config is valid");
    engine.set_trace_limit(40);
    let run = engine
        .run_intra(&frame, &BoxBlur::con8())
        .expect("frame fits the ZBT");
    let stats = run.report.processing.expect("detailed mode records stats");

    println!("=========== Fig. 5/6 — PLC + Process Unit pipeline trace ===========\n");
    println!("call: intra CON_8 box blur over {dims} ({} pixels)\n", dims.pixel_count());
    println!("cycle | stage1 scan | stage2 fetch | stage3 exec | occupancy");
    println!("------+-------------+--------------+-------------+----------");
    for (cycle, snap) in stats.trace.iter().enumerate() {
        let cell = |s: Option<usize>| match s {
            Some(px) => format!("px#{px:<3}"),
            None => "  —  ".to_string(),
        };
        println!(
            "{cycle:>5} |   {:<9} |   {:<10} |   {:<9} | {}",
            cell(snap.slots[0]),
            cell(snap.slots[1]),
            cell(snap.slots[2]),
            "█".repeat(snap.occupancy())
        );
    }

    println!("\npipeline statistics over the whole call:");
    println!("  total cycles      : {}", stats.cycles);
    println!("  cycles/pixel      : {:.2}", stats.cycles_per_pixel());
    println!("  IIM stalls        : {}", stats.iim_stalls);
    println!("  OIM stalls        : {}", stats.oim_stalls);
    println!(
        "  matrix LOADs      : {} (one per scan line)  SHIFTs: {}",
        stats.matrix_loads, stats.matrix_shifts
    );
    println!("  OIM max occupancy : {} pixels", stats.oim_max_occupancy);
    println!(
        "\ninstructions of different pixel-cycles occupy different stages in the same\n\
         cycle — the start-pipeline overlap of §3.2."
    );
}
