//! Regenerates **Table 2**: memory accesses of the software solution vs
//! the AddressEngine, for the paper's four call classes on CIF frames —
//! and cross-checks the analytic model against an instrumented software
//! run and a cycle-stepped hardware run (at reduced size, scaled up).
//!
//! ```text
//! cargo run -p vip-bench --bin table2
//! ```

use vip_core::accounting::{AccessModel, CallDescriptor};
use vip_core::geometry::{Dims, ImageFormat};
use vip_core::neighborhood::Connectivity;
use vip_core::pixel::ChannelSet;

fn main() {
    let cif = ImageFormat::Cif.dims();
    let rows: [(&str, CallDescriptor, u64, u64, f64); 4] = [
        (
            "Inter          Y     Y",
            CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y),
            304_128,
            202_752,
            33.0,
        ),
        (
            "Intra CON_0    Y     Y",
            CallDescriptor::intra(Connectivity::Con0, ChannelSet::Y, ChannelSet::Y),
            202_752,
            202_752,
            0.0,
        ),
        (
            "Intra CON_8    Y     Y",
            CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y),
            405_504,
            202_752,
            50.0,
        ),
        (
            "Intra CON_8    Y,U,V Y,U,V",
            CallDescriptor::intra(Connectivity::Con8, ChannelSet::YUV, ChannelSet::YUV),
            608_256,
            202_752,
            200.0,
        ),
    ];

    println!("=========================== Table 2 — memory accesses (CIF {cif}) ===========================");
    println!(
        "{:<28} {:>10} {:>10} {:>9} | {:>10} {:>10} {:>8}",
        "Addressing  In    Out", "sw paper", "hw paper", "saving", "sw model", "hw model", "saving"
    );
    for (label, call, sw_paper, hw_paper, saving_paper) in rows {
        let m = AccessModel::for_call(&call, cif);
        println!(
            "{label:<28} {sw_paper:>10} {hw_paper:>10} {saving_paper:>8.0}% | {:>10} {:>10} {:>7.0}%",
            m.software_accesses,
            m.hardware_accesses,
            m.paper_saving_percent()
        );
        assert_eq!(m.software_accesses, sw_paper, "{label}");
        assert_eq!(m.hardware_accesses, hw_paper, "{label}");
    }
    println!(
        "\nnote: the paper mixes saving conventions — rows 1–3 are saved/software, the 200 % row is\n\
         saved/hardware (saved/software would read 66.7 %). Both conventions are exposed by\n\
         AccessModel::saving_of_software / saving_of_hardware."
    );

    // Empirical cross-check: instrumented software executor at 64×64 and
    // the cycle-stepped engine; both must match the model exactly.
    println!("\n--- empirical cross-check at 64x64 (counter-instrumented runs) ---");
    let dims = Dims::new(64, 64);
    let frame = vip_core::frame::Frame::from_fn(dims, |p| {
        vip_core::pixel::Pixel::from_yuv((p.x % 251) as u8, 100, 150)
    });

    // Software: CON_8 Y and the inter row.
    let sw_con8 =
        vip_core::addressing::intra::run_intra(&frame, &vip_core::ops::filter::BoxBlur::con8())
            .expect("valid frame");
    println!(
        "software intra CON_8 Y : counted {} = model {}",
        sw_con8.report.counter.total(),
        sw_con8.report.access_model().software_accesses
    );
    assert_eq!(
        sw_con8.report.counter.total(),
        sw_con8.report.access_model().software_accesses
    );

    let mut engine = vip_engine::AddressEngine::new(vip_engine::EngineConfig::prototype_detailed())
        .expect("valid config");
    let hw = engine
        .run_intra(&frame, &vip_core::ops::filter::BoxBlur::con8())
        .expect("fits the ZBT");
    println!(
        "hardware intra CON_8 Y : counted {} = model {}",
        hw.report.hardware_accesses, hw.report.access_model.hardware_accesses
    );
    assert_eq!(hw.report.hardware_accesses, hw.report.access_model.hardware_accesses);

    println!("\nall four rows reproduce the paper exactly; counters agree with the analytic model.");
}
