//! Regenerates **Fig. 1**: the pixel-addressing schemes — inter, intra
//! and segment addressing — demonstrated as access traces on a small
//! frame, with the direction of pixel processing.
//!
//! ```text
//! cargo run -p vip-bench --bin fig1
//! ```

use vip_core::addressing::inter::run_inter;
use vip_core::addressing::intra::run_intra;
use vip_core::addressing::segment::{run_segment, SegmentOptions};
use vip_core::frame::Frame;
use vip_core::geometry::{Dims, Point};
use vip_core::ops::arith::AbsDiff;
use vip_core::ops::filter::BoxBlur;
use vip_core::ops::segment_ops::HomogeneityCriterion;
use vip_core::pixel::Pixel;

fn main() {
    let dims = Dims::new(12, 6);

    println!("==================== Fig. 1 — pixel addressing schemes ====================\n");

    // --- Inter addressing: two frames, same position.
    let a = Frame::filled(dims, Pixel::from_luma(100));
    let b = Frame::filled(dims, Pixel::from_luma(60));
    let inter = run_inter(&a, &b, &AbsDiff::luma()).expect("valid frames");
    println!("INTER addressing: result(x,y) = f(frameA(x,y), frameB(x,y))");
    println!("  frames scanned in parallel, row-major →");
    println!("  {} ({} pixels, {} sw accesses)\n", inter.report, dims.pixel_count(),
        inter.report.counter.total());

    // --- Intra addressing: one frame, neighbourhood window.
    let f = Frame::from_fn(dims, |p| Pixel::from_luma((p.x * 20) as u8));
    let intra = run_intra(&f, &BoxBlur::con8()).expect("valid frame");
    println!("INTRA addressing: result(x,y) = f(window(frame, x, y))");
    println!("  sliding CON_8 window, row-major →, 3 new pixels per step");
    println!("  {}\n", intra.report);

    // --- Segment addressing: expansion in geodesic order.
    let mut seg_frame = Frame::filled(dims, Pixel::from_luma(10));
    for p in [(4, 2), (5, 2), (6, 2), (5, 3), (5, 1), (4, 3), (6, 1)] {
        seg_frame.set(Point::new(p.0, p.1), Pixel::from_luma(200));
    }
    let seg = run_segment(
        &seg_frame,
        &[Point::new(5, 2)],
        &HomogeneityCriterion::luma(20),
        SegmentOptions::default(),
    )
    .expect("valid seeds");
    println!("SEGMENT addressing: expansion from seed (5,2) in geodesic order");
    println!("  visited (point, distance):");
    for s in &seg.segment {
        println!("    {} @ d={}", s.point, s.distance);
    }
    println!("  {}", seg.report);

    // Render the distance field like the figure's arrows.
    println!("\n  geodesic distance field (·=outside segment):");
    for y in 0..dims.height as i32 {
        let row: String = (0..dims.width as i32)
            .map(|x| {
                let px = seg.output.get(Point::new(x, y));
                if px.alpha != 0 {
                    char::from_digit(u32::from(px.aux) % 10, 10).unwrap_or('?')
                } else {
                    '·'
                }
            })
            .collect();
        println!("    {row}");
    }
}
