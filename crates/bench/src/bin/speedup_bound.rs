//! Regenerates the **§1 claim**: instruction-level profiling of a video
//! object segmentation algorithm bounds the achievable AddressEngine
//! acceleration at ≈ ×30, with all high-level control remaining on the
//! host CPU.
//!
//! ```text
//! cargo run -p vip-bench --bin speedup_bound
//! ```

use vip_core::geometry::{Dims, ImageFormat};
use vip_profiling::amdahl::{amdahl, SpeedupBound};
use vip_profiling::instr::{CostModel, InstrClass};
use vip_profiling::profile::{profile, segmentation_workload};

fn main() {
    let cif: Dims = ImageFormat::Cif.dims();
    let mix = segmentation_workload(cif);
    let pm = CostModel::pentium_m_xm();
    let p = profile(&mix, &pm);

    println!("====== §1 — instruction profiling of the segmentation workload ======\n");
    println!("per-frame instruction mix (CIF, video object segmentation in the style of [3]):");
    let total_s = p.seconds;
    for class in InstrClass::ALL {
        let count = mix.count(class);
        let secs = pm.seconds(class, count);
        println!(
            "  {class:<14} {count:>12.0} ops  {:>7.2} ms  {:>5.1} % of time",
            secs * 1e3,
            secs / total_s * 100.0
        );
    }
    println!("\n  total modelled frame time: {:.1} ms", total_s * 1e3);
    println!(
        "  address calculation alone: {:.1} % of the runtime — the dominant\n\
         \x20 operation the paper optimises (§1, §6)",
        p.address_fraction * 100.0
    );

    let bound = SpeedupBound::of(&mix, &pm);
    println!("\noffloadable (low-level) fraction f = {:.4}", bound.offloadable_fraction);
    println!(
        "maximum achievable acceleration 1/(1−f) = ×{:.1}   (paper: ×30)",
        bound.ideal_bound
    );

    println!("\nspeedup vs coprocessor-side acceleration s (Amdahl):");
    println!("  {:>6} {:>10}", "s", "overall");
    for s in [2.0, 4.0, 6.3, 10.0, 30.0, 100.0, 1e6] {
        let overall = amdahl(bound.offloadable_fraction, s);
        let label = if s >= 1e6 { "∞".to_string() } else { format!("{s:.1}") };
        println!("  {label:>6} {overall:>9.2}x");
    }
    println!(
        "\nthe measured Table 3 factor of ≈5 corresponds to a coprocessor-side\n\
         speedup of ≈6 on the offloaded part — far below the ×30 ceiling."
    );
}
