//! Ablations over the AddressEngine design choices DESIGN.md calls out:
//! strip size, OIM drain rate, inter transfer overlap, engine clock and
//! PCI efficiency — evaluated with the call timing model, plus the
//! resource cost of the intermediate memories.
//!
//! ```text
//! cargo run -p vip-bench --bin ablation
//! ```

use vip_core::geometry::ImageFormat;
use vip_engine::config::InterOverlap;
use vip_engine::timing::{inter_timeline, intra_timeline};
use vip_engine::{ClockDomain, EngineConfig, ResourceEstimate};

fn main() {
    let cif = ImageFormat::Cif.dims();
    let base = {
        let mut c = EngineConfig::prototype();
        c.interrupt_overhead_cycles = 0;
        c
    };

    println!("==================== AddressEngine design ablations ====================\n");

    // 1. Strip size: affects the intra processing lead (latency), not the
    //    sustained PCI-bound throughput.
    println!("--- strip / IIM size (intra CON_8 call, CIF) ---");
    println!("{:>6} {:>12} {:>12} {:>8}", "lines", "total ms", "nonPCI ms", "BRAMs");
    for lines in [8usize, 16, 32, 64] {
        let mut c = base.clone();
        c.strip_lines = lines;
        c.iim_lines = lines;
        c.oim_lines = lines;
        let t = intra_timeline(cif, 1, &c);
        let r = ResourceEstimate::for_config(&c);
        println!(
            "{lines:>6} {:>12.3} {:>12.3} {:>8}",
            t.total * 1e3,
            t.non_pci() * 1e3,
            r.brams
        );
    }
    println!("  → 16 lines (the paper's choice) already hides the latency; larger IIMs");
    println!("    only cost BRAMs. 8 lines cannot hold the 9-line worst-case window.\n");

    // 2. OIM drain rate: the result-bank write organisation.
    println!("--- result-write organisation (drain cycles/pixel; intra call) ---");
    println!("{:>6} {:>12} {:>12}", "cyc/px", "total ms", "nonPCI ms");
    for drain in [1u64, 2, 4] {
        let mut c = base.clone();
        c.oim_drain_cycles_per_pixel = drain;
        let t = intra_timeline(cif, 1, &c);
        println!("{drain:>6} {:>12.3} {:>12.3}", t.total * 1e3, t.non_pci() * 1e3);
    }
    println!("  → the sequential lo/hi result write (2 cyc/px) is fully hidden behind the");
    println!("    PCI transfers; even 4 cyc/px barely shows. The OIM buffer works.\n");

    // 3. Inter overlap: the \"special inter operations\" of §4.1.
    println!("--- inter transfer/processing overlap (inter call, CIF) ---");
    for (name, mode) in [
        ("sequential (special ops)", InterOverlap::Sequential),
        ("interleaved strips", InterOverlap::Interleaved),
    ] {
        let mut c = base.clone();
        c.inter_overlap = mode;
        let t = inter_timeline(cif, &c);
        println!(
            "  {name:<26} total {:>7.3} ms   non-PCI/in {:>5.1} %",
            t.total * 1e3,
            t.non_pci_of_input() * 100.0
        );
    }
    println!("  → interleaving the two input images removes the 12.5 % overhead.\n");

    // 4. Engine clock: 66 MHz operating point vs the 102 MHz fmax.
    println!("--- engine clock (inter call, CIF) ---");
    for clock in [ClockDomain::engine_66(), ClockDomain::engine_fmax()] {
        let mut c = base.clone();
        c.engine_clock = clock;
        let t = inter_timeline(cif, &c);
        println!(
            "  {:<22} total {:>7.3} ms   non-PCI {:>6.3} ms",
            clock.to_string(),
            t.total * 1e3,
            t.non_pci() * 1e3
        );
    }
    println!("  → running at fmax shrinks only the (small) processing share: the system");
    println!("    is PCI-bound, as §4.1 states — hence the CoreConnect outlook in §4.3.\n");

    // 5. PCI efficiency: what a better bus would buy (the §4.3 outlook).
    println!("--- bus bandwidth (intra call total; 1.0 = ideal 264 MB/s PCI) ---");
    for eff in [0.5, 0.75, 1.0, 2.0, 4.0] {
        let mut c = base.clone();
        // >1 models the on-chip CoreConnect outlook of §4.3.
        c.pci_efficiency = 1.0;
        c.pci_bytes_per_cycle = (4.0 * eff) as usize;
        if c.pci_bytes_per_cycle == 0 {
            c.pci_bytes_per_cycle = 2;
        }
        let t = intra_timeline(cif, 1, &c);
        println!(
            "  {:>4.2}× bandwidth  total {:>7.3} ms",
            eff,
            t.total * 1e3
        );
    }
    println!("  → call time scales almost inversely with bus bandwidth: replacing the PCI");
    println!("    with an on-chip bus (PowerPC + CoreConnect, §4.3) is the right next step.");
}
