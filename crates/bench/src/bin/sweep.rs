//! Detailed-engine configuration sweep, fanned out across the `vip-par`
//! work pool: cycle counts, stall breakdown and OIM occupancy for a grid
//! of IIM/OIM/drain configurations of the cycle-stepped datapath.
//!
//! Each grid cell is an independent simulation, so the sweep computes
//! all cells in parallel (`VIP_THREADS` overrides the worker count) and
//! prints them serially in grid order — the output is byte-identical at
//! any thread count.
//!
//! ```text
//! cargo run -p vip-bench --bin sweep
//! ```

use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_core::ops::filter::BoxBlur;
use vip_core::pixel::Pixel;
use vip_engine::{AddressEngine, EngineConfig, EngineError};

/// One grid cell: the configuration axes under sweep.
#[derive(Debug, Clone, Copy)]
struct Cell {
    radius: usize,
    iim_lines: usize,
    oim_lines: usize,
    drain: u64,
}

fn grid() -> Vec<Cell> {
    let mut cells = Vec::new();
    for radius in [1usize, 2] {
        for iim_lines in [3usize, 5, 9, 16] {
            for oim_lines in [2usize, 8, 16] {
                for drain in [1u64, 2, 4] {
                    cells.push(Cell { radius, iim_lines, oim_lines, drain });
                }
            }
        }
    }
    cells
}

/// Simulates one cell; returns the formatted table row.
fn simulate(dims: Dims, frame: &Frame, cell: Cell) -> String {
    let mut config = EngineConfig::prototype_detailed();
    config.iim_lines = cell.iim_lines;
    config.oim_lines = cell.oim_lines;
    config.oim_drain_cycles_per_pixel = cell.drain;
    let label = format!(
        "r={} iim={:>2} oim={:>2} drain={}",
        cell.radius, cell.iim_lines, cell.oim_lines, cell.drain
    );
    let op = BoxBlur::with_radius(cell.radius).expect("radius ≤ 4");
    let outcome = AddressEngine::new(config).and_then(|mut engine| engine.run_intra(frame, &op));
    match outcome {
        Ok(run) => {
            let p = run.report.processing.expect("detailed mode records stats");
            format!(
                "{label:<28} {:>9} {:>9} {:>9} {:>7}/{:<3} {:>9.3}",
                p.cycles,
                p.iim_stalls,
                p.oim_stalls,
                p.oim_max_occupancy,
                cell.oim_lines * dims.width,
                p.cycles as f64 / dims.pixel_count() as f64,
            )
        }
        Err(EngineError::PipelineHazard { .. }) => {
            format!("{label:<28} {:>9}", "deadlock")
        }
        Err(e) => format!("{label:<28} error: {e}"),
    }
}

fn main() {
    let dims = Dims::new(64, 48);
    let frame = Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 7 + p.y * 13) % 256) as u8));
    let cells = grid();
    let threads = vip_par::default_threads();

    println!("======== detailed-engine configuration sweep ({dims}, {} cells, {threads} threads) ========\n", cells.len());
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "configuration", "cycles", "iim stall", "oim stall", "occ/cap", "cyc/px"
    );

    let rows = vip_par::map(&cells, threads, |cell| simulate(dims, &frame, *cell));
    for row in rows {
        println!("{row}");
    }
    println!(
        "\n→ IIM blocks below the 2r+1-line window deadlock (the static checker's\n  \
         occupancy.iim_deadlock verdict); slow drains trade OIM occupancy for stalls\n  \
         only once the buffer saturates."
    );
}
