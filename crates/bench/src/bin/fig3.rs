//! Regenerates **Fig. 3**: the ZBT memory distribution — input images in
//! paired banks with alternating strip blocks, result image in
//! sequential-word Res_block_A / Res_block_B — for both frame formats.
//!
//! ```text
//! cargo run -p vip-bench --bin fig3
//! ```

use vip_core::geometry::ImageFormat;
use vip_engine::zbt::ZbtMemory;
use vip_engine::EngineConfig;

fn main() {
    let cfg = EngineConfig::prototype();
    let zbt = ZbtMemory::new(&cfg);

    println!("=================== Fig. 3 — ZBT memory distribution ===================\n");
    for format in [ImageFormat::Qcif, ImageFormat::Cif] {
        let dims = format.dims();
        println!("--- {format} ({dims}, {} kB/image) ---", format.bytes() / 1024);
        print!("{}", zbt.memory_map(dims, cfg.strip_lines));
        let strips = dims.height / cfg.strip_lines;
        println!(
            "  transfer: {} strips of {} lines, written to alternating blocks;",
            strips, cfg.strip_lines
        );
        println!(
            "  strip in block_A is processed while the next strip lands in block_B (§3.1)\n"
        );
    }

    println!(
        "bank budget: {} words per bank; CIF needs {} words/bank for inputs, {} for results",
        zbt.bank_words(),
        ImageFormat::Cif.dims().pixel_count(),
        ImageFormat::Cif.dims().pixel_count().div_ceil(2) * 2,
    );
    println!(
        "fits: QCIF {}  CIF {}",
        zbt.fits(ImageFormat::Qcif.dims()),
        zbt.fits(ImageFormat::Cif.dims())
    );
}
