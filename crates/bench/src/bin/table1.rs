//! Regenerates **Table 1**: the device-utilisation summary and timing of
//! the AddressEngine prototype on the Virtex-II 2V3000, plus the §5
//! outlook configuration as a what-if.
//!
//! ```text
//! cargo run -p vip-bench --bin table1
//! ```

use vip_engine::{EngineConfig, ResourceEstimate};

fn main() {
    println!("================ Table 1 — prototype implementation =================");
    let prototype = ResourceEstimate::for_config(&EngineConfig::prototype());
    println!("{prototype}");

    println!("\npaper (measured, ISE 6)   vs   model:");
    let rows = [
        ("Slices", 564u32, prototype.slices),
        ("Slice Flip Flops", 216, prototype.flip_flops),
        ("4 input LUTs", 349, prototype.lut4),
        ("bonded IOBs", 60, prototype.iobs),
        ("BRAMs", 29, prototype.brams),
        ("GCLKs", 1, prototype.gclks),
    ];
    for (name, paper, model) in rows {
        println!("  {name:<18} paper {paper:>6}   model {model:>6}");
    }
    println!(
        "  {:<18} paper {:>6}   model {:>6.3}",
        "fmax (MHz)", 102.208, prototype.fmax_mhz
    );
    println!(
        "\nmeets the 66 MHz PCI operating clock: {}",
        prototype.meets_clock(66.0)
    );
    println!(
        "BRAM headroom for further addressing schemes (§4.1): {} of {} used",
        prototype.brams, prototype.device.brams
    );

    println!("\n====== §5 outlook: segment addressing enabled (model what-if) ======");
    let outlook = ResourceEstimate::for_config(&EngineConfig::outlook_v2());
    println!("{outlook}");
    println!(
        "\nstill fits the device: {}   still meets 66 MHz: {}",
        outlook.fits_device(),
        outlook.meets_clock(66.0)
    );
}
