//! Regenerates the **§4.1 claim**: the PCI bus is the bottleneck; the
//! processing time is insignificant except for special inter operations,
//! where the non-PCI time is 12.5 % of the inbound transfer time.
//!
//! ```text
//! cargo run -p vip-bench --bin pci_overhead
//! ```

use vip_core::geometry::ImageFormat;
use vip_engine::config::InterOverlap;
use vip_engine::timing::{inter_timeline, intra_timeline};
use vip_engine::EngineConfig;

fn main() {
    let mut cfg = EngineConfig::prototype();
    cfg.interrupt_overhead_cycles = 0; // isolate the payload/processing story
    let cif = ImageFormat::Cif.dims();

    println!("============ §4.1 — PCI bottleneck and processing overhead ============\n");
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>9} {:>11} {:>8}",
        "call (CIF)", "in ms", "out ms", "total ms", "nonPCI ms", "nonPCI/in", "PCI util"
    );

    let row = |name: &str, t: vip_engine::CallTimeline| {
        println!(
            "{name:<26} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>10.1}% {:>7.1}%",
            t.input_pci * 1e3,
            t.output_pci * 1e3,
            t.total * 1e3,
            t.non_pci() * 1e3,
            t.non_pci_of_input() * 100.0,
            t.pci_utilisation() * 100.0
        );
        t
    };

    row("intra CON_8", intra_timeline(cif, 1, &cfg));
    row("intra SQ_4 (9 lines)", intra_timeline(cif, 4, &cfg));
    let seq = row("inter (special, §4.1)", inter_timeline(cif, &cfg));

    cfg.inter_overlap = InterOverlap::Interleaved;
    row("inter (interleaved)", inter_timeline(cif, &cfg));

    println!(
        "\npaper: \"the time wasted not due to the PCI transferences is a 12.5 % of the\n\
         time needed to transfer the images to the board\" — model: {:.1} %",
        seq.non_pci_of_input() * 100.0
    );
    println!(
        "paper: the effect of processing is insignificant for intra calls — model\n\
         non-PCI share of an intra call: {:.1} % of the inbound transfer",
        intra_timeline(cif, 1, {
            let mut c = EngineConfig::prototype();
            c.interrupt_overhead_cycles = 0;
            &c.clone()
        })
        .non_pci_of_input()
            * 100.0
    );
}
