//! Regenerates **Table 3**: MPEG-7-style global motion estimation over
//! the four test sequences — modelled Pentium-M software time vs modelled
//! AddressEngine (FPGA) time, with AddressLib call counts.
//!
//! The original MPEG-1 clips are replaced by synthetic CIF sequences with
//! scripted ground-truth camera motion (see `vip-video`); the GME runs
//! for real, frame by frame, dispatching every pixel pass through the
//! simulated engine, whose timing model accumulates the FPGA column while
//! the calibrated PM cost model accumulates the software column.
//!
//! ```text
//! cargo run --release -p vip-bench --bin table3            # full CIF run
//! cargo run --release -p vip-bench --bin table3 -- --quick # 88×72, 12 frames
//! ```

use vip_bench::{fmt_minutes, run_table3_row, table3_rows_to_json};
use vip_video::TestSequence;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = std::env::args().any(|a| a == "--json");
    let scale = quick.then_some((88, 72, 12));
    if quick {
        println!("(quick mode: 88x72 frames, 12 per sequence — shapes, not magnitudes)\n");
    }

    println!("============================== Table 3 — GME runtimes ==============================");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "Video", "frames", "Time PM", "Time FPGA", "speedup", "intra", "inter", "gt-err px", "harness"
    );

    // Paper reference rows for comparison.
    let paper = [
        ("singapore", 275.0, 64.0, 4542u64, 3173u64),
        ("dome", 328.0, 73.0, 4931, 3404),
        ("pisa", 745.0, 141.0, 9294, 6541),
        ("movie", 322.0, 65.0, 4070, 3085),
    ];

    let mut speedups = Vec::new();
    let mut rows = Vec::new();
    for seq in TestSequence::table3() {
        let row = run_table3_row(&seq, scale);
        println!(
            "{:<10} {:>8} {:>10} {:>10} {:>7.2}x {:>8} {:>8} {:>9.3} {:>8.1}s",
            row.name,
            row.frames,
            fmt_minutes(row.pm_seconds),
            fmt_minutes(row.fpga_seconds),
            row.speedup(),
            row.intra_calls,
            row.inter_calls,
            row.mean_truth_error,
            row.harness_seconds,
        );
        speedups.push(row.speedup());
        rows.push(row);
    }
    if json {
        let path = "table3.json";
        std::fs::write(path, table3_rows_to_json(&rows)).expect("write table3.json");
        println!("\nwrote machine-readable rows to {path}");
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("\naverage speedup: {avg:.2}x   (paper: ≈5x over a 1.6 GHz Pentium-M)");

    println!("\npaper reference rows:");
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "Video", "Time PM", "Time FPGA", "speedup", "intra", "inter"
    );
    for (name, pm, fpga, intra, inter) in paper {
        println!(
            "{name:<10} {:>10} {:>10} {:>7.2}x {intra:>8} {inter:>8}",
            fmt_minutes(pm),
            fmt_minutes(fpga),
            pm / fpga
        );
    }
    println!(
        "\nnotes: times are model-derived (PM cost model / engine timeline), call counts are\n\
         real dispatch counts from the GME run; 'gt-err' is the mean translation error against\n\
         the synthetic sequences' scripted ground truth; 'harness' is this simulation's own\n\
         wall-clock time."
    );
}
