//! Regenerates **Fig. 4**: the worst-case neighbourhood — maximum size,
//! perpendicular to the scan direction — and demonstrates that the IIM
//! still delivers the whole window in a single memory cycle.
//!
//! A column-major (vertical) scan with a full-width 9-line window is the
//! case the 16-line strip size was chosen for (§3.1).
//!
//! ```text
//! cargo run -p vip-bench --bin fig4
//! ```

use vip_core::border::BorderPolicy;
use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_core::neighborhood::{Connectivity, MAX_LINES};
use vip_core::pixel::Pixel;
use vip_core::scan::{scan_points, ScanOrder};
use vip_engine::iim::Iim;
use vip_engine::EngineConfig;

fn main() {
    let cfg = EngineConfig::prototype();
    let dims = Dims::new(24, 16);
    let frame = Frame::from_fn(dims, |p| Pixel::from_luma((p.y * 10 + p.x) as u8));

    println!("========== Fig. 4 — worst case: neighbourhood ⊥ scan direction ==========\n");
    println!(
        "max window: {} lines (radius 4) → strip/IIM size {} lines (§3.1: a power of\n\
         two ≥ 9 that divides the image height)\n",
        MAX_LINES, cfg.strip_lines
    );

    // Load the IIM with a full strip of lines.
    let mut iim = Iim::new(cfg.iim_lines, dims.width);
    for l in 0..dims.height.min(cfg.iim_lines) {
        iim.load_line(l, frame.line(l));
    }

    // Sweep column-major (vertical scan) with the 9×9 worst-case window:
    // the window is perpendicular to the scan everywhere.
    let shape = Connectivity::Square(4);
    let mut fetches = 0u64;
    let mut samples = 0usize;
    for p in scan_points(Dims::new(dims.width, cfg.iim_lines.min(dims.height)), ScanOrder::ColumnMajor)
    {
        let w = iim
            .fetch_window(p, shape, dims, BorderPolicy::Clamp)
            .expect("all lines resident: no stall possible");
        fetches += 1;
        samples += w.len();
    }

    println!("vertical scan over {} pixels with a 9×9 window:", fetches);
    println!("  window fetches     : {}", iim.window_fetches());
    println!("  memory cycles used : {} (exactly one per window)", iim.window_fetches());
    println!("  samples delivered  : {samples} ({} per window)", samples as u64 / fetches);
    println!("  stalls             : {}", iim.stall_cycles());
    assert_eq!(iim.window_fetches(), fetches);
    assert_eq!(iim.stall_cycles(), 0);

    // Contrast: the software model pays per-pixel loads.
    let call = vip_core::accounting::CallDescriptor::intra(
        shape,
        vip_core::pixel::ChannelSet::Y,
        vip_core::pixel::ChannelSet::Y,
    );
    println!(
        "\nsoftware model for the same window: {} accesses/pixel vs hardware {}",
        call.software_accesses_per_pixel(),
        call.hardware_accesses_per_pixel()
    );
    println!("\nthe whole neighbourhood is obtained in only one cycle, even in the worst");
    println!("case with perpendicular neighbourhood and scan direction (§3.1).");

    // ASCII sketch of the fig. 4 geometry.
    println!("\n  scan ↓ (column-major)     window (9 lines ⊥ scan):");
    for i in 0..5 {
        let marker = if i == 2 { "━━━━━━━━━●━━━━━━━━━" } else { "───────────────────" };
        println!("    {}  {}", if i == 2 { "▼" } else { "│" }, marker);
    }
}
