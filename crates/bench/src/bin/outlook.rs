//! The §5 outlook, executably: segment addressing on the v2 engine and
//! dynamic partial reconfiguration of the pixel-processing block, with a
//! break-even analysis of kernel swapping vs host fallback.
//!
//! ```text
//! cargo run -p vip-bench --bin outlook
//! ```

use vip_core::accounting::CallDescriptor;
use vip_core::addressing::segment::SegmentOptions;
use vip_core::frame::Frame;
use vip_core::geometry::{Dims, ImageFormat, Point};
use vip_core::neighborhood::Connectivity;
use vip_core::ops::filter::{Binomial3, SobelGradient};
use vip_core::ops::morph::{Dilate, Erode};
use vip_core::ops::segment_ops::HomogeneityCriterion;
use vip_core::pixel::{ChannelSet, Pixel};
use vip_engine::reconfig::{ReconfigConfig, ReconfigurableEngine};
use vip_engine::{AddressEngine, EngineConfig};
use vip_profiling::instr::CostModel;
use vip_profiling::profile::software_call_seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("======================= §5 outlook experiments =======================\n");

    // --- 1. Segment addressing on the engine (v2 capability).
    println!("--- segment addressing on the engine ---");
    let dims = Dims::new(176, 144);
    let frame = Frame::from_fn(dims, |p| {
        Pixel::from_luma(if (p.x - 88).pow(2) + (p.y - 72).pow(2) < 2500 { 200 } else { 40 })
    });
    let mut v1 = AddressEngine::new(EngineConfig::prototype())?;
    let rejected = v1
        .run_segment(
            &frame,
            &[Point::new(88, 72)],
            &HomogeneityCriterion::luma(15),
            SegmentOptions::default(),
        )
        .is_err();
    println!("  v1 prototype rejects segment calls: {rejected}");

    let mut v2 = AddressEngine::new(EngineConfig::outlook_v2())?;
    let run = v2.run_segment(
        &frame,
        &[Point::new(88, 72)],
        &HomogeneityCriterion::luma(15),
        SegmentOptions::default(),
    )?;
    println!(
        "  v2 engine grows the disc: {} pixels in {:.3} ms (radius {})",
        run.result.segment.len(),
        run.report.timeline.total * 1e3,
        run.result.max_distance()
    );

    // --- 2. Dynamic partial reconfiguration of the processing block.
    println!("\n--- dynamic partial reconfiguration ---");
    let icap = ReconfigConfig::virtex2_icap();
    println!(
        "  ICAP model: {} kB partial bitstream at {:.0} MB/s + {:.1} µs setup → {:.3} ms/swap",
        icap.bitstream_bytes / 1024,
        icap.port_bandwidth / 1e6,
        icap.setup_seconds * 1e6,
        icap.reconfiguration_seconds() * 1e3
    );

    let mut engine = ReconfigurableEngine::new(EngineConfig::prototype(), icap)?;
    let cif = Frame::filled(ImageFormat::Cif.dims(), Pixel::from_luma(90));

    // A segmentation-style kernel schedule: smooth, gradient, then a
    // morphological open (erode+dilate), alternating per frame.
    println!("\n  kernel schedule over 4 synthetic frames:");
    println!("  {:>5} {:<14} {:>12} {:>12} {:>8}", "call", "kernel", "reconf ms", "total ms", "slot");
    for frame_no in 0..4 {
        for i in 0..4 {
            let (name, r) = match i {
                0 => ("binomial3", engine.run_intra(&cif, &Binomial3::new())?),
                1 => ("sobel", engine.run_intra(&cif, &SobelGradient::new())?),
                2 => ("erode", engine.run_intra(&cif, &Erode::con8())?),
                _ => ("dilate", engine.run_intra(&cif, &Dilate::con8())?),
            };
            println!(
                "  {:>5} {:<14} {:>12.3} {:>12.3} {:>8}",
                frame_no * 4 + i,
                name,
                r.reconfiguration_seconds * 1e3,
                r.total_seconds * 1e3,
                engine.loaded_kernel().unwrap_or("-")
            );
        }
    }
    let stats = engine.stats();
    println!(
        "\n  {} calls, {} reconfigurations (hit rate {:.0} %), overhead {:.1} % of total time",
        stats.calls,
        stats.reconfigurations,
        stats.hit_rate() * 100.0,
        stats.overhead_fraction() * 100.0
    );

    // --- 3. Break-even: when does loading a kernel beat host fallback?
    println!("\n--- break-even: reconfigure vs run on the host CPU ---");
    let pm = CostModel::pentium_m_xm();
    let intra = CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y);
    let sw_call = software_call_seconds(&intra, ImageFormat::Cif.dims(), &pm);
    let hw_call = vip_engine::timing::intra_timeline(ImageFormat::Cif.dims(), 1, engine.engine().config()).total;
    let breakeven = engine.break_even_calls(hw_call, sw_call);
    println!(
        "  CIF CON_8 intra: host {:.1} ms vs engine {:.1} ms per call",
        sw_call * 1e3,
        hw_call * 1e3
    );
    println!(
        "  one {:.2} ms kernel swap amortises after {} call(s) → swap aggressively",
        icap.reconfiguration_seconds() * 1e3,
        breakeven.map_or("∞".to_string(), |n| n.to_string())
    );
    Ok(())
}
