//! # vip-bench — table/figure regeneration harnesses
//!
//! Shared plumbing for the binaries that regenerate every table and
//! figure of the DATE 2005 AddressEngine paper:
//!
//! | binary          | regenerates                                        |
//! |-----------------|----------------------------------------------------|
//! | `table1`        | Table 1 — device utilisation + timing summary      |
//! | `table2`        | Table 2 — memory accesses software vs hardware     |
//! | `table3`        | Table 3 — GME runtimes PM vs FPGA + call counts    |
//! | `fig1`          | Fig. 1 — the three pixel-addressing schemes        |
//! | `fig2`          | Fig. 2 — architecture block diagram (textual)      |
//! | `fig3`          | Fig. 3 — ZBT memory distribution                   |
//! | `fig4`          | Fig. 4 — worst-case ⊥ neighbourhood, 1-cycle fetch |
//! | `fig5`          | Fig. 5/6 — PLC pipeline occupancy trace            |
//! | `speedup_bound` | §1 — the ×30 profiling bound                       |
//! | `pci_overhead`  | §4.1 — the 12.5 % special-inter overhead           |
//! | `ablation`      | design-choice sweeps (strip size, overlap, clock)  |

#![forbid(unsafe_code)]

pub mod harness;

use std::time::Duration;

use vip_gme::{EngineBackend, GmeConfig, SequenceRunner};
use vip_obs::json::JsonWriter;
use vip_video::TestSequence;

/// Formats seconds like the paper's Table 3 (`4'35''`).
#[must_use]
pub fn fmt_minutes(seconds: f64) -> String {
    let total = seconds.round() as u64;
    format!("{}'{:02}''", total / 60, total % 60)
}

/// Formats a [`Duration`] compactly.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.2} ms", s * 1e3)
    }
}

/// One Table 3 row as produced by a GME run.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Sequence name.
    pub name: &'static str,
    /// Frames processed.
    pub frames: usize,
    /// Modelled Pentium-M software seconds ("Time in PM").
    pub pm_seconds: f64,
    /// Modelled AddressEngine seconds ("Time in FPGA").
    pub fpga_seconds: f64,
    /// Intra AddressLib calls.
    pub intra_calls: u64,
    /// Inter AddressLib calls.
    pub inter_calls: u64,
    /// Wall-clock seconds this harness spent simulating the row.
    pub harness_seconds: f64,
    /// Mean translation error against the scripted ground truth (px).
    pub mean_truth_error: f64,
}

impl Table3Row {
    /// Speedup PM / FPGA.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.fpga_seconds == 0.0 {
            return 0.0;
        }
        self.pm_seconds / self.fpga_seconds
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("name");
        w.string(self.name);
        w.key("frames");
        w.u64(self.frames as u64);
        w.key("pm_seconds");
        w.f64(self.pm_seconds);
        w.key("fpga_seconds");
        w.f64(self.fpga_seconds);
        w.key("speedup");
        w.f64(self.speedup());
        w.key("intra_calls");
        w.u64(self.intra_calls);
        w.key("inter_calls");
        w.u64(self.inter_calls);
        w.key("harness_seconds");
        w.f64(self.harness_seconds);
        w.key("mean_truth_error");
        w.f64(self.mean_truth_error);
        w.end_object();
    }
}

/// Serialises Table 3 rows to a JSON array (machine-readable `--json`
/// output), using the in-workspace writer instead of serde_json.
#[must_use]
pub fn table3_rows_to_json(rows: &[Table3Row]) -> String {
    let mut w = JsonWriter::new();
    w.begin_array();
    for row in rows {
        row.write_json(&mut w);
    }
    w.end_array();
    w.finish()
}

/// Runs one sequence through GME on the engine backend and produces its
/// Table 3 row. `scale` optionally down-scales the sequence
/// (width, height, frames) for quick runs.
///
/// # Panics
///
/// Panics when the GME run fails (synthetic sequences are always valid).
#[must_use]
pub fn run_table3_row(seq: &TestSequence, scale: Option<(usize, usize, usize)>) -> Table3Row {
    let seq = match scale {
        Some((w, h, f)) => seq.scaled(w, h, f),
        None => seq.clone(),
    };
    let runner = SequenceRunner::new(GmeConfig::default());
    let mut backend = EngineBackend::prototype();
    let start = std::time::Instant::now();
    let report = runner
        .run(seq.frames(), &mut backend)
        .expect("synthetic sequence GME must succeed");
    let harness_seconds = start.elapsed().as_secs_f64();

    let mut err_sum = 0.0;
    for rec in &report.records {
        let truth = seq.script().ground_truth(rec.index - 1);
        let (edx, edy) = rec.relative.translation_part();
        err_sum += ((edx - truth.dx).powi(2) + (edy - truth.dy).powi(2)).sqrt();
    }
    let mean_truth_error = if report.records.is_empty() {
        0.0
    } else {
        err_sum / report.records.len() as f64
    };

    Table3Row {
        name: seq.name(),
        frames: seq.frame_count(),
        pm_seconds: report.pm_seconds,
        fpga_seconds: report.backend_seconds,
        intra_calls: report.tally.intra,
        inter_calls: report.tally.inter,
        harness_seconds,
        mean_truth_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_minutes_matches_paper_style() {
        assert_eq!(fmt_minutes(275.0), "4'35''");
        assert_eq!(fmt_minutes(64.0), "1'04''");
        assert_eq!(fmt_minutes(0.4), "0'00''");
        assert_eq!(fmt_minutes(745.0), "12'25''");
    }

    #[test]
    fn fmt_duration_units() {
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.50 s");
        assert_eq!(fmt_duration(Duration::from_micros(2500)), "2.50 ms");
    }

    #[test]
    fn table3_json_round_trips_through_validator() {
        let rows = vec![Table3Row {
            name: "movie",
            frames: 4,
            pm_seconds: 1.5,
            fpga_seconds: 0.5,
            intra_calls: 10,
            inter_calls: 7,
            harness_seconds: 0.01,
            mean_truth_error: 0.25,
        }];
        let json = table3_rows_to_json(&rows);
        vip_obs::json::validate(&json).unwrap();
        assert!(json.contains("\"speedup\":3"), "{json}");
    }

    #[test]
    fn quick_row_produces_sane_numbers() {
        let seq = TestSequence::movie();
        let row = run_table3_row(&seq, Some((64, 48, 4)));
        assert_eq!(row.name, "movie");
        assert_eq!(row.frames, 4);
        assert!(row.pm_seconds > 0.0);
        assert!(row.fpga_seconds > 0.0);
        assert!(row.speedup() > 1.0, "engine must win: {}", row.speedup());
        assert!(row.intra_calls > row.inter_calls / 2);
        assert!(row.mean_truth_error < 2.0, "{}", row.mean_truth_error);
    }
}
