//! # vip-par — zero-dependency parallel runtime for embarrassingly parallel sweeps
//!
//! The workspace's slowest paths are outer loops over independent work
//! units: seeded configuration sweeps (`static_vs_detailed`), the 3^9
//! start-pipeline proof in `vip-check`, per-frame GME backend runs, and
//! the figure/table benchmark sweeps. This crate parallelises them with
//! nothing but `std::thread::scope` — no rayon, no registry access —
//! and with **deterministic result ordering**: the output of
//! [`map_indexed`] is indexed by work-item index, never by completion
//! order, so a run with 1 thread and a run with N threads produce
//! byte-identical results.
//!
//! Work is distributed by an atomic work-index counter (work stealing at
//! item granularity), so uneven item costs do not serialise the sweep.
//!
//! # Examples
//!
//! ```
//! let squares = vip_par::map_indexed(8, vip_par::default_threads(), |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: the `VIP_THREADS` environment variable when set
/// to a positive integer, otherwise [`std::thread::available_parallelism`],
/// otherwise 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("VIP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every index in `0..n` using up to `threads` scoped
/// worker threads and returns the results **in index order**.
///
/// The output is identical for every `threads >= 1`: results are stored
/// into their own slot by index, so thread interleaving cannot reorder
/// them. `threads <= 1` (or `n <= 1`) runs serially on the caller's
/// thread with no pool at all.
///
/// # Panics
///
/// Panics if `f` panics on any index (the panic is propagated once all
/// workers have stopped).
pub fn map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n == 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                results.lock().expect("result buffer poisoned")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("result buffer poisoned")
        .into_iter()
        .map(|slot| slot.expect("every index 0..n is claimed exactly once"))
        .collect()
}

/// Applies `f` to every element of `items` in parallel and returns the
/// results in input order. Convenience wrapper over [`map_indexed`].
pub fn map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(items.len(), threads, |i| f(&items[i]))
}

/// Splits `0..total` into at most `parts` contiguous, non-empty ranges of
/// near-equal length, in ascending order. Useful for chunking a cheap
/// per-item loop into coarser parallel work units.
pub fn chunks(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if total == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, total);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_is_deterministic_across_thread_counts() {
        let serial = map_indexed(97, 1, |i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for threads in [2, 3, 8, 64] {
            let parallel =
                map_indexed(97, threads, |i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<String> = (0..40).map(|i| format!("item-{i}")).collect();
        let out = map(&items, 4, |s| s.len());
        let expected: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(map_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 8, |i| i + 1), vec![1]);
        assert_eq!(map_indexed(3, 100, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn chunks_cover_range_exactly_once() {
        for (total, parts) in [(10, 3), (3, 10), (1, 1), (120, 8), (7, 7)] {
            let ranges = chunks(total, parts);
            assert!(ranges.len() <= parts.max(1));
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "ranges contiguous and ascending");
                assert!(!r.is_empty());
                covered = r.end;
            }
            assert_eq!(covered, total);
        }
        assert!(chunks(0, 4).is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
