//! The Process Unit: the cycle-stepped 4-stage datapath (fig. 6).
//!
//! §3.5: stage 1 scans the image, stage 2 fills the matrix register from
//! the IIM (LOAD/SHIFT), stage 3 executes the pixel operation, stage 4
//! stores the result into the OIM. A transmission unit concurrently moves
//! lines ZBT → IIM, and the OIM drains to the ZBT result banks at half
//! the production rate (§3.1).
//!
//! [`run_intra_detailed`] and [`run_inter_detailed`] simulate one call
//! cycle by cycle; the analytic model in [`crate::timing`] is validated
//! against them.

use vip_core::border::BorderPolicy;
use vip_core::geometry::{Dims, Point};
use vip_core::neighborhood::{Connectivity, Window};
use vip_core::ops::{InterOp, IntraOp};
use vip_core::pixel::Pixel;
use vip_core::scan::ScanOrder;
use vip_obs::{Recorder, Track};

use crate::config::EngineConfig;
use crate::error::EngineResult;
use crate::iim::Iim;
use crate::matrix::MatrixRegister;
use crate::oim::Oim;
use crate::plc::{Arbiter, ControlFsm, FetchKind, StageSnapshot, StartPipeline};
use crate::zbt::{ZbtMemory, ZbtRegion};

/// Statistics of one detailed (cycle-stepped) processing phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProcessingStats {
    /// Engine cycles from processing start until the last result pixel
    /// reached the ZBT.
    pub cycles: u64,
    /// Pixels produced.
    pub pixels: u64,
    /// Cycles the pipeline stalled on a missing IIM line.
    pub iim_stalls: u64,
    /// Cycles the pipeline stalled on a full OIM.
    pub oim_stalls: u64,
    /// Cycles every stage slot sat empty with nothing left to issue —
    /// the drain tail where only the OIM → ZBT port is still working.
    pub idle_cycles: u64,
    /// Matrix-register LOAD instructions.
    pub matrix_loads: u64,
    /// Matrix-register SHIFT instructions.
    pub matrix_shifts: u64,
    /// Largest OIM occupancy observed.
    pub oim_max_occupancy: usize,
    /// First cycles of the stage-occupancy trace (for the fig. 5 print).
    pub trace: Vec<StageSnapshot>,
}

impl ProcessingStats {
    /// Effective engine cycles per produced pixel.
    #[must_use]
    pub fn cycles_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.pixels as f64
    }

    /// Cycles the pipeline actually advanced work. Stall, idle and busy
    /// cycles are mutually exclusive per-cycle classifications, so this
    /// complements the three counters exactly; the subtraction only
    /// saturates on hand-built inconsistent stats.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.cycles
            .saturating_sub(self.iim_stalls + self.oim_stalls + self.idle_cycles)
    }
}

/// Observability probe for the cycle-stepped datapath: maps engine
/// cycles onto the session's virtual clock and publishes spans for line
/// fills, pipeline bubbles, line sweeps, and OIM occupancy.
#[derive(Debug, Clone, Default)]
pub struct PuProbe {
    /// Where the spans go; disabled by default.
    pub recorder: Recorder,
    /// Virtual-clock time of processing-phase cycle 0, in nanoseconds.
    pub t0_ns: u64,
    /// Nanoseconds per engine cycle (`1e9 / engine_clock.hz`).
    pub ns_per_cycle: f64,
    /// Shortest stall run worth a span of its own. The OIM drains at two
    /// cycles per pixel, so a steady-state CIF call alternates produce /
    /// stall every other cycle — tens of thousands of one-cycle bubbles
    /// that would swamp the trace. Short runs still reach the aggregate
    /// stall counters; only runs of at least this length become spans.
    pub min_stall_run: u64,
}

impl PuProbe {
    /// A probe publishing nothing (the default).
    #[must_use]
    pub fn disabled() -> Self {
        PuProbe::default()
    }

    /// A probe attached to `recorder` with the given timebase.
    #[must_use]
    pub fn new(recorder: Recorder, t0_ns: u64, ns_per_cycle: f64) -> Self {
        PuProbe {
            recorder,
            t0_ns,
            ns_per_cycle,
            min_stall_run: 8,
        }
    }

    fn is_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Virtual-clock nanoseconds of engine cycle `cycle`.
    fn ts(&self, cycle: u64) -> u64 {
        self.t0_ns + (cycle as f64 * self.ns_per_cycle).round() as u64
    }
}

/// Coalesces per-cycle stall flags into runs, emitting one span per run
/// of at least `min_stall_run` cycles (see [`PuProbe::min_stall_run`]).
struct StallRuns<'a> {
    probe: &'a PuProbe,
    kind: Option<&'static str>,
    start_cycle: u64,
}

impl<'a> StallRuns<'a> {
    fn new(probe: &'a PuProbe) -> Self {
        StallRuns {
            probe,
            kind: None,
            start_cycle: 0,
        }
    }

    /// Feeds the stall state of one cycle (`None` = pipeline advanced).
    fn step(&mut self, cycle: u64, stalled: Option<&'static str>) {
        if self.kind == stalled {
            return;
        }
        self.flush(cycle);
        if stalled.is_some() {
            self.kind = stalled;
            self.start_cycle = cycle;
        }
    }

    /// Closes any open run at `cycle` (exclusive).
    fn flush(&mut self, cycle: u64) {
        if let Some(kind) = self.kind.take() {
            if cycle.saturating_sub(self.start_cycle) >= self.probe.min_stall_run {
                self.probe.recorder.span(
                    Track::Pu,
                    kind,
                    self.probe.ts(self.start_cycle),
                    self.probe.ts(cycle),
                    &[("cycles", (cycle - self.start_cycle).into())],
                );
            }
        }
    }
}

/// Runs the processing phase of an intra call cycle by cycle.
///
/// The input frame must already reside in the `region` input banks of
/// `zbt` (the DMA phase is modelled by [`crate::engine::AddressEngine`]).
/// Results land in the ZBT result banks.
///
/// # Errors
///
/// Propagates ZBT addressing errors; none occur for frames that passed
/// [`ZbtMemory::fits`].
pub fn run_intra_detailed<O: IntraOp>(
    zbt: &mut ZbtMemory,
    dims: Dims,
    op: &O,
    border: BorderPolicy,
    config: &EngineConfig,
    trace_limit: usize,
) -> EngineResult<ProcessingStats> {
    run_intra_detailed_probed(zbt, dims, op, border, config, trace_limit, &PuProbe::disabled())
}

/// [`run_intra_detailed`] with an observability probe: emits IIM
/// line-fill spans, per-line sweep spans, coalesced pipeline-bubble
/// spans, OIM occupancy samples, and one enclosing processing span.
///
/// # Errors
///
/// Propagates ZBT addressing errors; none occur for frames that passed
/// [`ZbtMemory::fits`].
pub fn run_intra_detailed_probed<O: IntraOp>(
    zbt: &mut ZbtMemory,
    dims: Dims,
    op: &O,
    border: BorderPolicy,
    config: &EngineConfig,
    trace_limit: usize,
    probe: &PuProbe,
) -> EngineResult<ProcessingStats> {
    let total = dims.pixel_count();
    let radius = op.shape().radius();
    let square = square_shape(op.shape());
    let mut iim = Iim::new(config.iim_lines, dims.width);
    let mut oim = Oim::new(config.oim_lines, dims.width);
    let mut matrix = MatrixRegister::new(square);
    let mut pipeline = StartPipeline::new();
    let mut arbiter = Arbiter::new();
    let mut fsm = ControlFsm::new(dims, ScanOrder::RowMajor);
    let mut stats = ProcessingStats::default();

    // Transmission-unit state: next line to load and position within it.
    let mut txu_line = 0usize;
    let mut txu_x = 0usize;
    let mut txu_buf: Vec<Pixel> = Vec::with_capacity(dims.width);

    // In-flight pipeline data.
    let mut scan_slot: Option<(Point, FetchKind, usize)> = None;
    let mut fetch_slot: Option<(Point, Window, usize)> = None;
    let mut exec_slot: Option<(usize, Pixel)> = None;

    let mut drained = 0usize;
    let mut drain_timer = 0u64;
    let mut cycles = 0u64;
    // Generous safety bound: every pixel may stall a few times.
    let bound = (total as u64 + 64) * (config.oim_drain_cycles_per_pixel + 6)
        + (dims.height as u64 + 4) * dims.width as u64;

    // Observability state: line-fill start, current sweep line, stall runs.
    let mut stall_runs = StallRuns::new(probe);
    let mut fill_start: Option<u64> = None;
    let mut sweep: Option<(i32, u64)> = None;
    let occupancy_every = dims.width.max(1) as u64;

    while drained < total {
        cycles += 1;
        if cycles > bound {
            return Err(crate::error::EngineError::PipelineHazard {
                detail: "cycle-stepped intra simulation exceeded its cycle bound",
            });
        }
        arbiter.next_cycle();
        let mut stalled: Option<&'static str> = None;

        // Idle classification (slot state at cycle start, mirrored by
        // `fast.rs`): nothing in flight and nothing left to issue.
        if exec_slot.is_none() && fetch_slot.is_none() && scan_slot.is_none() && fsm.len() == 0 {
            stats.idle_cycles += 1;
        }

        // --- OIM → ZBT drain (result port, independent of input banks).
        drain_timer += 1;
        if drain_timer >= config.oim_drain_cycles_per_pixel {
            if let Some((idx, px)) = oim.pop() {
                zbt.write_result_pixel(idx, total, px)?;
                drained += 1;
                drain_timer = 0;
            }
        }

        // --- Transmission unit: one pixel per cycle ZBT → IIM line buffer.
        if txu_line < dims.height {
            // Gate: never evict a line the sweep still needs — track the
            // oldest in-flight pixel (a fetch may lag the issue counter).
            let inflight_line = fetch_slot
                .as_ref()
                .map(|f| f.0.y as usize)
                .or_else(|| scan_slot.as_ref().map(|s| s.0.y as usize))
                .unwrap_or_else(|| fsm.issued() / dims.width.max(1));
            let needed_oldest = inflight_line.saturating_sub(radius);
            if iim.can_accept(needed_oldest) {
                let idx = txu_line * dims.width + txu_x;
                let px = zbt.read_input_pixel(ZbtRegion::InputA, idx)?;
                if probe.is_enabled() && txu_x == 0 {
                    fill_start = Some(cycles);
                }
                txu_buf.push(px);
                txu_x += 1;
                if txu_x == dims.width {
                    iim.load_line(txu_line, &txu_buf);
                    if let Some(start) = fill_start.take() {
                        probe.recorder.span(
                            Track::Iim,
                            "line_fill",
                            probe.ts(start),
                            probe.ts(cycles),
                            &[("line", (txu_line as u64).into())],
                        );
                    }
                    txu_buf.clear();
                    txu_line += 1;
                    txu_x = 0;
                }
            }
        }

        // --- Stage 4: store into OIM.
        let mut advance = true;
        if let Some((idx, px)) = exec_slot {
            if oim.push(idx, px) {
                exec_slot = None;
            } else {
                stats.oim_stalls += 1;
                stalled = Some("oim_stall");
                advance = false;
            }
        }

        // --- Stage 3: execute (always single-cycle once data present).
        // --- Stage 2: fetch window from the IIM.
        if advance {
            if let (Some((point, window, idx)), None) = (&fetch_slot, &exec_slot) {
                let shaped = Window::from_samples(*point, op.shape(), window.iter());
                let result = op.apply(&shaped);
                let mut out = window
                    .sample(Point::ORIGIN)
                    .unwrap_or_default();
                out.merge_channels(result, op.output_channels());
                exec_slot = Some((*idx, out));
                fetch_slot = None;
            }
        }
        if advance {
            if let (Some((point, fetch, idx)), None) = (scan_slot, &fetch_slot) {
                match iim.fetch_window(point, square, dims, border) {
                    Some(samples) => {
                        drive_matrix(&mut matrix, fetch, &samples, square);
                        stats.matrix_loads = matrix.loads();
                        stats.matrix_shifts = matrix.shifts();
                        fetch_slot =
                            Some((point, Window::from_samples(point, square, samples), idx));
                        scan_slot = None;
                    }
                    None => {
                        stats.iim_stalls += 1;
                        stalled = Some("iim_stall");
                        advance = false;
                    }
                }
            }
        }

        // --- Stage 1: scan — issue the next pixel position.
        if scan_slot.is_none() {
            if let Some((point, bundle)) = fsm.next() {
                if probe.is_enabled() {
                    match sweep {
                        Some((line, start)) if line != point.y => {
                            emit_sweep(probe, line, start, cycles);
                            sweep = Some((point.y, cycles));
                        }
                        None => sweep = Some((point.y, cycles)),
                        Some(_) => {}
                    }
                }
                scan_slot = Some((point, bundle.fetch, bundle.pixel_index));
            }
        }

        // --- Start-pipeline bookkeeping (occupancy trace, fig. 5).
        track_pipeline(
            &mut pipeline,
            &mut arbiter,
            advance,
            scan_slot.as_ref().map(|s| s.2),
        );
        if stats.trace.len() < trace_limit {
            stats.trace.push(snapshot_of(
                scan_slot.as_ref().map(|s| s.2),
                fetch_slot.as_ref().map(|s| s.2),
                exec_slot.as_ref().map(|s| s.0),
                oim.occupancy(),
            ));
        }

        if probe.is_enabled() {
            stall_runs.step(cycles, stalled);
            if cycles.is_multiple_of(occupancy_every) {
                probe
                    .recorder
                    .counter(Track::Oim, "occupancy", probe.ts(cycles), oim.occupancy() as f64);
            }
        }
    }

    if probe.is_enabled() {
        stall_runs.flush(cycles);
        if let Some((line, start)) = sweep {
            emit_sweep(probe, line, start, cycles);
        }
        emit_processing_span(probe, cycles, &stats, total);
    }

    stats.cycles = cycles;
    stats.pixels = total as u64;
    stats.oim_max_occupancy = oim.max_occupancy();
    Ok(stats)
}

/// Closes one PLC line-sweep span.
fn emit_sweep(probe: &PuProbe, line: i32, start_cycle: u64, end_cycle: u64) {
    probe.recorder.span(
        Track::Plc,
        "line_sweep",
        probe.ts(start_cycle),
        probe.ts(end_cycle),
        &[("line", i64::from(line).into())],
    );
}

/// Emits the span covering the whole cycle-stepped processing phase.
fn emit_processing_span(probe: &PuProbe, cycles: u64, stats: &ProcessingStats, pixels: usize) {
    probe.recorder.span(
        Track::Pu,
        "processing",
        probe.ts(0),
        probe.ts(cycles),
        &[
            ("cycles", cycles.into()),
            ("pixels", (pixels as u64).into()),
            ("iim_stalls", stats.iim_stalls.into()),
            ("oim_stalls", stats.oim_stalls.into()),
        ],
    );
}

/// Runs the processing phase of an inter call cycle by cycle: stage 2
/// reads the pixel pair from both input regions in a single parallel-bank
/// cycle (no IIM windows needed).
///
/// # Errors
///
/// Propagates ZBT addressing errors.
pub fn run_inter_detailed<O: InterOp>(
    zbt: &mut ZbtMemory,
    dims: Dims,
    op: &O,
    config: &EngineConfig,
    trace_limit: usize,
) -> EngineResult<ProcessingStats> {
    run_inter_detailed_probed(zbt, dims, op, config, trace_limit, &PuProbe::disabled())
}

/// [`run_inter_detailed`] with an observability probe: emits coalesced
/// pipeline-bubble spans, OIM occupancy samples, and one enclosing
/// processing span (inter mode bypasses the IIM, so no line fills).
///
/// # Errors
///
/// Propagates ZBT addressing errors.
pub fn run_inter_detailed_probed<O: InterOp>(
    zbt: &mut ZbtMemory,
    dims: Dims,
    op: &O,
    config: &EngineConfig,
    trace_limit: usize,
    probe: &PuProbe,
) -> EngineResult<ProcessingStats> {
    let total = dims.pixel_count();
    let mut oim = Oim::new(config.oim_lines, dims.width);
    let mut stats = ProcessingStats::default();

    let mut fetch_slot: Option<(usize, Pixel, Pixel)> = None;
    let mut exec_slot: Option<(usize, Pixel)> = None;
    let mut next_pixel = 0usize;
    let mut drained = 0usize;
    let mut drain_timer = 0u64;
    let mut cycles = 0u64;
    let bound = (total as u64 + 64) * (config.oim_drain_cycles_per_pixel + 6);

    let mut stall_runs = StallRuns::new(probe);
    let occupancy_every = dims.width.max(1) as u64;

    while drained < total {
        cycles += 1;
        if cycles > bound {
            return Err(crate::error::EngineError::PipelineHazard {
                detail: "cycle-stepped inter simulation exceeded its cycle bound",
            });
        }
        let mut stalled: Option<&'static str> = None;

        // Idle classification (slot state at cycle start, mirrored by
        // `fast.rs`): the sweep is exhausted and both slots are empty.
        if exec_slot.is_none() && fetch_slot.is_none() && next_pixel >= total {
            stats.idle_cycles += 1;
        }

        drain_timer += 1;
        if drain_timer >= config.oim_drain_cycles_per_pixel {
            if let Some((idx, px)) = oim.pop() {
                zbt.write_result_pixel(idx, total, px)?;
                drained += 1;
                drain_timer = 0;
            }
        }

        let mut advance = true;
        if let Some((idx, px)) = exec_slot {
            if oim.push(idx, px) {
                exec_slot = None;
            } else {
                stats.oim_stalls += 1;
                stalled = Some("oim_stall");
                advance = false;
            }
        }
        if advance {
            if let (Some((idx, a, b)), None) = (fetch_slot, &exec_slot) {
                let result = op.apply(a, b);
                let mut out = a;
                out.merge_channels(result, op.output_channels());
                exec_slot = Some((idx, out));
                fetch_slot = None;
            }
            if fetch_slot.is_none() && next_pixel < total {
                let (a, b) = zbt.read_input_pair(next_pixel)?;
                fetch_slot = Some((next_pixel, a, b));
                next_pixel += 1;
            }
        }

        if stats.trace.len() < trace_limit {
            stats.trace.push(snapshot_of(
                (next_pixel < total).then_some(next_pixel),
                fetch_slot.as_ref().map(|s| s.0),
                exec_slot.as_ref().map(|s| s.0),
                oim.occupancy(),
            ));
        }

        if probe.is_enabled() {
            stall_runs.step(cycles, stalled);
            if cycles.is_multiple_of(occupancy_every) {
                probe
                    .recorder
                    .counter(Track::Oim, "occupancy", probe.ts(cycles), oim.occupancy() as f64);
            }
        }
    }

    if probe.is_enabled() {
        stall_runs.flush(cycles);
        emit_processing_span(probe, cycles, &stats, total);
    }

    stats.cycles = cycles;
    stats.pixels = total as u64;
    stats.oim_max_occupancy = oim.max_occupancy();
    Ok(stats)
}

/// The full-square shape backing the matrix register for any sub-shape.
pub(crate) fn square_shape(shape: Connectivity) -> Connectivity {
    match shape.radius() {
        0 => Connectivity::Con0,
        1 => Connectivity::Con8,
        r => Connectivity::Square(r as u8),
    }
}

fn drive_matrix(
    matrix: &mut MatrixRegister,
    fetch: FetchKind,
    samples: &[(Point, Pixel)],
    square: Connectivity,
) {
    let r = square.radius() as i32;
    let side = (2 * r + 1) as usize;
    // Full-square fetches arrive in row-major offset order, so the cell
    // for (dx, dy) normally sits at a fixed index; fall back to a scan
    // when border skipping thinned the sample list.
    let sample_at = |dx: i32, dy: i32| -> Pixel {
        let idx = (dy + r) as usize * side + (dx + r) as usize;
        match samples.get(idx) {
            Some((o, p)) if o.x == dx && o.y == dy => *p,
            _ => samples
                .iter()
                .find(|(o, _)| o.x == dx && o.y == dy)
                .map(|(_, p)| *p)
                .unwrap_or_default(),
        }
    };
    match fetch {
        FetchKind::Load => {
            matrix.load_with(|col, row| sample_at(col as i32 - r, row as i32 - r));
        }
        FetchKind::Shift => {
            if matrix.is_valid() {
                matrix.shift_with(|row| sample_at(r, row as i32 - r));
            } else {
                matrix.load_with(|col, row| sample_at(col as i32 - r, row as i32 - r));
            }
        }
    }
}

fn track_pipeline(
    pipeline: &mut StartPipeline,
    arbiter: &mut Arbiter,
    advanced: bool,
    issuable: Option<usize>,
) {
    use crate::plc::{PixelBundle, Resource, Stage};
    if advanced {
        pipeline.advance();
        if pipeline.can_issue() {
            if let Some(idx) = issuable {
                pipeline.issue(PixelBundle::new(idx, FetchKind::Shift));
            }
        }
        for stage in Stage::ALL {
            if pipeline.at(stage).is_some() {
                // In-order pipeline: each stage locks its own resource.
                let _ = arbiter.try_lock(stage.resource());
            }
        }
        debug_assert!(
            Resource::ALL.iter().filter(|r| arbiter.is_locked(**r)).count() <= 4
        );
    } else {
        pipeline.stall();
    }
}

fn snapshot_of(
    scan: Option<usize>,
    fetch: Option<usize>,
    exec: Option<usize>,
    _oim_occupancy: usize,
) -> StageSnapshot {
    StageSnapshot {
        slots: [scan, fetch, exec, None],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::frame::Frame;
    use vip_core::ops::arith::AbsDiff;
    use vip_core::ops::filter::{BoxBlur, Identity, SobelGradient};

    fn load_input(zbt: &mut ZbtMemory, region: ZbtRegion, frame: &Frame) {
        for (i, px) in frame.pixels().iter().enumerate() {
            zbt.write_input_pixel(region, i, *px).unwrap();
        }
    }

    fn read_result(zbt: &mut ZbtMemory, dims: Dims) -> Frame {
        let total = dims.pixel_count();
        let pixels: Vec<Pixel> = (0..total)
            .map(|i| zbt.read_result_pixel(i, total).unwrap())
            .collect();
        Frame::from_pixels(dims, pixels).unwrap()
    }

    fn test_frame(dims: Dims) -> Frame {
        Frame::from_fn(dims, |p| {
            Pixel::from_luma(((p.x * 7 + p.y * 13) % 251) as u8).with_alpha((p.x + p.y) as u16)
        })
    }

    #[test]
    fn intra_detailed_matches_software_boxblur() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(20, 12);
        let frame = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        let stats =
            run_intra_detailed(&mut zbt, dims, &BoxBlur::con8(), BorderPolicy::Clamp, &cfg, 0)
                .unwrap();
        let hw = read_result(&mut zbt, dims);
        let sw = vip_core::addressing::intra::run_intra(&frame, &BoxBlur::con8())
            .unwrap()
            .output;
        assert_eq!(hw, sw, "hardware result must be bit-exact");
        assert_eq!(stats.pixels, 240);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn intra_detailed_matches_software_sobel() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(18, 10);
        let frame = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        run_intra_detailed(&mut zbt, dims, &SobelGradient::new(), BorderPolicy::Clamp, &cfg, 0)
            .unwrap();
        let hw = read_result(&mut zbt, dims);
        let sw = vip_core::addressing::intra::run_intra(&frame, &SobelGradient::new())
            .unwrap()
            .output;
        assert_eq!(hw, sw);
    }

    #[test]
    fn inter_detailed_matches_software() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(16, 8);
        let a = test_frame(dims);
        let b = Frame::from_fn(dims, |p| Pixel::from_luma((p.x * 3) as u8));
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &a);
        load_input(&mut zbt, ZbtRegion::InputB, &b);
        run_inter_detailed(&mut zbt, dims, &AbsDiff::luma(), &cfg, 0).unwrap();
        let hw = read_result(&mut zbt, dims);
        let sw = vip_core::addressing::inter::run_inter(&a, &b, &AbsDiff::luma())
            .unwrap()
            .output;
        assert_eq!(hw, sw);
    }

    #[test]
    fn zbt_pixel_accesses_match_table2_hardware_model() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(16, 16);
        let frame = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        zbt.reset_stats();
        run_intra_detailed(&mut zbt, dims, &BoxBlur::con8(), BorderPolicy::Clamp, &cfg, 0)
            .unwrap();
        // Exactly 2 pixel-access cycles per pixel: one TxU read, one
        // result write — the Table 2 hardware count.
        assert_eq!(zbt.pixel_access_cycles(), 2 * dims.pixel_count() as u64);
    }

    #[test]
    fn inter_zbt_accesses_also_two_per_pixel() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(8, 8);
        let a = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &a);
        load_input(&mut zbt, ZbtRegion::InputB, &a);
        zbt.reset_stats();
        run_inter_detailed(&mut zbt, dims, &AbsDiff::luma(), &cfg, 0).unwrap();
        assert_eq!(zbt.pixel_access_cycles(), 2 * 64);
    }

    #[test]
    fn drain_rate_governs_throughput() {
        // With drain = 2 cycles/pixel the steady state is ~2 cycles/pixel.
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(32, 16);
        let frame = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        let stats =
            run_intra_detailed(&mut zbt, dims, &Identity::luma(), BorderPolicy::Clamp, &cfg, 0)
                .unwrap();
        let cpp = stats.cycles_per_pixel();
        assert!((2.0..2.6).contains(&cpp), "cycles/pixel = {cpp}");
    }

    #[test]
    fn matrix_instruction_mix() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(10, 6);
        let frame = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        let stats =
            run_intra_detailed(&mut zbt, dims, &BoxBlur::con8(), BorderPolicy::Clamp, &cfg, 0)
                .unwrap();
        assert_eq!(stats.matrix_loads, 6, "one LOAD per line");
        assert_eq!(stats.matrix_shifts, (10 - 1) * 6);
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(6, 4);
        let frame = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        let stats =
            run_intra_detailed(&mut zbt, dims, &BoxBlur::con8(), BorderPolicy::Clamp, &cfg, 30)
                .unwrap();
        assert_eq!(stats.trace.len(), 30);
        // The pipeline fills within a few cycles.
        assert!(stats.trace.iter().any(|s| s.occupancy() >= 2));
    }

    #[test]
    fn probe_emits_iim_plc_pu_and_oim_events() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(20, 12);
        let frame = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        let session = vip_obs::Session::new();
        let ns_per_cycle = 1e9 / cfg.engine_clock.hz;
        let probe = PuProbe::new(session.recorder(), 5_000, ns_per_cycle);
        let stats = run_intra_detailed_probed(
            &mut zbt,
            dims,
            &BoxBlur::con8(),
            BorderPolicy::Clamp,
            &cfg,
            0,
            &probe,
        )
        .unwrap();
        let recording = session.finish();
        // One line_fill per image line, one line_sweep per swept line.
        assert_eq!(recording.on_track(Track::Iim).len(), dims.height);
        assert_eq!(recording.on_track(Track::Plc).len(), dims.height);
        let pu = recording.on_track(Track::Pu);
        assert!(
            pu.iter().any(|e| e.name == "processing"),
            "missing processing span"
        );
        assert!(!recording.on_track(Track::Oim).is_empty(), "no occupancy samples");
        // The processing span covers [t0, t0 + cycles × ns/cycle].
        let span = pu.iter().find(|e| e.name == "processing").unwrap();
        assert_eq!(span.ts_ns, 5_000);
        assert_eq!(
            span.end_ns(),
            5_000 + (stats.cycles as f64 * ns_per_cycle).round() as u64
        );
        // Short steady-state bubbles are coalesced away, never spanned.
        let stall_spans = pu.iter().filter(|e| e.name.ends_with("_stall")).count();
        assert!(
            stall_spans as u64 <= stats.oim_stalls + stats.iim_stalls,
            "more stall spans than stalls"
        );
    }

    #[test]
    fn probe_results_identical_to_unprobed() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(16, 10);
        let frame = test_frame(dims);

        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        let plain =
            run_intra_detailed(&mut zbt, dims, &SobelGradient::new(), BorderPolicy::Clamp, &cfg, 0)
                .unwrap();
        let plain_out = read_result(&mut zbt, dims);

        let session = vip_obs::Session::new();
        let probe = PuProbe::new(session.recorder(), 0, 1.0);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        let probed = run_intra_detailed_probed(
            &mut zbt,
            dims,
            &SobelGradient::new(),
            BorderPolicy::Clamp,
            &cfg,
            0,
            &probe,
        )
        .unwrap();
        assert_eq!(plain, probed, "probing must not change the simulation");
        assert_eq!(plain_out, read_result(&mut zbt, dims));
    }

    #[test]
    fn inter_probe_emits_processing_span() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(16, 8);
        let a = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &a);
        load_input(&mut zbt, ZbtRegion::InputB, &a);
        let session = vip_obs::Session::new();
        let probe = PuProbe::new(session.recorder(), 0, 2.0);
        run_inter_detailed_probed(&mut zbt, dims, &AbsDiff::luma(), &cfg, 0, &probe).unwrap();
        let recording = session.finish();
        assert!(recording
            .on_track(Track::Pu)
            .iter()
            .any(|e| e.name == "processing"));
        assert!(recording.on_track(Track::Iim).is_empty(), "inter bypasses the IIM");
    }

    #[test]
    fn tall_frame_exceeding_iim_capacity() {
        // More lines than the 16-line IIM: eviction gating must keep
        // results exact.
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(8, 40);
        let frame = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        run_intra_detailed(&mut zbt, dims, &BoxBlur::con8(), BorderPolicy::Clamp, &cfg, 0)
            .unwrap();
        let hw = read_result(&mut zbt, dims);
        let sw = vip_core::addressing::intra::run_intra(&frame, &BoxBlur::con8())
            .unwrap()
            .output;
        assert_eq!(hw, sw);
    }

    #[test]
    fn large_radius_window() {
        let cfg = EngineConfig::prototype_detailed();
        let dims = Dims::new(12, 12);
        let frame = test_frame(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load_input(&mut zbt, ZbtRegion::InputA, &frame);
        let op = vip_core::ops::filter::BoxBlur::with_radius(3).unwrap();
        run_intra_detailed(&mut zbt, dims, &op, BorderPolicy::Clamp, &cfg, 0).unwrap();
        let hw = read_result(&mut zbt, dims);
        let sw = vip_core::addressing::intra::run_intra(&frame, &op).unwrap().output;
        assert_eq!(hw, sw);
    }
}
