//! Dynamic partial reconfiguration — the §5 outlook.
//!
//! *"For exploitation of dynamic reconfigurability, an FPGA with embedded
//! RISC core and partial dynamic reconfiguration capabilities will be
//! used. The pixel addressing will be implemented in a statically
//! configured block of the FPGA, as all supported algorithms are using
//! the same AddressLib scheme, whereas the pixel processing, which might
//! be changed during the process of video analysis, will be implemented
//! in a dynamically reconfigurable block."*
//!
//! This module models that split: a [`ReconfigurableEngine`] owns a
//! static addressing block (the AddressEngine proper) and one
//! dynamically reconfigurable *processing slot*. Each pixel-operation
//! kernel corresponds to a partial bitstream; switching kernels costs
//! reconfiguration time proportional to the bitstream size over the
//! configuration-port bandwidth. Calls with the currently loaded kernel
//! run at full speed; a kernel change stalls the engine for the
//! reconfiguration, letting experiments quantify when reconfiguration
//! amortises against host fallback.
//!
//! # Examples
//!
//! ```
//! use vip_engine::reconfig::{ReconfigConfig, ReconfigurableEngine};
//! use vip_engine::EngineConfig;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::ops::filter::{BoxBlur, SobelGradient};
//! use vip_core::pixel::Pixel;
//!
//! # fn main() -> Result<(), vip_engine::error::EngineError> {
//! let mut engine = ReconfigurableEngine::new(
//!     EngineConfig::prototype(),
//!     ReconfigConfig::virtex2_icap(),
//! )?;
//! let f = Frame::filled(Dims::new(64, 48), Pixel::from_luma(80));
//! let first = engine.run_intra(&f, &SobelGradient::new())?; // loads "sobel"
//! assert!(first.reconfigured);
//! let second = engine.run_intra(&f, &SobelGradient::new())?; // kernel resident
//! assert!(!second.reconfigured);
//! let third = engine.run_intra(&f, &BoxBlur::con8())?; // swap kernels
//! assert!(third.reconfigured);
//! # Ok(())
//! # }
//! ```

use vip_core::frame::Frame;
use vip_core::ops::{InterOp, IntraOp};

use crate::config::EngineConfig;
use crate::engine::{AddressEngine, EngineRun};
use crate::error::EngineResult;

/// Parameters of the partial-reconfiguration port.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReconfigConfig {
    /// Partial bitstream size of one processing kernel, in bytes.
    pub bitstream_bytes: usize,
    /// Configuration-port bandwidth in bytes/second.
    pub port_bandwidth: f64,
    /// Fixed per-reconfiguration overhead (driver, handshake), seconds.
    pub setup_seconds: f64,
}

impl ReconfigConfig {
    /// Virtex-II-era ICAP: ≈ 66 MB/s at 8 bit × 66 MHz, with a kernel
    /// slot of roughly 64 kB partial bitstream (a few CLB columns).
    #[must_use]
    pub const fn virtex2_icap() -> Self {
        ReconfigConfig {
            bitstream_bytes: 64 * 1024,
            port_bandwidth: 66.0e6,
            setup_seconds: 200e-6,
        }
    }

    /// Seconds to load one kernel bitstream.
    #[must_use]
    pub fn reconfiguration_seconds(&self) -> f64 {
        self.setup_seconds + self.bitstream_bytes as f64 / self.port_bandwidth
    }
}

impl Default for ReconfigConfig {
    fn default() -> Self {
        ReconfigConfig::virtex2_icap()
    }
}

/// One call on the reconfigurable engine: the inner engine run plus the
/// reconfiguration bookkeeping.
#[derive(Debug, Clone)]
pub struct ReconfigRun {
    /// The underlying engine call.
    pub run: EngineRun,
    /// Whether the processing slot had to be reconfigured for this call.
    pub reconfigured: bool,
    /// Seconds spent reconfiguring before the call (0 when resident).
    pub reconfiguration_seconds: f64,
    /// End-to-end seconds including reconfiguration.
    pub total_seconds: f64,
}

/// Cumulative reconfiguration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReconfigStats {
    /// Calls executed.
    pub calls: u64,
    /// Reconfigurations performed.
    pub reconfigurations: u64,
    /// Seconds spent reconfiguring.
    pub reconfiguration_seconds: f64,
    /// Seconds spent executing calls (engine timeline totals).
    pub call_seconds: f64,
}

impl ReconfigStats {
    /// Hit rate: calls served without reconfiguration.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.calls == 0 {
            return 0.0;
        }
        (self.calls - self.reconfigurations) as f64 / self.calls as f64
    }

    /// Reconfiguration overhead as a fraction of total time.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.reconfiguration_seconds + self.call_seconds;
        if total == 0.0 {
            return 0.0;
        }
        self.reconfiguration_seconds / total
    }
}

/// The §5 outlook platform: static addressing block + one dynamically
/// reconfigurable pixel-processing slot.
#[derive(Debug)]
pub struct ReconfigurableEngine {
    engine: AddressEngine,
    reconfig: ReconfigConfig,
    /// Kernel currently loaded in the processing slot.
    loaded_kernel: Option<&'static str>,
    stats: ReconfigStats,
}

impl ReconfigurableEngine {
    /// Creates the platform.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::EngineError::InvalidConfig`] for invalid
    /// engine configurations.
    pub fn new(engine_config: EngineConfig, reconfig: ReconfigConfig) -> EngineResult<Self> {
        Ok(ReconfigurableEngine {
            engine: AddressEngine::new(engine_config)?,
            reconfig,
            loaded_kernel: None,
            stats: ReconfigStats::default(),
        })
    }

    /// The kernel currently resident in the processing slot.
    #[must_use]
    pub fn loaded_kernel(&self) -> Option<&'static str> {
        self.loaded_kernel
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &ReconfigStats {
        &self.stats
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &AddressEngine {
        &self.engine
    }

    fn ensure_kernel(&mut self, kernel: &'static str) -> (bool, f64) {
        if self.loaded_kernel == Some(kernel) {
            return (false, 0.0);
        }
        let t = self.reconfig.reconfiguration_seconds();
        self.loaded_kernel = Some(kernel);
        self.stats.reconfigurations += 1;
        self.stats.reconfiguration_seconds += t;
        (true, t)
    }

    fn wrap(&mut self, run: EngineRun, reconfigured: bool, reconf_s: f64) -> ReconfigRun {
        self.stats.calls += 1;
        self.stats.call_seconds += run.report.timeline.total;
        ReconfigRun {
            total_seconds: run.report.timeline.total + reconf_s,
            run,
            reconfigured,
            reconfiguration_seconds: reconf_s,
        }
    }

    /// Runs an intra call, reconfiguring the processing slot if the
    /// kernel is not resident.
    ///
    /// # Errors
    ///
    /// Propagates [`AddressEngine::run_intra`] errors; on error the slot
    /// state is unchanged.
    pub fn run_intra<O: IntraOp>(&mut self, frame: &Frame, op: &O) -> EngineResult<ReconfigRun> {
        let kernel = op.name();
        let before = self.loaded_kernel;
        let (reconfigured, reconf_s) = self.ensure_kernel(kernel);
        match self.engine.run_intra(frame, op) {
            Ok(run) => Ok(self.wrap(run, reconfigured, reconf_s)),
            Err(e) => {
                // Roll back the speculative slot switch.
                self.loaded_kernel = before;
                if reconfigured {
                    self.stats.reconfigurations -= 1;
                    self.stats.reconfiguration_seconds -= reconf_s;
                }
                Err(e)
            }
        }
    }

    /// Runs an inter call, reconfiguring if needed.
    ///
    /// # Errors
    ///
    /// Propagates [`AddressEngine::run_inter`] errors; on error the slot
    /// state is unchanged.
    pub fn run_inter<O: InterOp>(
        &mut self,
        a: &Frame,
        b: &Frame,
        op: &O,
    ) -> EngineResult<ReconfigRun> {
        let kernel = op.name();
        let before = self.loaded_kernel;
        let (reconfigured, reconf_s) = self.ensure_kernel(kernel);
        match self.engine.run_inter(a, b, op) {
            Ok(run) => Ok(self.wrap(run, reconfigured, reconf_s)),
            Err(e) => {
                self.loaded_kernel = before;
                if reconfigured {
                    self.stats.reconfigurations -= 1;
                    self.stats.reconfiguration_seconds -= reconf_s;
                }
                Err(e)
            }
        }
    }

    /// Number of consecutive calls with one kernel needed before loading
    /// it beats a software fallback that is `sw_call_seconds` per call
    /// (break-even analysis for scheduling decisions).
    #[must_use]
    pub fn break_even_calls(&self, engine_call_seconds: f64, sw_call_seconds: f64) -> Option<u64> {
        let gain = sw_call_seconds - engine_call_seconds;
        if gain <= 0.0 {
            return None;
        }
        Some((self.reconfig.reconfiguration_seconds() / gain).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::frame::Frame;
    use vip_core::geometry::Dims;
    use vip_core::ops::arith::AbsDiff;
    use vip_core::ops::filter::{BoxBlur, SobelGradient};
    use vip_core::ops::morph::Dilate;
    use vip_core::pixel::Pixel;

    fn engine() -> ReconfigurableEngine {
        ReconfigurableEngine::new(EngineConfig::prototype(), ReconfigConfig::virtex2_icap())
            .expect("valid config")
    }

    fn frame() -> Frame {
        Frame::from_fn(Dims::new(48, 32), |p| {
            Pixel::from_luma(((p.x * 3 + p.y) % 256) as u8)
        })
    }

    #[test]
    fn reconfiguration_time_model() {
        let c = ReconfigConfig::virtex2_icap();
        let t = c.reconfiguration_seconds();
        // 64 kB at 66 MB/s ≈ 1 ms + 0.2 ms setup.
        assert!(t > 0.8e-3 && t < 1.6e-3, "{t}");
        assert_eq!(ReconfigConfig::default(), c);
    }

    #[test]
    fn first_call_reconfigures_repeat_hits() {
        let mut e = engine();
        let f = frame();
        assert_eq!(e.loaded_kernel(), None);
        let r1 = e.run_intra(&f, &SobelGradient::new()).unwrap();
        assert!(r1.reconfigured);
        assert!(r1.reconfiguration_seconds > 0.0);
        assert_eq!(e.loaded_kernel(), Some("sobel"));
        let r2 = e.run_intra(&f, &SobelGradient::new()).unwrap();
        assert!(!r2.reconfigured);
        assert_eq!(r2.reconfiguration_seconds, 0.0);
        assert!(r2.total_seconds < r1.total_seconds);
    }

    #[test]
    fn kernel_switch_reconfigures() {
        let mut e = engine();
        let f = frame();
        e.run_intra(&f, &SobelGradient::new()).unwrap();
        let r = e.run_intra(&f, &BoxBlur::con8()).unwrap();
        assert!(r.reconfigured);
        assert_eq!(e.loaded_kernel(), Some("box_blur"));
        // Inter kernels live in the same slot.
        let r2 = e.run_inter(&f, &f, &AbsDiff::luma()).unwrap();
        assert!(r2.reconfigured);
        assert_eq!(e.loaded_kernel(), Some("absdiff"));
    }

    #[test]
    fn stats_accumulate() {
        let mut e = engine();
        let f = frame();
        e.run_intra(&f, &SobelGradient::new()).unwrap();
        e.run_intra(&f, &SobelGradient::new()).unwrap();
        e.run_intra(&f, &Dilate::con8()).unwrap();
        e.run_intra(&f, &SobelGradient::new()).unwrap(); // swap back
        let s = e.stats();
        assert_eq!(s.calls, 4);
        assert_eq!(s.reconfigurations, 3);
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
        assert!(s.overhead_fraction() > 0.0 && s.overhead_fraction() < 1.0);
    }

    #[test]
    fn results_identical_to_plain_engine() {
        let mut r = engine();
        let mut plain = AddressEngine::new(EngineConfig::prototype()).unwrap();
        let f = frame();
        let a = r.run_intra(&f, &BoxBlur::con8()).unwrap();
        let b = plain.run_intra(&f, &BoxBlur::con8()).unwrap();
        assert_eq!(a.run.output, b.output);
    }

    #[test]
    fn failed_call_rolls_back_slot() {
        let mut e = engine();
        let f = frame();
        e.run_intra(&f, &BoxBlur::con8()).unwrap();
        let huge = Frame::new(Dims::new(1024, 1024));
        assert!(e.run_intra(&huge, &SobelGradient::new()).is_err());
        assert_eq!(e.loaded_kernel(), Some("box_blur"), "slot unchanged on error");
        assert_eq!(e.stats().reconfigurations, 1);
        assert_eq!(e.stats().calls, 1);
    }

    #[test]
    fn break_even_analysis() {
        let e = engine();
        // Engine 6 ms/call, software 36 ms/call → gain 30 ms/call; one
        // ~1.2 ms reconfiguration amortises within a single call.
        assert_eq!(e.break_even_calls(0.006, 0.036), Some(1));
        // Tiny gain → many calls.
        let n = e.break_even_calls(0.0060, 0.00605).unwrap();
        assert!(n > 20);
        // Engine slower → never.
        assert_eq!(e.break_even_calls(0.036, 0.006), None);
    }

    #[test]
    fn empty_stats() {
        let s = ReconfigStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.overhead_fraction(), 0.0);
    }
}
