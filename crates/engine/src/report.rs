//! Call reports and engine-level statistics.

use core::fmt;
use std::time::Duration;

use vip_core::accounting::{AccessModel, AddressingMode, CallDescriptor};
use vip_obs::Registry;

use crate::process_unit::ProcessingStats;
use crate::timing::CallTimeline;

/// Metric names the engine publishes into its [`Registry`]. The
/// [`EngineStats`] facade is *derived* from these (see
/// [`stats_from_registry`]), so the Table 3 counters and the
/// observability counters cannot drift apart.
pub mod keys {
    /// Completed intra calls (counter).
    pub const INTRA_CALLS: &str = "engine.calls.intra";
    /// Completed inter calls (counter).
    pub const INTER_CALLS: &str = "engine.calls.inter";
    /// Completed segment calls (counter).
    pub const SEGMENT_CALLS: &str = "engine.calls.segment";
    /// Accumulated end-to-end call seconds (gauge).
    pub const BUSY_SECONDS: &str = "engine.busy_seconds";
    /// Accumulated PCI payload seconds (gauge).
    pub const PCI_SECONDS: &str = "engine.pci_seconds";
    /// Accumulated hardware pixel-access cycles (counter).
    pub const HARDWARE_ACCESSES: &str = "engine.hardware_accesses";
    /// Per-call end-to-end latency in milliseconds (histogram).
    pub const CALL_MS: &str = "engine.call_ms";
    /// Engine cycles spent in detailed processing phases (counter).
    pub const PU_CYCLES: &str = "pu.cycles";
    /// Pixels produced by detailed processing phases (counter).
    pub const PU_PIXELS: &str = "pu.pixels";
    /// Cycles stalled on a missing IIM line (counter).
    pub const PU_IIM_STALLS: &str = "pu.iim_stalls";
    /// Cycles stalled on a full OIM (counter).
    pub const PU_OIM_STALLS: &str = "pu.oim_stalls";
    /// Matrix-register LOAD instructions (counter).
    pub const PU_MATRIX_LOADS: &str = "pu.matrix_loads";
    /// Matrix-register SHIFT instructions (counter).
    pub const PU_MATRIX_SHIFTS: &str = "pu.matrix_shifts";
    /// Largest OIM occupancy observed across calls (gauge, maximum).
    pub const OIM_MAX_OCCUPANCY: &str = "oim.max_occupancy";
    /// Cycles every pipeline slot sat empty — the drain tail (counter).
    pub const PU_IDLE_CYCLES: &str = "pu.idle_cycles";
    /// Cycles the pipeline advanced work: total minus stall and idle
    /// buckets (counter).
    pub const ATTRIB_PU_BUSY_CYCLES: &str = "attrib.pu.busy_cycles";
    /// PCI seconds spent moving input payloads host → ZBT (gauge).
    pub const ATTRIB_PCI_INPUT_SECONDS: &str = "attrib.pci.input_seconds";
    /// PCI seconds spent moving result payloads ZBT → host (gauge).
    pub const ATTRIB_PCI_OUTPUT_SECONDS: &str = "attrib.pci.output_seconds";
    /// Host driver/interrupt overhead seconds per call (gauge).
    pub const ATTRIB_HOST_OVERHEAD_SECONDS: &str = "attrib.host.overhead_seconds";
    /// Call seconds not attributable to the PCI bus or host overhead —
    /// the engine-side compute window (gauge).
    pub const ATTRIB_ENGINE_NONPCI_SECONDS: &str = "attrib.engine.nonpci_seconds";
    /// Words moved through ZBT bank 0 in detailed calls (counter).
    pub const ZBT_BANK0_ACCESSES: &str = "zbt.bank0.access_words";
    /// Words moved through ZBT bank 1 in detailed calls (counter).
    pub const ZBT_BANK1_ACCESSES: &str = "zbt.bank1.access_words";
    /// Words moved through ZBT bank 2 in detailed calls (counter).
    pub const ZBT_BANK2_ACCESSES: &str = "zbt.bank2.access_words";
    /// Words moved through ZBT bank 3 in detailed calls (counter).
    pub const ZBT_BANK3_ACCESSES: &str = "zbt.bank3.access_words";
    /// Words moved through ZBT bank 4 in detailed calls (counter).
    pub const ZBT_BANK4_ACCESSES: &str = "zbt.bank4.access_words";
    /// Words moved through ZBT bank 5 in detailed calls (counter).
    pub const ZBT_BANK5_ACCESSES: &str = "zbt.bank5.access_words";
}

/// The registry key of ZBT bank `bank`'s word-access counter.
///
/// # Panics
///
/// Panics if `bank` is outside the six-bank fig. 3 map.
#[must_use]
pub fn zbt_bank_key(bank: usize) -> &'static str {
    match bank {
        0 => keys::ZBT_BANK0_ACCESSES,
        1 => keys::ZBT_BANK1_ACCESSES,
        2 => keys::ZBT_BANK2_ACCESSES,
        3 => keys::ZBT_BANK3_ACCESSES,
        4 => keys::ZBT_BANK4_ACCESSES,
        5 => keys::ZBT_BANK5_ACCESSES,
        _ => panic!("ZBT has six banks; no bank {bank}"),
    }
}

/// Bucket bounds of the per-call latency histogram, in milliseconds.
/// Geometric from 0.05 ms — a QCIF intra call lands mid-range, a CIF
/// sequential inter call near the top.
const CALL_MS_BOUNDS: [f64; 12] = [
    0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6, 51.2, 102.4,
];

/// Folds one report into a metrics registry — the single accumulation
/// path behind both [`EngineStats`] and `vipctl stats`.
pub fn record_into(registry: &mut Registry, report: &EngineReport) {
    let mode_key = match report.descriptor.mode {
        AddressingMode::Intra => keys::INTRA_CALLS,
        AddressingMode::Inter => keys::INTER_CALLS,
        AddressingMode::Segment | AddressingMode::SegmentIndexed => keys::SEGMENT_CALLS,
    };
    if report.descriptor.mode != AddressingMode::SegmentIndexed {
        registry.inc(mode_key, 1);
    }
    registry.add_gauge(keys::BUSY_SECONDS, report.timeline.total);
    registry.add_gauge(
        keys::PCI_SECONDS,
        report.timeline.input_pci + report.timeline.output_pci,
    );
    registry.inc(keys::HARDWARE_ACCESSES, report.hardware_accesses);
    registry.observe(keys::CALL_MS, &CALL_MS_BOUNDS, report.timeline.total * 1e3);
    registry.add_gauge(keys::ATTRIB_PCI_INPUT_SECONDS, report.timeline.input_pci);
    registry.add_gauge(keys::ATTRIB_PCI_OUTPUT_SECONDS, report.timeline.output_pci);
    registry.add_gauge(
        keys::ATTRIB_HOST_OVERHEAD_SECONDS,
        report.timeline.interrupt_overhead,
    );
    registry.add_gauge(keys::ATTRIB_ENGINE_NONPCI_SECONDS, report.timeline.non_pci());
    if let Some(p) = &report.processing {
        registry.inc(keys::PU_CYCLES, p.cycles);
        registry.inc(keys::PU_PIXELS, p.pixels);
        registry.inc(keys::PU_IIM_STALLS, p.iim_stalls);
        registry.inc(keys::PU_OIM_STALLS, p.oim_stalls);
        registry.inc(keys::PU_IDLE_CYCLES, p.idle_cycles);
        registry.inc(keys::ATTRIB_PU_BUSY_CYCLES, p.busy_cycles());
        registry.inc(keys::PU_MATRIX_LOADS, p.matrix_loads);
        registry.inc(keys::PU_MATRIX_SHIFTS, p.matrix_shifts);
        registry.max_gauge(keys::OIM_MAX_OCCUPANCY, p.oim_max_occupancy as f64);
    }
}

/// Derives the [`EngineStats`] facade from a registry populated by
/// [`record_into`].
#[must_use]
pub fn stats_from_registry(registry: &Registry) -> EngineStats {
    EngineStats {
        intra_calls: registry.counter(keys::INTRA_CALLS),
        inter_calls: registry.counter(keys::INTER_CALLS),
        segment_calls: registry.counter(keys::SEGMENT_CALLS),
        busy_seconds: registry.gauge(keys::BUSY_SECONDS),
        pci_seconds: registry.gauge(keys::PCI_SECONDS),
        hardware_accesses: registry.counter(keys::HARDWARE_ACCESSES),
    }
}

/// Everything the engine knows about one executed call.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Static call description.
    pub descriptor: CallDescriptor,
    /// The analytic schedule of the call.
    pub timeline: CallTimeline,
    /// Table 2 access model (software vs. hardware counts).
    pub access_model: AccessModel,
    /// Hardware pixel-access cycles actually observed on the ZBT
    /// (detailed mode) or taken from the model (analytic mode).
    pub hardware_accesses: u64,
    /// Cycle-stepped statistics; present in detailed mode only.
    pub processing: Option<ProcessingStats>,
}

impl EngineReport {
    /// End-to-end duration of the call.
    #[must_use]
    pub fn duration(&self) -> Duration {
        self.timeline.total_duration()
    }
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.descriptor, self.timeline)
    }
}

/// Per-mode call tallies and accumulated busy time — the counters behind
/// the "Intra AddrEng calls" / "Inter AddrEng calls" columns of Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EngineStats {
    /// Completed intra calls.
    pub intra_calls: u64,
    /// Completed inter calls.
    pub inter_calls: u64,
    /// Completed segment calls (outlook configuration only).
    pub segment_calls: u64,
    /// Accumulated end-to-end call time in seconds.
    pub busy_seconds: f64,
    /// Accumulated PCI payload seconds.
    pub pci_seconds: f64,
    /// Accumulated hardware pixel-access cycles.
    pub hardware_accesses: u64,
}

impl EngineStats {
    /// Total calls of any mode.
    #[must_use]
    pub const fn total_calls(&self) -> u64 {
        self.intra_calls + self.inter_calls + self.segment_calls
    }

    /// Folds one report into the tallies.
    pub fn record(&mut self, report: &EngineReport) {
        match report.descriptor.mode {
            AddressingMode::Intra => self.intra_calls += 1,
            AddressingMode::Inter => self.inter_calls += 1,
            AddressingMode::Segment => self.segment_calls += 1,
            AddressingMode::SegmentIndexed => {}
        }
        self.busy_seconds += report.timeline.total;
        self.pci_seconds += report.timeline.input_pci + report.timeline.output_pci;
        self.hardware_accesses += report.hardware_accesses;
    }

    /// Accumulated busy time.
    #[must_use]
    pub fn busy_duration(&self) -> Duration {
        Duration::from_secs_f64(self.busy_seconds)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} calls ({} intra, {} inter, {} segment), busy {:.3} s",
            self.total_calls(),
            self.intra_calls,
            self.inter_calls,
            self.segment_calls,
            self.busy_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::timing::{inter_timeline, intra_timeline};
    use vip_core::geometry::Dims;
    use vip_core::neighborhood::Connectivity;
    use vip_core::pixel::ChannelSet;

    fn report(mode: AddressingMode) -> EngineReport {
        let dims = Dims::new(32, 32);
        let cfg = EngineConfig::prototype();
        let (descriptor, timeline) = match mode {
            AddressingMode::Inter => (
                CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y),
                inter_timeline(dims, &cfg),
            ),
            _ => (
                CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y),
                intra_timeline(dims, 1, &cfg),
            ),
        };
        EngineReport {
            descriptor,
            access_model: AccessModel::for_call(&descriptor, dims),
            hardware_accesses: 2 * dims.pixel_count() as u64,
            timeline,
            processing: None,
        }
    }

    #[test]
    fn stats_tally_by_mode() {
        let mut s = EngineStats::default();
        s.record(&report(AddressingMode::Intra));
        s.record(&report(AddressingMode::Intra));
        s.record(&report(AddressingMode::Inter));
        assert_eq!(s.intra_calls, 2);
        assert_eq!(s.inter_calls, 1);
        assert_eq!(s.total_calls(), 3);
        assert!(s.busy_seconds > 0.0);
        assert!(s.pci_seconds > 0.0);
        assert!(s.pci_seconds <= s.busy_seconds);
        assert_eq!(s.hardware_accesses, 3 * 2 * 1024);
        assert!(s.busy_duration().as_secs_f64() > 0.0);
    }

    #[test]
    fn registry_path_matches_direct_accumulation() {
        let mut direct = EngineStats::default();
        let mut registry = Registry::new();
        for mode in [
            AddressingMode::Intra,
            AddressingMode::Inter,
            AddressingMode::Intra,
        ] {
            let r = report(mode);
            direct.record(&r);
            record_into(&mut registry, &r);
        }
        assert_eq!(stats_from_registry(&registry), direct);
        // The registry carries extras the facade does not: a latency histogram.
        assert_eq!(registry.histogram(keys::CALL_MS).unwrap().count(), 3);
    }

    #[test]
    fn report_duration_and_display() {
        let r = report(AddressingMode::Inter);
        assert!(r.duration().as_secs_f64() > 0.0);
        assert!(r.to_string().contains("inter"));
        let mut s = EngineStats::default();
        s.record(&r);
        assert!(s.to_string().contains("1 inter"));
    }
}
