//! Call reports and engine-level statistics.

use core::fmt;
use std::time::Duration;

use vip_core::accounting::{AccessModel, AddressingMode, CallDescriptor};

use crate::process_unit::ProcessingStats;
use crate::timing::CallTimeline;

/// Everything the engine knows about one executed call.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Static call description.
    pub descriptor: CallDescriptor,
    /// The analytic schedule of the call.
    pub timeline: CallTimeline,
    /// Table 2 access model (software vs. hardware counts).
    pub access_model: AccessModel,
    /// Hardware pixel-access cycles actually observed on the ZBT
    /// (detailed mode) or taken from the model (analytic mode).
    pub hardware_accesses: u64,
    /// Cycle-stepped statistics; present in detailed mode only.
    pub processing: Option<ProcessingStats>,
}

impl EngineReport {
    /// End-to-end duration of the call.
    #[must_use]
    pub fn duration(&self) -> Duration {
        self.timeline.total_duration()
    }
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.descriptor, self.timeline)
    }
}

/// Per-mode call tallies and accumulated busy time — the counters behind
/// the "Intra AddrEng calls" / "Inter AddrEng calls" columns of Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EngineStats {
    /// Completed intra calls.
    pub intra_calls: u64,
    /// Completed inter calls.
    pub inter_calls: u64,
    /// Completed segment calls (outlook configuration only).
    pub segment_calls: u64,
    /// Accumulated end-to-end call time in seconds.
    pub busy_seconds: f64,
    /// Accumulated PCI payload seconds.
    pub pci_seconds: f64,
    /// Accumulated hardware pixel-access cycles.
    pub hardware_accesses: u64,
}

impl EngineStats {
    /// Total calls of any mode.
    #[must_use]
    pub const fn total_calls(&self) -> u64 {
        self.intra_calls + self.inter_calls + self.segment_calls
    }

    /// Folds one report into the tallies.
    pub fn record(&mut self, report: &EngineReport) {
        match report.descriptor.mode {
            AddressingMode::Intra => self.intra_calls += 1,
            AddressingMode::Inter => self.inter_calls += 1,
            AddressingMode::Segment => self.segment_calls += 1,
            AddressingMode::SegmentIndexed => {}
        }
        self.busy_seconds += report.timeline.total;
        self.pci_seconds += report.timeline.input_pci + report.timeline.output_pci;
        self.hardware_accesses += report.hardware_accesses;
    }

    /// Accumulated busy time.
    #[must_use]
    pub fn busy_duration(&self) -> Duration {
        Duration::from_secs_f64(self.busy_seconds)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} calls ({} intra, {} inter, {} segment), busy {:.3} s",
            self.total_calls(),
            self.intra_calls,
            self.inter_calls,
            self.segment_calls,
            self.busy_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::timing::{inter_timeline, intra_timeline};
    use vip_core::geometry::Dims;
    use vip_core::neighborhood::Connectivity;
    use vip_core::pixel::ChannelSet;

    fn report(mode: AddressingMode) -> EngineReport {
        let dims = Dims::new(32, 32);
        let cfg = EngineConfig::prototype();
        let (descriptor, timeline) = match mode {
            AddressingMode::Inter => (
                CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y),
                inter_timeline(dims, &cfg),
            ),
            _ => (
                CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y),
                intra_timeline(dims, 1, &cfg),
            ),
        };
        EngineReport {
            descriptor,
            access_model: AccessModel::for_call(&descriptor, dims),
            hardware_accesses: 2 * dims.pixel_count() as u64,
            timeline,
            processing: None,
        }
    }

    #[test]
    fn stats_tally_by_mode() {
        let mut s = EngineStats::default();
        s.record(&report(AddressingMode::Intra));
        s.record(&report(AddressingMode::Intra));
        s.record(&report(AddressingMode::Inter));
        assert_eq!(s.intra_calls, 2);
        assert_eq!(s.inter_calls, 1);
        assert_eq!(s.total_calls(), 3);
        assert!(s.busy_seconds > 0.0);
        assert!(s.pci_seconds > 0.0);
        assert!(s.pci_seconds <= s.busy_seconds);
        assert_eq!(s.hardware_accesses, 3 * 2 * 1024);
        assert!(s.busy_duration().as_secs_f64() > 0.0);
    }

    #[test]
    fn report_duration_and_display() {
        let r = report(AddressingMode::Inter);
        assert!(r.duration().as_secs_f64() > 0.0);
        assert!(r.to_string().contains("inter"));
        let mut s = EngineStats::default();
        s.record(&r);
        assert!(s.to_string().contains("1 inter"));
    }
}
