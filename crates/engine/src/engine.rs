//! The AddressEngine: the coprocessor facade the host calls through.
//!
//! Mirrors the AddressLib call interface of `vip-core`: the host keeps the
//! high-level algorithm and dispatches each low-level pixel pass to the
//! engine (§1: *"all high level parts of the algorithm are executed on the
//! main CPU and only low level operations are executed on
//! AddressEngine"*). Every call produces the same pixels as the software
//! library — verified bit-exactly in detailed mode — plus an
//! [`EngineReport`] with the call's schedule and memory traffic.
//!
//! # Examples
//!
//! ```
//! use vip_engine::engine::AddressEngine;
//! use vip_engine::config::EngineConfig;
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::ops::filter::SobelGradient;
//! use vip_core::pixel::Pixel;
//!
//! # fn main() -> Result<(), vip_engine::error::EngineError> {
//! let mut engine = AddressEngine::new(EngineConfig::prototype())?;
//! let frame = Frame::filled(Dims::new(64, 48), Pixel::from_luma(40));
//! let run = engine.run_intra(&frame, &SobelGradient::new())?;
//! assert_eq!(run.output.dims(), frame.dims());
//! assert!(run.report.timeline.total > 0.0);
//! # Ok(())
//! # }
//! ```

use vip_core::accounting::{AccessModel, CallDescriptor};
use vip_core::addressing::intra::IntraOptions;
use vip_core::addressing::segment::{SegmentOptions, SegmentResult};
use vip_core::border::BorderPolicy;
use vip_core::frame::Frame;
use vip_core::geometry::Point;
use vip_core::ops::segment_ops::NeighborCriterion;
use vip_core::ops::{InterOp, IntraOp};
use vip_core::pixel::ChannelSet;
use vip_obs::{Recorder, Registry, Track};

use crate::config::{EngineConfig, InterOverlap, SimulationFidelity, StepMode};
use crate::dma::{schedule_inter_call, schedule_intra_call, DmaSchedule};
use crate::error::{EngineError, EngineResult};
use crate::fast::{run_inter_fast, run_intra_fast};
use crate::process_unit::{run_inter_detailed_probed, run_intra_detailed_probed, PuProbe};
use crate::report::{record_into, stats_from_registry, EngineReport, EngineStats};
use crate::timing::{inter_timeline, intra_timeline, segment_timeline};
use crate::trace::{emit_trace, seconds_to_ns, trace_of};
use crate::zbt::{ZbtMemory, ZbtRegion};

/// One completed engine call: the produced frame plus its report.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The produced frame (bit-exact with the software AddressLib).
    pub output: Frame,
    /// Schedule, access counts and (in detailed mode) pipeline
    /// statistics.
    pub report: EngineReport,
}

/// One completed segment call on the outlook engine.
#[derive(Debug, Clone)]
pub struct EngineSegmentRun {
    /// The software-identical segment result.
    pub result: SegmentResult,
    /// Schedule and access counts.
    pub report: EngineReport,
}

/// The simulated AddressEngine coprocessor.
#[derive(Debug)]
pub struct AddressEngine {
    config: EngineConfig,
    zbt: ZbtMemory,
    /// Metric accumulation; the [`EngineStats`] facade derives from it.
    metrics: Registry,
    /// Observability bus handle; disabled by default.
    recorder: Recorder,
    /// Virtual clock: nanoseconds of simulated time consumed by completed
    /// calls, so successive calls occupy disjoint trace windows.
    clock_ns: u64,
    /// Number of stage-trace cycles recorded per detailed call.
    trace_limit: usize,
}

impl AddressEngine {
    /// Creates an engine with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn new(config: EngineConfig) -> EngineResult<Self> {
        config.validate()?;
        let zbt = ZbtMemory::new(&config);
        Ok(AddressEngine {
            config,
            zbt,
            metrics: Registry::new(),
            recorder: Recorder::disabled(),
            clock_ns: 0,
            trace_limit: 0,
        })
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Accumulated call statistics (the Table 3 counters), derived from
    /// the metrics registry.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        stats_from_registry(&self.metrics)
    }

    /// The full metrics registry behind [`AddressEngine::stats`]:
    /// per-subsystem counters, the call-latency histogram, stall tallies.
    #[must_use]
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Clears the accumulated statistics and rewinds the virtual clock.
    pub fn reset_stats(&mut self) {
        self.metrics.clear();
        self.clock_ns = 0;
    }

    /// Attaches an observability recorder: every subsequent call emits
    /// schedule instants plus PCI/DMA/ZBT/IIM/OIM/PU/PLC spans onto it.
    /// Pass [`Recorder::disabled`] to detach.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The attached recorder (disabled unless set).
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Nanoseconds of simulated time consumed by completed calls.
    #[must_use]
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Enables recording of the first `cycles` stage-occupancy snapshots
    /// of each detailed call (the fig. 5 trace).
    pub fn set_trace_limit(&mut self, cycles: usize) {
        self.trace_limit = cycles;
    }

    /// Whether detailed calls take the event-driven fast-forward path.
    /// An attached recorder forces per-cycle stepping: the fig. 5 probe
    /// spans (line fills, sweeps, stall runs) are per-cycle artefacts.
    fn fast_forward(&self) -> bool {
        self.config.step_mode == StepMode::FastForward && !self.recorder.is_enabled()
    }

    /// A probe for the cycle-stepped datapath whose cycle 0 sits at
    /// `processing_start_s` seconds into the current call.
    fn pu_probe(&self, processing_start_s: f64) -> PuProbe {
        if !self.recorder.is_enabled() {
            return PuProbe::disabled();
        }
        PuProbe::new(
            self.recorder.clone(),
            self.clock_ns + seconds_to_ns(processing_start_s),
            1e9 / self.config.engine_clock.hz,
        )
    }

    /// Seconds from call issue until the given PCI cycle count.
    fn pci_seconds(&self, cycles: crate::clock::Cycles) -> f64 {
        cycles.count() as f64 / self.config.pci_clock.hz
    }

    /// Folds the report into the metrics registry, publishes the
    /// call-level trace (schedule instants, PCI/DMA spans, ZBT bank
    /// activity), and advances the virtual clock past the call.
    fn finish_call(
        &mut self,
        name: &'static str,
        report: &EngineReport,
        schedule: Option<&DmaSchedule>,
    ) {
        record_into(&mut self.metrics, report);
        if report.processing.is_some() {
            // Detailed runs reset the bank counters first, so they hold
            // exactly this call's traffic (input load through result
            // unload) — the per-bank duty behind `vipctl report`.
            for (bank, s) in self.zbt.stats().iter().enumerate() {
                self.metrics.inc(crate::report::zbt_bank_key(bank), s.total());
            }
        }
        if self.recorder.is_enabled() {
            let t0 = self.clock_ns;
            let end = t0 + seconds_to_ns(report.timeline.total);
            self.recorder.span(
                Track::Engine,
                name,
                t0,
                end,
                &[
                    ("busy_s", report.timeline.total.into()),
                    ("hardware_accesses", report.hardware_accesses.into()),
                ],
            );
            emit_trace(&self.recorder, t0, &trace_of(&report.timeline));
            if let Some(s) = schedule {
                s.emit(&self.recorder, t0, self.config.pci_clock.hz);
            }
            if report.processing.is_some() {
                self.emit_zbt_spans(t0, report);
            }
        }
        self.clock_ns += seconds_to_ns(report.timeline.total);
    }

    /// One `bank_active` span per ZBT bank that saw traffic during the
    /// call, covering input arrival through result drain. Bank counters
    /// are valid here because every detailed run resets them first.
    fn emit_zbt_spans(&self, t0: u64, report: &EngineReport) {
        let start = t0 + seconds_to_ns(report.timeline.interrupt_overhead / 2.0);
        let end = t0 + seconds_to_ns(report.timeline.drain_end);
        for (bank, s) in self.zbt.stats().iter().enumerate() {
            if s.total() == 0 {
                continue;
            }
            self.recorder.span(
                Track::ZbtBank(bank as u8),
                "bank_active",
                start,
                end,
                &[
                    ("word_reads", s.word_reads.into()),
                    ("word_writes", s.word_writes.into()),
                ],
            );
        }
    }

    fn check_fits(&self, frame: &Frame) -> EngineResult<()> {
        if frame.dims().is_empty() {
            return Err(EngineError::Core(vip_core::error::CoreError::EmptyFrame));
        }
        if !self.zbt.fits(frame.dims()) {
            return Err(EngineError::FrameTooLarge {
                dims: frame.dims(),
                required_bytes: frame.pixel_count() * 8,
                available_bytes: self.config.zbt_bytes() / 3,
            });
        }
        Ok(())
    }

    fn load_region(&mut self, region: ZbtRegion, frame: &Frame) -> EngineResult<()> {
        self.zbt.write_input_run(region, 0, frame.pixels())?;
        Ok(())
    }

    fn unload_result(&mut self, dims: vip_core::geometry::Dims) -> EngineResult<Frame> {
        let total = dims.pixel_count();
        let pixels = self.zbt.read_result_run(0, total, total)?;
        Ok(Frame::from_pixels(dims, pixels)?)
    }

    /// Runs an intra call with the default clamp border.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::FrameTooLarge`] when the frame exceeds the
    /// ZBT capacity, and propagates AddressLib errors.
    pub fn run_intra<O: IntraOp>(&mut self, frame: &Frame, op: &O) -> EngineResult<EngineRun> {
        self.run_intra_with(frame, op, BorderPolicy::Clamp)
    }

    /// Runs an intra call with an explicit border policy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AddressEngine::run_intra`].
    pub fn run_intra_with<O: IntraOp>(
        &mut self,
        frame: &Frame,
        op: &O,
        border: BorderPolicy,
    ) -> EngineResult<EngineRun> {
        self.check_fits(frame)?;
        let descriptor =
            CallDescriptor::intra(op.shape(), op.input_channels(), op.output_channels());
        let timeline = intra_timeline(frame.dims(), op.shape().radius(), &self.config);
        let access_model = AccessModel::for_call(&descriptor, frame.dims());

        // The hardware IIM replicates edge lines (clamp); other border
        // policies exist only in the software library. Refuse rather
        // than silently diverge.
        if self.config.fidelity == SimulationFidelity::Detailed
            && !matches!(border, BorderPolicy::Clamp)
            && op.shape().radius() > 0
        {
            return Err(EngineError::UnsupportedCapability {
                capability: "non-clamp border policies in the cycle-stepped datapath",
            });
        }
        // The strip schedule doubles as the trace's PCI/DMA span source
        // and the processing-phase time origin; only built when recording.
        let schedule = self
            .recorder
            .is_enabled()
            .then(|| schedule_intra_call(frame.dims(), &self.config));
        let (output, hardware_accesses, processing) = match self.config.fidelity {
            SimulationFidelity::Detailed => {
                self.load_region(ZbtRegion::InputA, frame)?;
                self.zbt.reset_stats();
                // Event-driven fast-forward is bit-identical but cannot
                // emit per-cycle probe spans: recorded runs step.
                let stats = if self.fast_forward() {
                    run_intra_fast(
                        &mut self.zbt,
                        frame.dims(),
                        op,
                        border,
                        &self.config,
                        self.trace_limit,
                    )?
                } else {
                    // Processing starts once the first strip has landed.
                    let probe = self.pu_probe(
                        schedule
                            .as_ref()
                            .map_or(0.0, |s| self.pci_seconds(s.input_strips[0].transfer.end())),
                    );
                    run_intra_detailed_probed(
                        &mut self.zbt,
                        frame.dims(),
                        op,
                        border,
                        &self.config,
                        self.trace_limit,
                        &probe,
                    )?
                };
                let hw = self.zbt.pixel_access_cycles();
                (self.unload_result(frame.dims())?, hw, Some(stats))
            }
            SimulationFidelity::Analytic => {
                let result = vip_core::addressing::intra::run_intra_with(
                    frame,
                    op,
                    IntraOptions {
                        border,
                        ..IntraOptions::default()
                    },
                )?;
                (result.output, access_model.hardware_accesses, None)
            }
        };

        let report = EngineReport {
            descriptor,
            timeline,
            access_model,
            hardware_accesses,
            processing,
        };
        self.finish_call("intra_call", &report, schedule.as_ref());
        Ok(EngineRun { output, report })
    }

    /// Runs an inter call.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::FrameTooLarge`] for oversized frames and
    /// propagates AddressLib errors (e.g. dimension mismatch).
    pub fn run_inter<O: InterOp>(
        &mut self,
        a: &Frame,
        b: &Frame,
        op: &O,
    ) -> EngineResult<EngineRun> {
        self.check_fits(a)?;
        if a.dims() != b.dims() {
            return Err(EngineError::Core(vip_core::error::CoreError::DimsMismatch {
                left: a.dims(),
                right: b.dims(),
            }));
        }
        let descriptor = CallDescriptor::inter(op.input_channels(), op.output_channels());
        let timeline = inter_timeline(a.dims(), &self.config);
        let access_model = AccessModel::for_call(&descriptor, a.dims());

        let schedule = self
            .recorder
            .is_enabled()
            .then(|| schedule_inter_call(a.dims(), &self.config));
        let (output, hardware_accesses, processing) = match self.config.fidelity {
            SimulationFidelity::Detailed => {
                self.load_region(ZbtRegion::InputA, a)?;
                self.load_region(ZbtRegion::InputB, b)?;
                self.zbt.reset_stats();
                let stats = if self.fast_forward() {
                    run_inter_fast(&mut self.zbt, a.dims(), op, &self.config, self.trace_limit)?
                } else {
                    // Sequential inter processing waits for both images;
                    // interleaved tracks the input strips (see dma.rs).
                    let probe = self.pu_probe(schedule.as_ref().map_or(0.0, |s| {
                        match self.config.inter_overlap {
                            InterOverlap::Sequential => self.pci_seconds(s.input_end),
                            InterOverlap::Interleaved => {
                                self.pci_seconds(s.input_strips[1].transfer.end())
                            }
                        }
                    }));
                    run_inter_detailed_probed(
                        &mut self.zbt,
                        a.dims(),
                        op,
                        &self.config,
                        self.trace_limit,
                        &probe,
                    )?
                };
                let hw = self.zbt.pixel_access_cycles();
                (self.unload_result(a.dims())?, hw, Some(stats))
            }
            SimulationFidelity::Analytic => {
                let result = vip_core::addressing::inter::run_inter(a, b, op)?;
                (result.output, access_model.hardware_accesses, None)
            }
        };

        let report = EngineReport {
            descriptor,
            timeline,
            access_model,
            hardware_accesses,
            processing,
        };
        self.finish_call("inter_call", &report, schedule.as_ref());
        Ok(EngineRun { output, report })
    }

    /// Runs a segment-addressing call — only available on an engine
    /// configured with the §5 outlook capability
    /// ([`EngineConfig::outlook_v2`]); the DATE 2005 prototype rejects it
    /// (*"Segment addressing is planned for future versions"*, §6).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnsupportedCapability`] on a v1 engine,
    /// [`EngineError::FrameTooLarge`] for oversized frames, and
    /// propagates AddressLib errors (no seeds, out-of-bounds seeds).
    pub fn run_segment<C: NeighborCriterion>(
        &mut self,
        frame: &Frame,
        seeds: &[Point],
        criterion: &C,
        options: SegmentOptions,
    ) -> EngineResult<EngineSegmentRun> {
        if !self.config.segment_capable {
            return Err(EngineError::UnsupportedCapability {
                capability: "segment addressing (planned for future versions, §6)",
            });
        }
        self.check_fits(frame)?;
        let result =
            vip_core::addressing::segment::run_segment(frame, seeds, criterion, options)?;
        let descriptor = CallDescriptor::segment(
            options.connectivity,
            ChannelSet::Y,
            ChannelSet::ALPHA.union(ChannelSet::AUX),
        );
        let timeline = segment_timeline(
            frame.dims(),
            result.report.pixels_processed,
            &self.config,
        );
        let access_model = AccessModel::for_call(&descriptor, frame.dims());
        let report = EngineReport {
            descriptor,
            timeline,
            access_model,
            // Segment hardware traffic: one read + one write cycle per
            // *segment* pixel plus the full-frame transfer accounted in
            // the timeline.
            hardware_accesses: 2 * result.report.pixels_processed,
            processing: None,
        };
        // Segment calls have no strip schedule (full-frame transfer).
        self.finish_call("segment_call", &report, None);
        Ok(EngineSegmentRun { result, report })
    }

    /// The fig. 3 memory map of the engine's ZBT for a given frame size.
    #[must_use]
    pub fn memory_map(&self, dims: vip_core::geometry::Dims) -> crate::zbt::MemoryMap {
        self.zbt.memory_map(dims, self.config.strip_lines)
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::pixel::Pixel;
    use vip_core::geometry::Dims;
    use vip_core::ops::arith::AbsDiff;
    use vip_core::ops::filter::{BoxBlur, SobelGradient};
    use vip_core::ops::morph::Dilate;
    use vip_core::ops::segment_ops::HomogeneityCriterion;

    fn frame(dims: Dims) -> Frame {
        Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 5 + p.y * 11) % 256) as u8))
    }

    #[test]
    fn analytic_output_matches_software() {
        let mut e = AddressEngine::new(EngineConfig::prototype()).unwrap();
        let f = frame(Dims::new(48, 32));
        let run = e.run_intra(&f, &BoxBlur::con8()).unwrap();
        let sw = vip_core::addressing::intra::run_intra(&f, &BoxBlur::con8()).unwrap();
        assert_eq!(run.output, sw.output);
        assert!(run.report.processing.is_none());
    }

    #[test]
    fn detailed_output_matches_software() {
        let mut e = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        let f = frame(Dims::new(24, 16));
        let run = e.run_intra(&f, &SobelGradient::new()).unwrap();
        let sw = vip_core::addressing::intra::run_intra(&f, &SobelGradient::new()).unwrap();
        assert_eq!(run.output, sw.output);
        let stats = run.report.processing.expect("detailed stats");
        assert_eq!(stats.pixels, 24 * 16);
    }

    #[test]
    fn detailed_and_analytic_hardware_accesses_agree() {
        let f = frame(Dims::new(20, 20));
        let mut det = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        let mut ana = AddressEngine::new(EngineConfig::prototype()).unwrap();
        let rd = det.run_intra(&f, &Dilate::con8()).unwrap();
        let ra = ana.run_intra(&f, &Dilate::con8()).unwrap();
        assert_eq!(rd.report.hardware_accesses, ra.report.hardware_accesses);
        assert_eq!(rd.report.hardware_accesses, 2 * 400);
    }

    #[test]
    fn inter_both_modes_match() {
        let a = frame(Dims::new(16, 16));
        let b = frame(Dims::new(16, 16));
        let sw = vip_core::addressing::inter::run_inter(&a, &b, &AbsDiff::luma()).unwrap();
        for cfg in [EngineConfig::prototype(), EngineConfig::prototype_detailed()] {
            let mut e = AddressEngine::new(cfg).unwrap();
            let run = e.run_inter(&a, &b, &AbsDiff::luma()).unwrap();
            assert_eq!(run.output, sw.output);
        }
    }

    #[test]
    fn stats_accumulate_across_calls() {
        let mut e = AddressEngine::new(EngineConfig::prototype()).unwrap();
        let f = frame(Dims::new(32, 32));
        e.run_intra(&f, &BoxBlur::con8()).unwrap();
        e.run_intra(&f, &Dilate::con8()).unwrap();
        e.run_inter(&f, &f, &AbsDiff::luma()).unwrap();
        let s = e.stats();
        assert_eq!(s.intra_calls, 2);
        assert_eq!(s.inter_calls, 1);
        assert!(s.busy_seconds > 0.0);
        e.reset_stats();
        assert_eq!(e.stats().total_calls(), 0);
    }

    #[test]
    fn v1_rejects_segment_calls() {
        let mut e = AddressEngine::new(EngineConfig::prototype()).unwrap();
        let f = frame(Dims::new(8, 8));
        let err = e.run_segment(
            &f,
            &[Point::new(4, 4)],
            &HomogeneityCriterion::luma(10),
            SegmentOptions::default(),
        );
        assert!(matches!(err, Err(EngineError::UnsupportedCapability { .. })));
    }

    #[test]
    fn outlook_engine_runs_segment_calls() {
        let mut e = AddressEngine::new(EngineConfig::outlook_v2()).unwrap();
        let f = frame(Dims::new(8, 8));
        let run = e
            .run_segment(
                &f,
                &[Point::new(4, 4)],
                &HomogeneityCriterion::luma(255),
                SegmentOptions::default(),
            )
            .unwrap();
        assert_eq!(run.result.segment.len(), 64, "tolerance 255 floods the frame");
        assert_eq!(e.stats().segment_calls, 1);
        // Matches the pure software path exactly.
        let sw = vip_core::addressing::segment::run_segment(
            &f,
            &[Point::new(4, 4)],
            &HomogeneityCriterion::luma(255),
            SegmentOptions::default(),
        )
        .unwrap();
        assert_eq!(run.result.output, sw.output);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut e = AddressEngine::new(EngineConfig::prototype()).unwrap();
        let f = Frame::new(Dims::new(1024, 1024));
        assert!(matches!(
            e.run_intra(&f, &BoxBlur::con8()),
            Err(EngineError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn empty_frame_rejected() {
        let mut e = AddressEngine::new(EngineConfig::prototype()).unwrap();
        let f = Frame::new(Dims::new(0, 0));
        assert!(e.run_intra(&f, &BoxBlur::con8()).is_err());
    }

    #[test]
    fn inter_dims_mismatch_rejected() {
        let mut e = AddressEngine::new(EngineConfig::prototype()).unwrap();
        let a = frame(Dims::new(8, 8));
        let b = frame(Dims::new(8, 9));
        assert!(e.run_inter(&a, &b, &AbsDiff::luma()).is_err());
    }

    #[test]
    fn trace_limit_propagates() {
        let mut e = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        e.set_trace_limit(20);
        let f = frame(Dims::new(8, 8));
        let run = e.run_intra(&f, &BoxBlur::con8()).unwrap();
        assert_eq!(run.report.processing.unwrap().trace.len(), 20);
    }

    #[test]
    fn recorder_captures_call_schedule_and_subsystems() {
        let mut e = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        let session = vip_obs::Session::new();
        e.set_recorder(session.recorder());
        assert!(e.recorder().is_enabled());
        let f = frame(Dims::new(32, 32));
        e.run_intra(&f, &SobelGradient::new()).unwrap();
        let recording = session.finish();
        use vip_obs::Track;
        // Engine track: the call span + the seven schedule instants.
        assert_eq!(recording.on_track(Track::Engine).len(), 8);
        assert!(!recording.on_track(Track::Pci).is_empty());
        assert!(!recording.on_track(Track::Dma).is_empty());
        assert!(!recording.on_track(Track::Iim).is_empty());
        assert!(!recording.on_track(Track::Oim).is_empty());
        assert!(!recording.on_track(Track::Pu).is_empty());
        assert!(!recording.on_track(Track::Plc).is_empty());
        // Input bank 0 and both result banks saw traffic.
        assert!(!recording.on_track(Track::ZbtBank(0)).is_empty());
        assert!(!recording.on_track(Track::ZbtBank(4)).is_empty());
        // The virtual clock advanced past the call.
        assert!(e.clock_ns() > 0);
    }

    #[test]
    fn detached_recorder_and_metrics_registry() {
        let mut e = AddressEngine::new(EngineConfig::prototype()).unwrap();
        let f = frame(Dims::new(16, 16));
        e.run_intra(&f, &BoxBlur::con8()).unwrap();
        // Disabled recorder by default: no events anywhere, but the
        // metrics registry still accumulates.
        assert_eq!(e.metrics().counter(crate::report::keys::INTRA_CALLS), 1);
        assert!(e
            .metrics()
            .histogram(crate::report::keys::CALL_MS)
            .is_some());
        // A second call on a fresh session records only its own events.
        let session = vip_obs::Session::new();
        e.set_recorder(session.recorder());
        e.set_recorder(vip_obs::Recorder::disabled());
        e.run_intra(&f, &BoxBlur::con8()).unwrap();
        assert!(session.is_empty(), "detached recorder must stay silent");
        assert_eq!(e.stats().intra_calls, 2);
    }

    #[test]
    fn memory_map_accessible() {
        let e = AddressEngine::new(EngineConfig::prototype()).unwrap();
        let map = e.memory_map(Dims::new(352, 288));
        assert_eq!(map.regions.len(), 4);
    }

    #[test]
    fn detailed_mode_rejects_non_clamp_borders() {
        let mut e = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        let f = frame(Dims::new(8, 8));
        let err = e.run_intra_with(&f, &BoxBlur::con8(), BorderPolicy::Mirror);
        assert!(matches!(err, Err(EngineError::UnsupportedCapability { .. })));
        // CON_0 kernels have no border accesses: any policy is fine.
        assert!(e
            .run_intra_with(&f, &vip_core::ops::filter::Identity::luma(), BorderPolicy::Mirror)
            .is_ok());
        // The analytic engine supports every policy (it runs the software path).
        let mut a = AddressEngine::new(EngineConfig::prototype()).unwrap();
        assert!(a.run_intra_with(&f, &BoxBlur::con8(), BorderPolicy::Mirror).is_ok());
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let mut cfg = EngineConfig::prototype();
        cfg.strip_lines = 0;
        assert!(AddressEngine::new(cfg).is_err());
    }
}
