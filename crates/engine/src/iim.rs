//! The IIM — input intermediate memory.
//!
//! §3.1: the IIM sits at the input of the processing unit *"because there
//! is a successive pixel reuse at this point of the system. Thus loading
//! the complete neighbourhood for each pixel is avoided. Furthermore …
//! the whole neighbourhood can be obtained in only one cycle, even in the
//! worst case with perpendicular neighbourhood and scan direction"*
//! (fig. 4). It holds sixteen image lines in sixteen line blocks of two
//! FPGA-BRAM banks each (lo/hi pixel words) — 32 embedded memory blocks.
//!
//! For inter addressing *"the IIM will take the form of two FIFOs, one for
//! every input image, with 8 lines each"* (§3.3); the engine models that
//! by instantiating two half-sized IIMs.
//!
//! # Examples
//!
//! ```
//! use vip_engine::iim::Iim;
//! use vip_core::pixel::Pixel;
//!
//! let mut iim = Iim::new(16, 8);
//! iim.load_line(0, &vec![Pixel::from_luma(7); 8]);
//! assert!(iim.has_line(0));
//! assert_eq!(iim.resident_lines(), 1);
//! ```

use std::collections::VecDeque;

use vip_core::border::BorderPolicy;
use vip_core::geometry::{Dims, Point};
use vip_core::neighborhood::Connectivity;
use vip_core::pixel::Pixel;

/// One resident image line.
#[derive(Debug, Clone)]
struct LineBlock {
    line_no: usize,
    pixels: Vec<Pixel>,
}

/// The input intermediate memory: a ring of line blocks.
#[derive(Debug, Clone)]
pub struct Iim {
    capacity_lines: usize,
    width: usize,
    lines: VecDeque<LineBlock>,
    /// BRAM read cycles spent delivering neighbourhoods (one per window,
    /// §3.1's single-cycle parallel fetch).
    window_fetches: u64,
    /// Lines loaded from the ZBT since construction.
    lines_loaded: u64,
    /// Pixel-cycles the consumer stalled waiting for lines.
    stall_cycles: u64,
}

impl Iim {
    /// Creates an IIM holding up to `capacity_lines` lines of `width`
    /// pixels.
    ///
    /// # Panics
    ///
    /// Panics when `capacity_lines` or `width` is zero.
    #[must_use]
    pub fn new(capacity_lines: usize, width: usize) -> Self {
        assert!(capacity_lines > 0, "IIM needs at least one line block");
        assert!(width > 0, "IIM line width must be positive");
        Iim {
            capacity_lines,
            width,
            lines: VecDeque::new(),
            window_fetches: 0,
            lines_loaded: 0,
            stall_cycles: 0,
        }
    }

    /// Line capacity (16 in the prototype).
    #[must_use]
    pub const fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// Number of FPGA BRAM blocks this IIM occupies: two banks (lo/hi
    /// pixel words) per line block.
    #[must_use]
    pub const fn bram_blocks(&self) -> usize {
        2 * self.capacity_lines
    }

    /// FULL signal: no free line block.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.lines.len() == self.capacity_lines
    }

    /// EMPTY signal: no resident line.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Number of resident lines.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// Whether image line `line_no` is resident.
    #[must_use]
    pub fn has_line(&self, line_no: usize) -> bool {
        self.lines.iter().any(|l| l.line_no == line_no)
    }

    /// The oldest resident line number (next eviction victim), if any.
    #[must_use]
    pub fn oldest_line(&self) -> Option<usize> {
        self.lines.front().map(|l| l.line_no)
    }

    /// Loads one image line, evicting the oldest when full (FIFO
    /// behaviour, §3.3). Pixels are cropped/padded to the IIM width.
    pub fn load_line(&mut self, line_no: usize, pixels: &[Pixel]) {
        if self.is_full() {
            self.lines.pop_front();
        }
        let mut row = pixels.to_vec();
        row.resize(self.width, Pixel::default());
        self.lines.push_back(LineBlock {
            line_no,
            pixels: row,
        });
        self.lines_loaded += 1;
    }

    /// Records one stalled pixel-cycle (image-level controller halting
    /// the PLC while a needed line is in flight, §3.3).
    pub fn record_stall(&mut self) {
        self.stall_cycles += 1;
    }

    /// Whether the transmission unit may load another pixel without
    /// evicting a line the sweep still needs: either a free line block
    /// exists, or the eviction victim lies strictly before the oldest
    /// in-flight line's window (`needed_oldest`).
    #[must_use]
    pub fn can_accept(&self, needed_oldest: usize) -> bool {
        !self.is_full() || self.oldest_line().is_none_or(|old| old < needed_oldest)
    }

    /// Next-activity cycle of the ZBT→IIM fill path, for the event-driven
    /// stepping loop: `Some(now + 1)` while the transmission unit has
    /// lines left to move (`filling`) and the eviction gate admits the
    /// next pixel, `None` while the fill is done or gated — a gated fill
    /// cannot resume until the sweep advances, which is a pipeline event,
    /// not an IIM event.
    #[must_use]
    pub fn next_event(&self, now: u64, filling: bool, needed_oldest: usize) -> Option<u64> {
        (filling && self.can_accept(needed_oldest)).then_some(now + 1)
    }

    /// Whether all lines a `shape`-window at `centre` needs (after
    /// clamping to the frame of `dims`) are resident.
    #[must_use]
    pub fn window_ready(&self, centre: Point, shape: Connectivity, dims: Dims) -> bool {
        let r = shape.radius() as i32;
        (-r..=r).all(|dy| {
            let line = (centre.y + dy).clamp(0, dims.height as i32 - 1) as usize;
            self.has_line(line)
        })
    }

    /// Fetches the full neighbourhood window around `centre` in a single
    /// memory cycle — every line block delivers its column in parallel.
    ///
    /// Returns `None` (a stall) when a needed line is not resident.
    /// Horizontal border accesses resolve via `border`; vertical accesses
    /// clamp to the frame like the hardware re-delivering edge lines.
    #[must_use]
    pub fn fetch_window(
        &mut self,
        centre: Point,
        shape: Connectivity,
        dims: Dims,
        border: BorderPolicy,
    ) -> Option<Vec<(Point, Pixel)>> {
        if !self.window_ready(centre, shape, dims) {
            self.record_stall();
            return None;
        }
        self.window_fetches += 1;
        let mut out = Vec::with_capacity(shape.offset_count());
        for off in shape.offsets_iter() {
            let line = (centre.y + off.y).clamp(0, dims.height as i32 - 1) as usize;
            let row = &self
                .lines
                .iter()
                .find(|l| l.line_no == line)
                .expect("window_ready checked residency")
                .pixels;
            let x = centre.x + off.x;
            let px = if (0..dims.width as i32).contains(&x) {
                row[x as usize]
            } else {
                match border.map_point(dims, Point::new(x, centre.y + off.y)) {
                    Some(q) if self.has_line(q.y as usize) => {
                        let qrow = &self
                            .lines
                            .iter()
                            .find(|l| l.line_no == q.y as usize)
                            .expect("checked")
                            .pixels;
                        qrow[q.x as usize]
                    }
                    _ => match border {
                        BorderPolicy::Constant(c) => c,
                        BorderPolicy::Skip => continue,
                        // Clamp fallback within the resident line.
                        _ => row[(x.clamp(0, dims.width as i32 - 1)) as usize],
                    },
                }
            };
            out.push((off, px));
        }
        Some(out)
    }

    /// Single-cycle window fetches served so far.
    #[must_use]
    pub const fn window_fetches(&self) -> u64 {
        self.window_fetches
    }

    /// Lines loaded from the ZBT so far.
    #[must_use]
    pub const fn lines_loaded(&self) -> u64 {
        self.lines_loaded
    }

    /// Pixel-cycles stalled on missing lines.
    #[must_use]
    pub const fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(v: u8, w: usize) -> Vec<Pixel> {
        (0..w).map(|x| Pixel::from_luma(v + x as u8)).collect()
    }

    #[test]
    fn fifo_eviction() {
        let mut iim = Iim::new(3, 4);
        for l in 0..4 {
            iim.load_line(l, &line(l as u8 * 10, 4));
        }
        assert!(!iim.has_line(0), "oldest line evicted");
        assert!(iim.has_line(1) && iim.has_line(3));
        assert!(iim.is_full());
        assert_eq!(iim.lines_loaded(), 4);
    }

    #[test]
    fn full_empty_signals() {
        let mut iim = Iim::new(2, 2);
        assert!(iim.is_empty());
        iim.load_line(0, &line(0, 2));
        assert!(!iim.is_empty() && !iim.is_full());
        iim.load_line(1, &line(0, 2));
        assert!(iim.is_full());
    }

    #[test]
    fn bram_blocks_match_prototype() {
        // 16 line blocks × 2 banks = 32 BRAMs for the IIM (§3.1).
        let iim = Iim::new(16, 352);
        assert_eq!(iim.bram_blocks(), 32);
    }

    #[test]
    fn window_fetch_one_cycle_when_resident() {
        let dims = Dims::new(4, 4);
        let mut iim = Iim::new(16, 4);
        for l in 0..4 {
            iim.load_line(l, &line(l as u8 * 10, 4));
        }
        let w = iim
            .fetch_window(Point::new(1, 1), Connectivity::Con8, dims, BorderPolicy::Clamp)
            .expect("all lines resident");
        assert_eq!(w.len(), 9);
        assert_eq!(iim.window_fetches(), 1);
        // Sample correctness: offset (1,-1) → line 0, x 2 → 0·10 + 2.
        let s = w.iter().find(|(o, _)| *o == Point::new(1, -1)).unwrap().1;
        assert_eq!(s.y, 2);
    }

    #[test]
    fn missing_line_stalls() {
        let dims = Dims::new(4, 4);
        let mut iim = Iim::new(16, 4);
        iim.load_line(0, &line(0, 4));
        // Window at line 1 needs lines 0..=2.
        assert!(iim
            .fetch_window(Point::new(1, 1), Connectivity::Con8, dims, BorderPolicy::Clamp)
            .is_none());
        assert_eq!(iim.stall_cycles(), 1);
        assert_eq!(iim.window_fetches(), 0);
    }

    #[test]
    fn top_border_clamps_lines() {
        let dims = Dims::new(4, 4);
        let mut iim = Iim::new(16, 4);
        iim.load_line(0, &line(0, 4));
        iim.load_line(1, &line(10, 4));
        // Centre on line 0: offsets dy=-1 clamp to line 0 (resident) — ready.
        let w = iim
            .fetch_window(Point::new(1, 0), Connectivity::Con8, dims, BorderPolicy::Clamp)
            .expect("clamped rows resident");
        let nw = w.iter().find(|(o, _)| *o == Point::new(-1, -1)).unwrap().1;
        assert_eq!(nw.y, 0, "clamped to line 0, x 0");
    }

    #[test]
    fn horizontal_border_clamp() {
        let dims = Dims::new(4, 2);
        let mut iim = Iim::new(16, 4);
        iim.load_line(0, &line(0, 4));
        iim.load_line(1, &line(10, 4));
        let w = iim
            .fetch_window(Point::new(0, 1), Connectivity::Con8, dims, BorderPolicy::Clamp)
            .unwrap();
        let west = w.iter().find(|(o, _)| *o == Point::new(-1, 0)).unwrap().1;
        assert_eq!(west.y, 10, "clamped to x 0 of line 1");
    }

    #[test]
    fn horizontal_border_constant_and_skip() {
        let dims = Dims::new(3, 1);
        let mut iim = Iim::new(4, 3);
        iim.load_line(0, &line(5, 3));
        let w = iim
            .fetch_window(
                Point::new(0, 0),
                Connectivity::Con8,
                dims,
                BorderPolicy::Constant(Pixel::from_luma(99)),
            )
            .unwrap();
        let west = w.iter().find(|(o, _)| *o == Point::new(-1, 0)).unwrap().1;
        assert_eq!(west.y, 99);
        let w2 = iim
            .fetch_window(Point::new(0, 0), Connectivity::Con8, dims, BorderPolicy::Skip)
            .unwrap();
        assert!(w2.len() < 9, "skip drops out-of-frame samples");
    }

    #[test]
    fn window_matches_core_gather_in_interior() {
        // The IIM fetch must agree with the software Window gather.
        use vip_core::frame::Frame;
        use vip_core::neighborhood::Window;
        let dims = Dims::new(6, 6);
        let f = Frame::from_fn(dims, |p| Pixel::from_luma((p.y * 6 + p.x) as u8));
        let mut iim = Iim::new(16, 6);
        for l in 0..6 {
            iim.load_line(l, f.line(l));
        }
        for y in 0..6 {
            for x in 0..6 {
                let c = Point::new(x, y);
                let hw = iim
                    .fetch_window(c, Connectivity::Con8, dims, BorderPolicy::Clamp)
                    .unwrap();
                let sw = Window::gather(&f, c, Connectivity::Con8, BorderPolicy::Clamp);
                for (off, px) in hw {
                    assert_eq!(Some(px), sw.sample(off), "at {c} offset {off}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_panics() {
        let _ = Iim::new(0, 4);
    }

    #[test]
    fn short_line_padded() {
        let mut iim = Iim::new(2, 4);
        iim.load_line(0, &line(1, 2)); // shorter than width
        let dims = Dims::new(4, 1);
        let w = iim
            .fetch_window(Point::new(3, 0), Connectivity::Con0, dims, BorderPolicy::Clamp)
            .unwrap();
        assert_eq!(w[0].1, Pixel::default(), "padded region is default pixels");
    }
}
