//! Event-driven fast-forward datapath ([`StepMode::FastForward`]).
//!
//! The cycle-stepped loops in [`crate::process_unit`] model every stage
//! every cycle; most of that per-cycle work is structurally determined.
//! The key observation is that [`ProcessingStats`] is *data-independent*:
//! cycles, stalls, matrix instructions and OIM occupancy depend only on
//! the frame geometry, window shape and IIM/OIM/drain parameters — while
//! the produced pixels are, by the engine's own bit-exactness guarantee,
//! identical to the software AddressLib result. This module exploits
//! both facts:
//!
//! 1. **Batched datapath** — the input image is read out of the ZBT in
//!    one pass (the exact access sequence the transmission unit would
//!    issue, so bank statistics match), and the result pixels are
//!    computed through the software addressing path once, up front.
//! 2. **Integer timing skeleton** — the per-cycle loop is replayed with
//!    the same control flow as the stepped simulator (drain, TxU,
//!    stage 4→1) but carrying only indices, so each modelled cycle costs
//!    a handful of integer operations instead of a window gather and an
//!    operator application. The skeleton also replaces the intermediate
//!    memories themselves with O(1) mirrors: the fill path loads lines
//!    strictly in scan order and evicts FIFO, so the IIM's resident set
//!    is always the contiguous range `[txu_line − iim_lines, txu_line)`
//!    and window readiness / the eviction gate reduce to two integer
//!    comparisons; the sweep produces pixels in index order, so the OIM
//!    FIFO always holds the contiguous range `[popped, pushed)` and
//!    becomes a pair of counters.
//! 3. **Event-driven fast-forward** — each subsystem reports its
//!    next-activity cycle ([`crate::oim::Oim::next_event`] for the drain
//!    port, [`crate::iim::Iim::next_event`] for the fill path, the
//!    pipeline-slot analysis below for the Process Unit); when the
//!    earliest event lies beyond `now + 1` the clock jumps straight to
//!    it, accumulating the per-cycle stall counters the stepped loop
//!    would have recorded on the skipped cycles. While the Process Unit
//!    is active the earliest event is always `now + 1`, so the query is
//!    only evaluated on idle cycles — the steady-state path pays nothing
//!    for it. When no subsystem reports any future event the run can
//!    never finish; the loop reports the same
//!    [`EngineError::PipelineHazard`] the stepped simulator's cycle
//!    bound would eventually trip.
//!
//! Equivalence — bit-identical [`ProcessingStats`] (including the fig. 5
//! stage trace), ZBT bank statistics, result pixels and error verdicts
//! against the cycle-stepped reference — is asserted across seeded
//! configurations by `tests/fast_forward_equivalence.rs`.
//!
//! [`StepMode::FastForward`]: crate::config::StepMode::FastForward

use vip_core::addressing::intra::IntraOptions;
use vip_core::border::BorderPolicy;
use vip_core::frame::Frame;
use vip_core::geometry::{Dims, Point};
use vip_core::ops::{InterOp, IntraOp};
use vip_core::scan::ScanOrder;

use crate::config::EngineConfig;
use crate::error::{EngineError, EngineResult};
use crate::plc::{ControlFsm, FetchKind, StageSnapshot};
use crate::process_unit::ProcessingStats;
use crate::zbt::{ZbtMemory, ZbtRegion};

/// Fast-forward equivalent of
/// [`crate::process_unit::run_intra_detailed`]: identical statistics,
/// ZBT traffic and result pixels, a fraction of the simulated work.
///
/// # Errors
///
/// Exactly the errors of the cycle-stepped reference: ZBT addressing
/// failures and [`EngineError::PipelineHazard`] for configurations whose
/// eviction gate deadlocks the sweep.
pub fn run_intra_fast<O: IntraOp>(
    zbt: &mut ZbtMemory,
    dims: Dims,
    op: &O,
    border: BorderPolicy,
    config: &EngineConfig,
    trace_limit: usize,
) -> EngineResult<ProcessingStats> {
    let total = dims.pixel_count();
    let radius = op.shape().radius();
    let drain_per = config.oim_drain_cycles_per_pixel;

    // Batched datapath: the TxU reads every input pixel exactly once, in
    // index order, before the last window can be served — so a single
    // up-front pass leaves the per-bank counters exactly as the stepped
    // interleaving would.
    let input = Frame::from_pixels(dims, zbt.read_input_run(ZbtRegion::InputA, 0, total)?)?;
    let outs = vip_core::addressing::intra::run_intra_with(
        &input,
        op,
        IntraOptions {
            border,
            ..IntraOptions::default()
        },
    )?
    .output;
    let out_pixels = outs.pixels();

    // O(1) IIM mirror: lines load strictly in scan order and evict FIFO,
    // so the resident set is always `[txu_line − iim_lines, txu_line)`.
    // A window at line `y` is ready iff its clamped line span lies inside
    // that range; the eviction gate admits a pixel iff a free block
    // exists or the victim lies before `needed_oldest`. Both are the
    // same predicates `Iim::window_ready` / `Iim::can_accept` evaluate
    // by scanning the resident list.
    assert!(config.iim_lines > 0, "IIM needs at least one line block");
    let iim_cap = config.iim_lines;
    let height = dims.height;
    let window_ready = |y: i32, txu_line: usize| -> bool {
        let lo = (y - radius as i32).max(0) as usize;
        let hi = (y + radius as i32).min(height as i32 - 1) as usize;
        hi < txu_line && lo >= txu_line.saturating_sub(iim_cap)
    };

    // O(1) OIM mirror: the sweep produces pixels in index order, so the
    // FIFO always holds the contiguous index range `[popped, pushed)`.
    let oim_cap = config.oim_lines * dims.width;
    assert!(oim_cap > 0, "OIM capacity must be positive");
    let mut oim_pushed = 0usize;
    let mut oim_popped = 0usize;
    let mut oim_max = 0usize;

    let mut fsm = ControlFsm::new(dims, ScanOrder::RowMajor);
    let mut stats = ProcessingStats::default();
    let mut matrix_valid = false;

    // Transmission-unit position (the line data itself lives in `input`,
    // and the residency mirror above tracks what would be loaded).
    let mut txu_line = 0usize;
    let mut txu_x = 0usize;

    // In-flight pipeline slots, indices only — stage 3's "result" is
    // implied by the index, so the execute slot is just the index.
    let mut scan_slot: Option<(Point, FetchKind, usize)> = None;
    let mut fetch_slot: Option<(Point, usize)> = None;
    let mut exec_slot: Option<usize> = None;

    let mut drain_timer = 0u64;
    let mut cycles = 0u64;
    // Same safety bound as the stepped loop: deadlocks must trip at the
    // same (unreached-by-clean-runs) limit.
    let bound = (total as u64 + 64) * (drain_per + 6)
        + (dims.height as u64 + 4) * dims.width as u64;
    let hazard = EngineError::PipelineHazard {
        detail: "cycle-stepped intra simulation exceeded its cycle bound",
    };

    while oim_popped < total {
        let filling = txu_line < dims.height;
        let inflight_line = fetch_slot
            .as_ref()
            .map(|f| f.0.y as usize)
            .or_else(|| scan_slot.as_ref().map(|s| s.0.y as usize))
            .unwrap_or_else(|| fsm.issued() / dims.width.max(1));
        let needed_oldest = inflight_line.saturating_sub(radius);
        let can_accept =
            txu_line < iim_cap || txu_line - iim_cap < needed_oldest;
        let pu_active = (exec_slot.is_some() && oim_pushed - oim_popped < oim_cap)
            || (exec_slot.is_none() && fetch_slot.is_some())
            || (exec_slot.is_none()
                && fetch_slot.is_none()
                && scan_slot.is_some_and(|(p, _, _)| window_ready(p.y, txu_line)))
            || (scan_slot.is_none() && fsm.len() > 0);

        // --- Event query: the earliest cycle on which any subsystem
        // acts. While the Process Unit is active (or the stage trace is
        // still recording) that is always `cycles + 1`, so the query only
        // runs on idle cycles.
        if !pu_active && stats.trace.len() >= trace_limit {
            let drain_event = (oim_pushed > oim_popped)
                .then(|| cycles + drain_per.saturating_sub(drain_timer).max(1));
            let fill_event = (filling && can_accept).then_some(cycles + 1);
            let target = match [drain_event, fill_event].into_iter().flatten().min() {
                // No subsystem will ever act again: the stepped loop
                // would stall in place until its cycle bound trips.
                None => return Err(hazard),
                Some(t) if t > bound => return Err(hazard),
                Some(t) => t,
            };
            let skipped = target - cycles - 1;
            if skipped > 0 {
                // Replay the stall accounting of the skipped idle cycles:
                // a blocked stage 4 stalls on the OIM every cycle;
                // otherwise a stuck window fetch stalls on the IIM every
                // cycle.
                cycles += skipped;
                drain_timer += skipped;
                if exec_slot.is_some() {
                    stats.oim_stalls += skipped;
                } else if scan_slot.is_some() && fetch_slot.is_none() {
                    stats.iim_stalls += skipped;
                } else {
                    // Every slot empty and the sweep exhausted: the
                    // skipped cycles are pure drain-tail idle.
                    stats.idle_cycles += skipped;
                }
            }
        }

        // --- One cycle, in the stepped loop's stage order.
        cycles += 1;
        if cycles > bound {
            return Err(hazard);
        }

        // Idle classification (same cycle-start predicate as the stepped
        // loop): nothing in flight and nothing left to issue.
        if exec_slot.is_none() && fetch_slot.is_none() && scan_slot.is_none() && fsm.len() == 0 {
            stats.idle_cycles += 1;
        }

        // OIM → ZBT drain: pops arrive in index order, so the popped
        // counter is both the FIFO head and the pixel index. The ZBT
        // writes themselves land in one bulk pass after the loop — the
        // interleaving is unobservable and the accounting identical.
        drain_timer += 1;
        if drain_timer >= drain_per && oim_pushed > oim_popped {
            oim_popped += 1;
            drain_timer = 0;
        }

        // Transmission unit: one pixel per cycle into the current line.
        if filling && can_accept {
            txu_x += 1;
            if txu_x == dims.width {
                txu_line += 1;
                txu_x = 0;
            }
        }

        // Stage 4: store into OIM.
        let mut advance = true;
        if let Some(idx) = exec_slot {
            if oim_pushed - oim_popped < oim_cap {
                debug_assert_eq!(idx, oim_pushed, "sweep pushes in index order");
                oim_pushed += 1;
                oim_max = oim_max.max(oim_pushed - oim_popped);
                exec_slot = None;
            } else {
                stats.oim_stalls += 1;
                advance = false;
            }
        }
        // Stage 3: execute — the result pixel is precomputed.
        if advance {
            if let (Some((_, idx)), None) = (fetch_slot, &exec_slot) {
                exec_slot = Some(idx);
                fetch_slot = None;
            }
        }
        // Stage 2: window fetch from the IIM.
        if advance {
            if let (Some((point, fetch, idx)), None) = (scan_slot, &fetch_slot) {
                if window_ready(point.y, txu_line) {
                    match fetch {
                        FetchKind::Load => stats.matrix_loads += 1,
                        FetchKind::Shift if matrix_valid => stats.matrix_shifts += 1,
                        FetchKind::Shift => stats.matrix_loads += 1,
                    }
                    matrix_valid = true;
                    fetch_slot = Some((point, idx));
                    scan_slot = None;
                } else {
                    stats.iim_stalls += 1;
                }
            }
        }
        // Stage 1: scan — issue the next pixel position.
        if scan_slot.is_none() {
            if let Some((point, bundle)) = fsm.next() {
                scan_slot = Some((point, bundle.fetch, bundle.pixel_index));
            }
        }

        if stats.trace.len() < trace_limit {
            stats.trace.push(StageSnapshot {
                slots: [
                    scan_slot.as_ref().map(|s| s.2),
                    fetch_slot.as_ref().map(|s| s.1),
                    exec_slot,
                    None,
                ],
            });
        }
    }

    zbt.write_result_run(0, total, out_pixels)?;
    stats.cycles = cycles;
    stats.pixels = total as u64;
    stats.oim_max_occupancy = oim_max;
    Ok(stats)
}

/// Fast-forward equivalent of
/// [`crate::process_unit::run_inter_detailed`].
///
/// # Errors
///
/// Exactly the errors of the cycle-stepped reference (ZBT addressing
/// failures; inter calls cannot deadlock).
pub fn run_inter_fast<O: InterOp>(
    zbt: &mut ZbtMemory,
    dims: Dims,
    op: &O,
    config: &EngineConfig,
    trace_limit: usize,
) -> EngineResult<ProcessingStats> {
    let total = dims.pixel_count();
    let drain_per = config.oim_drain_cycles_per_pixel;

    // Batched datapath: stage 2 reads each pixel pair exactly once, in
    // index order; the result is the stepped loop's own computation.
    let out_channels = op.output_channels();
    let out_pixels: Vec<_> = zbt
        .read_input_pair_run(0, total)?
        .into_iter()
        .map(|(a, b)| {
            let result = op.apply(a, b);
            let mut out = a;
            out.merge_channels(result, out_channels);
            out
        })
        .collect();

    // O(1) OIM mirror (see `run_intra_fast`): pixels enter in index
    // order, so the FIFO is the counter range `[popped, pushed)`.
    let oim_cap = config.oim_lines * dims.width;
    assert!(oim_cap > 0, "OIM capacity must be positive");
    let mut oim_pushed = 0usize;
    let mut oim_popped = 0usize;
    let mut oim_max = 0usize;

    let mut stats = ProcessingStats::default();
    let mut fetch_slot: Option<usize> = None;
    let mut exec_slot: Option<usize> = None;
    let mut next_pixel = 0usize;
    let mut drain_timer = 0u64;
    let mut cycles = 0u64;
    let bound = (total as u64 + 64) * (drain_per + 6);
    let hazard = EngineError::PipelineHazard {
        detail: "cycle-stepped inter simulation exceeded its cycle bound",
    };

    while oim_popped < total {
        let blocked = exec_slot.is_some() && oim_pushed - oim_popped == oim_cap;
        let pu_active = !blocked
            && (exec_slot.is_some() || fetch_slot.is_some() || next_pixel < total);

        // Event query only on idle cycles — an active Process Unit (or a
        // still-recording stage trace) pins the next event to `cycles + 1`.
        if !pu_active && stats.trace.len() >= trace_limit {
            let drain_event = (oim_pushed > oim_popped)
                .then(|| cycles + drain_per.saturating_sub(drain_timer).max(1));
            let target = match drain_event {
                None => return Err(hazard),
                Some(t) if t > bound => return Err(hazard),
                Some(t) => t,
            };
            let skipped = target - cycles - 1;
            if skipped > 0 {
                cycles += skipped;
                drain_timer += skipped;
                if blocked {
                    stats.oim_stalls += skipped;
                } else {
                    // Sweep exhausted, slots empty: drain-tail idle.
                    stats.idle_cycles += skipped;
                }
            }
        }

        cycles += 1;
        if cycles > bound {
            return Err(hazard);
        }

        // Idle classification (same cycle-start predicate as the stepped
        // loop): the sweep is exhausted and both slots are empty.
        if exec_slot.is_none() && fetch_slot.is_none() && next_pixel >= total {
            stats.idle_cycles += 1;
        }

        // Drain bookkeeping only — the ZBT writes land in one bulk pass
        // after the loop, exactly as in `run_intra_fast`.
        drain_timer += 1;
        if drain_timer >= drain_per && oim_pushed > oim_popped {
            oim_popped += 1;
            drain_timer = 0;
        }

        let mut advance = true;
        if let Some(idx) = exec_slot {
            if oim_pushed - oim_popped < oim_cap {
                debug_assert_eq!(idx, oim_pushed, "sweep pushes in index order");
                oim_pushed += 1;
                oim_max = oim_max.max(oim_pushed - oim_popped);
                exec_slot = None;
            } else {
                stats.oim_stalls += 1;
                advance = false;
            }
        }
        if advance {
            if let (Some(idx), None) = (fetch_slot, &exec_slot) {
                exec_slot = Some(idx);
                fetch_slot = None;
            }
            if fetch_slot.is_none() && next_pixel < total {
                fetch_slot = Some(next_pixel);
                next_pixel += 1;
            }
        }

        if stats.trace.len() < trace_limit {
            stats.trace.push(StageSnapshot {
                slots: [
                    (next_pixel < total).then_some(next_pixel),
                    fetch_slot,
                    exec_slot,
                    None,
                ],
            });
        }
    }

    zbt.write_result_run(0, total, &out_pixels)?;
    stats.cycles = cycles;
    stats.pixels = total as u64;
    stats.oim_max_occupancy = oim_max;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process_unit::{run_inter_detailed, run_intra_detailed};
    use vip_core::ops::arith::AbsDiff;
    use vip_core::ops::filter::{BoxBlur, Identity, SobelGradient};
    use vip_core::pixel::Pixel;

    fn load_input(zbt: &mut ZbtMemory, region: ZbtRegion, frame: &Frame) {
        for (i, px) in frame.pixels().iter().enumerate() {
            zbt.write_input_pixel(region, i, *px).unwrap();
        }
    }

    fn read_result(zbt: &mut ZbtMemory, dims: Dims) -> Frame {
        let total = dims.pixel_count();
        let pixels: Vec<Pixel> =
            (0..total).map(|i| zbt.read_result_pixel(i, total).unwrap()).collect();
        Frame::from_pixels(dims, pixels).unwrap()
    }

    fn test_frame(dims: Dims) -> Frame {
        Frame::from_fn(dims, |p| {
            Pixel::from_luma(((p.x * 7 + p.y * 13) % 251) as u8).with_alpha((p.x + p.y) as u16)
        })
    }

    fn intra_both<O: IntraOp>(
        cfg: &EngineConfig,
        dims: Dims,
        op: &O,
        trace: usize,
    ) -> (EngineResult<ProcessingStats>, EngineResult<ProcessingStats>) {
        let frame = test_frame(dims);
        let mut zbt_a = ZbtMemory::new(cfg);
        load_input(&mut zbt_a, ZbtRegion::InputA, &frame);
        zbt_a.reset_stats();
        let stepped = run_intra_detailed(&mut zbt_a, dims, op, BorderPolicy::Clamp, cfg, trace);
        let mut zbt_b = ZbtMemory::new(cfg);
        load_input(&mut zbt_b, ZbtRegion::InputA, &frame);
        zbt_b.reset_stats();
        let fast = run_intra_fast(&mut zbt_b, dims, op, BorderPolicy::Clamp, cfg, trace);
        if stepped.is_ok() {
            assert_eq!(
                zbt_a.pixel_access_cycles(),
                zbt_b.pixel_access_cycles(),
                "ZBT traffic diverged"
            );
            assert_eq!(read_result(&mut zbt_a, dims), read_result(&mut zbt_b, dims));
        }
        (stepped, fast)
    }

    #[test]
    fn intra_fast_matches_stepped_stats_and_pixels() {
        let cfg = EngineConfig::prototype_detailed();
        for dims in [Dims::new(20, 12), Dims::new(8, 40), Dims::new(5, 5)] {
            let (stepped, fast) = intra_both(&cfg, dims, &BoxBlur::con8(), 24);
            assert_eq!(stepped.unwrap(), fast.unwrap(), "{dims:?}");
        }
        let (stepped, fast) = intra_both(&cfg, Dims::new(18, 10), &SobelGradient::new(), 0);
        assert_eq!(stepped.unwrap(), fast.unwrap());
        let (stepped, fast) = intra_both(&cfg, Dims::new(32, 16), &Identity::luma(), 0);
        assert_eq!(stepped.unwrap(), fast.unwrap());
    }

    #[test]
    fn intra_fast_reproduces_deadlock_verdicts() {
        // iim_lines = 2 cannot hold a radius-1 window's three lines: the
        // eviction gate deadlocks and both paths must say so.
        let mut cfg = EngineConfig::prototype_detailed();
        cfg.iim_lines = 2;
        let (stepped, fast) = intra_both(&cfg, Dims::new(10, 8), &BoxBlur::con8(), 0);
        assert!(matches!(stepped, Err(EngineError::PipelineHazard { .. })));
        assert!(matches!(fast, Err(EngineError::PipelineHazard { .. })));
    }

    #[test]
    fn intra_fast_handles_slow_drain() {
        let mut cfg = EngineConfig::prototype_detailed();
        cfg.oim_drain_cycles_per_pixel = 7;
        cfg.oim_lines = 2;
        let (stepped, fast) = intra_both(&cfg, Dims::new(16, 9), &BoxBlur::con8(), 0);
        assert_eq!(stepped.unwrap(), fast.unwrap());
    }

    #[test]
    fn inter_fast_matches_stepped() {
        for drain in [1u64, 2, 5] {
            let mut cfg = EngineConfig::prototype_detailed();
            cfg.oim_drain_cycles_per_pixel = drain;
            let dims = Dims::new(16, 8);
            let a = test_frame(dims);
            let b = Frame::from_fn(dims, |p| Pixel::from_luma((p.x * 3) as u8));
            let mut zbt_a = ZbtMemory::new(&cfg);
            load_input(&mut zbt_a, ZbtRegion::InputA, &a);
            load_input(&mut zbt_a, ZbtRegion::InputB, &b);
            zbt_a.reset_stats();
            let stepped =
                run_inter_detailed(&mut zbt_a, dims, &AbsDiff::luma(), &cfg, 16).unwrap();
            let mut zbt_b = ZbtMemory::new(&cfg);
            load_input(&mut zbt_b, ZbtRegion::InputA, &a);
            load_input(&mut zbt_b, ZbtRegion::InputB, &b);
            zbt_b.reset_stats();
            let fast = run_inter_fast(&mut zbt_b, dims, &AbsDiff::luma(), &cfg, 16).unwrap();
            assert_eq!(stepped, fast, "drain = {drain}");
            assert_eq!(zbt_a.pixel_access_cycles(), zbt_b.pixel_access_cycles());
            assert_eq!(read_result(&mut zbt_a, dims), read_result(&mut zbt_b, dims));
        }
    }
}
