//! The OIM — output intermediate memory.
//!
//! §3.1: the OIM *"has exactly the same structure as the IIM, but it is
//! needed because of different reasons. It is used as a buffer structure
//! because there are different speeds at the interface processor unit
//! output - ZBT memory, since the processing unit provides pixels in twice
//! the speed than can be written to the ZBT memory"* — the result banks
//! take the pixel's two words sequentially, so draining costs two cycles
//! per pixel while the Process Unit produces one pixel per cycle.
//!
//! # Examples
//!
//! ```
//! use vip_engine::oim::Oim;
//! use vip_core::pixel::Pixel;
//!
//! let mut oim = Oim::new(16, 8);
//! assert!(oim.push(3, Pixel::from_luma(1)));
//! assert_eq!(oim.occupancy(), 1);
//! let (idx, px) = oim.pop().unwrap();
//! assert_eq!((idx, px.y), (3, 1));
//! ```

use std::collections::VecDeque;

use vip_core::pixel::Pixel;

/// The output intermediate memory: a FIFO of `(pixel index, pixel)` pairs
/// with the IIM's 16-line geometry.
#[derive(Debug, Clone)]
pub struct Oim {
    capacity: usize,
    fifo: VecDeque<(usize, Pixel)>,
    pushes: u64,
    pops: u64,
    /// Pixel-cycles the producer stalled on a full FIFO.
    stall_cycles: u64,
    max_occupancy: usize,
}

impl Oim {
    /// Creates an OIM buffering up to `lines` lines of `width` pixels.
    ///
    /// # Panics
    ///
    /// Panics when the resulting capacity is zero.
    #[must_use]
    pub fn new(lines: usize, width: usize) -> Self {
        let capacity = lines * width;
        assert!(capacity > 0, "OIM capacity must be positive");
        Oim {
            capacity,
            fifo: VecDeque::with_capacity(capacity),
            pushes: 0,
            pops: 0,
            stall_cycles: 0,
            max_occupancy: 0,
        }
    }

    /// Pixel capacity.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// BRAM blocks occupied (two banks per line, same structure as the
    /// IIM).
    #[must_use]
    pub fn bram_blocks_for(lines: usize) -> usize {
        2 * lines
    }

    /// FULL signal.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.fifo.len() == self.capacity
    }

    /// EMPTY signal.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Buffered pixels.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.fifo.len()
    }

    /// Largest occupancy observed.
    #[must_use]
    pub const fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Enqueues a produced pixel; returns `false` (and records a stall)
    /// when the FIFO is full — the image-level controller then disables
    /// the pixel-level controller (§3.3).
    pub fn push(&mut self, index: usize, pixel: Pixel) -> bool {
        if self.is_full() {
            self.stall_cycles += 1;
            return false;
        }
        self.fifo.push_back((index, pixel));
        self.pushes += 1;
        self.max_occupancy = self.max_occupancy.max(self.fifo.len());
        true
    }

    /// Dequeues the oldest pixel for the ZBT drain.
    pub fn pop(&mut self) -> Option<(usize, Pixel)> {
        let out = self.fifo.pop_front();
        if out.is_some() {
            self.pops += 1;
        }
        out
    }

    /// Total successful pushes.
    #[must_use]
    pub const fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total pops.
    #[must_use]
    pub const fn pops(&self) -> u64 {
        self.pops
    }

    /// Producer stall cycles (full FIFO).
    #[must_use]
    pub const fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Next-activity cycle of the OIM→ZBT drain port, for the
    /// event-driven stepping loop: the first cycle strictly after `now`
    /// on which the drain countdown (`drain_timer` of
    /// `drain_cycles_per_pixel`) reaches zero with a pixel to pop, or
    /// `None` while the FIFO is empty — an empty OIM drains nothing no
    /// matter how far the countdown has run.
    #[must_use]
    pub fn next_event(&self, now: u64, drain_timer: u64, drain_cycles_per_pixel: u64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        Some(now + drain_cycles_per_pixel.saturating_sub(drain_timer).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut oim = Oim::new(1, 4);
        for i in 0..3 {
            assert!(oim.push(i, Pixel::from_luma(i as u8)));
        }
        assert_eq!(oim.pop().unwrap().0, 0);
        assert_eq!(oim.pop().unwrap().0, 1);
        assert_eq!(oim.pop().unwrap().0, 2);
        assert!(oim.pop().is_none());
    }

    #[test]
    fn full_rejects_and_counts_stall() {
        let mut oim = Oim::new(1, 2);
        assert!(oim.push(0, Pixel::BLACK));
        assert!(oim.push(1, Pixel::BLACK));
        assert!(oim.is_full());
        assert!(!oim.push(2, Pixel::BLACK));
        assert_eq!(oim.stall_cycles(), 1);
        assert_eq!(oim.pushes(), 2);
        // Draining frees space.
        oim.pop();
        assert!(oim.push(2, Pixel::BLACK));
    }

    #[test]
    fn occupancy_tracking() {
        let mut oim = Oim::new(2, 2);
        oim.push(0, Pixel::BLACK);
        oim.push(1, Pixel::BLACK);
        oim.push(2, Pixel::BLACK);
        assert_eq!(oim.occupancy(), 3);
        oim.pop();
        oim.pop();
        assert_eq!(oim.occupancy(), 1);
        assert_eq!(oim.max_occupancy(), 3);
        assert_eq!(oim.pops(), 2);
        assert!(!oim.is_empty());
        assert_eq!(oim.capacity(), 4);
    }

    #[test]
    fn bram_structure_matches_iim() {
        assert_eq!(Oim::bram_blocks_for(16), 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = Oim::new(0, 4);
    }
}
