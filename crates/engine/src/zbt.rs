//! The on-board ZBT SRAM model: six independent banks with one 32-bit
//! read/write port each, organised as in fig. 3 of the paper.
//!
//! Input images pair two banks so that the lo and hi words of a 64-bit
//! pixel live *"in the same position of two different ZBT banks. In that
//! way it is possible to access any pixel within only one memory cycle"*
//! (§3.1). The result image instead stores both words *sequentially in the
//! same memory bank* so the PC receives properly ordered data — which is
//! why a result-pixel write costs two word cycles and the OIM has to
//! buffer (§3.1).
//!
//! # Examples
//!
//! ```
//! use vip_engine::config::EngineConfig;
//! use vip_engine::zbt::{ZbtMemory, ZbtRegion};
//! use vip_core::pixel::Pixel;
//!
//! let mut zbt = ZbtMemory::new(&EngineConfig::prototype());
//! let px = Pixel::new(1, 2, 3, 4, 5);
//! zbt.write_input_pixel(ZbtRegion::InputA, 100, px)?;
//! assert_eq!(zbt.read_input_pixel(ZbtRegion::InputA, 100)?, px);
//! # Ok::<(), vip_engine::error::EngineError>(())
//! ```

use core::fmt;

use vip_core::geometry::Dims;
use vip_core::pixel::Pixel;

use crate::clock::Cycles;
use crate::config::EngineConfig;
use crate::error::{EngineError, EngineResult};

/// The three image regions of the fig. 3 memory distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ZbtRegion {
    /// First input image (banks 0 + 1, lo/hi paired).
    InputA,
    /// Second input image (banks 2 + 3, lo/hi paired).
    InputB,
    /// Result image (banks 4 and 5: Res_block_A then Res_block_B,
    /// sequential lo/hi words within the bank).
    Result,
}

impl ZbtRegion {
    /// All regions.
    pub const ALL: [ZbtRegion; 3] = [ZbtRegion::InputA, ZbtRegion::InputB, ZbtRegion::Result];
}

impl fmt::Display for ZbtRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZbtRegion::InputA => f.write_str("input_A"),
            ZbtRegion::InputB => f.write_str("input_B"),
            ZbtRegion::Result => f.write_str("result"),
        }
    }
}

/// Per-bank access statistics (32-bit word operations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BankStats {
    /// Word reads issued to the bank.
    pub word_reads: u64,
    /// Word writes issued to the bank.
    pub word_writes: u64,
}

impl BankStats {
    /// Total word operations.
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.word_reads + self.word_writes
    }
}

/// The six-bank ZBT memory with fig. 3 layout and access accounting.
#[derive(Debug, Clone)]
pub struct ZbtMemory {
    banks: Vec<Vec<u32>>,
    stats: Vec<BankStats>,
    /// Pixel-granularity access cycles (the Table 2 "hardware accesses"):
    /// one per input-pixel read cycle, one per result-pixel write.
    pixel_access_cycles: u64,
}

impl ZbtMemory {
    /// Allocates the banks described by `config`.
    #[must_use]
    pub fn new(config: &EngineConfig) -> Self {
        ZbtMemory {
            banks: vec![vec![0u32; config.zbt_bank_words]; config.zbt_banks],
            stats: vec![BankStats::default(); config.zbt_banks],
            pixel_access_cycles: 0,
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Words per bank.
    #[must_use]
    pub fn bank_words(&self) -> usize {
        self.banks.first().map_or(0, Vec::len)
    }

    /// Whether a frame of `dims` fits each region (pixel-paired regions
    /// need one word per pixel per bank; the result region needs two).
    #[must_use]
    pub fn fits(&self, dims: Dims) -> bool {
        let px = dims.pixel_count();
        // Paired input regions: px words per bank. Result region: 2·px
        // words split across its two banks (Res_block_A/B halves) — px
        // words per bank as well, plus one word of slack for odd sizes.
        px < self.bank_words()
    }

    fn region_banks(&self, region: ZbtRegion) -> (usize, usize) {
        match region {
            ZbtRegion::InputA => (0, 1),
            ZbtRegion::InputB => (2, 3),
            ZbtRegion::Result => (4, 5),
        }
    }

    fn check(&self, bank: usize, addr: usize) -> EngineResult<()> {
        if bank >= self.banks.len() || addr >= self.banks[bank].len() {
            return Err(EngineError::ZbtOutOfRange {
                bank,
                addr,
                bank_words: self.bank_words(),
            });
        }
        Ok(())
    }

    /// Writes one 32-bit word (DMA inbound path).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] for invalid addresses.
    pub fn write_word(&mut self, bank: usize, addr: usize, word: u32) -> EngineResult<()> {
        self.check(bank, addr)?;
        self.banks[bank][addr] = word;
        self.stats[bank].word_writes += 1;
        Ok(())
    }

    /// Reads one 32-bit word (DMA outbound path).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] for invalid addresses.
    pub fn read_word(&mut self, bank: usize, addr: usize) -> EngineResult<u32> {
        self.check(bank, addr)?;
        self.stats[bank].word_reads += 1;
        Ok(self.banks[bank][addr])
    }

    /// Writes an input pixel at linear index `index`: lo and hi words go
    /// to the same address of the region's paired banks — one memory
    /// cycle.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] when the index exceeds the
    /// bank, and rejects [`ZbtRegion::Result`] which is not pixel-paired.
    pub fn write_input_pixel(
        &mut self,
        region: ZbtRegion,
        index: usize,
        pixel: Pixel,
    ) -> EngineResult<Cycles> {
        if region == ZbtRegion::Result {
            return Err(EngineError::PipelineHazard {
                detail: "result region is written via write_result_pixel",
            });
        }
        let (lo_bank, hi_bank) = self.region_banks(region);
        let (lo, hi) = pixel.to_words();
        self.write_word(lo_bank, index, lo)?;
        self.write_word(hi_bank, index, hi)?;
        Ok(Cycles(1)) // both banks in parallel
    }

    /// Reads an input pixel in one memory cycle (both banks in parallel).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] for invalid indices and
    /// rejects the result region.
    pub fn read_input_pixel(&mut self, region: ZbtRegion, index: usize) -> EngineResult<Pixel> {
        if region == ZbtRegion::Result {
            return Err(EngineError::PipelineHazard {
                detail: "result region is read via read_result_pixel",
            });
        }
        let (lo_bank, hi_bank) = self.region_banks(region);
        let lo = self.read_word(lo_bank, index)?;
        let hi = self.read_word(hi_bank, index)?;
        self.pixel_access_cycles += 1;
        Ok(Pixel::from_words(lo, hi))
    }

    /// Reads the input pixels of both input regions at the same index in
    /// a *single* memory cycle — the parallel-bank trick that keeps inter
    /// addressing at one read cycle per pixel.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] for invalid indices.
    pub fn read_input_pair(&mut self, index: usize) -> EngineResult<(Pixel, Pixel)> {
        let a = {
            let lo = self.read_word(0, index)?;
            let hi = self.read_word(1, index)?;
            Pixel::from_words(lo, hi)
        };
        let b = {
            let lo = self.read_word(2, index)?;
            let hi = self.read_word(3, index)?;
            Pixel::from_words(lo, hi)
        };
        self.pixel_access_cycles += 1; // all four banks fire together
        Ok((a, b))
    }

    /// Writes a result pixel: lo and hi words land *sequentially* in the
    /// same result bank (Res_block_A for the first half of the image,
    /// Res_block_B for the second — the single bank switch of §3.1).
    /// Costs two word cycles; counted as one pixel access.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] when the pixel does not fit
    /// the result bank.
    pub fn write_result_pixel(
        &mut self,
        index: usize,
        total_pixels: usize,
        pixel: Pixel,
    ) -> EngineResult<Cycles> {
        let (bank_a, bank_b) = self.region_banks(ZbtRegion::Result);
        let half = total_pixels.div_ceil(2);
        let (bank, local) = if index < half {
            (bank_a, index)
        } else {
            (bank_b, index - half)
        };
        let (lo, hi) = pixel.to_words();
        self.write_word(bank, 2 * local, lo)?;
        self.write_word(bank, 2 * local + 1, hi)?;
        self.pixel_access_cycles += 1;
        Ok(Cycles(2)) // sequential words in one bank
    }

    /// Reads a result pixel back (outbound DMA / verification path).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] for invalid indices.
    pub fn read_result_pixel(&mut self, index: usize, total_pixels: usize) -> EngineResult<Pixel> {
        let (bank_a, bank_b) = self.region_banks(ZbtRegion::Result);
        let half = total_pixels.div_ceil(2);
        let (bank, local) = if index < half {
            (bank_a, index)
        } else {
            (bank_b, index - half)
        };
        let lo = self.read_word(bank, 2 * local)?;
        let hi = self.read_word(bank, 2 * local + 1)?;
        Ok(Pixel::from_words(lo, hi))
    }

    /// Writes a run of input pixels starting at linear index `start` —
    /// the bulk DMA-inbound path. Data movement and accounting are
    /// identical to `pixels.len()` calls of
    /// [`ZbtMemory::write_input_pixel`], with one bounds check per bank
    /// instead of one per word.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] when the run exceeds the
    /// bank, and rejects [`ZbtRegion::Result`] which is not pixel-paired.
    pub fn write_input_run(
        &mut self,
        region: ZbtRegion,
        start: usize,
        pixels: &[Pixel],
    ) -> EngineResult<Cycles> {
        if region == ZbtRegion::Result {
            return Err(EngineError::PipelineHazard {
                detail: "result region is written via write_result_pixel",
            });
        }
        let n = pixels.len();
        if n == 0 {
            return Ok(Cycles(0));
        }
        let (lo_bank, hi_bank) = self.region_banks(region);
        self.check(lo_bank, start + n - 1)?;
        self.check(hi_bank, start + n - 1)?;
        for (dst, px) in self.banks[lo_bank][start..start + n].iter_mut().zip(pixels) {
            *dst = px.to_words().0;
        }
        for (dst, px) in self.banks[hi_bank][start..start + n].iter_mut().zip(pixels) {
            *dst = px.to_words().1;
        }
        self.stats[lo_bank].word_writes += n as u64;
        self.stats[hi_bank].word_writes += n as u64;
        Ok(Cycles(n as u64)) // both banks in parallel, one cycle per pixel
    }

    /// Reads a run of `count` input pixels starting at `start` — the bulk
    /// form of [`ZbtMemory::read_input_pixel`] with identical accounting.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] when the run exceeds the
    /// bank, and rejects the result region.
    pub fn read_input_run(
        &mut self,
        region: ZbtRegion,
        start: usize,
        count: usize,
    ) -> EngineResult<Vec<Pixel>> {
        if region == ZbtRegion::Result {
            return Err(EngineError::PipelineHazard {
                detail: "result region is read via read_result_pixel",
            });
        }
        if count == 0 {
            return Ok(Vec::new());
        }
        let (lo_bank, hi_bank) = self.region_banks(region);
        self.check(lo_bank, start + count - 1)?;
        self.check(hi_bank, start + count - 1)?;
        let out = self.banks[lo_bank][start..start + count]
            .iter()
            .zip(&self.banks[hi_bank][start..start + count])
            .map(|(&lo, &hi)| Pixel::from_words(lo, hi))
            .collect();
        self.stats[lo_bank].word_reads += count as u64;
        self.stats[hi_bank].word_reads += count as u64;
        self.pixel_access_cycles += count as u64;
        Ok(out)
    }

    /// Reads a run of `count` pixel pairs from both input regions — the
    /// bulk form of [`ZbtMemory::read_input_pair`] with identical
    /// accounting (all four banks fire together, one cycle per pair).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] when the run exceeds a bank.
    pub fn read_input_pair_run(
        &mut self,
        start: usize,
        count: usize,
    ) -> EngineResult<Vec<(Pixel, Pixel)>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        for bank in 0..4 {
            self.check(bank, start + count - 1)?;
        }
        let range = start..start + count;
        let out = self.banks[0][range.clone()]
            .iter()
            .zip(&self.banks[1][range.clone()])
            .zip(self.banks[2][range.clone()].iter().zip(&self.banks[3][range]))
            .map(|((&a_lo, &a_hi), (&b_lo, &b_hi))| {
                (Pixel::from_words(a_lo, a_hi), Pixel::from_words(b_lo, b_hi))
            })
            .collect();
        for bank in 0..4 {
            self.stats[bank].word_reads += count as u64;
        }
        self.pixel_access_cycles += count as u64;
        Ok(out)
    }

    /// Writes a run of result pixels starting at `start` — the bulk form
    /// of [`ZbtMemory::write_result_pixel`] with identical data layout
    /// (Res_block_A/B split at the image midpoint) and accounting.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] when a run segment exceeds
    /// its result bank.
    pub fn write_result_run(
        &mut self,
        start: usize,
        total_pixels: usize,
        pixels: &[Pixel],
    ) -> EngineResult<Cycles> {
        let n = pixels.len();
        if n == 0 {
            return Ok(Cycles(0));
        }
        let (bank_a, bank_b) = self.region_banks(ZbtRegion::Result);
        let half = total_pixels.div_ceil(2);
        let first_len = n.min(half.saturating_sub(start));
        let second_local = (start + first_len).saturating_sub(half);
        let segments = [
            (bank_a, start, &pixels[..first_len]),
            (bank_b, second_local, &pixels[first_len..]),
        ];
        for (bank, local, seg) in segments {
            if seg.is_empty() {
                continue;
            }
            self.check(bank, 2 * (local + seg.len() - 1) + 1)?;
            let dst = &mut self.banks[bank][2 * local..2 * (local + seg.len())];
            for (pair, px) in dst.chunks_exact_mut(2).zip(seg) {
                let (lo, hi) = px.to_words();
                pair[0] = lo;
                pair[1] = hi;
            }
            self.stats[bank].word_writes += 2 * seg.len() as u64;
        }
        self.pixel_access_cycles += n as u64;
        Ok(Cycles(2 * n as u64)) // sequential words within each bank
    }

    /// Reads back a run of `count` result pixels — the bulk form of
    /// [`ZbtMemory::read_result_pixel`] (outbound DMA path; word-level
    /// accounting only, like the per-pixel call).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZbtOutOfRange`] when a run segment exceeds
    /// its result bank.
    pub fn read_result_run(
        &mut self,
        start: usize,
        total_pixels: usize,
        count: usize,
    ) -> EngineResult<Vec<Pixel>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let (bank_a, bank_b) = self.region_banks(ZbtRegion::Result);
        let half = total_pixels.div_ceil(2);
        let first_len = count.min(half.saturating_sub(start));
        let second_local = (start + first_len).saturating_sub(half);
        let mut out = Vec::with_capacity(count);
        let segments = [
            (bank_a, start, first_len),
            (bank_b, second_local, count - first_len),
        ];
        for (bank, local, len) in segments {
            if len == 0 {
                continue;
            }
            self.check(bank, 2 * (local + len - 1) + 1)?;
            out.extend(
                self.banks[bank][2 * local..2 * (local + len)]
                    .chunks_exact(2)
                    .map(|pair| Pixel::from_words(pair[0], pair[1])),
            );
            self.stats[bank].word_reads += 2 * len as u64;
        }
        Ok(out)
    }

    /// Per-bank word statistics.
    #[must_use]
    pub fn stats(&self) -> &[BankStats] {
        &self.stats
    }

    /// Pixel-granularity access cycles (Table 2 "hardware accesses").
    #[must_use]
    pub const fn pixel_access_cycles(&self) -> u64 {
        self.pixel_access_cycles
    }

    /// Resets access statistics (not the stored data).
    pub fn reset_stats(&mut self) {
        self.stats.fill(BankStats::default());
        self.pixel_access_cycles = 0;
    }

    /// The fig. 3 memory map for a frame of `dims`, as region descriptors.
    #[must_use]
    pub fn memory_map(&self, dims: Dims, strip_lines: usize) -> MemoryMap {
        let px = dims.pixel_count();
        let strip_px = strip_lines * dims.width;
        MemoryMap {
            dims,
            regions: vec![
                MapRegion {
                    name: "input_A (block_A/block_B alternating strips)",
                    banks: (0, 1),
                    words_per_bank: px,
                    strip_words: strip_px,
                },
                MapRegion {
                    name: "input_B (block_A/block_B alternating strips)",
                    banks: (2, 3),
                    words_per_bank: px,
                    strip_words: strip_px,
                },
                MapRegion {
                    name: "Res_block_A (lo/hi sequential)",
                    banks: (4, 4),
                    words_per_bank: px.div_ceil(2) * 2,
                    strip_words: strip_px * 2,
                },
                MapRegion {
                    name: "Res_block_B (lo/hi sequential)",
                    banks: (5, 5),
                    words_per_bank: (px - px.div_ceil(2)) * 2,
                    strip_words: strip_px * 2,
                },
            ],
        }
    }
}

/// One region of the fig. 3 memory map.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))] // &'static str names: no Deserialize
pub struct MapRegion {
    /// Region label.
    pub name: &'static str,
    /// Bank range `(first, last)` used by the region.
    pub banks: (usize, usize),
    /// Words occupied per bank.
    pub words_per_bank: usize,
    /// Words of one transfer strip within the region.
    pub strip_words: usize,
}

/// The fig. 3 ZBT memory distribution for one frame size.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))] // &'static str names: no Deserialize
pub struct MemoryMap {
    /// Frame dimensions the map was computed for.
    pub dims: Dims,
    /// The regions in bank order.
    pub regions: Vec<MapRegion>,
}

impl fmt::Display for MemoryMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ZBT memory distribution for {} frames:", self.dims)?;
        for r in &self.regions {
            writeln!(
                f,
                "  banks {}..={}  {:<44} {:>8} words/bank ({} words/strip)",
                r.banks.0, r.banks.1, r.name, r.words_per_bank, r.strip_words
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::ImageFormat;

    fn zbt() -> ZbtMemory {
        ZbtMemory::new(&EngineConfig::prototype())
    }

    #[test]
    fn geometry() {
        let z = zbt();
        assert_eq!(z.bank_count(), 6);
        assert_eq!(z.bank_words(), 262_144);
        assert!(z.fits(ImageFormat::Cif.dims()));
        assert!(z.fits(ImageFormat::Qcif.dims()));
        assert!(!z.fits(Dims::new(1024, 1024)));
    }

    #[test]
    fn bulk_runs_match_per_pixel_calls() {
        // Every bulk helper must leave the exact memory contents, bank
        // statistics and pixel-access accounting of its per-pixel
        // equivalent — including the odd-sized result-bank split.
        let total = 51;
        let pixels: Vec<Pixel> = (0..total)
            .map(|i| Pixel::new(i as u8, 2, 3, i as u16, 900 + i as u16))
            .collect();
        let other: Vec<Pixel> = (0..total).map(|i| Pixel::from_luma(200 - i as u8)).collect();

        let mut a = zbt();
        for (i, px) in pixels.iter().enumerate() {
            a.write_input_pixel(ZbtRegion::InputA, i, *px).unwrap();
            a.write_input_pixel(ZbtRegion::InputB, i, other[i]).unwrap();
        }
        let mut b = zbt();
        b.write_input_run(ZbtRegion::InputA, 0, &pixels).unwrap();
        b.write_input_run(ZbtRegion::InputB, 0, &other).unwrap();
        assert_eq!(a.stats(), b.stats());

        let singles: Vec<Pixel> =
            (0..total).map(|i| a.read_input_pixel(ZbtRegion::InputA, i).unwrap()).collect();
        assert_eq!(b.read_input_run(ZbtRegion::InputA, 0, total).unwrap(), singles);
        let pairs: Vec<(Pixel, Pixel)> =
            (0..total).map(|i| a.read_input_pair(i).unwrap()).collect();
        assert_eq!(b.read_input_pair_run(0, total).unwrap(), pairs);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.pixel_access_cycles(), b.pixel_access_cycles());

        for (i, px) in pixels.iter().enumerate() {
            a.write_result_pixel(i, total, *px).unwrap();
        }
        b.write_result_run(0, total, &pixels).unwrap();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.pixel_access_cycles(), b.pixel_access_cycles());
        let singles: Vec<Pixel> =
            (0..total).map(|i| a.read_result_pixel(i, total).unwrap()).collect();
        assert_eq!(singles, pixels, "result contents round-trip");
        assert_eq!(b.read_result_run(0, total, total).unwrap(), pixels);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn bulk_runs_reject_out_of_range_and_result_region() {
        let mut z = zbt();
        let px = vec![Pixel::BLACK; 4];
        assert!(z.write_input_run(ZbtRegion::Result, 0, &px).is_err());
        assert!(z.read_input_run(ZbtRegion::Result, 0, 4).is_err());
        let far = z.bank_words() - 2;
        assert!(z.write_input_run(ZbtRegion::InputA, far, &px).is_err());
        assert!(z.read_input_run(ZbtRegion::InputA, far, 4).is_err());
        assert!(z.read_input_pair_run(far, 4).is_err());
        assert!(z.write_result_run(far, 2 * z.bank_words(), &px).is_err());
        assert!(z.read_result_run(far, 2 * z.bank_words(), 4).is_err());
        // Empty runs are free no-ops.
        assert!(z.write_input_run(ZbtRegion::InputA, 0, &[]).is_ok());
        assert_eq!(z.read_input_run(ZbtRegion::InputA, 0, 0).unwrap(), vec![]);
        assert_eq!(z.pixel_access_cycles(), 0);
    }

    #[test]
    fn input_pixel_roundtrip_one_cycle() {
        let mut z = zbt();
        let px = Pixel::new(9, 8, 7, 600, 700);
        let c = z.write_input_pixel(ZbtRegion::InputA, 5, px).unwrap();
        assert_eq!(c, Cycles(1));
        assert_eq!(z.read_input_pixel(ZbtRegion::InputA, 5).unwrap(), px);
        // Banks 0 and 1 each saw one write and one read.
        assert_eq!(z.stats()[0].word_writes, 1);
        assert_eq!(z.stats()[1].word_reads, 1);
        assert_eq!(z.stats()[2].total(), 0);
    }

    #[test]
    fn input_regions_are_disjoint() {
        let mut z = zbt();
        let pa = Pixel::from_luma(1);
        let pb = Pixel::from_luma(2);
        z.write_input_pixel(ZbtRegion::InputA, 0, pa).unwrap();
        z.write_input_pixel(ZbtRegion::InputB, 0, pb).unwrap();
        assert_eq!(z.read_input_pixel(ZbtRegion::InputA, 0).unwrap(), pa);
        assert_eq!(z.read_input_pixel(ZbtRegion::InputB, 0).unwrap(), pb);
    }

    #[test]
    fn input_pair_single_cycle() {
        let mut z = zbt();
        z.write_input_pixel(ZbtRegion::InputA, 3, Pixel::from_luma(10)).unwrap();
        z.write_input_pixel(ZbtRegion::InputB, 3, Pixel::from_luma(20)).unwrap();
        z.reset_stats();
        let (a, b) = z.read_input_pair(3).unwrap();
        assert_eq!((a.y, b.y), (10, 20));
        assert_eq!(z.pixel_access_cycles(), 1, "pair read is one cycle");
    }

    #[test]
    fn result_pixel_sequential_two_cycles() {
        let mut z = zbt();
        let px = Pixel::new(1, 2, 3, 4, 5);
        let c = z.write_result_pixel(0, 100, px).unwrap();
        assert_eq!(c, Cycles(2));
        assert_eq!(z.read_result_pixel(0, 100).unwrap(), px);
        // Both words in bank 4, sequential addresses.
        assert_eq!(z.stats()[4].word_writes, 2);
        assert_eq!(z.stats()[5].word_writes, 0);
    }

    #[test]
    fn result_bank_switch_at_half() {
        let mut z = zbt();
        let total = 100;
        z.write_result_pixel(49, total, Pixel::from_luma(1)).unwrap();
        z.write_result_pixel(50, total, Pixel::from_luma(2)).unwrap();
        assert_eq!(z.stats()[4].word_writes, 2, "pixel 49 in Res_block_A");
        assert_eq!(z.stats()[5].word_writes, 2, "pixel 50 in Res_block_B");
        assert_eq!(z.read_result_pixel(49, total).unwrap().y, 1);
        assert_eq!(z.read_result_pixel(50, total).unwrap().y, 2);
    }

    #[test]
    fn whole_cif_result_roundtrip_fits() {
        let mut z = zbt();
        let total = ImageFormat::Cif.dims().pixel_count();
        // Spot-check first, middle boundary, and last pixels.
        for idx in [0, total / 2 - 1, total / 2, total - 1] {
            let px = Pixel::from_luma((idx % 251) as u8).with_aux(idx as u16);
            z.write_result_pixel(idx, total, px).unwrap();
            assert_eq!(z.read_result_pixel(idx, total).unwrap(), px, "at {idx}");
        }
    }

    #[test]
    fn out_of_range_errors() {
        let mut z = zbt();
        assert!(matches!(
            z.write_word(9, 0, 0),
            Err(EngineError::ZbtOutOfRange { .. })
        ));
        assert!(z.read_word(0, 262_144).is_err());
        assert!(z.write_input_pixel(ZbtRegion::InputA, usize::MAX, Pixel::BLACK).is_err());
    }

    #[test]
    fn result_region_guards() {
        let mut z = zbt();
        assert!(z.write_input_pixel(ZbtRegion::Result, 0, Pixel::BLACK).is_err());
        assert!(z.read_input_pixel(ZbtRegion::Result, 0).is_err());
    }

    #[test]
    fn pixel_access_cycles_match_table2_convention() {
        let mut z = zbt();
        let n = 10;
        for i in 0..n {
            z.write_input_pixel(ZbtRegion::InputA, i, Pixel::from_luma(i as u8)).unwrap();
        }
        z.reset_stats();
        // One intra pass: read each pixel once, write each result once.
        for i in 0..n {
            let p = z.read_input_pixel(ZbtRegion::InputA, i).unwrap();
            z.write_result_pixel(i, n, p).unwrap();
        }
        assert_eq!(z.pixel_access_cycles(), 2 * n as u64);
    }

    #[test]
    fn memory_map_cif() {
        let z = zbt();
        let map = z.memory_map(ImageFormat::Cif.dims(), 16);
        assert_eq!(map.regions.len(), 4);
        assert_eq!(map.regions[0].words_per_bank, 101_376);
        assert_eq!(map.regions[2].words_per_bank, 101_376); // half image × 2 words
        let text = map.to_string();
        assert!(text.contains("Res_block_A"));
        assert!(text.contains("input_B"));
    }

    #[test]
    fn reset_stats_clears() {
        let mut z = zbt();
        z.write_input_pixel(ZbtRegion::InputA, 0, Pixel::BLACK).unwrap();
        z.reset_stats();
        assert_eq!(z.stats()[0].total(), 0);
        assert_eq!(z.pixel_access_cycles(), 0);
    }

    #[test]
    fn region_display() {
        assert_eq!(ZbtRegion::InputA.to_string(), "input_A");
        assert_eq!(ZbtRegion::Result.to_string(), "result");
    }
}
