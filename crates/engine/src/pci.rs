//! The PCI bus and DMA transfer model.
//!
//! The PC↔board communication is *"interrupt oriented and realized through
//! DMA transfers"* over a 32-bit PCI bus at 66 MHz (§3, §3.1) — 264 MB/s
//! peak, which §4.1 identifies as *"the bottleneck of the system"*. Images
//! are not moved in one pass but in strips written to alternating ZBT
//! blocks, so processing can start before the transfer completes.
//!
//! # Examples
//!
//! ```
//! use vip_engine::config::EngineConfig;
//! use vip_engine::pci::PciBus;
//!
//! let mut pci = PciBus::new(&EngineConfig::prototype());
//! let cycles = pci.transfer_cycles(352 * 16 * 8); // one CIF strip
//! assert_eq!(cycles.count(), 352 * 16 * 2); // two words per pixel
//! ```

use core::fmt;

use crate::clock::{ClockDomain, Cycles};
use crate::config::EngineConfig;

/// Direction of a DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Direction {
    /// PC memory → ZBT.
    HostToBoard,
    /// ZBT → PC memory.
    BoardToHost,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::HostToBoard => f.write_str("host→board"),
            Direction::BoardToHost => f.write_str("board→host"),
        }
    }
}

/// One completed DMA transfer, for traces and utilisation accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transfer {
    /// Transfer direction.
    pub direction: Direction,
    /// Payload size in bytes.
    pub bytes: usize,
    /// PCI cycle at which the transfer started.
    pub start: Cycles,
    /// PCI cycles the transfer occupied the bus.
    pub cycles: Cycles,
}

impl Transfer {
    /// PCI cycle at which the transfer completed.
    #[must_use]
    pub fn end(&self) -> Cycles {
        self.start + self.cycles
    }
}

/// The PCI bus model: serialises DMA transfers and accumulates busy time.
#[derive(Debug, Clone)]
pub struct PciBus {
    clock: ClockDomain,
    bytes_per_cycle: usize,
    efficiency: f64,
    interrupt_overhead: u64,
    /// PCI cycle up to which the bus is busy.
    busy_until: Cycles,
    transfers: Vec<Transfer>,
}

impl PciBus {
    /// Creates the bus from an engine configuration.
    #[must_use]
    pub fn new(config: &EngineConfig) -> Self {
        PciBus {
            clock: config.pci_clock,
            bytes_per_cycle: config.pci_bytes_per_cycle,
            efficiency: config.pci_efficiency,
            interrupt_overhead: config.interrupt_overhead_cycles,
            busy_until: Cycles::ZERO,
            transfers: Vec::new(),
        }
    }

    /// The bus clock domain.
    #[must_use]
    pub const fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Pure payload cycles for `bytes` (no interrupt overhead).
    #[must_use]
    pub fn transfer_cycles(&self, bytes: usize) -> Cycles {
        let beats = bytes.div_ceil(self.bytes_per_cycle) as f64;
        Cycles((beats / self.efficiency).ceil() as u64)
    }

    /// Schedules a DMA transfer that may not start before `earliest`.
    /// Returns the completed [`Transfer`]; the bus serialises transfers in
    /// submission order.
    pub fn schedule(&mut self, direction: Direction, bytes: usize, earliest: Cycles) -> Transfer {
        let start = self.busy_until.max(earliest);
        let cycles = self.transfer_cycles(bytes);
        let t = Transfer {
            direction,
            bytes,
            start,
            cycles,
        };
        self.busy_until = t.end();
        self.transfers.push(t);
        t
    }

    /// Accounts the per-call interrupt/DMA-descriptor overhead and returns
    /// the cycle at which the bus becomes usable.
    pub fn interrupt(&mut self) -> Cycles {
        self.busy_until += Cycles(self.interrupt_overhead);
        self.busy_until
    }

    /// Cycle at which the last scheduled activity finishes.
    #[must_use]
    pub const fn busy_until(&self) -> Cycles {
        self.busy_until
    }

    /// Completed transfers in schedule order.
    #[must_use]
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    /// Total payload bytes moved.
    #[must_use]
    pub fn bytes_moved(&self) -> usize {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Total cycles the bus spent moving payload.
    #[must_use]
    pub fn payload_cycles(&self) -> Cycles {
        self.transfers.iter().map(|t| t.cycles).sum()
    }

    /// Bus utilisation: payload cycles over elapsed cycles (0 when idle).
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        if self.busy_until.count() == 0 {
            return 0.0;
        }
        self.payload_cycles().count() as f64 / self.busy_until.count() as f64
    }

    /// Clears the schedule and counters.
    pub fn reset(&mut self) {
        self.busy_until = Cycles::ZERO;
        self.transfers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::ImageFormat;

    fn bus() -> PciBus {
        PciBus::new(&EngineConfig::prototype())
    }

    #[test]
    fn cif_image_transfer_time() {
        let pci = bus();
        let cycles = pci.transfer_cycles(ImageFormat::Cif.bytes());
        // 811 008 B / 4 B per cycle = 202 752 cycles ≈ 3.07 ms at 66 MHz.
        assert_eq!(cycles.count(), 202_752);
        let t = pci.clock().duration_of(cycles);
        assert!((t.as_secs_f64() - 0.003072).abs() < 1e-5, "{t:?}");
    }

    #[test]
    fn schedule_serialises() {
        let mut pci = bus();
        let a = pci.schedule(Direction::HostToBoard, 400, Cycles::ZERO);
        let b = pci.schedule(Direction::HostToBoard, 400, Cycles::ZERO);
        assert_eq!(a.start, Cycles::ZERO);
        assert_eq!(a.cycles, Cycles(100));
        assert_eq!(b.start, Cycles(100), "second transfer waits for the first");
        assert_eq!(pci.busy_until(), Cycles(200));
    }

    #[test]
    fn schedule_honours_earliest() {
        let mut pci = bus();
        let t = pci.schedule(Direction::BoardToHost, 40, Cycles(500));
        assert_eq!(t.start, Cycles(500));
        assert_eq!(t.end(), Cycles(510));
    }

    #[test]
    fn efficiency_scales_cycles() {
        let mut cfg = EngineConfig::prototype();
        cfg.pci_efficiency = 0.5;
        let pci = PciBus::new(&cfg);
        assert_eq!(pci.transfer_cycles(400).count(), 200);
    }

    #[test]
    fn interrupt_overhead_advances_bus() {
        let mut pci = bus();
        let after = pci.interrupt();
        assert_eq!(after, Cycles(2_000));
        let t = pci.schedule(Direction::HostToBoard, 4, Cycles::ZERO);
        assert_eq!(t.start, Cycles(2_000));
    }

    #[test]
    fn accounting() {
        let mut pci = bus();
        pci.schedule(Direction::HostToBoard, 400, Cycles::ZERO);
        pci.schedule(Direction::BoardToHost, 200, Cycles(150));
        assert_eq!(pci.bytes_moved(), 600);
        assert_eq!(pci.payload_cycles(), Cycles(150));
        assert_eq!(pci.transfers().len(), 2);
        // 100 busy + gap 50 + 50 busy → utilisation 150/200.
        assert!((pci.utilisation() - 0.75).abs() < 1e-12);
        pci.reset();
        assert_eq!(pci.transfers().len(), 0);
        assert_eq!(pci.utilisation(), 0.0);
    }

    #[test]
    fn odd_byte_counts_round_up() {
        let pci = bus();
        assert_eq!(pci.transfer_cycles(1).count(), 1);
        assert_eq!(pci.transfer_cycles(5).count(), 2);
        assert_eq!(pci.transfer_cycles(0).count(), 0);
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::HostToBoard.to_string(), "host→board");
        assert_eq!(Direction::BoardToHost.to_string(), "board→host");
    }
}
