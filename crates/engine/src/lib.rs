//! # vip-engine — the AddressEngine coprocessor simulator
//!
//! Cycle-level Rust simulator of the **AddressEngine**, the FPGA
//! coprocessor of *"A Coprocessor for Accelerating Visual Information
//! Processing"* (Stechele et al., DATE 2005), faithful to the prototype's
//! architecture (fig. 2):
//!
//! * [`zbt`] — the six-bank on-board ZBT SRAM with the fig. 3 memory
//!   distribution (paired input banks, sequential result banks),
//! * [`pci`] — the 66 MHz × 32-bit PCI/DMA model (264 MB/s, the system
//!   bottleneck),
//! * [`iim`] / [`oim`] — the input/output intermediate memories
//!   (16 line blocks × 2 BRAM banks, single-cycle neighbourhood fetch),
//! * [`matrix`] — the matrix register with LOAD/SHIFT instructions,
//! * [`plc`] — the pixel-level controller (control FSM, arbiter,
//!   start-pipeline),
//! * [`process_unit`] — the cycle-stepped 4-stage datapath (fig. 6),
//! * [`fast`] — the event-driven fast-forward datapath (bit-identical
//!   statistics, a fraction of the simulated work),
//! * [`timing`] — the analytic image-level schedule (validated against
//!   the cycle-stepped path),
//! * [`resource`] — the calibrated Table 1 device-utilisation model,
//! * [`engine`] — the host-facing coprocessor facade.
//!
//! Every engine call produces pixels **bit-exact** with the software
//! AddressLib of [`vip_core`]; the detailed mode proves this through the
//! full ZBT → IIM → matrix → pipeline → OIM → ZBT path.
//!
//! ## Quick start
//!
//! ```
//! use vip_engine::{AddressEngine, EngineConfig};
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::ops::filter::SobelGradient;
//! use vip_core::pixel::Pixel;
//!
//! # fn main() -> Result<(), vip_engine::error::EngineError> {
//! let mut engine = AddressEngine::new(EngineConfig::prototype())?;
//! let frame = Frame::filled(Dims::new(352, 288), Pixel::from_luma(90));
//! let run = engine.run_intra(&frame, &SobelGradient::new())?;
//! // The PCI bus dominates the call, as §4.1 observes.
//! assert!(run.report.timeline.pci_utilisation() > 0.85);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod config;
pub mod dma;
pub mod engine;
pub mod error;
pub mod fast;
pub mod iim;
pub mod matrix;
pub mod oim;
pub mod pci;
pub mod plc;
pub mod process_unit;
pub mod reconfig;
pub mod report;
pub mod resource;
pub mod timing;
pub mod trace;
pub mod zbt;

pub use clock::{ClockDomain, Cycles};
pub use config::{EngineConfig, InterOverlap, SimulationFidelity, StepMode};
pub use engine::{AddressEngine, EngineRun, EngineSegmentRun};
pub use error::{EngineError, EngineResult};
pub use reconfig::{ReconfigConfig, ReconfigurableEngine};
pub use report::{EngineReport, EngineStats};
pub use resource::ResourceEstimate;
pub use timing::CallTimeline;
// Observability handles, re-exported so instrumented hosts need no
// direct vip-obs dependency.
pub use vip_obs::{Phase, Recorder, Recording, Registry, Session, Track, TraceRecord};
