//! Error types of the AddressEngine simulator.

use core::fmt;

use vip_core::error::CoreError;
use vip_core::geometry::Dims;

/// Errors raised by the AddressEngine simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// An AddressLib-level error surfaced through the engine.
    Core(CoreError),
    /// The frame does not fit the configured ZBT memory.
    FrameTooLarge {
        /// Offending frame size.
        dims: Dims,
        /// Bytes required for the call's frames.
        required_bytes: usize,
        /// Bytes available in the ZBT memory.
        available_bytes: usize,
    },
    /// A ZBT access addressed a word outside its bank.
    ZbtOutOfRange {
        /// Bank index.
        bank: usize,
        /// Word address within the bank.
        addr: usize,
        /// Words per bank.
        bank_words: usize,
    },
    /// A configuration value failed validation.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// The violated constraint.
        reason: &'static str,
    },
    /// The requested operation needs an engine capability that is not
    /// enabled (e.g. segment addressing on the v1 prototype, §5 outlook).
    UnsupportedCapability {
        /// The missing capability.
        capability: &'static str,
    },
    /// The pixel-level controller detected a structural hazard that the
    /// arbiter could not resolve (a simulator invariant violation).
    PipelineHazard {
        /// Description of the conflict.
        detail: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "address library error: {e}"),
            EngineError::FrameTooLarge {
                dims,
                required_bytes,
                available_bytes,
            } => write!(
                f,
                "frame {dims} needs {required_bytes} bytes but the ZBT holds {available_bytes}"
            ),
            EngineError::ZbtOutOfRange {
                bank,
                addr,
                bank_words,
            } => write!(
                f,
                "zbt access to bank {bank} word {addr} beyond bank size {bank_words}"
            ),
            EngineError::InvalidConfig { field, reason } => {
                write!(f, "invalid engine config `{field}`: {reason}")
            }
            EngineError::UnsupportedCapability { capability } => {
                write!(f, "engine capability not enabled: {capability}")
            }
            EngineError::PipelineHazard { detail } => {
                write!(f, "pipeline hazard: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

/// Convenience result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let cases: Vec<EngineError> = vec![
            EngineError::Core(CoreError::EmptyFrame),
            EngineError::FrameTooLarge {
                dims: Dims::new(10_000, 10_000),
                required_bytes: 1,
                available_bytes: 0,
            },
            EngineError::ZbtOutOfRange {
                bank: 1,
                addr: 2,
                bank_words: 3,
            },
            EngineError::InvalidConfig {
                field: "strip_lines",
                reason: "must be positive",
            },
            EngineError::UnsupportedCapability {
                capability: "segment addressing",
            },
            EngineError::PipelineHazard { detail: "double issue" },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn core_error_converts_and_sources() {
        let e: EngineError = CoreError::NoSeeds.into();
        assert!(matches!(e, EngineError::Core(_)));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(EngineError::PipelineHazard { detail: "x" }.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn ok<E: std::error::Error + Send + Sync + 'static>() {}
        ok::<EngineError>();
    }
}
