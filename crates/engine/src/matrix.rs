//! The matrix register: the neighbourhood storage filled by stage 2 of
//! the Process Unit.
//!
//! §3.5: *"In the matrix register is stored the whole neighbourhood that
//! will be input for the next stage. These instructions are divided into
//! two sets: LOAD instructions and SHIFT instructions depending on whether
//! they fill the whole matrix from scratch or whether they only add some
//! pixels shifting the pixels that were already in the matrix."*
//!
//! # Examples
//!
//! ```
//! use vip_engine::matrix::MatrixRegister;
//! use vip_core::neighborhood::Connectivity;
//! use vip_core::pixel::Pixel;
//!
//! let mut m = MatrixRegister::new(Connectivity::Con8);
//! let col = vec![Pixel::from_luma(1); 3];
//! m.load(vec![col.clone(), col.clone(), col]);
//! assert!(m.is_valid());
//! ```

use vip_core::geometry::Point;
use vip_core::neighborhood::Connectivity;
use vip_core::pixel::Pixel;

/// The matrix register: a `(2r+1) × (2r+1)` pixel window stored as
/// columns, supporting full LOADs and incremental SHIFTs.
#[derive(Debug, Clone)]
pub struct MatrixRegister {
    shape: Connectivity,
    side: usize,
    /// Columns left→right, each `side` pixels top→bottom.
    columns: Vec<Vec<Pixel>>,
    valid: bool,
    loads: u64,
    shifts: u64,
}

impl MatrixRegister {
    /// Creates an invalid (empty) register for `shape`.
    #[must_use]
    pub fn new(shape: Connectivity) -> Self {
        let side = 2 * shape.radius() + 1;
        MatrixRegister {
            shape,
            side,
            columns: Vec::new(),
            valid: false,
            loads: 0,
            shifts: 0,
        }
    }

    /// The window shape.
    #[must_use]
    pub const fn shape(&self) -> Connectivity {
        self.shape
    }

    /// Window side length.
    #[must_use]
    pub const fn side(&self) -> usize {
        self.side
    }

    /// Whether the register currently holds a complete window.
    #[must_use]
    pub const fn is_valid(&self) -> bool {
        self.valid
    }

    /// LOAD: fills the whole matrix from scratch with `columns`
    /// (left→right, each top→bottom).
    ///
    /// # Panics
    ///
    /// Panics when the column count or any column height differs from the
    /// window side.
    pub fn load(&mut self, columns: Vec<Vec<Pixel>>) {
        assert_eq!(columns.len(), self.side, "LOAD needs {} columns", self.side);
        for c in &columns {
            assert_eq!(c.len(), self.side, "column height must be {}", self.side);
        }
        self.columns = columns;
        self.valid = true;
        self.loads += 1;
    }

    /// LOAD without allocating: fills every cell from `fill(col, row)`,
    /// reusing the register's column buffers. Semantically identical to
    /// [`MatrixRegister::load`] — the allocation-free path the per-pixel
    /// simulation loop drives.
    pub fn load_with(&mut self, mut fill: impl FnMut(usize, usize) -> Pixel) {
        let side = self.side;
        if self.columns.len() != side || self.columns.iter().any(|c| c.len() != side) {
            self.columns = vec![vec![Pixel::default(); side]; side];
        }
        for (col, column) in self.columns.iter_mut().enumerate() {
            for (row, px) in column.iter_mut().enumerate() {
                *px = fill(col, row);
            }
        }
        self.valid = true;
        self.loads += 1;
    }

    /// SHIFT: advances the window one pixel in the scan direction by
    /// dropping the leftmost column and appending `new_column` on the
    /// right — the pixel-reuse path that makes the IIM worthwhile.
    ///
    /// # Panics
    ///
    /// Panics when the register is invalid or the column height is wrong.
    pub fn shift(&mut self, new_column: Vec<Pixel>) {
        assert!(self.valid, "SHIFT requires a previously LOADed matrix");
        assert_eq!(new_column.len(), self.side, "column height must be {}", self.side);
        self.columns.remove(0);
        self.columns.push(new_column);
        self.shifts += 1;
    }

    /// SHIFT without allocating: rotates the leftmost column buffer to
    /// the right edge and refills it from `fill(row)`. Semantically
    /// identical to [`MatrixRegister::shift`].
    ///
    /// # Panics
    ///
    /// Panics when the register is invalid.
    pub fn shift_with(&mut self, mut fill: impl FnMut(usize) -> Pixel) {
        assert!(self.valid, "SHIFT requires a previously LOADed matrix");
        self.columns.rotate_left(1);
        let column = self.columns.last_mut().expect("LOADed matrix has columns");
        for (row, px) in column.iter_mut().enumerate() {
            *px = fill(row);
        }
        self.shifts += 1;
    }

    /// Invalidates the register (line turn: the next pixel needs a LOAD).
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.columns.clear();
    }

    /// Reads the window as `(offset, pixel)` samples restricted to the
    /// register's shape.
    ///
    /// # Panics
    ///
    /// Panics when the register is invalid.
    #[must_use]
    pub fn samples(&self) -> Vec<(Point, Pixel)> {
        assert!(self.valid, "reading an invalid matrix register");
        let r = self.shape.radius() as i32;
        self.shape
            .offsets_iter()
            .map(|off| {
                let col = (off.x + r) as usize;
                let row = (off.y + r) as usize;
                (off, self.columns[col][row])
            })
            .collect()
    }

    /// The centre pixel.
    ///
    /// # Panics
    ///
    /// Panics when the register is invalid.
    #[must_use]
    pub fn centre(&self) -> Pixel {
        let r = self.shape.radius();
        assert!(self.valid, "reading an invalid matrix register");
        self.columns[r][r]
    }

    /// LOAD instructions executed.
    #[must_use]
    pub const fn loads(&self) -> u64 {
        self.loads
    }

    /// SHIFT instructions executed.
    #[must_use]
    pub const fn shifts(&self) -> u64 {
        self.shifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[u8]) -> Vec<Pixel> {
        vals.iter().map(|&v| Pixel::from_luma(v)).collect()
    }

    #[test]
    fn load_makes_valid() {
        let mut m = MatrixRegister::new(Connectivity::Con8);
        assert!(!m.is_valid());
        m.load(vec![col(&[1, 2, 3]), col(&[4, 5, 6]), col(&[7, 8, 9])]);
        assert!(m.is_valid());
        assert_eq!(m.centre().y, 5);
        assert_eq!(m.loads(), 1);
        assert_eq!(m.side(), 3);
    }

    #[test]
    fn samples_map_offsets_correctly() {
        let mut m = MatrixRegister::new(Connectivity::Con8);
        m.load(vec![col(&[1, 2, 3]), col(&[4, 5, 6]), col(&[7, 8, 9])]);
        let s = m.samples();
        let get = |dx: i32, dy: i32| {
            s.iter()
                .find(|(o, _)| *o == Point::new(dx, dy))
                .expect("offset present")
                .1
                 .y
        };
        assert_eq!(get(-1, -1), 1); // left column, top
        assert_eq!(get(-1, 1), 3);
        assert_eq!(get(1, -1), 7);
        assert_eq!(get(0, 0), 5);
    }

    #[test]
    fn shift_advances_window() {
        let mut m = MatrixRegister::new(Connectivity::Con8);
        m.load(vec![col(&[1, 2, 3]), col(&[4, 5, 6]), col(&[7, 8, 9])]);
        m.shift(col(&[10, 11, 12]));
        assert_eq!(m.centre().y, 8, "old right column is the new centre");
        let s = m.samples();
        let right_top = s
            .iter()
            .find(|(o, _)| *o == Point::new(1, -1))
            .unwrap()
            .1
             .y;
        assert_eq!(right_top, 10);
        assert_eq!(m.shifts(), 1);
    }

    #[test]
    fn shift_equals_reload() {
        // A LOAD at x+1 and a SHIFT from x must agree — the hardware's
        // pixel-reuse invariant.
        let c0 = col(&[1, 2, 3]);
        let c1 = col(&[4, 5, 6]);
        let c2 = col(&[7, 8, 9]);
        let c3 = col(&[10, 11, 12]);
        let mut shifted = MatrixRegister::new(Connectivity::Con8);
        shifted.load(vec![c0, c1.clone(), c2.clone()]);
        shifted.shift(c3.clone());
        let mut loaded = MatrixRegister::new(Connectivity::Con8);
        loaded.load(vec![c1, c2, c3]);
        assert_eq!(shifted.samples(), loaded.samples());
    }

    #[test]
    fn load_with_and_shift_with_match_the_allocating_api() {
        let cols: Vec<Vec<Pixel>> =
            vec![col(&[1, 2, 3]), col(&[4, 5, 6]), col(&[7, 8, 9])];
        let mut a = MatrixRegister::new(Connectivity::Con8);
        a.load(cols.clone());
        a.shift(col(&[10, 11, 12]));

        let mut b = MatrixRegister::new(Connectivity::Con8);
        b.load_with(|c, r| cols[c][r]);
        let next = col(&[10, 11, 12]);
        b.shift_with(|r| next[r]);

        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.loads(), b.loads());
        assert_eq!(a.shifts(), b.shifts());
        assert_eq!(a.centre(), b.centre());
    }

    #[test]
    fn invalidate_clears() {
        let mut m = MatrixRegister::new(Connectivity::Con8);
        m.load(vec![col(&[1, 2, 3]); 3]);
        m.invalidate();
        assert!(!m.is_valid());
    }

    #[test]
    fn con0_matrix_is_single_pixel() {
        let mut m = MatrixRegister::new(Connectivity::Con0);
        m.load(vec![col(&[42])]);
        assert_eq!(m.centre().y, 42);
        assert_eq!(m.samples().len(), 1);
    }

    #[test]
    fn con4_samples_restricted_to_cross() {
        let mut m = MatrixRegister::new(Connectivity::Con4);
        m.load(vec![col(&[1, 2, 3]), col(&[4, 5, 6]), col(&[7, 8, 9])]);
        let s = m.samples();
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|(o, _)| o.x == 0 || o.y == 0));
    }

    #[test]
    #[should_panic(expected = "LOAD needs")]
    fn bad_load_width_panics() {
        let mut m = MatrixRegister::new(Connectivity::Con8);
        m.load(vec![col(&[1, 2, 3]); 2]);
    }

    #[test]
    #[should_panic(expected = "SHIFT requires")]
    fn shift_invalid_panics() {
        let mut m = MatrixRegister::new(Connectivity::Con8);
        m.shift(col(&[1, 2, 3]));
    }
}
