//! Strip-level DMA scheduling: how whole frames move over the PCI bus.
//!
//! §3.1: *"The whole input image is not transferred in one pass but it is
//! divided into parts which are written to alternate ZBT blocks. Thus an
//! optimized usage of the PCI bus is obtained and it is possible to start
//! processing although the input image is not completely stored in the
//! memory."* Outbound, *"the bank switching is performed only once, as
//! soon as it is possible to start transferring the resulting image."*
//!
//! [`schedule_intra_call`] / [`schedule_inter_call`] produce the concrete
//! per-strip [`Transfer`] schedule on a [`PciBus`], tagging each strip
//! with its destination block — the executable form of the overlap story
//! the analytic [`crate::timing`] model computes in closed form.
//!
//! # Examples
//!
//! ```
//! use vip_core::geometry::Dims;
//! use vip_engine::dma::schedule_intra_call;
//! use vip_engine::EngineConfig;
//!
//! let schedule = schedule_intra_call(Dims::new(352, 288), &EngineConfig::prototype());
//! assert_eq!(schedule.input_strips.len(), 18);
//! assert!(schedule.output_start >= schedule.input_end);
//! ```

use vip_core::geometry::Dims;
use vip_core::scan::{strips, ScanOrder};
use vip_obs::{Recorder, Track};

use crate::clock::Cycles;
use crate::config::{EngineConfig, InterOverlap};
use crate::pci::{Direction, PciBus, Transfer};

/// Which double-buffer block a strip lands in (§3.1's block_A/block_B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StripBlock {
    /// The first alternating input block.
    BlockA,
    /// The second alternating input block.
    BlockB,
}

/// One scheduled strip transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StripTransfer {
    /// Strip index within its image.
    pub strip: usize,
    /// Which input image the strip belongs to (0 or 1).
    pub image: usize,
    /// Destination double-buffer block.
    pub block: StripBlock,
    /// The bus-level transfer record.
    pub transfer: Transfer,
}

/// The complete DMA schedule of one engine call.
#[derive(Debug, Clone)]
pub struct DmaSchedule {
    /// Inbound strip transfers in bus order.
    pub input_strips: Vec<StripTransfer>,
    /// PCI cycle at which the last input word lands.
    pub input_end: Cycles,
    /// Outbound transfers (Res_block_A then Res_block_B — one bank
    /// switch, §3.1).
    pub output_halves: [Transfer; 2],
    /// PCI cycle at which the outbound DMA starts.
    pub output_start: Cycles,
    /// PCI cycle at which everything is done.
    pub end: Cycles,
}

impl DmaSchedule {
    /// Bus utilisation over the whole call.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        if self.end.count() == 0 {
            return 0.0;
        }
        let payload: u64 = self
            .input_strips
            .iter()
            .map(|s| s.transfer.cycles.count())
            .sum::<u64>()
            + self.output_halves.iter().map(|t| t.cycles.count()).sum::<u64>();
        payload as f64 / self.end.count() as f64
    }

    /// Publishes the schedule onto the observability bus: one span per
    /// input strip and result half on the PCI track, plus the enclosing
    /// input/output phases on the DMA track. `t0_ns` is the call-issue
    /// time on the session's virtual clock, `pci_hz` the PCI clock used
    /// to convert bus cycles to nanoseconds.
    pub fn emit(&self, recorder: &Recorder, t0_ns: u64, pci_hz: f64) {
        if !recorder.is_enabled() {
            return;
        }
        let ns = |c: Cycles| t0_ns + (c.count() as f64 / pci_hz * 1e9).round() as u64;
        for s in &self.input_strips {
            recorder.span(
                Track::Pci,
                "strip_in",
                ns(s.transfer.start),
                ns(s.transfer.end()),
                &[
                    ("strip", (s.strip as u64).into()),
                    ("image", (s.image as u64).into()),
                    (
                        "block",
                        match s.block {
                            StripBlock::BlockA => "A",
                            StripBlock::BlockB => "B",
                        }
                        .into(),
                    ),
                    ("bytes", (s.transfer.bytes as u64).into()),
                ],
            );
        }
        if let Some(first) = self.input_strips.first() {
            recorder.span(
                Track::Dma,
                "input_dma",
                ns(first.transfer.start),
                ns(self.input_end),
                &[("strips", (self.input_strips.len() as u64).into())],
            );
        }
        for (half, t) in self.output_halves.iter().enumerate() {
            recorder.span(
                Track::Pci,
                "result_out",
                ns(t.start),
                ns(t.end()),
                &[
                    ("half", (half as u64).into()),
                    ("bytes", (t.bytes as u64).into()),
                ],
            );
        }
        recorder.span(
            Track::Dma,
            "output_dma",
            ns(self.output_halves[0].start),
            ns(self.output_halves[1].end()),
            &[],
        );
    }
}

fn block_of(i: usize) -> StripBlock {
    if i.is_multiple_of(2) {
        StripBlock::BlockA
    } else {
        StripBlock::BlockB
    }
}

/// Cycles (in the PCI domain) the engine needs before the outbound DMA of
/// a call may start, mirroring the gate of [`crate::timing`].
fn output_gate(dims: Dims, config: &EngineConfig, processing_start: Cycles) -> Cycles {
    let n = dims.pixel_count() as f64;
    let gate_px = (config.output_latency_fraction * n).ceil();
    let drain_s = gate_px * config.oim_drain_cycles_per_pixel as f64 / config.engine_clock.hz;
    processing_start + config.pci_clock.cycles_in(std::time::Duration::from_secs_f64(drain_s))
}

/// Schedules the DMA traffic of an intra call: the input image in
/// alternating strips, then the two result halves.
#[must_use]
pub fn schedule_intra_call(dims: Dims, config: &EngineConfig) -> DmaSchedule {
    let mut pci = PciBus::new(config);
    pci.interrupt();
    let mut input_strips = Vec::new();
    for s in strips(dims, ScanOrder::RowMajor, config.strip_lines) {
        let t = pci.schedule(Direction::HostToBoard, s.bytes(dims), Cycles::ZERO);
        input_strips.push(StripTransfer {
            strip: s.index,
            image: 0,
            block: block_of(s.index),
            transfer: t,
        });
    }
    let input_end = pci.busy_until();
    // Intra: processing trails the input closely; the drain gate is met
    // long before the bus frees, so output starts when the PCI is free.
    let gate = output_gate(dims, config, Cycles(input_strips[0].transfer.end().count()));
    let output_start = input_end.max(gate);
    finish(pci, dims, input_strips, input_end, output_start)
}

/// Schedules the DMA traffic of an inter call: both input images
/// (sequential or interleaved per [`InterOverlap`]), then the result.
#[must_use]
pub fn schedule_inter_call(dims: Dims, config: &EngineConfig) -> DmaSchedule {
    let mut pci = PciBus::new(config);
    pci.interrupt();
    let image_strips = strips(dims, ScanOrder::RowMajor, config.strip_lines);
    let mut input_strips = Vec::new();
    match config.inter_overlap {
        InterOverlap::Sequential => {
            for image in 0..2 {
                for s in &image_strips {
                    let t = pci.schedule(Direction::HostToBoard, s.bytes(dims), Cycles::ZERO);
                    input_strips.push(StripTransfer {
                        strip: s.index,
                        image,
                        block: block_of(s.index),
                        transfer: t,
                    });
                }
            }
        }
        InterOverlap::Interleaved => {
            for s in &image_strips {
                for image in 0..2 {
                    let t = pci.schedule(Direction::HostToBoard, s.bytes(dims), Cycles::ZERO);
                    input_strips.push(StripTransfer {
                        strip: s.index,
                        image,
                        block: block_of(s.index),
                        transfer: t,
                    });
                }
            }
        }
    }
    let input_end = pci.busy_until();
    // Sequential inter: processing starts only at input_end → the drain
    // gate delays the outbound DMA past the bus-free point (the §4.1
    // 12.5 % overhead). Interleaved: processing tracked the input.
    let processing_start = match config.inter_overlap {
        InterOverlap::Sequential => input_end,
        InterOverlap::Interleaved => Cycles(input_strips[1].transfer.end().count()),
    };
    let gate = output_gate(dims, config, processing_start);
    let output_start = input_end.max(gate);
    finish(pci, dims, input_strips, input_end, output_start)
}

fn finish(
    mut pci: PciBus,
    dims: Dims,
    input_strips: Vec<StripTransfer>,
    input_end: Cycles,
    output_start: Cycles,
) -> DmaSchedule {
    let half_bytes = dims.pixel_count().div_ceil(2) * 8;
    let rest_bytes = dims.pixel_count() * 8 - half_bytes;
    let a = pci.schedule(Direction::BoardToHost, half_bytes, output_start);
    let b = pci.schedule(Direction::BoardToHost, rest_bytes, Cycles::ZERO);
    let end = pci.interrupt();
    DmaSchedule {
        input_strips,
        input_end,
        output_halves: [a, b],
        output_start,
        end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::ImageFormat;

    const CIF: Dims = Dims::new(352, 288);

    fn cfg() -> EngineConfig {
        let mut c = EngineConfig::prototype();
        c.interrupt_overhead_cycles = 0;
        c
    }

    #[test]
    fn intra_schedule_has_all_strips_alternating() {
        let s = schedule_intra_call(CIF, &cfg());
        assert_eq!(s.input_strips.len(), 18);
        for (i, st) in s.input_strips.iter().enumerate() {
            assert_eq!(st.strip, i);
            assert_eq!(st.image, 0);
            let expect = if i.is_multiple_of(2) { StripBlock::BlockA } else { StripBlock::BlockB };
            assert_eq!(st.block, expect, "strip {i}");
        }
        // Strips are contiguous on the bus.
        for w in s.input_strips.windows(2) {
            assert_eq!(w[1].transfer.start, w[0].transfer.end());
        }
    }

    #[test]
    fn intra_schedule_matches_timing_model() {
        let c = cfg();
        let s = schedule_intra_call(CIF, &c);
        let t = crate::timing::intra_timeline(CIF, 1, &c);
        let end_s = s.end.count() as f64 / c.pci_clock.hz;
        assert!(
            (end_s - t.total).abs() / t.total < 0.02,
            "schedule {end_s} vs timeline {}",
            t.total
        );
        // Input payload: 18 strips × 45 056 B = one CIF image.
        let bytes: usize = s.input_strips.iter().map(|st| st.transfer.bytes).sum();
        assert_eq!(bytes, ImageFormat::Cif.bytes());
    }

    #[test]
    fn sequential_inter_gates_output_past_bus_free() {
        let c = cfg();
        let s = schedule_inter_call(CIF, &c);
        assert_eq!(s.input_strips.len(), 36);
        assert!(
            s.output_start > s.input_end,
            "the drain gate must delay the outbound DMA (the 12.5 % overhead)"
        );
        let t = crate::timing::inter_timeline(CIF, &c);
        let end_s = s.end.count() as f64 / c.pci_clock.hz;
        assert!((end_s - t.total).abs() / t.total < 0.02, "{end_s} vs {}", t.total);
    }

    #[test]
    fn interleaved_inter_starts_output_at_bus_free() {
        let mut c = cfg();
        c.inter_overlap = InterOverlap::Interleaved;
        let s = schedule_inter_call(CIF, &c);
        // Strip pairs alternate images: (0,img0), (0,img1), (1,img0)…
        assert_eq!(s.input_strips[0].image, 0);
        assert_eq!(s.input_strips[1].image, 1);
        assert_eq!(s.input_strips[2].strip, 1);
        assert_eq!(s.output_start, s.input_end, "no gate: processing tracked the input");
    }

    #[test]
    fn output_is_two_halves_with_one_switch() {
        let s = schedule_intra_call(CIF, &cfg());
        let [a, b] = s.output_halves;
        assert_eq!(b.start, a.end(), "Res_block_B follows immediately");
        assert_eq!(a.bytes + b.bytes, ImageFormat::Cif.bytes());
    }

    #[test]
    fn utilisation_high_for_intra_lower_for_sequential_inter() {
        let c = cfg();
        let intra = schedule_intra_call(CIF, &c).utilisation();
        let inter = schedule_inter_call(CIF, &c).utilisation();
        assert!(intra > 0.97, "intra util {intra}");
        assert!(inter > 0.85 && inter < intra, "inter util {inter}");
    }

    #[test]
    fn interrupt_overhead_shifts_schedule() {
        let mut c = cfg();
        c.interrupt_overhead_cycles = 5_000;
        let s = schedule_intra_call(CIF, &c);
        assert_eq!(s.input_strips[0].transfer.start, Cycles(5_000));
        assert!(s.end.count() > 5_000);
    }

    #[test]
    fn emitted_spans_cover_the_schedule() {
        let c = cfg();
        let s = schedule_intra_call(CIF, &c);
        let session = vip_obs::Session::new();
        s.emit(&session.recorder(), 0, c.pci_clock.hz);
        let recording = session.finish();
        // 18 strips + 2 result halves on PCI; input + output phase on DMA.
        assert_eq!(recording.on_track(Track::Pci).len(), 20);
        assert_eq!(recording.on_track(Track::Dma).len(), 2);
        let end_ns = (s.end.count() as f64 / c.pci_clock.hz * 1e9) as u64;
        assert!(recording.events.iter().all(|e| e.end_ns() <= end_ns + 1_000));
        // Disabled recorder records nothing (and must not panic).
        s.emit(&Recorder::disabled(), 0, c.pci_clock.hz);
    }

    #[test]
    fn qcif_schedule_scales() {
        let s = schedule_intra_call(ImageFormat::Qcif.dims(), &cfg());
        assert_eq!(s.input_strips.len(), 9); // 144 / 16
        let bytes: usize = s.input_strips.iter().map(|st| st.transfer.bytes).sum();
        assert_eq!(bytes, ImageFormat::Qcif.bytes());
    }
}
