//! The start-pipeline: overlapping execution of pixel bundles.
//!
//! §3.2: *"the startpipeline deals with the correct order of the execution
//! of the instructions allowing us also to have instructions of different
//! pixel-cycles in the different stages of the Process Unit being not
//! needed to wait till one pixel-cycle is finished to start with the next
//! one."*
//!
//! This is an in-order 4-slot shift register of in-flight [`PixelBundle`]s.
//! Each simulator cycle it advances every bundle one stage (unless the
//! pipeline is stalled) and reports stage occupancy for the fig. 5 trace.

use crate::plc::instructions::{PixelBundle, Stage};

/// Occupancy of the four stages in one cycle, for pipeline traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StageSnapshot {
    /// The pixel index occupying each stage (`None` = bubble).
    pub slots: [Option<usize>; 4],
}

impl StageSnapshot {
    /// Number of occupied stages.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// The 4-slot in-order start-pipeline.
#[derive(Debug, Clone, Default)]
pub struct StartPipeline {
    /// `slots[i]` = bundle currently in stage `i`.
    slots: [Option<PixelBundle>; 4],
    advanced: u64,
    stalled: u64,
    retired: u64,
}

impl StartPipeline {
    /// Creates an empty pipeline.
    #[must_use]
    pub fn new() -> Self {
        StartPipeline::default()
    }

    /// Whether the first stage can accept a new bundle this cycle.
    #[must_use]
    pub fn can_issue(&self) -> bool {
        self.slots[0].is_none()
    }

    /// Whether the pipeline holds no bundles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// The bundle currently in `stage`.
    #[must_use]
    pub fn at(&self, stage: Stage) -> Option<PixelBundle> {
        self.slots[stage.index()]
    }

    /// Issues a bundle into stage 1.
    ///
    /// # Panics
    ///
    /// Panics when stage 1 is occupied (callers must check
    /// [`StartPipeline::can_issue`]).
    pub fn issue(&mut self, bundle: PixelBundle) {
        assert!(self.can_issue(), "stage 1 occupied");
        self.slots[0] = Some(bundle);
    }

    /// Advances every bundle one stage, retiring the bundle leaving stage
    /// 4. Returns the retired bundle, if any.
    ///
    /// In-order semantics: the shift is atomic, so a bundle can enter a
    /// stage in the same cycle its predecessor leaves it — that is the
    /// overlap §3.2 describes.
    pub fn advance(&mut self) -> Option<PixelBundle> {
        let retired = self.slots[3].take();
        for i in (1..4).rev() {
            self.slots[i] = self.slots[i - 1].take();
        }
        self.advanced += 1;
        if retired.is_some() {
            self.retired += 1;
        }
        retired
    }

    /// Records a stalled cycle (no advance; e.g. IIM miss or OIM full —
    /// the image-level controller *"will disable the pixel level
    /// controller"*, §3.3).
    pub fn stall(&mut self) {
        self.stalled += 1;
    }

    /// Stage occupancy snapshot for traces.
    #[must_use]
    pub fn snapshot(&self) -> StageSnapshot {
        let mut s = StageSnapshot::default();
        for (i, slot) in self.slots.iter().enumerate() {
            s.slots[i] = slot.map(|b| b.pixel_index);
        }
        s
    }

    /// Cycles advanced.
    #[must_use]
    pub const fn advanced(&self) -> u64 {
        self.advanced
    }

    /// Cycles stalled.
    #[must_use]
    pub const fn stalled(&self) -> u64 {
        self.stalled
    }

    /// Bundles retired (pixels completed).
    #[must_use]
    pub const fn retired(&self) -> u64 {
        self.retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plc::instructions::FetchKind;

    fn bundle(i: usize) -> PixelBundle {
        PixelBundle::new(i, FetchKind::Shift)
    }

    #[test]
    fn fills_and_retires_in_order() {
        let mut p = StartPipeline::new();
        let mut retired = Vec::new();
        for i in 0..6 {
            if p.can_issue() {
                p.issue(bundle(i));
            }
            if let Some(b) = p.advance() {
                retired.push(b.pixel_index);
            }
        }
        // First retirement after the pipeline fills (4 stages).
        assert_eq!(retired, vec![0, 1, 2]);
        assert_eq!(p.retired(), 3);
    }

    #[test]
    fn overlap_all_stages_occupied() {
        let mut p = StartPipeline::new();
        for i in 0..4 {
            p.issue(bundle(i));
            if i < 3 {
                p.advance();
            }
        }
        let snap = p.snapshot();
        assert_eq!(snap.occupancy(), 4, "four pixel-cycles in flight: {snap:?}");
        // Stage 4 holds the oldest pixel.
        assert_eq!(p.at(Stage::Store).unwrap().pixel_index, 0);
        assert_eq!(p.at(Stage::Scan).unwrap().pixel_index, 3);
    }

    #[test]
    fn drain_empties_pipeline() {
        let mut p = StartPipeline::new();
        p.issue(bundle(0));
        for _ in 0..4 {
            p.advance();
        }
        assert!(p.is_empty());
        assert_eq!(p.retired(), 1);
    }

    #[test]
    fn stall_counts_without_moving() {
        let mut p = StartPipeline::new();
        p.issue(bundle(0));
        p.stall();
        assert_eq!(p.at(Stage::Scan).unwrap().pixel_index, 0, "no movement");
        assert_eq!(p.stalled(), 1);
        assert_eq!(p.advanced(), 0);
    }

    #[test]
    #[should_panic(expected = "stage 1 occupied")]
    fn double_issue_panics() {
        let mut p = StartPipeline::new();
        p.issue(bundle(0));
        p.issue(bundle(1));
    }

    #[test]
    fn issue_then_advance_same_cycle_order() {
        // Issue new bundle, then advance: new bundle moves to stage 2.
        let mut p = StartPipeline::new();
        p.issue(bundle(7));
        p.advance();
        assert_eq!(p.at(Stage::Fetch).unwrap().pixel_index, 7);
        assert!(p.can_issue());
    }
}
