//! The arbiter: per-cycle resource locking.
//!
//! §3.2: *"The arbiter makes sure that the instructions in the different
//! stages will not access to the same resources in the Process Unit."*

use crate::error::{EngineError, EngineResult};
use crate::plc::instructions::Resource;

/// Per-cycle resource arbiter.
#[derive(Debug, Clone, Default)]
pub struct Arbiter {
    locked: Vec<Resource>,
    grants: u64,
    conflicts: u64,
}

impl Arbiter {
    /// Creates an arbiter with all resources free.
    #[must_use]
    pub fn new() -> Self {
        Arbiter::default()
    }

    /// Attempts to lock `resource` for the current cycle. Returns `true`
    /// on success; `false` (and counts a conflict) when already locked.
    pub fn try_lock(&mut self, resource: Resource) -> bool {
        if self.locked.contains(&resource) {
            self.conflicts += 1;
            false
        } else {
            self.locked.push(resource);
            self.grants += 1;
            true
        }
    }

    /// Locks `resource`, treating a conflict as a simulator invariant
    /// violation.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::PipelineHazard`] when the resource is
    /// already locked this cycle — in the real design the start-pipeline
    /// guarantees this cannot happen.
    pub fn lock(&mut self, resource: Resource) -> EngineResult<()> {
        if self.try_lock(resource) {
            Ok(())
        } else {
            Err(EngineError::PipelineHazard {
                detail: "resource double-locked within one cycle",
            })
        }
    }

    /// Whether `resource` is locked this cycle.
    #[must_use]
    pub fn is_locked(&self, resource: Resource) -> bool {
        self.locked.contains(&resource)
    }

    /// Releases all locks — called at every cycle boundary.
    pub fn next_cycle(&mut self) {
        self.locked.clear();
    }

    /// Total granted locks.
    #[must_use]
    pub const fn grants(&self) -> u64 {
        self.grants
    }

    /// Total rejected lock attempts.
    #[must_use]
    pub const fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_conflict() {
        let mut a = Arbiter::new();
        assert!(a.try_lock(Resource::Alu));
        assert!(a.is_locked(Resource::Alu));
        assert!(!a.try_lock(Resource::Alu), "double lock rejected");
        assert!(a.try_lock(Resource::IimPort), "other resources free");
        assert_eq!(a.grants(), 2);
        assert_eq!(a.conflicts(), 1);
    }

    #[test]
    fn next_cycle_releases() {
        let mut a = Arbiter::new();
        a.try_lock(Resource::OimPort);
        a.next_cycle();
        assert!(!a.is_locked(Resource::OimPort));
        assert!(a.try_lock(Resource::OimPort));
    }

    #[test]
    fn strict_lock_errors_on_hazard() {
        let mut a = Arbiter::new();
        a.lock(Resource::PositionCounters).unwrap();
        assert!(matches!(
            a.lock(Resource::PositionCounters),
            Err(EngineError::PipelineHazard { .. })
        ));
    }

    #[test]
    fn all_four_resources_lockable_same_cycle() {
        // A full pipeline locks every stage's resource concurrently.
        let mut a = Arbiter::new();
        for r in Resource::ALL {
            assert!(a.try_lock(r), "{r:?}");
        }
        assert_eq!(a.grants(), 4);
    }
}
