//! The micro-instruction set of the pixel-level controller.
//!
//! §3.4/§3.5: the datapath has four stages; *"In order to generate a
//! result pixel one instruction has to be performed in each one of the
//! stages"*. The control FSM emits one [`PixelBundle`] per pixel-cycle;
//! the start-pipeline overlaps bundles so that instructions of different
//! pixel-cycles occupy different stages simultaneously.

use core::fmt;

/// The pipeline stage an instruction executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Stage {
    /// Stage 1: image scanning — advance the pixel position counters.
    Scan,
    /// Stage 2: fill the matrix register from the IIM (LOAD or SHIFT).
    Fetch,
    /// Stage 3: execute the pixel operation on the neighbourhood.
    Execute,
    /// Stage 4: store the result pixel into the OIM.
    Store,
}

impl Stage {
    /// The four stages in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Scan, Stage::Fetch, Stage::Execute, Stage::Store];

    /// Stage index (0-based).
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Stage::Scan => 0,
            Stage::Fetch => 1,
            Stage::Execute => 2,
            Stage::Store => 3,
        }
    }

    /// The datapath resource the stage occupies, for the arbiter.
    #[must_use]
    pub const fn resource(self) -> Resource {
        match self {
            Stage::Scan => Resource::PositionCounters,
            Stage::Fetch => Resource::IimPort,
            Stage::Execute => Resource::Alu,
            Stage::Store => Resource::OimPort,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Scan => "scan",
            Stage::Fetch => "fetch",
            Stage::Execute => "execute",
            Stage::Store => "store",
        };
        f.write_str(s)
    }
}

/// Lockable datapath resources (§3.2: *"The instructions FSM can request
/// and lock the resources in the Process Unit"*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Resource {
    /// The pixel position counters of stage 1.
    PositionCounters,
    /// The IIM read port of stage 2.
    IimPort,
    /// The arithmetic unit of stage 3.
    Alu,
    /// The OIM write port of stage 4.
    OimPort,
}

impl Resource {
    /// All resources.
    pub const ALL: [Resource; 4] = [
        Resource::PositionCounters,
        Resource::IimPort,
        Resource::Alu,
        Resource::OimPort,
    ];
}

/// How stage 2 fills the matrix register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FetchKind {
    /// LOAD: fill the whole matrix from scratch (first pixel of a line).
    Load,
    /// SHIFT: drop one column, append the newly visible one.
    Shift,
}

impl fmt::Display for FetchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchKind::Load => f.write_str("LOAD"),
            FetchKind::Shift => f.write_str("SHIFT"),
        }
    }
}

/// The per-pixel instruction bundle: one instruction per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PixelBundle {
    /// Sequence number of the pixel within the call (scan order).
    pub pixel_index: usize,
    /// How stage 2 fills the matrix register.
    pub fetch: FetchKind,
}

impl PixelBundle {
    /// Creates a bundle.
    #[must_use]
    pub const fn new(pixel_index: usize, fetch: FetchKind) -> Self {
        PixelBundle { pixel_index, fetch }
    }
}

impl fmt::Display for PixelBundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "px#{} ({})", self.pixel_index, self.fetch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_stages_in_order() {
        assert_eq!(Stage::ALL.len(), 4);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn stages_own_distinct_resources() {
        let resources: Vec<_> = Stage::ALL.iter().map(|s| s.resource()).collect();
        let unique: std::collections::HashSet<_> = resources.iter().collect();
        assert_eq!(unique.len(), 4, "each stage owns its own resource");
    }

    #[test]
    fn displays() {
        assert_eq!(Stage::Fetch.to_string(), "fetch");
        assert_eq!(FetchKind::Load.to_string(), "LOAD");
        assert_eq!(PixelBundle::new(3, FetchKind::Shift).to_string(), "px#3 (SHIFT)");
    }
}
