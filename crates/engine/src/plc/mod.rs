//! The pixel-level controller (PLC): the controlpath of the processor.
//!
//! §3.4: *"The pixel level controller is the controlpath of the processor.
//! Its purpose is to control the process unit (i.e. datapath) enabling the
//! intervention of its components when necessary."* Per fig. 5 it is
//! composed of four modules, each modelled by a submodule here:
//!
//! * [`control_fsm`] — generates the set of instructions for every
//!   pixel-cycle,
//! * [`arbiter`] — guarantees instructions in different stages never
//!   touch the same Process-Unit resource,
//! * instructions ([`instructions`]) — the micro-ops that request and
//!   lock resources and steer their behaviour,
//! * [`start_pipeline`] — keeps instructions of different pixel-cycles in
//!   different stages concurrently.

pub mod arbiter;
pub mod control_fsm;
pub mod instructions;
pub mod start_pipeline;

pub use arbiter::Arbiter;
pub use control_fsm::ControlFsm;
pub use instructions::{FetchKind, PixelBundle, Resource, Stage};
pub use start_pipeline::{StageSnapshot, StartPipeline};
