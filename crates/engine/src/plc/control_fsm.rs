//! The control FSM: generates the per-pixel instruction bundles.
//!
//! §3.2: *"The control FSM generates the set of instructions to be
//! performed in every pixel-cycle."* For a sweep over a frame it emits one
//! [`PixelBundle`] per pixel: a LOAD at every scan-line start (the matrix
//! register must refill from scratch) and SHIFTs while sliding along the
//! line.

use vip_core::geometry::{Dims, Point};
use vip_core::scan::{scan_points, ScanOrder, ScanPoints};

use crate::plc::instructions::{FetchKind, PixelBundle};

/// Instruction generator for one call's sweep.
#[derive(Debug, Clone)]
pub struct ControlFsm {
    points: ScanPoints,
    order: ScanOrder,
    issued: usize,
    prev: Option<Point>,
}

impl ControlFsm {
    /// Creates the FSM for a sweep of `dims` in `order`.
    #[must_use]
    pub fn new(dims: Dims, order: ScanOrder) -> Self {
        ControlFsm {
            points: scan_points(dims, order),
            order,
            issued: 0,
            prev: None,
        }
    }

    /// Number of bundles issued so far.
    #[must_use]
    pub const fn issued(&self) -> usize {
        self.issued
    }

    /// The scan order being generated.
    #[must_use]
    pub const fn order(&self) -> ScanOrder {
        self.order
    }

    fn is_contiguous(&self, prev: Point, next: Point) -> bool {
        let step = next - prev;
        let primary = self.order.primary_step();
        match self.order {
            ScanOrder::Serpentine => {
                // Within a line, either direction; a vertical step of one
                // line at the turn also keeps the matrix reusable only in
                // column-major sense — the prototype reloads, so treat
                // turns as discontinuities.
                step.y == 0 && step.x.abs() == 1
            }
            _ => step == primary,
        }
    }
}

impl Iterator for ControlFsm {
    type Item = (Point, PixelBundle);

    fn next(&mut self) -> Option<(Point, PixelBundle)> {
        let p = self.points.next()?;
        let fetch = match self.prev {
            Some(prev) if self.is_contiguous(prev, p) => FetchKind::Shift,
            _ => FetchKind::Load,
        };
        let bundle = PixelBundle::new(self.issued, fetch);
        self.issued += 1;
        self.prev = Some(p);
        Some((p, bundle))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.points.size_hint()
    }
}

impl ExactSizeIterator for ControlFsm {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_loads_once_per_line() {
        let fsm = ControlFsm::new(Dims::new(4, 3), ScanOrder::RowMajor);
        let loads: Vec<Point> = fsm
            .filter(|(_, b)| b.fetch == FetchKind::Load)
            .map(|(p, _)| p)
            .collect();
        assert_eq!(
            loads,
            vec![Point::new(0, 0), Point::new(0, 1), Point::new(0, 2)],
            "one LOAD per line start"
        );
    }

    #[test]
    fn shift_count_complements_loads() {
        let fsm = ControlFsm::new(Dims::new(5, 4), ScanOrder::RowMajor);
        let bundles: Vec<_> = fsm.collect();
        assert_eq!(bundles.len(), 20);
        let loads = bundles.iter().filter(|(_, b)| b.fetch == FetchKind::Load).count();
        let shifts = bundles.iter().filter(|(_, b)| b.fetch == FetchKind::Shift).count();
        assert_eq!(loads, 4);
        assert_eq!(shifts, 16);
    }

    #[test]
    fn column_major_loads_once_per_column() {
        let fsm = ControlFsm::new(Dims::new(3, 4), ScanOrder::ColumnMajor);
        let loads = fsm.filter(|(_, b)| b.fetch == FetchKind::Load).count();
        assert_eq!(loads, 3);
    }

    #[test]
    fn serpentine_reuses_within_lines_reloads_at_turns() {
        let fsm = ControlFsm::new(Dims::new(3, 3), ScanOrder::Serpentine);
        let bundles: Vec<_> = fsm.collect();
        let loads = bundles.iter().filter(|(_, b)| b.fetch == FetchKind::Load).count();
        assert_eq!(loads, 3, "line turns reload the matrix");
    }

    #[test]
    fn pixel_indices_sequential() {
        let fsm = ControlFsm::new(Dims::new(2, 2), ScanOrder::RowMajor);
        let idx: Vec<usize> = fsm.map(|(_, b)| b.pixel_index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn exact_size() {
        let mut fsm = ControlFsm::new(Dims::new(4, 4), ScanOrder::RowMajor);
        assert_eq!(fsm.len(), 16);
        fsm.next();
        assert_eq!(fsm.len(), 15);
        assert_eq!(fsm.issued(), 1);
        assert_eq!(fsm.order(), ScanOrder::RowMajor);
    }
}
