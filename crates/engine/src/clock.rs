//! Clock domains and cycle counting.
//!
//! The prototype has two relevant clock domains: the PCI bus at 66 MHz
//! (the system bottleneck, §4.1) and the FPGA design clock, whose maximum
//! frequency after synthesis is 102.208 MHz but which the prototype runs
//! at the PCI frequency (§4.1: *"the prototype implementation running
//! with 66 MHz"*).
//!
//! # Examples
//!
//! ```
//! use vip_engine::clock::{ClockDomain, Cycles};
//!
//! let pci = ClockDomain::pci_66();
//! let t = pci.duration_of(Cycles(66_000_000));
//! assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A cycle count within one clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// The raw count.
    #[must_use]
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two counts.
    #[must_use]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A clock domain with a fixed frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))] // &'static str names: no Deserialize
pub struct ClockDomain {
    /// Frequency in hertz.
    pub hz: f64,
    /// Human-readable name.
    pub name: &'static str,
}

impl ClockDomain {
    /// The 66 MHz PCI clock of the prototype board.
    #[must_use]
    pub const fn pci_66() -> Self {
        ClockDomain {
            hz: 66_000_000.0,
            name: "pci",
        }
    }

    /// The FPGA design clock at the prototype's operating point (66 MHz).
    #[must_use]
    pub const fn engine_66() -> Self {
        ClockDomain {
            hz: 66_000_000.0,
            name: "engine",
        }
    }

    /// The post-synthesis maximum frequency reported in Table 1
    /// (102.208 MHz from a 9.784 ns minimum period).
    #[must_use]
    pub const fn engine_fmax() -> Self {
        ClockDomain {
            hz: 102_208_000.0,
            name: "engine-fmax",
        }
    }

    /// Creates a custom clock domain.
    #[must_use]
    pub const fn new(name: &'static str, hz: f64) -> Self {
        ClockDomain { hz, name }
    }

    /// Wall-clock duration of `cycles` in this domain.
    #[must_use]
    pub fn duration_of(&self, cycles: Cycles) -> Duration {
        Duration::from_secs_f64(cycles.0 as f64 / self.hz)
    }

    /// Number of whole cycles elapsed in `duration`.
    #[must_use]
    pub fn cycles_in(&self, duration: Duration) -> Cycles {
        Cycles((duration.as_secs_f64() * self.hz).round() as u64)
    }

    /// Clock period.
    #[must_use]
    pub fn period(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.hz)
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {:.3} MHz", self.name, self.hz / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(10);
        let b = Cycles(4);
        assert_eq!(a + b, Cycles(14));
        assert_eq!(a - b, Cycles(6));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c.count(), 14);
        let total: Cycles = [a, b, Cycles(1)].into_iter().sum();
        assert_eq!(total, Cycles(15));
    }

    #[test]
    fn pci_clock_frequency() {
        let pci = ClockDomain::pci_66();
        assert_eq!(pci.hz, 66e6);
        // 264 MB/s at 4 bytes/word (§4.1).
        let bytes_per_sec = pci.hz * 4.0;
        assert_eq!(bytes_per_sec, 264e6);
    }

    #[test]
    fn fmax_matches_table1() {
        // Table 1: minimum period 9.784 ns → 102.208 MHz.
        let fmax = ClockDomain::engine_fmax();
        let period_ns = 1e9 / fmax.hz;
        assert!((period_ns - 9.784).abs() < 0.01, "{period_ns}");
        // Duration-based period rounds to nanosecond resolution.
        assert_eq!(fmax.period().as_nanos(), 10);
    }

    #[test]
    fn duration_roundtrip() {
        let d = ClockDomain::new("test", 100e6);
        let t = d.duration_of(Cycles(250));
        assert_eq!(d.cycles_in(t), Cycles(250));
        assert!((t.as_secs_f64() - 2.5e-6).abs() < 1e-15);
    }

    #[test]
    fn displays() {
        assert_eq!(Cycles(7).to_string(), "7 cyc");
        assert!(ClockDomain::pci_66().to_string().contains("66.000 MHz"));
    }
}
