//! The FPGA resource model: reproduces the device-utilisation summary of
//! Table 1 and scales it structurally with the engine configuration.
//!
//! We cannot run ISE 6 synthesis, so the model is *calibrated*: the DATE
//! 2005 prototype configuration is anchored to the paper's measured
//! utilisation (564 slices, 216 FFs, 349 LUT4s, 60 IOBs, 29 BRAMs, 1
//! GCLK, 102.208 MHz on a Virtex-II 2V3000), and configuration deltas
//! scale each resource along its structural driver:
//!
//! * **BRAMs** scale with the IIM + OIM line blocks (the paper: *"The
//!   high amount of block RAM used … is due to the IIM and OIM
//!   memories"*) — the prototype's 32 line blocks map to 29 BRAMs
//!   (dual-port packing lets a few blocks share one primitive).
//! * **Flip-flops** scale with the pipeline registers (stages × the
//!   64-bit pixel datapath) plus controller state.
//! * **LUTs/slices** scale with the datapath and matrix-register muxing
//!   (quadratic in the window side).
//! * **fmax** degrades mildly with the matrix-register fan-in.
//!
//! # Examples
//!
//! ```
//! use vip_engine::config::EngineConfig;
//! use vip_engine::resource::ResourceEstimate;
//!
//! let table1 = ResourceEstimate::for_config(&EngineConfig::prototype());
//! assert_eq!(table1.brams, 29);
//! assert_eq!(table1.slices, 564);
//! ```

use core::fmt;

use crate::config::EngineConfig;

/// The Virtex-II 2V3000 device capacities (Table 1 denominators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))] // &'static str names: no Deserialize
pub struct Device {
    /// Device name as printed by ISE.
    pub name: &'static str,
    /// Total slices.
    pub slices: u32,
    /// Total slice flip-flops.
    pub flip_flops: u32,
    /// Total 4-input LUTs.
    pub lut4: u32,
    /// Total bonded IOBs.
    pub iobs: u32,
    /// Total 18-kbit block RAMs.
    pub brams: u32,
    /// Total global clock buffers.
    pub gclks: u32,
}

impl Device {
    /// The prototype's Virtex-II 2V3000 (ff1152, speed −5).
    #[must_use]
    pub const fn virtex2_3000() -> Self {
        Device {
            name: "2v3000ff1152-5",
            slices: 14_336,
            flip_flops: 28_672,
            lut4: 28_672,
            iobs: 720,
            brams: 96,
            gclks: 16,
        }
    }
}

/// A device-utilisation estimate in Table 1's terms.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))] // &'static str names: no Deserialize
pub struct ResourceEstimate {
    /// Target device.
    pub device: Device,
    /// Occupied slices.
    pub slices: u32,
    /// Occupied slice flip-flops.
    pub flip_flops: u32,
    /// Occupied 4-input LUTs.
    pub lut4: u32,
    /// Bonded IOBs.
    pub iobs: u32,
    /// Block RAMs.
    pub brams: u32,
    /// Global clock buffers.
    pub gclks: u32,
    /// Maximum clock frequency in MHz.
    pub fmax_mhz: f64,
}

/// Calibration anchor: the paper's measured prototype utilisation.
mod anchor {
    /// Slices of the prototype (intra+inter, 16-line IIM/OIM, 4 stages).
    pub const SLICES: f64 = 564.0;
    /// Flip-flops.
    pub const FLIP_FLOPS: f64 = 216.0;
    /// 4-input LUTs.
    pub const LUT4: f64 = 349.0;
    /// Bonded IOBs.
    pub const IOBS: u32 = 60;
    /// Block RAMs (IIM 16 + OIM 16 line blocks → 29 primitives after
    /// dual-port packing).
    pub const BRAMS: f64 = 29.0;
    /// Minimum period 9.784 ns → 102.208 MHz.
    pub const FMAX_MHZ: f64 = 102.208;
    /// Line blocks of the anchor configuration (IIM + OIM).
    pub const LINE_BLOCKS: f64 = 32.0;
    /// Pipeline stages of the anchor configuration.
    pub const STAGES: f64 = 4.0;
}

impl ResourceEstimate {
    /// Estimates the utilisation of `config` on the prototype device.
    #[must_use]
    pub fn for_config(config: &EngineConfig) -> Self {
        let line_blocks = (config.iim_lines + config.oim_lines) as f64;
        let stage_ratio = config.pipeline_stages as f64 / anchor::STAGES;
        let mem_ratio = line_blocks / anchor::LINE_BLOCKS;

        // Segment capability adds the expansion queue + criterion logic
        // (the §5 outlook estimates roughly half the v1 datapath again).
        let seg_factor = if config.segment_capable { 1.5 } else { 1.0 };

        let flip_flops = anchor::FLIP_FLOPS * (0.4 + 0.6 * stage_ratio) * seg_factor;
        let lut4 = anchor::LUT4 * (0.5 + 0.3 * stage_ratio + 0.2 * mem_ratio) * seg_factor;
        let slices = anchor::SLICES * (0.5 + 0.3 * stage_ratio + 0.2 * mem_ratio) * seg_factor;
        let brams = (anchor::BRAMS * mem_ratio).ceil().max(1.0);
        // Deeper matrices add fan-in; mildly degrade fmax.
        let fmax = anchor::FMAX_MHZ / (0.9 + 0.1 * stage_ratio) / seg_factor.sqrt();

        ResourceEstimate {
            device: Device::virtex2_3000(),
            slices: slices.round() as u32,
            flip_flops: flip_flops.round() as u32,
            lut4: lut4.round() as u32,
            iobs: anchor::IOBS,
            brams: brams as u32,
            gclks: 1,
            fmax_mhz: fmax,
        }
    }

    /// Utilisation of one resource as a percentage of the device.
    #[must_use]
    pub fn percent(&self, used: u32, total: u32) -> f64 {
        if total == 0 {
            return 0.0;
        }
        f64::from(used) * 100.0 / f64::from(total)
    }

    /// Minimum clock period in nanoseconds.
    #[must_use]
    pub fn min_period_ns(&self) -> f64 {
        1e3 / self.fmax_mhz
    }

    /// Whether the design meets a target clock (e.g. the 66 MHz PCI
    /// clock the prototype runs at).
    #[must_use]
    pub fn meets_clock(&self, mhz: f64) -> bool {
        self.fmax_mhz >= mhz
    }

    /// Whether the estimate fits the device.
    #[must_use]
    pub fn fits_device(&self) -> bool {
        self.slices <= self.device.slices
            && self.flip_flops <= self.device.flip_flops
            && self.lut4 <= self.device.lut4
            && self.iobs <= self.device.iobs
            && self.brams <= self.device.brams
            && self.gclks <= self.device.gclks
    }
}

impl fmt::Display for ResourceEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Device utilization summary:")?;
        writeln!(f, "Selected Device : {}", self.device.name)?;
        let row = |name: &str, used: u32, total: u32| {
            format!(
                " Number of {:<22} {:>6}  out of {:>7} {:>5.0}%",
                format!("{name}:"),
                used,
                total,
                f64::from(used) * 100.0 / f64::from(total)
            )
        };
        writeln!(f, "{}", row("Slices", self.slices, self.device.slices))?;
        writeln!(f, "{}", row("Slice Flip Flops", self.flip_flops, self.device.flip_flops))?;
        writeln!(f, "{}", row("4 input LUTs", self.lut4, self.device.lut4))?;
        writeln!(f, "{}", row("bonded IOBs", self.iobs, self.device.iobs))?;
        writeln!(f, "{}", row("BRAMs", self.brams, self.device.brams))?;
        writeln!(f, "{}", row("GCLKs", self.gclks, self.device.gclks))?;
        writeln!(f, "Timing Summary:")?;
        write!(
            f,
            "Minimum period: {:.3}ns (Maximum Frequency: {:.3}MHz)",
            self.min_period_ns(),
            self.fmax_mhz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_reproduces_table1_exactly() {
        let e = ResourceEstimate::for_config(&EngineConfig::prototype());
        assert_eq!(e.slices, 564);
        assert_eq!(e.flip_flops, 216);
        assert_eq!(e.lut4, 349);
        assert_eq!(e.iobs, 60);
        assert_eq!(e.brams, 29);
        assert_eq!(e.gclks, 1);
        assert!((e.fmax_mhz - 102.208).abs() < 1e-9);
        assert!((e.min_period_ns() - 9.784).abs() < 0.01);
    }

    #[test]
    fn prototype_percentages_match_table1() {
        let e = ResourceEstimate::for_config(&EngineConfig::prototype());
        // Table 1: slices 3 %, IOBs 8 %, BRAMs 30 %, GCLKs 6 %.
        assert!((e.percent(e.slices, e.device.slices) - 3.9).abs() < 1.0);
        assert!((e.percent(e.iobs, e.device.iobs) - 8.3).abs() < 0.5);
        assert!((e.percent(e.brams, e.device.brams) - 30.2).abs() < 0.3);
        assert!((e.percent(e.gclks, e.device.gclks) - 6.25).abs() < 0.3);
    }

    #[test]
    fn prototype_meets_its_operating_clock() {
        // §4.1: fmax comfortably exceeds the 66 MHz PCI clock.
        let e = ResourceEstimate::for_config(&EngineConfig::prototype());
        assert!(e.meets_clock(66.0));
        assert!(e.fits_device());
    }

    #[test]
    fn brams_scale_with_intermediate_memories() {
        let mut cfg = EngineConfig::prototype();
        cfg.iim_lines = 32;
        cfg.oim_lines = 32;
        let bigger = ResourceEstimate::for_config(&cfg);
        assert_eq!(bigger.brams, 58, "double the line blocks → double BRAMs");
        assert!(bigger.fits_device(), "§4.1: enough free memory for extensions");
    }

    #[test]
    fn bram_headroom_for_segment_extension() {
        // §4.1: "there is enough free memory for a possible extension of
        // the design with other addressing schemes."
        let v2 = ResourceEstimate::for_config(&EngineConfig::outlook_v2());
        assert!(v2.fits_device());
        assert!(v2.slices > 564, "segment logic costs slices");
        assert!(v2.meets_clock(66.0), "still meets the PCI clock");
    }

    #[test]
    fn deeper_pipeline_costs_registers() {
        let mut cfg = EngineConfig::prototype();
        cfg.pipeline_stages = 8;
        let deep = ResourceEstimate::for_config(&cfg);
        let base = ResourceEstimate::for_config(&EngineConfig::prototype());
        assert!(deep.flip_flops > base.flip_flops);
        assert!(deep.fmax_mhz < base.fmax_mhz);
    }

    #[test]
    fn display_matches_ise_style() {
        let e = ResourceEstimate::for_config(&EngineConfig::prototype());
        let s = e.to_string();
        assert!(s.contains("2v3000ff1152-5"));
        assert!(s.contains("564"));
        assert!(s.contains("Maximum Frequency: 102.208MHz"));
        assert!(s.contains("BRAMs"));
    }

    #[test]
    fn small_memories_floor_at_one_bram() {
        let mut cfg = EngineConfig::prototype();
        cfg.iim_lines = 2;
        cfg.oim_lines = 1;
        let e = ResourceEstimate::for_config(&cfg);
        assert!(e.brams >= 1);
    }
}
