//! Call traces: the schedule of one engine call as a typed, ordered
//! event list — the machine-readable form of the image-level
//! controller's timeline, for debugging, visualisation and export.
//!
//! # Examples
//!
//! ```
//! use vip_core::geometry::Dims;
//! use vip_engine::timing::intra_timeline;
//! use vip_engine::trace::trace_of;
//! use vip_engine::EngineConfig;
//!
//! let timeline = intra_timeline(Dims::new(64, 48), 1, &EngineConfig::prototype());
//! let events = trace_of(&timeline);
//! assert!(events.len() >= 4);
//! assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
//! ```

use core::fmt;

use vip_obs::{Recorder, Track};

use crate::timing::CallTimeline;

/// What happened at one point of a call's schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceKind {
    /// Host issued the call (interrupt/DMA setup begins).
    CallIssued,
    /// Inbound DMA started moving the first strip.
    InputDmaStarted,
    /// The last input pixel is resident in the ZBT.
    InputDmaCompleted,
    /// The last result pixel was drained into the result banks.
    ProcessingCompleted,
    /// Outbound DMA started.
    OutputDmaStarted,
    /// Outbound DMA delivered the last word; completion interrupt next.
    OutputDmaCompleted,
    /// The call completed (completion interrupt served).
    CallCompleted,
}

impl TraceKind {
    /// Stable machine-readable name, used as the event name on the
    /// observability bus.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            TraceKind::CallIssued => "call_issued",
            TraceKind::InputDmaStarted => "input_dma_started",
            TraceKind::InputDmaCompleted => "input_dma_completed",
            TraceKind::ProcessingCompleted => "processing_completed",
            TraceKind::OutputDmaStarted => "output_dma_started",
            TraceKind::OutputDmaCompleted => "output_dma_completed",
            TraceKind::CallCompleted => "call_completed",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::CallIssued => "call issued",
            TraceKind::InputDmaStarted => "input DMA started",
            TraceKind::InputDmaCompleted => "input DMA completed",
            TraceKind::ProcessingCompleted => "processing completed",
            TraceKind::OutputDmaStarted => "output DMA started",
            TraceKind::OutputDmaCompleted => "output DMA completed",
            TraceKind::CallCompleted => "call completed",
        };
        f.write_str(s)
    }
}

/// One schedule event.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceEvent {
    /// Seconds from call issue.
    pub at: f64,
    /// Event kind.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>10.3} ms  {}", self.at * 1e3, self.kind)
    }
}

/// Derives the ordered event list of a call from its timeline.
#[must_use]
pub fn trace_of(timeline: &CallTimeline) -> Vec<TraceEvent> {
    let irq = timeline.interrupt_overhead / 2.0;
    let mut events = vec![
        TraceEvent {
            at: 0.0,
            kind: TraceKind::CallIssued,
        },
        TraceEvent {
            at: irq,
            kind: TraceKind::InputDmaStarted,
        },
        TraceEvent {
            at: timeline.input_end,
            kind: TraceKind::InputDmaCompleted,
        },
        TraceEvent {
            at: timeline.drain_end,
            kind: TraceKind::ProcessingCompleted,
        },
        TraceEvent {
            at: timeline.output_start,
            kind: TraceKind::OutputDmaStarted,
        },
        TraceEvent {
            at: timeline.total - irq,
            kind: TraceKind::OutputDmaCompleted,
        },
        TraceEvent {
            at: timeline.total,
            kind: TraceKind::CallCompleted,
        },
    ];
    events.sort_by(|a, b| {
        a.at.partial_cmp(&b.at)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then_with(|| (a.kind as u8).cmp(&(b.kind as u8)))
    });
    events
}

/// Publishes a call's schedule events onto the observability bus as
/// instants on the engine track, `t0_ns` being the call-issue time on
/// the session's virtual clock. This is how [`TraceKind`] milestones and
/// the subsystem spans (DMA, ZBT, PU) end up in one Perfetto timeline.
pub fn emit_trace(recorder: &Recorder, t0_ns: u64, events: &[TraceEvent]) {
    if !recorder.is_enabled() {
        return;
    }
    for e in events {
        let ts = t0_ns + seconds_to_ns(e.at);
        recorder.instant(Track::Engine, e.kind.name(), ts, &[]);
    }
}

/// Converts schedule seconds to virtual-clock nanoseconds (rounded).
#[must_use]
pub fn seconds_to_ns(seconds: f64) -> u64 {
    (seconds * 1e9).round().max(0.0) as u64
}

/// Renders a trace as a one-line-per-event table.
#[must_use]
pub fn format_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{inter_timeline, intra_timeline};
    use crate::EngineConfig;
    use vip_core::geometry::Dims;

    fn cfg() -> EngineConfig {
        EngineConfig::prototype()
    }

    #[test]
    fn events_are_time_ordered() {
        for t in [
            intra_timeline(Dims::new(352, 288), 1, &cfg()),
            inter_timeline(Dims::new(352, 288), &cfg()),
        ] {
            let events = trace_of(&t);
            assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "{events:?}");
            assert_eq!(events.first().unwrap().kind, TraceKind::CallIssued);
            assert_eq!(events.last().unwrap().kind, TraceKind::CallCompleted);
        }
    }

    #[test]
    fn bracketing_events_match_timeline() {
        let t = intra_timeline(Dims::new(352, 288), 1, &cfg());
        let events = trace_of(&t);
        let at = |k: TraceKind| events.iter().find(|e| e.kind == k).unwrap().at;
        assert_eq!(at(TraceKind::CallCompleted), t.total);
        assert_eq!(at(TraceKind::InputDmaCompleted), t.input_end);
        assert_eq!(at(TraceKind::OutputDmaStarted), t.output_start);
        assert!(at(TraceKind::InputDmaStarted) <= at(TraceKind::InputDmaCompleted));
    }

    #[test]
    fn formatting_contains_all_events() {
        let t = inter_timeline(Dims::new(64, 64), &cfg());
        let events = trace_of(&t);
        let text = format_trace(&events);
        assert_eq!(text.lines().count(), events.len());
        assert!(text.contains("output DMA started"));
        assert!(text.contains("ms"));
    }

    #[test]
    fn kind_names_are_stable_and_distinct() {
        let kinds = [
            TraceKind::CallIssued,
            TraceKind::InputDmaStarted,
            TraceKind::InputDmaCompleted,
            TraceKind::ProcessingCompleted,
            TraceKind::OutputDmaStarted,
            TraceKind::OutputDmaCompleted,
            TraceKind::CallCompleted,
        ];
        let names: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
        assert!(names.iter().all(|n| !n.contains(' ')));
    }

    #[test]
    fn emit_places_all_events_on_engine_track() {
        let t = intra_timeline(Dims::new(64, 64), 1, &cfg());
        let events = trace_of(&t);
        let session = vip_obs::Session::new();
        emit_trace(&session.recorder(), 1_000, &events);
        let recording = session.finish();
        assert_eq!(recording.len(), events.len());
        assert!(recording.events.iter().all(|e| e.track == Track::Engine));
        assert_eq!(recording.events[0].ts_ns, 1_000);
        // Disabled recorder: no-op.
        emit_trace(&Recorder::disabled(), 0, &events);
    }

    #[test]
    fn event_display() {
        let e = TraceEvent {
            at: 0.001,
            kind: TraceKind::ProcessingCompleted,
        };
        assert!(e.to_string().contains("1.000 ms"));
        assert!(e.to_string().contains("processing completed"));
    }
}
