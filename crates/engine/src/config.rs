//! Engine configuration: the architectural parameters of the AddressEngine
//! prototype and the knobs the ablation benches sweep.

use crate::clock::ClockDomain;
use crate::error::{EngineError, EngineResult};

/// How faithfully calls are simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SimulationFidelity {
    /// Cycle-stepped simulation: pixels flow through ZBT → IIM → matrix
    /// register → Process Unit pipeline → OIM → ZBT, with per-cycle stage
    /// occupancy. Use for small frames, verification and the fig. 5 trace.
    Detailed,
    /// Analytic cycle counts derived from the same architectural
    /// parameters, validated against [`SimulationFidelity::Detailed`] on
    /// small frames (see the `analytic_matches_detailed` tests). Use for
    /// CIF-scale workloads like the Table 3 runs, where cycle-stepping
    /// thousands of calls would be needlessly slow.
    #[default]
    Analytic,
}

/// How the detailed simulator advances its cycle counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StepMode {
    /// Tick every engine cycle, modelling each stage each cycle. Always
    /// used when a trace recorder is attached (per-cycle spans need the
    /// per-cycle loop) and by the equivalence tests as the reference.
    CycleStepped,
    /// Event-driven fast-forward: subsystems report their next-activity
    /// cycle and the stepping loop jumps the clock to the earliest one
    /// instead of ticking idle cycles, while the per-pixel datapath work
    /// is replayed from the software addressing model. Produces
    /// bit-identical [`crate::ProcessingStats`], ZBT bank statistics and
    /// schedule instants to [`StepMode::CycleStepped`] (asserted by
    /// `tests/fast_forward_equivalence.rs`).
    #[default]
    FastForward,
}

/// Behaviour of inter calls with respect to transfer/processing overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum InterOverlap {
    /// Strips of both input frames are interleaved on the PCI bus so that
    /// processing starts as soon as the first strip pair is resident.
    Interleaved,
    /// The *"special inter operations"* of §4.1: processing cannot start
    /// until both images have been completely transferred. This is the
    /// mode whose non-PCI overhead the paper quantifies at 12.5 %.
    #[default]
    Sequential,
}

/// Architectural configuration of the simulated AddressEngine.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))] // &'static str names: no Deserialize
pub struct EngineConfig {
    /// PCI bus clock (prototype: 66 MHz, 32 bit).
    pub pci_clock: ClockDomain,
    /// FPGA design clock (prototype operating point: 66 MHz; Table 1
    /// allows up to 102.208 MHz).
    pub engine_clock: ClockDomain,
    /// Words per PCI transfer beat (32-bit bus → one word).
    pub pci_bytes_per_cycle: usize,
    /// DMA efficiency: fraction of theoretical PCI bandwidth sustained
    /// (arbitration, setup); 1.0 models the ideal bus.
    pub pci_efficiency: f64,
    /// Interrupt + DMA-descriptor overhead per transfer, in PCI cycles
    /// (the PC↔board communication is interrupt oriented, §3.1).
    pub interrupt_overhead_cycles: u64,
    /// Number of independent ZBT banks (board: 6).
    pub zbt_banks: usize,
    /// Words (32 bit) per ZBT bank (board: 6 MB total → 1 MB = 256 Ki
    /// words per bank).
    pub zbt_bank_words: usize,
    /// Lines per transfer strip (prototype: 16, from the nine-line
    /// neighbourhood maximum, §3.1).
    pub strip_lines: usize,
    /// Lines held by the IIM (prototype: 16, two FPGA-BRAM banks per
    /// line).
    pub iim_lines: usize,
    /// Lines buffered by the OIM (same structure as the IIM).
    pub oim_lines: usize,
    /// Pipeline depth of the Process Unit (prototype: 4 stages, §3.4).
    pub pipeline_stages: usize,
    /// Engine cycles needed to drain one result pixel OIM → ZBT: 2, since
    /// the result banks store the pixel's lo/hi words sequentially in one
    /// bank (§3.1) — the 2× speed mismatch the OIM exists to absorb.
    pub oim_drain_cycles_per_pixel: u64,
    /// Fraction of the result image that must be drained into the ZBT
    /// result blocks before the outbound DMA may start. The drain
    /// (2 engine cycles/pixel) and the outbound DMA (2 PCI cycles/pixel)
    /// move at the same rate when both clocks run at 66 MHz, so a DMA
    /// that starts behind the drain pointer never overtakes it; the
    /// prototype waits for half of Res_block_A (= a quarter of the image)
    /// as safety margin. This gate is what makes the non-PCI overhead of
    /// sequential inter calls come out at ⅛ of the inbound transfer time
    /// (§4.1's 12.5 %).
    pub output_latency_fraction: f64,
    /// Inter transfer/processing overlap mode.
    pub inter_overlap: InterOverlap,
    /// Simulation fidelity.
    pub fidelity: SimulationFidelity,
    /// Cycle-stepping strategy for [`SimulationFidelity::Detailed`] runs.
    pub step_mode: StepMode,
    /// Whether the engine accepts segment-addressing calls. `false` for
    /// the v1 prototype (*"Segment addressing is planned for future
    /// versions"*, §6); enable to model the §5 outlook extension.
    pub segment_capable: bool,
}

impl EngineConfig {
    /// The DATE 2005 prototype configuration: ADM-XRC-II board,
    /// Virtex-II 3000, 66 MHz PCI, 6-bank ZBT, 16-line strips and IIM/OIM,
    /// intra + inter addressing only.
    #[must_use]
    pub fn prototype() -> Self {
        EngineConfig {
            pci_clock: ClockDomain::pci_66(),
            engine_clock: ClockDomain::engine_66(),
            pci_bytes_per_cycle: 4,
            pci_efficiency: 1.0,
            interrupt_overhead_cycles: 2_000,
            zbt_banks: 6,
            zbt_bank_words: 262_144, // 1 MB per bank at 32-bit words; 6 banks → 6 MB
            strip_lines: 16,
            iim_lines: 16,
            oim_lines: 16,
            pipeline_stages: 4,
            oim_drain_cycles_per_pixel: 2,
            output_latency_fraction: 0.25,
            inter_overlap: InterOverlap::Sequential,
            fidelity: SimulationFidelity::Analytic,
            step_mode: StepMode::FastForward,
            segment_capable: false,
        }
    }

    /// Prototype configuration with cycle-stepped simulation.
    #[must_use]
    pub fn prototype_detailed() -> Self {
        EngineConfig {
            fidelity: SimulationFidelity::Detailed,
            ..EngineConfig::prototype()
        }
    }

    /// The §5 outlook configuration: segment addressing enabled.
    #[must_use]
    pub fn outlook_v2() -> Self {
        EngineConfig {
            segment_capable: true,
            ..EngineConfig::prototype()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] on any violated constraint
    /// (zero-sized strips or banks, fewer than the paired banks required,
    /// out-of-range fractions, …).
    pub fn validate(&self) -> EngineResult<()> {
        if self.strip_lines == 0 {
            return Err(EngineError::InvalidConfig {
                field: "strip_lines",
                reason: "must be positive",
            });
        }
        if self.iim_lines < 2 {
            return Err(EngineError::InvalidConfig {
                field: "iim_lines",
                reason: "the IIM needs at least two line blocks",
            });
        }
        if self.zbt_banks < 6 {
            return Err(EngineError::InvalidConfig {
                field: "zbt_banks",
                reason: "the fig. 3 layout needs six banks (paired inputs + two result blocks)",
            });
        }
        if self.zbt_bank_words == 0 {
            return Err(EngineError::InvalidConfig {
                field: "zbt_bank_words",
                reason: "must be positive",
            });
        }
        if self.pipeline_stages == 0 {
            return Err(EngineError::InvalidConfig {
                field: "pipeline_stages",
                reason: "must be positive",
            });
        }
        if !(0.0..=1.0).contains(&self.output_latency_fraction) {
            return Err(EngineError::InvalidConfig {
                field: "output_latency_fraction",
                reason: "must lie in [0, 1]",
            });
        }
        if !(self.pci_efficiency > 0.0 && self.pci_efficiency <= 1.0) {
            return Err(EngineError::InvalidConfig {
                field: "pci_efficiency",
                reason: "must lie in (0, 1]",
            });
        }
        if self.oim_drain_cycles_per_pixel == 0 {
            return Err(EngineError::InvalidConfig {
                field: "oim_drain_cycles_per_pixel",
                reason: "must be positive",
            });
        }
        Ok(())
    }

    /// Total ZBT capacity in bytes.
    #[must_use]
    pub fn zbt_bytes(&self) -> usize {
        self.zbt_banks * self.zbt_bank_words * 4
    }

    /// Sustained PCI bandwidth in bytes/second after efficiency.
    #[must_use]
    pub fn pci_bandwidth(&self) -> f64 {
        self.pci_clock.hz * self.pci_bytes_per_cycle as f64 * self.pci_efficiency
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_board() {
        let c = EngineConfig::prototype();
        c.validate().unwrap();
        assert_eq!(c.zbt_banks, 6);
        // 6 MB ZBT total (§3).
        assert_eq!(c.zbt_bytes(), 6 * 1024 * 1024);
        assert_eq!(c.strip_lines, 16);
        assert_eq!(c.pipeline_stages, 4);
        // 264 MB/s PCI (§4.1).
        assert_eq!(c.pci_bandwidth(), 264e6);
        assert!(!c.segment_capable);
    }

    #[test]
    fn zbt_holds_three_cif_images() {
        // §3.1: two input + one output CIF image (800 kB each) fit.
        let c = EngineConfig::prototype();
        assert!(c.zbt_bytes() >= 3 * 811_008);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let base = EngineConfig::prototype();
        let mut c = base.clone();
        c.strip_lines = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.iim_lines = 1;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.zbt_banks = 1;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.zbt_bank_words = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.pipeline_stages = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.output_latency_fraction = 1.5;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.pci_efficiency = 0.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.oim_drain_cycles_per_pixel = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn variants() {
        assert_eq!(
            EngineConfig::prototype_detailed().fidelity,
            SimulationFidelity::Detailed
        );
        assert!(EngineConfig::outlook_v2().segment_capable);
        assert_eq!(EngineConfig::default(), EngineConfig::prototype());
    }
}
