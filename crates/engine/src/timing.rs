//! The analytic call-timing model: the image-level controller's schedule
//! in closed form.
//!
//! The model reproduces the timing story of §4.1: the PCI bus is the
//! bottleneck; processing overlaps the strip transfers for intra calls;
//! *"some special inter operations"* cannot start processing until both
//! images are resident, wasting non-PCI time amounting to 12.5 % of the
//! inbound transfer time.
//!
//! Rates (defaults, both clocks at 66 MHz):
//!
//! * inbound DMA: 2 PCI cycles/pixel (two 32-bit words per 64-bit pixel),
//! * processing: 1 engine cycle/pixel at the Process Unit, drained to the
//!   result banks at [`EngineConfig::oim_drain_cycles_per_pixel`]
//!   (2 — the sequential lo/hi result write of §3.1),
//! * outbound DMA: 2 PCI cycles/pixel, gated on
//!   [`EngineConfig::output_latency_fraction`] of the result being
//!   drained (after which the DMA chases the drain pointer at equal
//!   rate).
//!
//! The model is validated against the cycle-stepped Process Unit in
//! `tests/analytic_vs_detailed.rs`.

use core::fmt;
use std::time::Duration;

use vip_core::accounting::AddressingMode;
use vip_core::geometry::Dims;

use crate::config::{EngineConfig, InterOverlap};

/// The computed schedule of one AddressEngine call, in seconds from the
/// host issuing the call.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CallTimeline {
    /// Addressing class the schedule was computed for.
    pub mode: AddressingMode,
    /// Pixels produced.
    pub pixels: u64,
    /// Seconds of pure inbound PCI payload.
    pub input_pci: f64,
    /// Seconds of pure outbound PCI payload.
    pub output_pci: f64,
    /// Seconds of interrupt/DMA-setup overhead (both call boundaries).
    pub interrupt_overhead: f64,
    /// Time at which the last input pixel is resident in the ZBT.
    pub input_end: f64,
    /// Time at which the last result pixel is drained into the ZBT.
    pub drain_end: f64,
    /// Time at which the outbound DMA starts.
    pub output_start: f64,
    /// End-to-end call duration.
    pub total: f64,
}

impl CallTimeline {
    /// Seconds not attributable to PCI payload or interrupt overhead —
    /// the *"time wasted not due to the PCI transferences"* of §4.1.
    #[must_use]
    pub fn non_pci(&self) -> f64 {
        (self.total - self.input_pci - self.output_pci - self.interrupt_overhead).max(0.0)
    }

    /// Non-PCI time as a fraction of the inbound transfer time — the
    /// quantity §4.1 reports as 12.5 % for special inter operations.
    #[must_use]
    pub fn non_pci_of_input(&self) -> f64 {
        if self.input_pci == 0.0 {
            return 0.0;
        }
        self.non_pci() / self.input_pci
    }

    /// PCI-bus utilisation over the whole call.
    #[must_use]
    pub fn pci_utilisation(&self) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        (self.input_pci + self.output_pci) / self.total
    }

    /// Total as a [`Duration`].
    #[must_use]
    pub fn total_duration(&self) -> Duration {
        Duration::from_secs_f64(self.total)
    }
}

impl fmt::Display for CallTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} px: total {:.3} ms (in {:.3} ms, out {:.3} ms, non-PCI {:.3} ms = {:.1} % of in)",
            self.mode,
            self.pixels,
            self.total * 1e3,
            self.input_pci * 1e3,
            self.output_pci * 1e3,
            self.non_pci() * 1e3,
            self.non_pci_of_input() * 100.0
        )
    }
}

/// Bytes per 64-bit pixel on the bus.
const BYTES_PER_PIXEL: f64 = 8.0;

/// Computes the timeline of an intra call over a `dims` frame with a
/// neighbourhood of the given radius.
#[must_use]
pub fn intra_timeline(dims: Dims, radius: usize, config: &EngineConfig) -> CallTimeline {
    let n = dims.pixel_count() as f64;
    let w = dims.width as f64;
    let f_e = config.engine_clock.hz;
    let t_irq = config.interrupt_overhead_cycles as f64 / config.pci_clock.hz;

    let r_in = BYTES_PER_PIXEL / config.pci_bandwidth(); // seconds per arriving pixel
    let r_drain = config.oim_drain_cycles_per_pixel as f64 / f_e;
    let r_out = BYTES_PER_PIXEL / config.pci_bandwidth();

    let input_pci = n * r_in;
    let input_end = t_irq + input_pci;

    // Processing of pixel k needs its window lines: k + (radius+1) lines
    // of lead; the pipeline and the drain add a constant.
    let lead = (radius as f64 + 2.0) * w * r_in
        + (config.pipeline_stages as u64 + config.oim_drain_cycles_per_pixel) as f64 / f_e;
    let drain_start = t_irq + lead;
    // Drained count k completes at the later of the arrival-bound and the
    // drain-rate-bound schedule.
    let drained_at = |k: f64| -> f64 { (t_irq + k * r_in + lead).max(drain_start + k * r_drain) };
    let drain_end = drained_at(n);

    let gate_pixels = (config.output_latency_fraction * n).ceil();
    let output_start = input_end.max(drained_at(gate_pixels));
    let output_pci = n * r_out;
    // The DMA chases the drain pointer; it cannot complete before the
    // drain has completed.
    let output_end = (output_start + output_pci).max(drain_end);

    CallTimeline {
        mode: AddressingMode::Intra,
        pixels: n as u64,
        input_pci,
        output_pci,
        interrupt_overhead: 2.0 * t_irq,
        input_end,
        drain_end,
        output_start,
        total: output_end + t_irq,
    }
}

/// Computes the timeline of an inter call over `dims` frames, honouring
/// the configured [`InterOverlap`] mode.
#[must_use]
pub fn inter_timeline(dims: Dims, config: &EngineConfig) -> CallTimeline {
    let n = dims.pixel_count() as f64;
    let f_e = config.engine_clock.hz;
    let t_irq = config.interrupt_overhead_cycles as f64 / config.pci_clock.hz;

    let r_in = BYTES_PER_PIXEL / config.pci_bandwidth();
    let r_drain = config.oim_drain_cycles_per_pixel as f64 / f_e;
    let r_out = BYTES_PER_PIXEL / config.pci_bandwidth();

    let input_pci = 2.0 * n * r_in; // two input images
    let input_end = t_irq + input_pci;
    let const_lead =
        (config.pipeline_stages as u64 + config.oim_drain_cycles_per_pixel) as f64 / f_e;

    let drained_at = |k: f64| -> f64 {
        match config.inter_overlap {
            // Processing only starts once both images are resident.
            InterOverlap::Sequential => input_end + const_lead + k * r_drain,
            // Strip pairs interleave: output pixel k needs 2k input pixels.
            InterOverlap::Interleaved => {
                (t_irq + 2.0 * k * r_in + const_lead).max(t_irq + const_lead + k * r_drain)
            }
        }
    };
    let drain_end = drained_at(n);

    let gate_pixels = (config.output_latency_fraction * n).ceil();
    let output_start = input_end.max(drained_at(gate_pixels));
    let output_pci = n * r_out;
    let output_end = (output_start + output_pci).max(drain_end);

    CallTimeline {
        mode: AddressingMode::Inter,
        pixels: n as u64,
        input_pci,
        output_pci,
        interrupt_overhead: 2.0 * t_irq,
        input_end,
        drain_end,
        output_start,
        total: output_end + t_irq,
    }
}

/// Computes the timeline of a segment call (the §5 outlook extension):
/// the whole frame transfers in, `segment_pixels` are processed at the
/// drain rate, and the result transfers back.
#[must_use]
pub fn segment_timeline(dims: Dims, segment_pixels: u64, config: &EngineConfig) -> CallTimeline {
    let n = dims.pixel_count() as f64;
    let s = segment_pixels as f64;
    let f_e = config.engine_clock.hz;
    let t_irq = config.interrupt_overhead_cycles as f64 / config.pci_clock.hz;

    let r_in = BYTES_PER_PIXEL / config.pci_bandwidth();
    let r_out = BYTES_PER_PIXEL / config.pci_bandwidth();
    // Segment expansion is data dependent: no strip overlap; each segment
    // pixel costs the drain rate plus one expansion-test cycle per
    // neighbour (4-connected ⇒ 4 candidate tests amortised to 2 extra
    // cycles with the paired-bank fetch).
    let r_seg = (config.oim_drain_cycles_per_pixel + 2) as f64 / f_e;

    let input_pci = n * r_in;
    let input_end = t_irq + input_pci;
    let drain_end = input_end + s * r_seg;
    let output_start = drain_end.max(input_end);
    let output_pci = n * r_out;

    CallTimeline {
        mode: AddressingMode::Segment,
        pixels: segment_pixels,
        input_pci,
        output_pci,
        interrupt_overhead: 2.0 * t_irq,
        input_end,
        drain_end,
        output_start,
        total: output_start + output_pci + t_irq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::ImageFormat;

    const CIF: Dims = Dims::new(352, 288);

    fn cfg() -> EngineConfig {
        let mut c = EngineConfig::prototype();
        c.interrupt_overhead_cycles = 0; // isolate payload maths
        c
    }

    #[test]
    fn intra_cif_is_about_six_ms() {
        let t = intra_timeline(CIF, 1, &cfg());
        // ≈ T_in (3.07 ms) + T_out (3.07 ms) + small tail.
        assert!((t.input_pci - 0.003072).abs() < 1e-5);
        assert!((t.output_pci - 0.003072).abs() < 1e-5);
        assert!(t.total > 0.0061 && t.total < 0.0068, "total {}", t.total);
    }

    #[test]
    fn intra_processing_overlaps_transfer() {
        let t = intra_timeline(CIF, 1, &cfg());
        // Non-PCI time is a small fraction for intra (strip overlap).
        assert!(t.non_pci_of_input() < 0.12, "{}", t.non_pci_of_input());
    }

    #[test]
    fn special_inter_overhead_is_one_eighth() {
        // §4.1: non-PCI time = 12.5 % of the inbound transfer time.
        let t = inter_timeline(CIF, &cfg());
        let frac = t.non_pci_of_input();
        assert!(
            (frac - 0.125).abs() < 0.02,
            "non-PCI fraction {frac} should be ≈ 0.125"
        );
    }

    #[test]
    fn inter_cif_is_about_ten_ms() {
        let t = inter_timeline(CIF, &cfg());
        assert!((t.input_pci - 0.006144).abs() < 1e-5);
        assert!(t.total > 0.0095 && t.total < 0.0105, "total {}", t.total);
    }

    #[test]
    fn interleaved_inter_is_faster() {
        let mut c = cfg();
        let seq = inter_timeline(CIF, &c);
        c.inter_overlap = InterOverlap::Interleaved;
        let ilv = inter_timeline(CIF, &c);
        assert!(ilv.total < seq.total);
        assert!(ilv.non_pci_of_input() < seq.non_pci_of_input());
    }

    #[test]
    fn pci_dominates_everything() {
        // §4.1: the PCI bus is the bottleneck — payload accounts for the
        // vast majority of every call.
        for t in [intra_timeline(CIF, 1, &cfg()), inter_timeline(CIF, &cfg())] {
            assert!(t.pci_utilisation() > 0.85, "{} {}", t.mode, t.pci_utilisation());
        }
    }

    #[test]
    fn qcif_scales_down() {
        let cif = intra_timeline(CIF, 1, &cfg());
        let qcif = intra_timeline(ImageFormat::Qcif.dims(), 1, &cfg());
        let ratio = cif.total / qcif.total;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn faster_engine_clock_shrinks_non_pci() {
        let mut c = cfg();
        let base = inter_timeline(CIF, &c);
        c.engine_clock = crate::clock::ClockDomain::engine_fmax();
        let fast = inter_timeline(CIF, &c);
        assert!(fast.non_pci() < base.non_pci());
        // But total barely moves: PCI-bound system.
        assert!((base.total - fast.total) / base.total < 0.15);
    }

    #[test]
    fn interrupt_overhead_accounted() {
        let mut c = cfg();
        c.interrupt_overhead_cycles = 6_600_000; // 0.1 s at 66 MHz
        let t = intra_timeline(CIF, 1, &c);
        assert!((t.interrupt_overhead - 0.2).abs() < 1e-9);
        assert!(t.total > 0.2);
        // non_pci excludes the interrupt overhead.
        assert!(t.non_pci() < 0.01);
    }

    #[test]
    fn segment_timeline_scales_with_segment_size() {
        let c = EngineConfig::outlook_v2();
        let small = segment_timeline(CIF, 1_000, &c);
        let large = segment_timeline(CIF, 50_000, &c);
        assert!(large.total > small.total);
        assert_eq!(small.mode, AddressingMode::Segment);
        // Transfers still dominate for small segments.
        assert!(small.pci_utilisation() > 0.8);
    }

    #[test]
    fn radius_increases_intra_lead_only_slightly() {
        let r1 = intra_timeline(CIF, 1, &cfg());
        let r4 = intra_timeline(CIF, 4, &cfg());
        assert!(r4.total >= r1.total);
        assert!((r4.total - r1.total) / r1.total < 0.01, "lead is lines, not frames");
    }

    #[test]
    fn display_contains_percentages() {
        let t = inter_timeline(CIF, &cfg());
        let s = t.to_string();
        assert!(s.contains("non-PCI"));
        assert!(s.contains("inter"));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn timeline_serialises_to_json() {
        let t = intra_timeline(CIF, 1, &cfg());
        let json = serde_json::to_string(&t).expect("timeline serialises");
        assert!(json.contains("\"input_pci\""));
    }

    #[test]
    fn timeline_invariants() {
        for t in [
            intra_timeline(CIF, 1, &cfg()),
            inter_timeline(CIF, &cfg()),
            segment_timeline(CIF, 10_000, &EngineConfig::outlook_v2()),
        ] {
            assert!(t.input_end <= t.total);
            assert!(t.output_start >= t.input_end - 1e-12, "{}", t.mode);
            assert!(t.drain_end <= t.total);
            assert!(t.total_duration().as_secs_f64() > 0.0);
            assert!(t.non_pci() >= 0.0);
        }
    }
}
