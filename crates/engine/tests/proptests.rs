//! Property-based tests of the engine substrate invariants.

// Property tests need the external `proptest` crate, unavailable in
// this offline workspace; the (empty) feature keeps the cfg name valid.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use vip_core::border::BorderPolicy;
use vip_core::frame::Frame;
use vip_core::geometry::{Dims, Point};
use vip_core::neighborhood::Connectivity;
use vip_core::ops::filter::BoxBlur;
use vip_core::pixel::Pixel;
use vip_engine::clock::Cycles;
use vip_engine::config::EngineConfig;
use vip_engine::engine::AddressEngine;
use vip_engine::iim::Iim;
use vip_engine::matrix::MatrixRegister;
use vip_engine::oim::Oim;
use vip_engine::pci::{Direction, PciBus};
use vip_engine::timing::{inter_timeline, intra_timeline};
use vip_engine::zbt::{ZbtMemory, ZbtRegion};

fn arb_pixel() -> impl Strategy<Value = Pixel> {
    (any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>(), any::<u16>())
        .prop_map(|(y, u, v, a, x)| Pixel::new(y, u, v, a, x))
}

fn arb_dims() -> impl Strategy<Value = Dims> {
    (4usize..28, 4usize..28).prop_map(|(w, h)| Dims::new(w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zbt_input_roundtrip(px in arb_pixel(), idx in 0usize..10_000) {
        let mut zbt = ZbtMemory::new(&EngineConfig::prototype());
        for region in [ZbtRegion::InputA, ZbtRegion::InputB] {
            zbt.write_input_pixel(region, idx, px).unwrap();
            prop_assert_eq!(zbt.read_input_pixel(region, idx).unwrap(), px);
        }
    }

    #[test]
    fn zbt_result_roundtrip(px in arb_pixel(), idx in 0usize..5_000, extra in 1usize..5_000) {
        let total = idx + extra;
        let mut zbt = ZbtMemory::new(&EngineConfig::prototype());
        zbt.write_result_pixel(idx, total, px).unwrap();
        prop_assert_eq!(zbt.read_result_pixel(idx, total).unwrap(), px);
    }

    #[test]
    fn oim_preserves_order(pixels in proptest::collection::vec(arb_pixel(), 1..64)) {
        let mut oim = Oim::new(16, 16);
        for (i, px) in pixels.iter().enumerate() {
            prop_assert!(oim.push(i, *px));
        }
        for (i, px) in pixels.iter().enumerate() {
            let (idx, out) = oim.pop().expect("pushed");
            prop_assert_eq!(idx, i);
            prop_assert_eq!(out, *px);
        }
    }

    #[test]
    fn iim_window_agrees_with_software(dims in arb_dims(), cx in 0i32..28, cy in 0i32..28) {
        let centre = Point::new(cx % dims.width as i32, cy % dims.height as i32);
        let frame = Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 13 + p.y * 7) % 256) as u8));
        let mut iim = Iim::new(dims.height.max(2), dims.width);
        for l in 0..dims.height {
            iim.load_line(l, frame.line(l));
        }
        let hw = iim
            .fetch_window(centre, Connectivity::Con8, dims, BorderPolicy::Clamp)
            .expect("all lines resident");
        let sw = vip_core::neighborhood::Window::gather(
            &frame, centre, Connectivity::Con8, BorderPolicy::Clamp);
        for (off, px) in hw {
            prop_assert_eq!(Some(px), sw.sample(off), "offset {}", off);
        }
    }

    #[test]
    fn matrix_shift_equals_load(
        cols in proptest::collection::vec(
            proptest::collection::vec(arb_pixel(), 3), 4..10)
    ) {
        // Slide a 3-wide matrix along arbitrary columns; every SHIFT
        // must equal a fresh LOAD of the same three columns.
        let mut m = MatrixRegister::new(Connectivity::Con8);
        m.load(vec![cols[0].clone(), cols[1].clone(), cols[2].clone()]);
        for i in 3..cols.len() {
            m.shift(cols[i].clone());
            let mut fresh = MatrixRegister::new(Connectivity::Con8);
            fresh.load(vec![cols[i - 2].clone(), cols[i - 1].clone(), cols[i].clone()]);
            prop_assert_eq!(m.samples(), fresh.samples());
        }
    }

    #[test]
    fn pci_transfers_never_overlap(sizes in proptest::collection::vec(1usize..10_000, 1..20)) {
        let mut pci = PciBus::new(&EngineConfig::prototype());
        for (i, bytes) in sizes.iter().enumerate() {
            let dir = if i % 2 == 0 { Direction::HostToBoard } else { Direction::BoardToHost };
            pci.schedule(dir, *bytes, Cycles(i as u64 * 7));
        }
        let ts = pci.transfers();
        for w in ts.windows(2) {
            prop_assert!(w[1].start >= w[0].end(), "overlap: {:?}", w);
        }
        let payload: u64 = ts.iter().map(|t| t.cycles.count()).sum();
        prop_assert!(pci.busy_until().count() >= payload);
    }

    #[test]
    fn timeline_monotone_in_pixels(w in 8usize..64, h in 8usize..64) {
        let cfg = EngineConfig::prototype();
        let small = intra_timeline(Dims::new(w, h), 1, &cfg);
        let large = intra_timeline(Dims::new(w * 2, h), 1, &cfg);
        prop_assert!(large.total > small.total);
        prop_assert!(large.input_pci > small.input_pci);
        let inter = inter_timeline(Dims::new(w, h), &cfg);
        prop_assert!(inter.total > small.total, "inter moves twice the input");
    }

    #[test]
    fn engine_intra_always_matches_software(dims in arb_dims(), seed in 0u8..255) {
        let frame = Frame::from_fn(dims, |p| {
            Pixel::from_luma(((p.x as u32 * 31 + p.y as u32 * 17 + seed as u32) % 256) as u8)
        });
        let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        let hw = engine.run_intra(&frame, &BoxBlur::con8()).unwrap();
        let sw = vip_core::addressing::intra::run_intra(&frame, &BoxBlur::con8()).unwrap();
        prop_assert_eq!(hw.output, sw.output);
    }
}
