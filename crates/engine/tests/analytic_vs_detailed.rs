//! Validates the analytic timing model against the cycle-stepped Process
//! Unit, and the engine datapath against the software AddressLib, across
//! frame sizes and kernels.

use vip_core::border::BorderPolicy;
use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_core::ops::arith::{AbsDiff, Add, Blend, ChangeMask};
use vip_core::ops::filter::{Binomial3, BoxBlur, CentralGradient, Identity, SobelGradient};
use vip_core::ops::morph::{AlphaMajority, Dilate, Erode, MorphGradient};
use vip_core::ops::{InterOp, IntraOp};
use vip_core::pixel::Pixel;
use vip_engine::config::{EngineConfig, InterOverlap};
use vip_engine::engine::AddressEngine;
use vip_engine::process_unit::{run_inter_detailed, run_intra_detailed};
use vip_engine::zbt::{ZbtMemory, ZbtRegion};

fn textured(dims: Dims) -> Frame {
    Frame::from_fn(dims, |p| {
        let v = (p.x * 31 + p.y * 17 + (p.x * p.y) % 7) % 256;
        Pixel::from_luma(v as u8)
            .with_alpha(u16::from(v % 3 == 0))
            .with_aux((v * 2) as u16)
    })
}

fn load(zbt: &mut ZbtMemory, region: ZbtRegion, f: &Frame) {
    for (i, px) in f.pixels().iter().enumerate() {
        zbt.write_input_pixel(region, i, *px).unwrap();
    }
}

/// Detailed processing cycles must track the analytic drain-rate model
/// (2 cycles/pixel sustained plus a bounded lead).
#[test]
fn detailed_intra_cycles_track_analytic_rate() {
    let cfg = EngineConfig::prototype_detailed();
    for (w, h) in [(16, 16), (32, 24), (48, 48), (64, 16)] {
        let dims = Dims::new(w, h);
        let frame = textured(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load(&mut zbt, ZbtRegion::InputA, &frame);
        let stats =
            run_intra_detailed(&mut zbt, dims, &BoxBlur::con8(), BorderPolicy::Clamp, &cfg, 0)
                .unwrap();
        let n = dims.pixel_count() as u64;
        let analytic = cfg.oim_drain_cycles_per_pixel * n;
        // Lead: window lines + pipeline fill + drain pipeline.
        let lead_bound = (3 * w + 64) as u64;
        assert!(
            stats.cycles >= analytic,
            "{dims}: {} < {analytic}",
            stats.cycles
        );
        assert!(
            stats.cycles <= analytic + lead_bound,
            "{dims}: {} > {analytic} + {lead_bound}",
            stats.cycles
        );
    }
}

#[test]
fn detailed_inter_cycles_track_analytic_rate() {
    let cfg = EngineConfig::prototype_detailed();
    for (w, h) in [(16, 16), (40, 24)] {
        let dims = Dims::new(w, h);
        let a = textured(dims);
        let b = textured(dims);
        let mut zbt = ZbtMemory::new(&cfg);
        load(&mut zbt, ZbtRegion::InputA, &a);
        load(&mut zbt, ZbtRegion::InputB, &b);
        let stats = run_inter_detailed(&mut zbt, dims, &AbsDiff::luma(), &cfg, 0).unwrap();
        let n = dims.pixel_count() as u64;
        let analytic = cfg.oim_drain_cycles_per_pixel * n;
        assert!(stats.cycles >= analytic);
        assert!(stats.cycles <= analytic + 64, "{dims}: {}", stats.cycles);
    }
}

/// Every intra kernel produces bit-exact results through the detailed
/// memory system.
#[test]
fn all_intra_kernels_bit_exact_through_engine() {
    let dims = Dims::new(24, 20);
    let frame = textured(dims);
    let ops: Vec<Box<dyn IntraOp>> = vec![
        Box::new(Identity::luma()),
        Box::new(Identity::yuv()),
        Box::new(BoxBlur::con8()),
        Box::new(BoxBlur::with_radius(2).unwrap()),
        Box::new(Binomial3::new()),
        Box::new(SobelGradient::new()),
        Box::new(CentralGradient::new()),
        Box::new(Erode::con8()),
        Box::new(Erode::con4()),
        Box::new(Dilate::con8()),
        Box::new(MorphGradient::con8()),
        Box::new(AlphaMajority::new()),
    ];
    for op in &ops {
        let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        let hw = engine.run_intra(&frame, &op.as_ref()).unwrap();
        let sw = vip_core::addressing::intra::run_intra(&frame, &op.as_ref()).unwrap();
        assert_eq!(hw.output, sw.output, "kernel {}", op.name());
    }
}

#[test]
fn all_inter_kernels_bit_exact_through_engine() {
    let dims = Dims::new(20, 16);
    let a = textured(dims);
    let b = Frame::from_fn(dims, |p| Pixel::from_yuv((p.y * 9) as u8, 100, 200));
    let ops: Vec<Box<dyn InterOp>> = vec![
        Box::new(AbsDiff::luma()),
        Box::new(AbsDiff::yuv()),
        Box::new(Add::yuv()),
        Box::new(Blend::average()),
        Box::new(ChangeMask::new(12)),
    ];
    for op in &ops {
        let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        let hw = engine.run_inter(&a, &b, &op.as_ref()).unwrap();
        let sw = vip_core::addressing::inter::run_inter(&a, &b, &op.as_ref()).unwrap();
        assert_eq!(hw.output, sw.output, "kernel {}", op.name());
    }
}

/// Analytic and detailed modes agree on output pixels for identical calls.
#[test]
fn analytic_equals_detailed_output() {
    let dims = Dims::new(32, 32);
    let frame = textured(dims);
    let mut ana = AddressEngine::new(EngineConfig::prototype()).unwrap();
    let mut det = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
    let ra = ana.run_intra(&frame, &SobelGradient::new()).unwrap();
    let rd = det.run_intra(&frame, &SobelGradient::new()).unwrap();
    assert_eq!(ra.output, rd.output);
    // Timelines are identical (both analytic).
    assert_eq!(ra.report.timeline, rd.report.timeline);
}

/// The special-inter overhead claim survives the full engine path.
#[test]
fn engine_reports_inter_overhead_near_one_eighth() {
    let mut cfg = EngineConfig::prototype();
    cfg.interrupt_overhead_cycles = 0;
    let mut engine = AddressEngine::new(cfg).unwrap();
    let dims = Dims::new(352, 288);
    let a = Frame::filled(dims, Pixel::from_luma(10));
    let b = Frame::filled(dims, Pixel::from_luma(20));
    let run = engine.run_inter(&a, &b, &AbsDiff::luma()).unwrap();
    let frac = run.report.timeline.non_pci_of_input();
    assert!((frac - 0.125).abs() < 0.02, "non-PCI fraction {frac}");
}

/// Interleaved inter transfers reduce the overhead — the ablation the
/// paper implies by calling the sequential case "special".
#[test]
fn interleaved_overlap_removes_overhead() {
    let mut cfg = EngineConfig::prototype();
    cfg.interrupt_overhead_cycles = 0;
    cfg.inter_overlap = InterOverlap::Interleaved;
    let mut engine = AddressEngine::new(cfg).unwrap();
    let dims = Dims::new(352, 288);
    let a = Frame::filled(dims, Pixel::from_luma(10));
    let run = engine.run_inter(&a, &a, &AbsDiff::luma()).unwrap();
    assert!(run.report.timeline.non_pci_of_input() < 0.02);
}

/// Hardware access counts from the detailed run equal the Table 2 model
/// for every shape/channel combination exercised.
#[test]
fn hardware_accesses_equal_model_across_kernels() {
    let dims = Dims::new(16, 16);
    let frame = textured(dims);
    let kernels: Vec<Box<dyn IntraOp>> = vec![
        Box::new(Identity::luma()),
        Box::new(BoxBlur::con8()),
        Box::new(BoxBlur::with_radius(3).unwrap()),
    ];
    for op in &kernels {
        let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
        let run = engine.run_intra(&frame, &op.as_ref()).unwrap();
        assert_eq!(
            run.report.hardware_accesses, run.report.access_model.hardware_accesses,
            "kernel {}",
            op.name()
        );
    }
}
