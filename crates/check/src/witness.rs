//! Scenario descriptions and witness formatting.
//!
//! Every model check operates on a [`Scenario`] — one point of the
//! (configuration × frame dims × addressing mode) space — and reports
//! violations with the scenario rendered as a concrete witness: the
//! fields that differ from [`EngineConfig::prototype`] plus dims and
//! mode, so a failure can be reproduced with a three-line snippet.

use core::fmt;

use vip_core::geometry::Dims;
use vip_engine::config::{EngineConfig, InterOverlap, SimulationFidelity};

/// The addressing class of a scenario, with its mode-specific knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CallKind {
    /// Intra addressing with a neighbourhood of the given radius.
    Intra {
        /// Neighbourhood radius (1 for the 3×3 window, up to 4 for the
        /// nine-line maximum of §3.1).
        radius: usize,
    },
    /// Inter addressing (overlap mode comes from the configuration).
    Inter,
    /// Segment addressing expanding the given number of segment pixels.
    Segment {
        /// Pixels in the expanded segment.
        pixels: u64,
    },
    /// Segment-indexed addressing carrying the given number of table
    /// entries. The engine schedules it like a segment call running in
    /// parallel to another scheme (§2.1), so it shares the segment
    /// schedule shape.
    SegmentIndexed {
        /// Indexed table entries touched.
        entries: u64,
    },
}

impl fmt::Display for CallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallKind::Intra { radius } => write!(f, "intra r={radius}"),
            CallKind::Inter => f.write_str("inter"),
            CallKind::Segment { pixels } => write!(f, "segment s={pixels}"),
            CallKind::SegmentIndexed { entries } => write!(f, "indexed e={entries}"),
        }
    }
}

/// One point of the verification space.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Short label of the configuration family (e.g. `prototype`).
    pub label: &'static str,
    /// The engine configuration under test.
    pub config: EngineConfig,
    /// Frame dimensions of the call.
    pub dims: Dims,
    /// Addressing class of the call.
    pub mode: CallKind,
}

impl Scenario {
    /// Creates a scenario.
    #[must_use]
    pub fn new(label: &'static str, config: EngineConfig, dims: Dims, mode: CallKind) -> Self {
        Scenario { label, config, dims, mode }
    }

    /// Renders the scenario as a reproducible witness string: label,
    /// dims, mode, and every configuration field that differs from the
    /// prototype.
    #[must_use]
    pub fn witness(&self) -> String {
        let mut out = format!("{} {} {}", self.label, self.dims, self.mode);
        let delta = config_delta(&self.config);
        if !delta.is_empty() {
            out.push_str(" [");
            out.push_str(&delta.join(", "));
            out.push(']');
        }
        out
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.witness())
    }
}

/// Lists the fields of `config` that differ from the DATE 2005 prototype,
/// as `field=value` strings.
#[must_use]
pub fn config_delta(config: &EngineConfig) -> Vec<String> {
    let base = EngineConfig::prototype();
    let mut delta = Vec::new();
    if config.pci_clock != base.pci_clock {
        delta.push(format!("pci_clock={:.1}MHz", config.pci_clock.hz / 1e6));
    }
    if config.engine_clock != base.engine_clock {
        delta.push(format!("engine_clock={:.1}MHz", config.engine_clock.hz / 1e6));
    }
    if config.pci_bytes_per_cycle != base.pci_bytes_per_cycle {
        delta.push(format!("pci_bytes_per_cycle={}", config.pci_bytes_per_cycle));
    }
    if (config.pci_efficiency - base.pci_efficiency).abs() > f64::EPSILON {
        delta.push(format!("pci_efficiency={}", config.pci_efficiency));
    }
    if config.interrupt_overhead_cycles != base.interrupt_overhead_cycles {
        delta.push(format!("interrupt_overhead_cycles={}", config.interrupt_overhead_cycles));
    }
    if config.zbt_banks != base.zbt_banks {
        delta.push(format!("zbt_banks={}", config.zbt_banks));
    }
    if config.zbt_bank_words != base.zbt_bank_words {
        delta.push(format!("zbt_bank_words={}", config.zbt_bank_words));
    }
    if config.strip_lines != base.strip_lines {
        delta.push(format!("strip_lines={}", config.strip_lines));
    }
    if config.iim_lines != base.iim_lines {
        delta.push(format!("iim_lines={}", config.iim_lines));
    }
    if config.oim_lines != base.oim_lines {
        delta.push(format!("oim_lines={}", config.oim_lines));
    }
    if config.pipeline_stages != base.pipeline_stages {
        delta.push(format!("pipeline_stages={}", config.pipeline_stages));
    }
    if config.oim_drain_cycles_per_pixel != base.oim_drain_cycles_per_pixel {
        delta.push(format!("oim_drain_cycles_per_pixel={}", config.oim_drain_cycles_per_pixel));
    }
    if (config.output_latency_fraction - base.output_latency_fraction).abs() > f64::EPSILON {
        delta.push(format!("output_latency_fraction={}", config.output_latency_fraction));
    }
    if config.inter_overlap != base.inter_overlap {
        delta.push(format!(
            "inter_overlap={}",
            match config.inter_overlap {
                InterOverlap::Interleaved => "interleaved",
                InterOverlap::Sequential => "sequential",
            }
        ));
    }
    if config.fidelity != base.fidelity {
        delta.push(format!(
            "fidelity={}",
            match config.fidelity {
                SimulationFidelity::Detailed => "detailed",
                SimulationFidelity::Analytic => "analytic",
            }
        ));
    }
    if config.segment_capable != base.segment_capable {
        delta.push(format!("segment_capable={}", config.segment_capable));
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_has_empty_delta() {
        assert!(config_delta(&EngineConfig::prototype()).is_empty());
    }

    #[test]
    fn witness_names_changed_fields() {
        let mut c = EngineConfig::prototype();
        c.oim_drain_cycles_per_pixel = 4;
        c.inter_overlap = InterOverlap::Interleaved;
        let s = Scenario::new("ablation", c, Dims::new(16, 8), CallKind::Inter);
        let w = s.witness();
        assert!(w.contains("16x8") || w.contains("16×8"), "{w}");
        assert!(w.contains("oim_drain_cycles_per_pixel=4"), "{w}");
        assert!(w.contains("inter_overlap=interleaved"), "{w}");
        assert!(w.contains("inter"), "{w}");
    }

    #[test]
    fn call_kind_display() {
        assert_eq!(CallKind::Intra { radius: 2 }.to_string(), "intra r=2");
        assert_eq!(CallKind::Segment { pixels: 9 }.to_string(), "segment s=9");
        assert_eq!(CallKind::SegmentIndexed { entries: 3 }.to_string(), "indexed e=3");
    }
}
