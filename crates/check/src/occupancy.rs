//! Static IIM/OIM occupancy analysis (§3.1 / §3.3).
//!
//! Both intermediate memories are sixteen-line-block × two-BRAM-bank
//! buffers in the prototype. Their correctness obligations differ:
//!
//! * **IIM** — the transmission unit refuses to evict a line the sweep
//!   still needs (`oldest < inflight_line − radius` gating in the
//!   Process Unit). A window of radius `r` spans `2r+1` lines (clamped
//!   to the frame height at the borders), so the sweep makes progress
//!   iff the IIM holds at least [`iim_required_lines`] blocks —
//!   otherwise the transmission unit and the fetch stage deadlock, which
//!   the cycle-stepped simulator surfaces as a
//!   `PipelineHazard` cycle-bound error. [`check_iim`] proves the
//!   condition per configuration instead of running the deadlock.
//! * **OIM** — the FIFO back-pressures the producer (`push` fails when
//!   full), so it can never overflow; the interesting static quantity is
//!   the *occupancy upper bound* [`oim_occupancy_bound`]: the producer
//!   inserts at most one pixel per cycle while the drain removes one per
//!   `d` cycles, so occupancy never exceeds `⌈n·(d−1)/d⌉ + 2` (and never
//!   the capacity). The differential tests check the cycle-stepped
//!   `oim_max_occupancy` against this bound. [`check_oim`] verifies the
//!   configuration sustains drain progress at all (positive capacity and
//!   drain rate).

use crate::witness::{CallKind, Scenario};
use crate::Violation;

/// The minimum number of IIM line blocks that lets a radius-`radius`
/// sweep over a `height`-line frame make progress: the full `2r+1`
/// window span, or the whole frame when it is shorter (vertical border
/// clamping re-delivers edge lines).
#[must_use]
pub fn iim_required_lines(radius: usize, height: usize) -> usize {
    (2 * radius + 1).min(height)
}

/// Result pixels the scenario's processing phase produces (what the OIM
/// must carry).
#[must_use]
pub fn produced_pixels(s: &Scenario) -> u64 {
    match s.mode {
        CallKind::Intra { .. } | CallKind::Inter => s.dims.pixel_count() as u64,
        CallKind::Segment { pixels } => pixels,
        CallKind::SegmentIndexed { entries } => entries,
    }
}

/// Static upper bound on the OIM occupancy a scenario can reach: the
/// rate argument `⌈n·(d−1)/d⌉ + 2` (producer ≤ 1 px/cycle, drain 1 px
/// per `d` cycles, +2 pixels of phase slack) capped at the FIFO
/// capacity the back-pressure enforces.
#[must_use]
pub fn oim_occupancy_bound(s: &Scenario) -> u64 {
    let capacity = (s.config.oim_lines * s.dims.width) as u64;
    let n = produced_pixels(s);
    let d = s.config.oim_drain_cycles_per_pixel.max(1);
    let rate_bound = n.saturating_mul(d - 1).div_ceil(d) + 2;
    rate_bound.min(capacity)
}

/// Verifies IIM deadlock freedom for one scenario.
#[must_use]
pub fn check_iim(s: &Scenario) -> Vec<Violation> {
    let mut out = Vec::new();
    if s.config.iim_lines < 2 {
        out.push(Violation {
            check: "occupancy.iim_min",
            message: format!(
                "iim_lines={} but the IIM needs at least two line blocks (lo/hi banks per line)",
                s.config.iim_lines
            ),
            witness: s.witness(),
        });
    }
    if let CallKind::Intra { radius } = s.mode {
        let required = iim_required_lines(radius, s.dims.height);
        if s.config.iim_lines < required {
            out.push(Violation {
                check: "occupancy.iim_deadlock",
                message: format!(
                    "radius-{radius} window spans {required} lines but the IIM holds only {}: \
                     the transmission unit cannot evict a line the sweep still needs — \
                     fetch stage and line loader deadlock",
                    s.config.iim_lines
                ),
                witness: s.witness(),
            });
        }
    }
    out
}

/// Verifies OIM progress (positive capacity and drain rate) for one
/// scenario.
#[must_use]
pub fn check_oim(s: &Scenario) -> Vec<Violation> {
    let mut out = Vec::new();
    let capacity = s.config.oim_lines * s.dims.width;
    if capacity == 0 {
        out.push(Violation {
            check: "occupancy.oim_capacity",
            message: format!(
                "OIM capacity is zero ({} lines × {} px): every push fails and the \
                 drain never sees a pixel — the call cannot complete",
                s.config.oim_lines, s.dims.width
            ),
            witness: s.witness(),
        });
    }
    if s.config.oim_drain_cycles_per_pixel == 0 {
        out.push(Violation {
            check: "occupancy.oim_drain_rate",
            message: "oim_drain_cycles_per_pixel is zero: the drain rate is undefined \
                      (the result banks take the two pixel words sequentially, §3.1)"
                .to_string(),
            witness: s.witness(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::Dims;
    use vip_engine::config::EngineConfig;

    fn scenario(config: EngineConfig, dims: Dims, mode: CallKind) -> Scenario {
        Scenario::new("test", config, dims, mode)
    }

    #[test]
    fn required_lines_follows_window_span() {
        assert_eq!(iim_required_lines(1, 288), 3);
        assert_eq!(iim_required_lines(4, 288), 9, "§3.1 nine-line maximum");
        assert_eq!(iim_required_lines(4, 5), 5, "short frames clamp");
        assert_eq!(iim_required_lines(0, 1), 1);
    }

    #[test]
    fn prototype_iim_is_deadlock_free_up_to_radius_four() {
        let dims = Dims::new(352, 288);
        for r in 0..=4 {
            let s = scenario(EngineConfig::prototype(), dims, CallKind::Intra { radius: r });
            assert!(check_iim(&s).is_empty(), "radius {r}");
        }
    }

    #[test]
    fn undersized_iim_is_reported_with_witness() {
        let mut c = EngineConfig::prototype();
        c.iim_lines = 3;
        let s = scenario(c, Dims::new(32, 32), CallKind::Intra { radius: 2 });
        let v = check_iim(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "occupancy.iim_deadlock");
        assert!(v[0].witness.contains("iim_lines=3"), "{}", v[0].witness);
    }

    #[test]
    fn short_frame_excuses_small_iim() {
        let mut c = EngineConfig::prototype();
        c.iim_lines = 3;
        // height 3 ≤ iim_lines: every line stays resident.
        let s = scenario(c, Dims::new(32, 3), CallKind::Intra { radius: 2 });
        assert!(check_iim(&s).is_empty());
    }

    #[test]
    fn oim_bound_matches_rate_argument() {
        // Prototype: d=2 ⇒ bound ≈ n/2 + 2, capped at 16·width.
        let s = scenario(EngineConfig::prototype(), Dims::new(352, 288), CallKind::Inter);
        let n = 352 * 288u64;
        assert_eq!(oim_occupancy_bound(&s), (n.div_ceil(2) + 2).min(16 * 352));
        assert_eq!(oim_occupancy_bound(&s), 16 * 352, "CIF saturates the FIFO bound");
        // Tiny frame: rate bound governs.
        let t = scenario(EngineConfig::prototype(), Dims::new(4, 4), CallKind::Inter);
        assert_eq!(oim_occupancy_bound(&t), 8 + 2);
    }

    #[test]
    fn drain_every_cycle_needs_constant_headroom() {
        let mut c = EngineConfig::prototype();
        c.oim_drain_cycles_per_pixel = 1;
        let s = scenario(c, Dims::new(352, 288), CallKind::Inter);
        assert_eq!(oim_occupancy_bound(&s), 2, "d=1 drains as fast as produced");
    }

    #[test]
    fn zero_capacity_oim_is_reported() {
        let mut c = EngineConfig::prototype();
        c.oim_lines = 0;
        let s = scenario(c, Dims::new(16, 16), CallKind::Inter);
        let v = check_oim(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "occupancy.oim_capacity");
    }

    #[test]
    fn segment_bound_uses_segment_pixels() {
        let s = scenario(
            EngineConfig::prototype(),
            Dims::new(352, 288),
            CallKind::Segment { pixels: 10 },
        );
        assert_eq!(produced_pixels(&s), 10);
        assert_eq!(oim_occupancy_bound(&s), 7, "⌈10/2⌉+2");
    }
}
