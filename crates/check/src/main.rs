//! `vip-check` — static schedule/hazard verifier and workspace lint.
//!
//! Runs the full model-checking sweep (ZBT bank schedule, IIM/OIM
//! occupancy, start-pipeline hazards, call-timeline ordering) plus the
//! source lints over the enclosing workspace, prints every violation
//! with its witness, and exits non-zero if any invariant fails.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

/// Walks up from the current directory to the workspace root (the
/// first `Cargo.toml` declaring `[workspace]`).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("vip-check: no workspace Cargo.toml found above the current directory");
                return ExitCode::FAILURE;
            }
        },
    };
    println!("vip-check: verifying workspace at {}", root.display());
    let report = vip_check::check_workspace(&root);
    println!("{report}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
