//! Hazard-freedom of the 4-stage Process-Unit pipeline (§3.2, §3.5).
//!
//! The PLC start-pipeline is an in-order 4-slot shift register; the
//! arbiter guarantees instructions in different stages never touch the
//! same datapath resource. [`check_start_pipeline`] *proves* hazard
//! freedom by exhaustively driving a real
//! [`StartPipeline`] + [`Arbiter`] pair through **every** control
//! sequence of a given length — each cycle is one of stall, advance, or
//! advance-and-issue, exactly the three moves the Process-Unit loop can
//! make — and checking, against an independent queue model:
//!
//! * every occupied stage locks its own resource with no conflict
//!   (resource injectivity, §3.2),
//! * bundles retire strictly in issue order after exactly four advances
//!   (in-order, fixed-latency),
//! * occupancy never exceeds the four slots, and stage contents match
//!   the model queue cycle by cycle,
//! * conservation: issued = retired + in flight, at every cycle.
//!
//! Sequences of length [`DEFAULT_SEQUENCE_LEN`] cover every reachable
//! pipeline state several times over (the pipeline holds only 4 slots,
//! so its state space is exhausted by much shorter prefixes).
//!
//! [`check_pipeline_depth`] adds the configuration-level check: the
//! cycle-stepped fidelity hard-codes the four §3.5 stages, so a
//! `Detailed` configuration must declare `pipeline_stages == 4`.

use std::collections::VecDeque;

use vip_engine::config::SimulationFidelity;
use vip_engine::plc::{Arbiter, FetchKind, PixelBundle, Resource, Stage, StartPipeline};

use crate::witness::Scenario;
use crate::{CheckReport, Violation};

/// Control-sequence length of the exhaustive pass: `3^LEN` sequences.
pub const DEFAULT_SEQUENCE_LEN: usize = 9;

/// One per-cycle control decision of the Process-Unit loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctl {
    /// Pipeline stalled (IIM miss or OIM full; §3.3 disable).
    Stall,
    /// Advance without issuing (scan FSM exhausted).
    Advance,
    /// Advance, then issue the next bundle into stage 1.
    AdvanceIssue,
}

impl Ctl {
    const ALL: [Ctl; 3] = [Ctl::Stall, Ctl::Advance, Ctl::AdvanceIssue];

    fn letter(self) -> char {
        match self {
            Ctl::Stall => 'S',
            Ctl::Advance => 'A',
            Ctl::AdvanceIssue => 'I',
        }
    }
}

/// Decodes sequence number `id` into `len` base-3 control decisions.
fn decode(mut id: usize, len: usize) -> Vec<Ctl> {
    let mut seq = Vec::with_capacity(len);
    for _ in 0..len {
        seq.push(Ctl::ALL[id % 3]);
        id /= 3;
    }
    seq
}

/// Renders a control sequence as a witness string (`S`/`A`/`I` per
/// cycle).
fn witness_of(seq: &[Ctl], cycle: usize) -> String {
    let letters: String = seq.iter().map(|c| c.letter()).collect();
    format!("control sequence {letters}, cycle {cycle}")
}

/// Drives one control sequence through a real pipeline + arbiter pair,
/// returning every invariant violation.
fn run_sequence(seq: &[Ctl]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut pipeline = StartPipeline::new();
    let mut arbiter = Arbiter::new();
    // Independent model: (pixel index, advances seen) per in-flight
    // bundle, oldest first.
    let mut model: VecDeque<(usize, usize)> = VecDeque::new();
    let mut next_index = 0usize;
    let mut issued = 0u64;
    let mut expected_retire = 0usize;

    for (cycle, ctl) in seq.iter().enumerate() {
        arbiter.next_cycle();
        match ctl {
            Ctl::Stall => pipeline.stall(),
            Ctl::Advance | Ctl::AdvanceIssue => {
                let retired = pipeline.advance();
                for slot in &mut model {
                    slot.1 += 1;
                }
                let model_retired = match model.front() {
                    Some(&(idx, 4)) => {
                        model.pop_front();
                        Some(idx)
                    }
                    _ => None,
                };
                if retired.map(|b| b.pixel_index) != model_retired {
                    out.push(Violation {
                        check: "pipeline.latency",
                        message: format!(
                            "pipeline retired {:?} but the 4-advance model expected {:?}",
                            retired.map(|b| b.pixel_index),
                            model_retired
                        ),
                        witness: witness_of(seq, cycle),
                    });
                }
                if let Some(idx) = model_retired {
                    if idx != expected_retire {
                        out.push(Violation {
                            check: "pipeline.order",
                            message: format!(
                                "bundle {idx} retired before bundle {expected_retire} \
                                 — out-of-order retirement"
                            ),
                            witness: witness_of(seq, cycle),
                        });
                    }
                    expected_retire = idx + 1;
                }
                if *ctl == Ctl::AdvanceIssue {
                    if !pipeline.can_issue() {
                        out.push(Violation {
                            check: "pipeline.issue",
                            message: "stage 1 still occupied after an advance".to_string(),
                            witness: witness_of(seq, cycle),
                        });
                    } else {
                        pipeline.issue(PixelBundle::new(next_index, FetchKind::Shift));
                        model.push_back((next_index, 0));
                        next_index += 1;
                        issued += 1;
                    }
                }
            }
        }

        // Resource injectivity: every occupied stage locks its own
        // resource; the arbiter must grant all of them conflict-free.
        let mut occupied = 0usize;
        for stage in Stage::ALL {
            if pipeline.at(stage).is_some() {
                occupied += 1;
                if !arbiter.try_lock(stage.resource()) {
                    out.push(Violation {
                        check: "pipeline.resource_conflict",
                        message: format!(
                            "stage `{stage}` could not lock its resource {:?} — two \
                             stages share a datapath resource",
                            stage.resource()
                        ),
                        witness: witness_of(seq, cycle),
                    });
                }
            }
        }
        if occupied > Stage::ALL.len() {
            out.push(Violation {
                check: "pipeline.occupancy",
                message: format!("{occupied} bundles in a 4-slot pipeline"),
                witness: witness_of(seq, cycle),
            });
        }
        let locked = Resource::ALL.iter().filter(|r| arbiter.is_locked(**r)).count();
        if locked != occupied {
            out.push(Violation {
                check: "pipeline.resource_count",
                message: format!("{occupied} occupied stages hold {locked} resource locks"),
                witness: witness_of(seq, cycle),
            });
        }

        // Stage contents must match the model queue: a bundle that has
        // seen `a` advances since issue sits in stage `a`.
        for &(idx, age) in &model {
            let stage = Stage::ALL[age];
            if pipeline.at(stage).map(|b| b.pixel_index) != Some(idx) {
                out.push(Violation {
                    check: "pipeline.stage_tracking",
                    message: format!(
                        "bundle {idx} (age {age}) is not in stage `{stage}`"
                    ),
                    witness: witness_of(seq, cycle),
                });
            }
        }

        // Conservation: issued = retired + in flight.
        if issued != pipeline.retired() + model.len() as u64 {
            out.push(Violation {
                check: "pipeline.conservation",
                message: format!(
                    "issued {issued} ≠ retired {} + in-flight {}",
                    pipeline.retired(),
                    model.len()
                ),
                witness: witness_of(seq, cycle),
            });
        }
    }
    out
}

/// Exhaustively verifies the start-pipeline against **all** `3^len`
/// control sequences of length `len`, fanning contiguous id ranges out
/// across the `vip-par` work pool. Chunk reports merge in ascending id
/// order, so the report (cases and violation order) is identical to the
/// serial pass at any thread count.
#[must_use]
pub fn check_start_pipeline(len: usize) -> CheckReport {
    let total = 3usize.pow(len as u32);
    let threads = vip_par::default_threads();
    // Oversplit so one slow chunk cannot serialise the pass.
    let ranges = vip_par::chunks(total, threads * 8);
    let partials = vip_par::map(&ranges, threads, |range| {
        let mut report = CheckReport::default();
        for id in range.clone() {
            let seq = decode(id, len);
            report.cases += 1;
            report.violations.extend(run_sequence(&seq));
        }
        report
    });
    let mut report = CheckReport::default();
    for partial in partials {
        report.merge(partial);
    }
    report
}

/// Configuration-level depth check: the cycle-stepped (`Detailed`)
/// fidelity hard-codes the four §3.5 stages, so any other declared
/// depth would silently diverge from the simulated datapath.
#[must_use]
pub fn check_pipeline_depth(s: &Scenario) -> Vec<Violation> {
    let mut out = Vec::new();
    if s.config.pipeline_stages == 0 {
        out.push(Violation {
            check: "pipeline.depth",
            message: "pipeline_stages is zero — the Process Unit needs its four stages"
                .to_string(),
            witness: s.witness(),
        });
    }
    if s.config.fidelity == SimulationFidelity::Detailed
        && s.config.pipeline_stages != Stage::ALL.len()
    {
        out.push(Violation {
            check: "pipeline.depth",
            message: format!(
                "Detailed fidelity simulates the hard-wired {}-stage datapath but the \
                 configuration declares pipeline_stages={} — analytic and cycle-stepped \
                 models would disagree",
                Stage::ALL.len(),
                s.config.pipeline_stages
            ),
            witness: s.witness(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::Dims;
    use vip_engine::config::EngineConfig;
    use crate::witness::CallKind;

    #[test]
    fn short_exhaustive_pass_is_clean() {
        let report = check_start_pipeline(7);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.cases, 3u64.pow(7));
    }

    #[test]
    fn parallel_exhaustive_pass_matches_serial_loop() {
        // The fan-out must be unobservable: same cases count and same
        // violation order as a plain serial loop over all ids.
        let len = 6;
        let mut serial = CheckReport::default();
        for id in 0..3usize.pow(len as u32) {
            serial.cases += 1;
            serial.violations.extend(run_sequence(&decode(id, len)));
        }
        assert_eq!(check_start_pipeline(len), serial);
    }

    #[test]
    fn all_issue_sequence_fills_and_flows() {
        let seq = vec![Ctl::AdvanceIssue; 12];
        assert!(run_sequence(&seq).is_empty());
    }

    #[test]
    fn stalls_preserve_state() {
        let seq = vec![
            Ctl::AdvanceIssue,
            Ctl::Stall,
            Ctl::Stall,
            Ctl::AdvanceIssue,
            Ctl::Stall,
            Ctl::Advance,
            Ctl::Advance,
            Ctl::Advance,
        ];
        assert!(run_sequence(&seq).is_empty());
    }

    #[test]
    fn decode_is_exhaustive_and_stable() {
        assert_eq!(decode(0, 3), vec![Ctl::Stall; 3]);
        let seq = decode(3 + 2 * 9, 3);
        assert_eq!(seq, vec![Ctl::Stall, Ctl::Advance, Ctl::AdvanceIssue]);
    }

    #[test]
    fn detailed_fidelity_requires_four_stages() {
        let mut c = EngineConfig::prototype_detailed();
        c.pipeline_stages = 5;
        let s = Scenario::new("deep", c, Dims::new(16, 16), CallKind::Inter);
        let v = check_pipeline_depth(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "pipeline.depth");
        assert!(v[0].witness.contains("pipeline_stages=5"), "{}", v[0].witness);
    }

    #[test]
    fn analytic_fidelity_allows_other_depths() {
        let mut c = EngineConfig::prototype();
        c.pipeline_stages = 6;
        let s = Scenario::new("deep", c, Dims::new(16, 16), CallKind::Inter);
        assert!(check_pipeline_depth(&s).is_empty());
    }
}
