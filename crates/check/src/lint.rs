//! Token-level workspace lint.
//!
//! A comment- and string-aware scanner over `crates/**/*.rs`,
//! `tests/*.rs`, `examples/*.rs` and every `Cargo.toml`, enforcing the
//! workspace invariants that `rustc` cannot:
//!
//! * **metric-key agreement** — every string literal passed to a
//!   metrics-registry call (`inc`, `observe`, `add_gauge`, `max_gauge`,
//!   `counter`, `gauge`, `histogram`, `record_*`) must be declared in
//!   `vip-engine::report::keys`, and every declared key must be used
//!   somewhere (no orphans — the metric-key drift PR 1 surfaced);
//!   `vip-obs` is exempt as the generic registry layer,
//! * **no wall clock in simulation crates** — `vip-core`, `vip-engine`,
//!   `vip-gme` and `vip-par` model time with the virtual clock only; any
//!   `std::time::{Instant, SystemTime}` path or
//!   `Instant::now`/`SystemTime::now` call is nondeterminism smuggled
//!   into the simulation (`Duration` as a value type is fine),
//! * **no external dependencies** — every `[dependencies]`-like section
//!   may name only `vip-*` path/workspace crates (the offline-build
//!   invariant recorded in CHANGES.md),
//! * **`#![forbid(unsafe_code)]`** in every crate root.
//!
//! Violations carry `file:line` witnesses. The scanner strips `//` and
//! nested `/* */` comments, ordinary/raw/byte string literals, char
//! literals and lifetimes, so text inside strings or docs never
//! triggers a lint.

use std::fs;
use std::path::{Path, PathBuf};

use crate::{CheckReport, Violation};

/// Crates that must not read the wall clock (virtual time only). The
/// `vip-par` work pool is included: it runs inside simulation sweeps,
/// so any wall-clock read there would smuggle nondeterminism into them.
pub const SIMULATION_CRATES: [&str; 4] = ["core", "engine", "gme", "par"];

/// Crates exempt from the metric-key cross-check (the generic registry
/// layer, whose docs and tests use free-form example keys).
pub const METRIC_KEY_EXEMPT_CRATES: [&str; 1] = ["obs"];

/// Registry methods whose first argument is a metrics key.
const METRIC_METHODS: [&str; 7] =
    ["inc", "observe", "add_gauge", "max_gauge", "counter", "gauge", "histogram"];

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Str(String),
    Punct(char),
}

/// Strips comments/strings and tokenizes Rust source.
fn tokenize(src: &str) -> Vec<(usize, Token)> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let (value, next, lines) = scan_string(&chars, i);
                out.push((line, Token::Str(value)));
                line += lines;
                i = next;
            }
            '\'' => {
                // Char literal vs lifetime: an escape or a closing quote
                // two ahead means a char literal; otherwise a lifetime.
                if chars.get(i + 1) == Some(&'\\') {
                    i += 2;
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if chars.get(i + 2) == Some(&'\'') {
                    i += 3;
                } else {
                    i += 1; // lifetime: the ident tokenizes next
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                // Raw / byte string prefixes.
                let raw = matches!(ident.as_str(), "r" | "br")
                    && matches!(chars.get(i), Some('"') | Some('#'));
                let byte = ident == "b" && chars.get(i) == Some(&'"');
                if raw {
                    let (value, next, lines) = scan_raw_string(&chars, i);
                    out.push((line, Token::Str(value)));
                    line += lines;
                    i = next;
                } else if byte {
                    let (value, next, lines) = scan_string(&chars, i);
                    out.push((line, Token::Str(value)));
                    line += lines;
                    i = next;
                } else {
                    out.push((line, Token::Ident(ident)));
                }
            }
            _ if c.is_ascii_digit() => {
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            _ if c.is_whitespace() => i += 1,
            _ => {
                out.push((line, Token::Punct(c)));
                i += 1;
            }
        }
    }
    out
}

/// Scans a `"…"` string starting at the opening quote; returns the
/// value, the index past the closing quote, and newlines consumed.
fn scan_string(chars: &[char], start: usize) -> (String, usize, usize) {
    let mut i = start + 1;
    let mut value = String::new();
    let mut lines = 0;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                if let Some(&esc) = chars.get(i + 1) {
                    value.push(esc);
                    if esc == '\n' {
                        lines += 1;
                    }
                }
                i += 2;
            }
            '"' => return (value, i + 1, lines),
            c => {
                if c == '\n' {
                    lines += 1;
                }
                value.push(c);
                i += 1;
            }
        }
    }
    (value, i, lines)
}

/// Scans a raw string `#…#"…"#…#` starting at the first `#` or `"`.
fn scan_raw_string(chars: &[char], start: usize) -> (String, usize, usize) {
    let mut i = start;
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let mut value = String::new();
    let mut lines = 0;
    while i < chars.len() {
        if chars[i] == '"' && chars[i + 1..].iter().take(hashes).filter(|c| **c == '#').count() == hashes
        {
            return (value, i + 1 + hashes, lines);
        }
        if chars[i] == '\n' {
            lines += 1;
        }
        value.push(chars[i]);
        i += 1;
    }
    (value, i, lines)
}

/// What one Rust file contributes to the workspace lints.
#[derive(Debug, Default)]
struct FileScan {
    /// `(line, key)` string literals passed to metric-registry calls.
    metric_literals: Vec<(usize, String)>,
    /// `(const name, key literal)` definitions inside `pub mod keys`.
    key_definitions: Vec<(String, String)>,
    /// Names referenced as `keys::NAME`.
    key_const_uses: Vec<String>,
    /// `(line, pattern)` wall-clock accesses.
    wall_clock: Vec<(usize, &'static str)>,
    /// Whether the file contains `forbid(unsafe_code)`.
    has_forbid_unsafe: bool,
}

fn ident_at(tokens: &[(usize, Token)], i: usize) -> Option<&str> {
    match tokens.get(i) {
        Some((_, Token::Ident(s))) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[(usize, Token)], i: usize, c: char) -> bool {
    matches!(tokens.get(i), Some((_, Token::Punct(p))) if *p == c)
}

fn is_metric_method(name: &str) -> bool {
    METRIC_METHODS.contains(&name) || name.starts_with("record_")
}

/// Identifiers reachable from a `::` path continuation at `start`:
/// either the single next segment (`::Instant`) or every name inside a
/// use-group (`::{Duration, Instant}`).
fn path_tail_idents(tokens: &[(usize, Token)], start: usize) -> Vec<&str> {
    if !(punct_at(tokens, start, ':') && punct_at(tokens, start + 1, ':')) {
        return Vec::new();
    }
    if let Some(name) = ident_at(tokens, start + 2) {
        return vec![name];
    }
    let mut out = Vec::new();
    if punct_at(tokens, start + 2, '{') {
        let mut j = start + 3;
        while j < tokens.len() && !punct_at(tokens, j, '}') {
            if let Some(name) = ident_at(tokens, j) {
                out.push(name);
            }
            j += 1;
        }
    }
    out
}

/// Scans one tokenized Rust file for every lint-relevant pattern.
fn scan_tokens(tokens: &[(usize, Token)]) -> FileScan {
    let mut scan = FileScan::default();
    for i in 0..tokens.len() {
        // `.method("key"` — a literal metric key.
        if punct_at(tokens, i, '.') {
            if let Some(method) = ident_at(tokens, i + 1) {
                if is_metric_method(method) && punct_at(tokens, i + 2, '(') {
                    if let Some((line, Token::Str(key))) = tokens.get(i + 3) {
                        scan.metric_literals.push((*line, key.clone()));
                    }
                }
            }
        }
        // `pub const NAME: &str = "key"` — a key definition.
        if ident_at(tokens, i) == Some("pub")
            && ident_at(tokens, i + 1) == Some("const")
            && punct_at(tokens, i + 3, ':')
            && punct_at(tokens, i + 4, '&')
            && ident_at(tokens, i + 5) == Some("str")
            && punct_at(tokens, i + 6, '=')
        {
            if let (Some(name), Some((_, Token::Str(value)))) =
                (ident_at(tokens, i + 2), tokens.get(i + 7))
            {
                scan.key_definitions.push((name.to_string(), value.clone()));
            }
        }
        // `keys::NAME` — a key used through its constant.
        if ident_at(tokens, i) == Some("keys")
            && punct_at(tokens, i + 1, ':')
            && punct_at(tokens, i + 2, ':')
        {
            if let Some(name) = ident_at(tokens, i + 3) {
                scan.key_const_uses.push(name.to_string());
            }
        }
        // Wall-clock patterns. `std::time::Duration` is a deterministic
        // value type and allowed; only the clock sources are banned.
        if punct_at(tokens, i + 1, ':') && punct_at(tokens, i + 2, ':') {
            let line = tokens[i].0;
            match (ident_at(tokens, i), ident_at(tokens, i + 3)) {
                (Some("std"), Some("time")) => {
                    for name in path_tail_idents(tokens, i + 4) {
                        match name {
                            "Instant" => scan.wall_clock.push((line, "std::time::Instant")),
                            "SystemTime" => {
                                scan.wall_clock.push((line, "std::time::SystemTime"));
                            }
                            _ => {}
                        }
                    }
                }
                (Some("Instant"), Some("now")) => scan.wall_clock.push((line, "Instant::now")),
                (Some("SystemTime"), Some("now")) => {
                    scan.wall_clock.push((line, "SystemTime::now"));
                }
                _ => {}
            }
        }
        // `forbid(unsafe_code)`.
        if ident_at(tokens, i) == Some("forbid")
            && punct_at(tokens, i + 1, '(')
            && ident_at(tokens, i + 2) == Some("unsafe_code")
        {
            scan.has_forbid_unsafe = true;
        }
    }
    scan
}

/// Recursively collects files with the given extension, sorted for
/// deterministic reports.
fn collect_files(dir: &Path, ext: &str, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            // Never descend into build artefacts.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_files(&path, ext, out);
        } else if path.extension().is_some_and(|e| e == ext) {
            out.push(path);
        }
    }
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…`).
fn crate_of(rel: &Path) -> Option<String> {
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy());
    if parts.next().as_deref() == Some("crates") {
        parts.next().map(|s| s.to_string())
    } else {
        None
    }
}

/// Lints the dependency sections of one `Cargo.toml`.
fn lint_cargo_toml(text: &str, rel: &str, out: &mut Vec<Violation>) {
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if !(section.ends_with("dependencies")) || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name_part, spec)) = line.split_once('=') else {
            continue;
        };
        let name = name_part
            .trim()
            .trim_matches('"')
            .split('.')
            .next()
            .unwrap_or_default()
            .to_string();
        let witness = format!("{rel}:{}", idx + 1);
        if !name.starts_with("vip-") {
            out.push(Violation {
                check: "lint.external_dependency",
                message: format!(
                    "dependency `{name}` is not a vip-* workspace crate — the workspace \
                     builds fully offline (CHANGES.md invariant)"
                ),
                witness,
            });
        } else if !(spec.contains("workspace") || spec.contains("path")) {
            out.push(Violation {
                check: "lint.external_dependency",
                message: format!(
                    "dependency `{name}` must be a path/workspace dependency, not a \
                     registry version"
                ),
                witness,
            });
        }
    }
}

/// Runs every source lint over the workspace rooted at `root`.
///
/// `root` is the directory containing the workspace `Cargo.toml` and the
/// `crates/` tree. Returns one case per scanned file.
#[must_use]
pub fn lint_workspace(root: &Path) -> CheckReport {
    let mut report = CheckReport::default();

    // --- Collect sources.
    let mut rust_files = Vec::new();
    for dir in ["crates", "tests", "examples"] {
        collect_files(&root.join(dir), "rs", &mut rust_files);
    }
    let mut cargo_tomls = vec![root.join("Cargo.toml")];
    collect_files(&root.join("crates"), "toml", &mut cargo_tomls);

    let mut key_definitions: Vec<(String, String, String)> = Vec::new(); // name, key, file
    let mut key_const_uses: Vec<String> = Vec::new();
    let mut metric_literals: Vec<(String, usize, String)> = Vec::new(); // file, line, key
    let mut forbid_by_crate: Vec<(String, bool, String)> = Vec::new(); // crate, has, file

    for path in &rust_files {
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        report.cases += 1;
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel_str = rel.display().to_string();
        let krate = crate_of(rel);
        let scan = scan_tokens(&tokenize(&src));

        let exempt = krate
            .as_deref()
            .is_some_and(|k| METRIC_KEY_EXEMPT_CRATES.contains(&k));
        if !exempt {
            for (line, key) in scan.metric_literals {
                metric_literals.push((rel_str.clone(), line, key));
            }
            for (name, key) in scan.key_definitions {
                key_definitions.push((name, key, rel_str.clone()));
            }
            key_const_uses.extend(scan.key_const_uses);
        }

        if krate
            .as_deref()
            .is_some_and(|k| SIMULATION_CRATES.contains(&k))
        {
            for (line, pattern) in scan.wall_clock {
                report.violations.push(Violation {
                    check: "lint.wall_clock",
                    message: format!(
                        "`{pattern}` in a simulation crate — vip-core/engine/gme/par \
                         model time with the virtual clock only"
                    ),
                    witness: format!("{rel_str}:{line}"),
                });
            }
        }

        if rel.ends_with(Path::new("src/lib.rs")) {
            if let Some(k) = krate {
                forbid_by_crate.push((k, scan.has_forbid_unsafe, rel_str.clone()));
            }
        }
    }

    // --- Metric-key cross-check.
    for (file, line, key) in &metric_literals {
        if !key_definitions.iter().any(|(_, k, _)| k == key) {
            report.violations.push(Violation {
                check: "lint.metric_key_unknown",
                message: format!(
                    "metric key \"{key}\" is not declared in vip-engine::report::keys"
                ),
                witness: format!("{file}:{line}"),
            });
        }
    }
    for (name, key, file) in &key_definitions {
        let used_by_const = key_const_uses.iter().any(|u| u == name);
        let used_by_literal = metric_literals.iter().any(|(_, _, k)| k == key);
        if !used_by_const && !used_by_literal {
            report.violations.push(Violation {
                check: "lint.metric_key_orphan",
                message: format!(
                    "metric key {name} (\"{key}\") is declared but never recorded — \
                     dead telemetry"
                ),
                witness: file.clone(),
            });
        }
    }

    // --- forbid(unsafe_code) in every crate root.
    for (krate, has, file) in &forbid_by_crate {
        if !has {
            report.violations.push(Violation {
                check: "lint.missing_forbid_unsafe",
                message: format!("crate `{krate}` does not `#![forbid(unsafe_code)]`"),
                witness: file.clone(),
            });
        }
    }

    // --- Cargo.toml dependency allowlist.
    for path in &cargo_tomls {
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        report.cases += 1;
        let rel = path.strip_prefix(root).unwrap_or(path).display().to_string();
        lint_cargo_toml(&text, &rel, &mut report.violations);
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real workspace root (two levels up from this crate).
    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    /// A scratch fixture workspace under `target/`, kept inside the
    /// repository.
    fn fixture_root(name: &str) -> PathBuf {
        let root = workspace_root().join("target/vip-check-fixtures").join(name);
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/engine/src")).unwrap();
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n").unwrap();
        root
    }

    #[test]
    fn tokenizer_strips_comments_and_strings() {
        let src = r##"
            // reg.inc("comment.key", 1);
            /* nested /* reg.inc("block.key", 1) */ still comment */
            let s = "reg.inc(\"string.key\", 1)";
            let raw = r#"reg.inc("raw.key", 1)"#;
            let life: &'static str = "x";
            let c = '\'';
            reg.inc("real.key", 1);
        "##;
        let scan = scan_tokens(&tokenize(src));
        assert_eq!(scan.metric_literals.len(), 1, "{:?}", scan.metric_literals);
        assert_eq!(scan.metric_literals[0].1, "real.key");
    }

    #[test]
    fn tokenizer_tracks_lines() {
        let src = "let a = 1;\nlet b = 2;\nreg.observe(\"k\", &[1.0], 2.0);\n";
        let scan = scan_tokens(&tokenize(src));
        assert_eq!(scan.metric_literals, vec![(3, "k".to_string())]);
    }

    #[test]
    fn wall_clock_patterns_detected_but_not_enum_variants() {
        let src = "
            use std::time::Instant;
            let t = Instant::now();
            let s = SystemTime::now();
            let p = Phase::Instant; // an enum variant, not the clock
        ";
        let scan = scan_tokens(&tokenize(src));
        let patterns: Vec<&str> = scan.wall_clock.iter().map(|(_, p)| *p).collect();
        assert_eq!(patterns, vec!["std::time::Instant", "Instant::now", "SystemTime::now"]);
    }

    #[test]
    fn duration_is_allowed_but_grouped_instant_is_not() {
        let ok = scan_tokens(&tokenize("use std::time::Duration;"));
        assert!(ok.wall_clock.is_empty(), "{:?}", ok.wall_clock);
        let bad = scan_tokens(&tokenize("use std::time::{Duration, Instant};"));
        let patterns: Vec<&str> = bad.wall_clock.iter().map(|(_, p)| *p).collect();
        assert_eq!(patterns, vec!["std::time::Instant"]);
    }

    #[test]
    fn forbid_detection() {
        assert!(scan_tokens(&tokenize("#![forbid(unsafe_code)]")).has_forbid_unsafe);
        assert!(!scan_tokens(&tokenize("// #![forbid(unsafe_code)]")).has_forbid_unsafe);
    }

    #[test]
    fn key_definitions_and_const_uses() {
        let src = "
            pub mod keys {
                pub const A: &str = \"x.a\";
            }
            fn f(r: &mut R) { r.inc(keys::A, 1); }
        ";
        let scan = scan_tokens(&tokenize(src));
        assert_eq!(scan.key_definitions, vec![("A".to_string(), "x.a".to_string())]);
        assert_eq!(scan.key_const_uses, vec!["A".to_string()]);
    }

    #[test]
    fn cargo_toml_external_dep_flagged() {
        let mut v = Vec::new();
        lint_cargo_toml(
            "[package]\nname = \"x\"\n[dependencies]\nvip-core = { workspace = true }\nrand = \"0.8\"\n",
            "crates/x/Cargo.toml",
            &mut v,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "lint.external_dependency");
        assert!(v[0].message.contains("rand"));
        assert_eq!(v[0].witness, "crates/x/Cargo.toml:5");
    }

    #[test]
    fn cargo_toml_registry_version_flagged() {
        let mut v = Vec::new();
        lint_cargo_toml(
            "[dependencies]\nvip-core = \"1.0\"\n",
            "crates/x/Cargo.toml",
            &mut v,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("path/workspace"));
    }

    #[test]
    fn cargo_toml_features_and_tests_ignored() {
        let mut v = Vec::new();
        lint_cargo_toml(
            "[features]\nserde = []\n[[test]]\nname = \"t\"\npath = \"../t.rs\"\n",
            "crates/x/Cargo.toml",
            &mut v,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn injected_orphan_key_is_caught() {
        // Regression test for the metric-key cross-check: a key declared
        // in report::keys but never recorded anywhere must be reported.
        let root = fixture_root("orphan-key");
        fs::write(
            root.join("crates/engine/src/report.rs"),
            "pub mod keys {\n\
             pub const USED: &str = \"engine.used\";\n\
             pub const ORPHANED: &str = \"engine.orphaned\";\n\
             }\n\
             pub fn record(r: &mut R) { r.inc(keys::USED, 1); }\n",
        )
        .unwrap();
        fs::write(
            root.join("crates/engine/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub mod report;\n",
        )
        .unwrap();
        let report = lint_workspace(&root);
        let orphans: Vec<&Violation> = report
            .violations
            .iter()
            .filter(|v| v.check == "lint.metric_key_orphan")
            .collect();
        assert_eq!(orphans.len(), 1, "{report}");
        assert!(orphans[0].message.contains("engine.orphaned"));
        assert!(orphans[0].witness.contains("report.rs"));
    }

    #[test]
    fn injected_orphan_attribution_key_is_caught() {
        // The attribution keys (`attrib.*`, the `vipctl report` buckets)
        // go through the same orphan cross-check as the engine counters:
        // declaring one without recording it anywhere must be flagged.
        let root = fixture_root("orphan-attrib-key");
        fs::write(
            root.join("crates/engine/src/report.rs"),
            "pub mod keys {\n\
             pub const BUSY: &str = \"attrib.pu.busy_cycles\";\n\
             pub const DRAIN: &str = \"attrib.oim.drain_cycles\";\n\
             }\n\
             pub fn record(r: &mut R) { r.inc(keys::BUSY, 1); }\n",
        )
        .unwrap();
        fs::write(
            root.join("crates/engine/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub mod report;\n",
        )
        .unwrap();
        let report = lint_workspace(&root);
        let orphans: Vec<&Violation> = report
            .violations
            .iter()
            .filter(|v| v.check == "lint.metric_key_orphan")
            .collect();
        assert_eq!(orphans.len(), 1, "{report}");
        assert!(orphans[0].message.contains("attrib.oim.drain_cycles"));
        assert!(orphans[0].witness.contains("report.rs"));
    }

    #[test]
    fn injected_unknown_key_is_caught_with_location() {
        let root = fixture_root("unknown-key");
        fs::write(
            root.join("crates/engine/src/report.rs"),
            "pub mod keys { pub const A: &str = \"engine.a\"; }\n\
             pub fn record(r: &mut R) { r.inc(keys::A, 1); }\n",
        )
        .unwrap();
        fs::write(
            root.join("crates/engine/src/lib.rs"),
            "#![forbid(unsafe_code)]\npub mod report;\n\
             pub fn oops(r: &mut R) {\n    r.inc(\"engine.bogus_key\", 1);\n}\n",
        )
        .unwrap();
        let report = lint_workspace(&root);
        let unknown: Vec<&Violation> = report
            .violations
            .iter()
            .filter(|v| v.check == "lint.metric_key_unknown")
            .collect();
        assert_eq!(unknown.len(), 1, "{report}");
        assert!(unknown[0].message.contains("engine.bogus_key"));
        assert!(unknown[0].witness.contains("lib.rs:4"), "{}", unknown[0].witness);
    }

    #[test]
    fn missing_forbid_and_wall_clock_are_caught() {
        let root = fixture_root("forbid-clock");
        fs::write(
            root.join("crates/engine/src/lib.rs"),
            "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n",
        )
        .unwrap();
        let report = lint_workspace(&root);
        assert!(
            report.violations.iter().any(|v| v.check == "lint.missing_forbid_unsafe"),
            "{report}"
        );
        assert!(report.violations.iter().any(|v| v.check == "lint.wall_clock"), "{report}");
    }

    #[test]
    fn real_workspace_is_clean() {
        let report = lint_workspace(&workspace_root());
        assert!(report.cases > 30, "only {} files scanned", report.cases);
        assert!(report.is_clean(), "{report}");
    }
}
