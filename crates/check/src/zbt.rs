//! Static verification of the six-bank ZBT access schedule (§3.1, fig. 3).
//!
//! The fig. 3 memory distribution gives every concurrent agent its own
//! banks: the inbound DMA writes and the Process Unit reads share the
//! paired input banks (0+1 and 2+3, lo/hi words at the same address),
//! while the OIM drain and the outbound DMA share the sequential result
//! banks (4 and 5). Conflict freedom therefore decomposes into
//!
//! * **map disjointness** ([`check_bank_map`]) — no two regions claim
//!   the same bank, and every claimed bank exists,
//! * **capacity** ([`check_capacity`]) — the frame fits each region,
//! * **input-port duty** ([`check_input_duty`]) — the single
//!   read/write port of each input bank can serve the inbound DMA's
//!   alternate-block strip writes *and* the transmission-unit reads in
//!   the same steady-state cycle budget (§3.1 sizes the prototype at
//!   exactly one DMA word + one read access per two-cycle pixel slot),
//! * **drain/DMA ordering** ([`check_output_overtake`]) — the outbound
//!   DMA's read pointer never overtakes the OIM drain's write pointer
//!   on the result banks, so the PC always receives finished pixels.
//!
//! The bank assignments are mirrored from [`vip_engine::zbt`] and locked
//! to it by a unit test, so the two models cannot drift apart silently.

use crate::schedule::{timeline_of, DrainModel};
use crate::witness::{CallKind, Scenario};
use crate::Violation;

/// Bank pairs of the fig. 3 regions, mirrored from
/// [`vip_engine::zbt::ZbtMemory`]: `(first_bank, last_bank)` for
/// input A, input B, Res_block_A, Res_block_B.
pub const REGION_BANKS: [(usize, usize); 4] = [(0, 1), (2, 3), (4, 4), (5, 5)];

/// Region labels matching [`REGION_BANKS`].
pub const REGION_NAMES: [&str; 4] = ["input_A", "input_B", "Res_block_A", "Res_block_B"];

/// Verifies that the fig. 3 bank map is disjoint and within the
/// configured bank count.
#[must_use]
pub fn check_bank_map(s: &Scenario) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, (first, last)) in REGION_BANKS.iter().enumerate() {
        if *last >= s.config.zbt_banks {
            out.push(Violation {
                check: "zbt.bank_range",
                message: format!(
                    "region {} claims bank {last} but the configuration has only {} banks",
                    REGION_NAMES[i], s.config.zbt_banks
                ),
                witness: s.witness(),
            });
        }
        for (j, (f2, l2)) in REGION_BANKS.iter().enumerate().skip(i + 1) {
            if first <= l2 && f2 <= last {
                out.push(Violation {
                    check: "zbt.bank_overlap",
                    message: format!(
                        "regions {} and {} overlap on banks {}..={} — concurrent DMA \
                         writes and Process-Unit reads would collide on one port",
                        REGION_NAMES[i],
                        REGION_NAMES[j],
                        (*first).max(*f2),
                        (*last).min(*l2)
                    ),
                    witness: s.witness(),
                });
            }
        }
    }
    out
}

/// Verifies that the scenario's frame fits every region of the bank map
/// (paired input regions need one word per pixel per bank; each result
/// block takes half the pixels at two sequential words each).
#[must_use]
pub fn check_capacity(s: &Scenario) -> Vec<Violation> {
    let mut out = Vec::new();
    let px = s.dims.pixel_count();
    let words = s.config.zbt_bank_words;
    if px >= words {
        out.push(Violation {
            check: "zbt.capacity",
            message: format!(
                "{px}-pixel frame needs {px} words per input bank and {} words per \
                 result block, but each bank holds {words} words",
                px.div_ceil(2) * 2
            ),
            witness: s.witness(),
        });
    }
    out
}

/// Verifies the steady-state port duty on the paired input banks: the
/// inbound DMA sustains `pci_bandwidth / 8` pixel writes per second
/// (one port cycle each, both banks in parallel) while the transmission
/// unit reads one pixel per produced pixel — one port cycle every
/// `oim_drain_cycles_per_pixel` engine cycles in the drain-governed
/// steady state. Both shares must fit one access per engine cycle.
///
/// Only addressing modes that overlap the inbound DMA with processing
/// are checked (intra strips, and inter in interleaved mode); sequential
/// inter and segment calls start processing after the input completed.
#[must_use]
pub fn check_input_duty(s: &Scenario) -> Vec<Violation> {
    let overlapped = match s.mode {
        CallKind::Intra { .. } => true,
        CallKind::Inter => {
            s.config.inter_overlap == vip_engine::config::InterOverlap::Interleaved
        }
        CallKind::Segment { .. } | CallKind::SegmentIndexed { .. } => false,
    };
    if !overlapped {
        return Vec::new();
    }
    let engine_hz = s.config.engine_clock.hz;
    let d = s.config.oim_drain_cycles_per_pixel.max(1) as f64;
    let dma_duty = (s.config.pci_bandwidth() / 8.0) / engine_hz;
    let pu_duty = 1.0 / d;
    let total = dma_duty + pu_duty;
    if total > 1.0 + 1e-9 {
        vec![Violation {
            check: "zbt.input_port_duty",
            message: format!(
                "input-bank port oversubscribed: DMA duty {dma_duty:.3} + \
                 Process-Unit read duty {pu_duty:.3} = {total:.3} accesses per engine \
                 cycle (> 1 port access, §3.1)"
            ),
            witness: s.witness(),
        }]
    } else {
        Vec::new()
    }
}

/// Verifies the §3.1 result-bank ordering guarantee: the outbound DMA,
/// started at the `output_latency_fraction` gate, never reads a result
/// pixel before the OIM drain has written it. The safety margin
/// `m(k) = output_start + (k−1)·r_out − D(k)` is concave in `k`
/// (affine minus a convex max of affines), so checking the first and
/// last drained pixel is exact for the whole call.
#[must_use]
pub fn check_output_overtake(s: &Scenario) -> Vec<Violation> {
    let model = DrainModel::of(s);
    let n = model.drained_pixels;
    if n < 1.0 {
        return Vec::new();
    }
    let t = timeline_of(s);
    let r_out = t.output_pci / t.pixels.max(1) as f64;
    let eps = 1e-12 + t.total.abs() * 1e-9;
    let mut out = Vec::new();
    for k in [1.0, n] {
        let dma_reads_at = t.output_start + (k - 1.0) * r_out;
        let drained_at = model.drained_at(k);
        if dma_reads_at + eps < drained_at {
            out.push(Violation {
                check: "zbt.output_overtake",
                message: format!(
                    "outbound DMA reads result pixel {k:.0} at {dma_reads_at:.9e} s but \
                     the OIM drain only writes it at {drained_at:.9e} s — the PC would \
                     receive unfinished data (§3.1 ordering)"
                ),
                witness: s.witness(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::Dims;
    use vip_engine::config::{EngineConfig, InterOverlap};
    use vip_engine::zbt::ZbtMemory;

    fn proto(dims: Dims, mode: CallKind) -> Scenario {
        Scenario::new("prototype", EngineConfig::prototype(), dims, mode)
    }

    #[test]
    fn region_banks_locked_to_engine_model() {
        // The checker's mirrored map must match the engine's fig. 3 map.
        let zbt = ZbtMemory::new(&EngineConfig::prototype());
        let map = zbt.memory_map(Dims::new(352, 288), 16);
        let banks: Vec<(usize, usize)> = map.regions.iter().map(|r| r.banks).collect();
        assert_eq!(banks, REGION_BANKS.to_vec());
    }

    #[test]
    fn prototype_map_is_disjoint_and_in_range() {
        let s = proto(Dims::new(352, 288), CallKind::Inter);
        assert!(check_bank_map(&s).is_empty());
    }

    #[test]
    fn too_few_banks_reported() {
        let mut c = EngineConfig::prototype();
        c.zbt_banks = 4;
        let s = Scenario::new("narrow", c, Dims::new(16, 16), CallKind::Inter);
        let v = check_bank_map(&s);
        assert!(v.iter().any(|v| v.check == "zbt.bank_range"), "{v:?}");
    }

    #[test]
    fn cif_fits_but_one_megapixel_does_not() {
        assert!(check_capacity(&proto(Dims::new(352, 288), CallKind::Inter)).is_empty());
        let v = check_capacity(&proto(Dims::new(1024, 1024), CallKind::Inter));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "zbt.capacity");
        assert!(v[0].message.contains("1048576"), "{}", v[0].message);
    }

    #[test]
    fn prototype_duty_is_exactly_saturated() {
        // §3.1: one DMA access + one PU read per two-cycle pixel slot.
        let s = proto(Dims::new(352, 288), CallKind::Intra { radius: 1 });
        assert!(check_input_duty(&s).is_empty());
    }

    #[test]
    fn fast_pci_oversubscribes_input_port() {
        let mut c = EngineConfig::prototype();
        c.pci_clock = vip_engine::clock::ClockDomain::new("pci", 133e6);
        let s = Scenario::new("fast-pci", c, Dims::new(352, 288), CallKind::Intra { radius: 1 });
        let v = check_input_duty(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "zbt.input_port_duty");
        assert!(v[0].witness.contains("pci_clock=133.0MHz"), "{}", v[0].witness);
    }

    #[test]
    fn sequential_inter_has_no_duty_overlap() {
        let mut c = EngineConfig::prototype();
        c.pci_clock = vip_engine::clock::ClockDomain::new("pci", 133e6);
        c.inter_overlap = InterOverlap::Sequential;
        let s = Scenario::new("fast-pci", c, Dims::new(352, 288), CallKind::Inter);
        assert!(check_input_duty(&s).is_empty(), "no overlap, no conflict");
    }

    #[test]
    fn prototype_never_overtakes_drain() {
        for mode in [
            CallKind::Intra { radius: 1 },
            CallKind::Inter,
            CallKind::Segment { pixels: 5_000 },
        ] {
            let s = proto(Dims::new(352, 288), mode);
            assert!(check_output_overtake(&s).is_empty(), "{mode}");
        }
    }

    #[test]
    fn slow_engine_lets_dma_overtake_drain() {
        let mut c = EngineConfig::prototype();
        c.engine_clock = vip_engine::clock::ClockDomain::new("engine", 33e6);
        let s = Scenario::new("slow-engine", c, Dims::new(352, 288), CallKind::Intra { radius: 1 });
        let v = check_output_overtake(&s);
        assert!(!v.is_empty(), "drain at 33 MHz cannot keep ahead of a 264 MB/s DMA");
        assert_eq!(v[0].check, "zbt.output_overtake");
    }

    #[test]
    fn zero_gate_fraction_overtakes_on_small_frames() {
        let mut c = EngineConfig::prototype();
        c.output_latency_fraction = 0.0;
        // Small frame: the lead exceeds the input transfer, so an
        // ungated DMA starts before the first pixel drained.
        let s = Scenario::new("no-gate", c, Dims::new(3, 3), CallKind::Intra { radius: 1 });
        let v = check_output_overtake(&s);
        assert!(!v.is_empty());
    }
}
