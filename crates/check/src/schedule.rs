//! Static verification of the §4.1 call schedule.
//!
//! The image-level controller's schedule is summarised by seven instants
//! per call: issue, inbound-DMA start, inbound-DMA end, outbound-DMA
//! start, drain end, outbound-DMA end, and call completion. The paper's
//! timeline (fig. of §4.1) requires every gap between consecutive
//! instants to be non-negative for *every* configuration — processing
//! can never finish before its inputs arrived, the outbound DMA can
//! never start while the bus is still receiving, and the call cannot
//! complete before the last result word left the board.
//!
//! [`check_timeline`] verifies that ordering, the PCI-serialisation
//! invariant (payload + interrupt overhead never exceeds the call
//! duration), and agreement between this crate's *independent*
//! re-derivation of the drain schedule ([`DrainModel`]) and the closed
//! forms in [`vip_engine::timing`] — so the verifier and the simulator
//! cannot drift apart silently.

use vip_engine::config::{EngineConfig, InterOverlap};
use vip_engine::timing::{inter_timeline, intra_timeline, segment_timeline, CallTimeline};

use crate::witness::{CallKind, Scenario};
use crate::Violation;

/// Labels of the seven §4.1 schedule instants, in causal order.
pub const INSTANT_LABELS: [&str; 7] = [
    "issue",
    "input_dma_start",
    "input_dma_end",
    "output_dma_start",
    "drain_end",
    "output_dma_end",
    "complete",
];

/// Computes the analytic timeline of a scenario.
#[must_use]
pub fn timeline_of(s: &Scenario) -> CallTimeline {
    match s.mode {
        CallKind::Intra { radius } => intra_timeline(s.dims, radius, &s.config),
        CallKind::Inter => inter_timeline(s.dims, &s.config),
        CallKind::Segment { pixels } => segment_timeline(s.dims, pixels, &s.config),
        // Indexed calls run in parallel to another scheme (§2.1); the
        // engine schedules them like a segment call over the table.
        CallKind::SegmentIndexed { entries } => segment_timeline(s.dims, entries, &s.config),
    }
}

/// Extracts the seven §4.1 instants (seconds from call issue) from a
/// timeline, in the order of [`INSTANT_LABELS`].
#[must_use]
pub fn instants(t: &CallTimeline) -> [f64; 7] {
    let half_irq = t.interrupt_overhead / 2.0;
    [
        0.0,
        half_irq,
        t.input_end,
        t.output_start,
        t.drain_end,
        t.total - half_irq,
        t.total,
    ]
}

/// The drain-completion schedule `D(k)` — the time at which the `k`-th
/// result pixel has been drained OIM → ZBT — re-derived from the
/// architectural parameters *independently* of [`vip_engine::timing`],
/// as a pointwise maximum of affine functions of `k` (arrival-bound and
/// drain-rate-bound branches). Convexity of that maximum is what lets
/// the overtake check in [`crate::zbt`] test only the endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainModel {
    /// Affine branches `(offset_seconds, seconds_per_pixel)`.
    branches: Vec<(f64, f64)>,
    /// Result pixels the call drains.
    pub drained_pixels: f64,
}

impl DrainModel {
    /// Builds the drain schedule of a scenario.
    #[must_use]
    pub fn of(s: &Scenario) -> Self {
        let config = &s.config;
        let n = s.dims.pixel_count() as f64;
        let w = s.dims.width as f64;
        let f_e = config.engine_clock.hz;
        let t_irq = config.interrupt_overhead_cycles as f64 / config.pci_clock.hz;
        let r_in = 8.0 / config.pci_bandwidth();
        let r_drain = config.oim_drain_cycles_per_pixel as f64 / f_e;
        let const_lead =
            (config.pipeline_stages as u64 + config.oim_drain_cycles_per_pixel) as f64 / f_e;

        let (branches, drained) = match s.mode {
            CallKind::Intra { radius } => {
                let lead = (radius as f64 + 2.0) * w * r_in + const_lead;
                (
                    vec![(t_irq + lead, r_in), (t_irq + lead, r_drain)],
                    n,
                )
            }
            CallKind::Inter => {
                let input_end = t_irq + 2.0 * n * r_in;
                match config.inter_overlap {
                    InterOverlap::Sequential => {
                        (vec![(input_end + const_lead, r_drain)], n)
                    }
                    InterOverlap::Interleaved => (
                        vec![
                            (t_irq + const_lead, 2.0 * r_in),
                            (t_irq + const_lead, r_drain),
                        ],
                        n,
                    ),
                }
            }
            CallKind::Segment { pixels } | CallKind::SegmentIndexed { entries: pixels } => {
                let input_end = t_irq + n * r_in;
                let r_seg = (config.oim_drain_cycles_per_pixel + 2) as f64 / f_e;
                (vec![(input_end, r_seg)], pixels as f64)
            }
        };
        DrainModel { branches, drained_pixels: drained }
    }

    /// `D(k)`: seconds from call issue until `k` result pixels are
    /// drained.
    #[must_use]
    pub fn drained_at(&self, k: f64) -> f64 {
        self.branches
            .iter()
            .map(|(a, b)| a + b * k)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The pixel count gating the outbound DMA.
    #[must_use]
    pub fn gate_pixels(&self, config: &EngineConfig) -> f64 {
        (config.output_latency_fraction * self.drained_pixels).ceil()
    }
}

/// Absolute tolerance for instant comparisons, scaled to the call.
fn eps_for(t: &CallTimeline) -> f64 {
    1e-12 + t.total.abs() * 1e-9
}

/// Verifies the schedule invariants of one scenario.
#[must_use]
pub fn check_timeline(s: &Scenario) -> Vec<Violation> {
    let mut out = Vec::new();
    let t = timeline_of(s);
    let eps = eps_for(&t);
    let ts = instants(&t);

    for i in 1..ts.len() {
        if ts[i] + eps < ts[i - 1] {
            out.push(Violation {
                check: "timeline.order",
                message: format!(
                    "instant `{}` ({:.9e} s) precedes `{}` ({:.9e} s)",
                    INSTANT_LABELS[i],
                    ts[i],
                    INSTANT_LABELS[i - 1],
                    ts[i - 1]
                ),
                witness: s.witness(),
            });
        }
    }

    // PCI serialisation: one bus carries the inbound payload, the
    // outbound payload, and the interrupt handshakes back to back, so
    // the call can never be shorter than their sum.
    let floor = t.input_pci + t.output_pci + t.interrupt_overhead;
    if t.total + eps < floor {
        out.push(Violation {
            check: "timeline.pci_serialisation",
            message: format!(
                "call duration {:.9e} s is below the serialised PCI floor {:.9e} s",
                t.total, floor
            ),
            witness: s.witness(),
        });
    }
    if t.pci_utilisation() > 1.0 + 1e-9 {
        out.push(Violation {
            check: "timeline.pci_utilisation",
            message: format!("PCI utilisation {} exceeds 1", t.pci_utilisation()),
            witness: s.witness(),
        });
    }

    // Independent drain model must agree with the engine's closed form:
    // D(n) is the drain end, and the gate instant can never exceed the
    // outbound DMA start.
    let model = DrainModel::of(s);
    let d_end = model.drained_at(model.drained_pixels);
    if (d_end - t.drain_end).abs() > eps {
        out.push(Violation {
            check: "timeline.model_agreement",
            message: format!(
                "independent drain model ends at {:.9e} s, engine timing at {:.9e} s",
                d_end, t.drain_end
            ),
            witness: s.witness(),
        });
    }
    let gate = model.gate_pixels(&s.config);
    if model.drained_at(gate) > t.output_start + eps {
        out.push(Violation {
            check: "timeline.gate",
            message: format!(
                "outbound DMA starts at {:.9e} s, before the {}-pixel drain gate at {:.9e} s",
                t.output_start,
                gate,
                model.drained_at(gate)
            ),
            witness: s.witness(),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::Dims;
    use vip_engine::config::EngineConfig;
    use crate::witness::Scenario;

    fn proto(dims: Dims, mode: CallKind) -> Scenario {
        Scenario::new("prototype", EngineConfig::prototype(), dims, mode)
    }

    #[test]
    fn prototype_modes_are_ordered() {
        let cif = Dims::new(352, 288);
        for mode in [
            CallKind::Intra { radius: 1 },
            CallKind::Inter,
            CallKind::Segment { pixels: 10_000 },
            CallKind::SegmentIndexed { entries: 512 },
        ] {
            let v = check_timeline(&proto(cif, mode));
            assert!(v.is_empty(), "{mode}: {v:?}");
        }
    }

    #[test]
    fn instants_are_seven_and_monotone() {
        let t = timeline_of(&proto(Dims::new(64, 48), CallKind::Inter));
        let ts = instants(&t);
        assert_eq!(ts.len(), INSTANT_LABELS.len());
        for w in ts.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "{ts:?}");
        }
        assert_eq!(ts[0], 0.0);
        assert_eq!(ts[6], t.total);
    }

    #[test]
    fn drain_model_matches_engine_for_all_modes() {
        for dims in [Dims::new(16, 16), Dims::new(352, 288), Dims::new(33, 7)] {
            for mode in [
                CallKind::Intra { radius: 0 },
                CallKind::Intra { radius: 2 },
                CallKind::Inter,
                CallKind::Segment { pixels: dims.pixel_count() as u64 / 3 },
            ] {
                let s = proto(dims, mode);
                let t = timeline_of(&s);
                let m = DrainModel::of(&s);
                let d = m.drained_at(m.drained_pixels);
                assert!(
                    (d - t.drain_end).abs() < 1e-12 + t.total * 1e-9,
                    "{s}: model {d} vs engine {}",
                    t.drain_end
                );
            }
        }
    }

    #[test]
    fn interleaved_inter_also_agrees() {
        let mut c = EngineConfig::prototype();
        c.inter_overlap = InterOverlap::Interleaved;
        let s = Scenario::new("ilv", c, Dims::new(176, 144), CallKind::Inter);
        assert!(check_timeline(&s).is_empty());
    }

    #[test]
    fn drain_model_is_convex_nondecreasing() {
        let s = proto(Dims::new(40, 30), CallKind::Intra { radius: 1 });
        let m = DrainModel::of(&s);
        let n = m.drained_pixels;
        let mut prev = m.drained_at(0.0);
        let mut prev_slope = f64::NEG_INFINITY;
        for i in 1..=20 {
            let k = n * i as f64 / 20.0;
            let v = m.drained_at(k);
            let slope = v - prev;
            assert!(v >= prev, "non-decreasing");
            assert!(slope >= prev_slope - 1e-15, "convex");
            prev = v;
            prev_slope = slope;
        }
    }
}
