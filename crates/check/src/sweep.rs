//! Scenario sweeps: the verified configuration family and the
//! adversarial grid.
//!
//! [`must_pass_scenarios`] enumerates the configuration family the
//! workspace ships (prototype, cycle-stepped prototype, §5 outlook,
//! Table 1 f_max operating point, interleaved inter overlap, and the
//! gate-fraction ablations) crossed with frame dimensions from 1×1 up
//! to CIF and all four addressing modes — several hundred scenarios the
//! `vip-check` binary requires to verify clean.
//!
//! [`adversarial_scenarios`] is the complement: deliberately broken
//! configurations (oversubscribed PCI, an engine clock too slow for the
//! outbound DMA, an undersized IIM, a zero-capacity OIM, a mis-declared
//! pipeline depth, a disabled drain gate, an overflowing frame) that
//! the checker must reject *with a concrete witness each* — asserted by
//! the crate tests and by `tests/static_vs_detailed.rs`.

use vip_core::geometry::Dims;
use vip_engine::clock::ClockDomain;
use vip_engine::config::{EngineConfig, InterOverlap};

use crate::witness::{CallKind, Scenario};

/// Frame dimensions of the sweep: degenerate, small odd, strip-sized,
/// QCIF and CIF.
pub const SWEEP_DIMS: [(usize, usize); 7] =
    [(1, 1), (3, 3), (16, 16), (17, 5), (64, 48), (176, 144), (352, 288)];

/// The configuration family the workspace must keep verification-clean.
#[must_use]
pub fn must_pass_configs() -> Vec<(&'static str, EngineConfig)> {
    let fmax = || EngineConfig {
        engine_clock: ClockDomain::engine_fmax(),
        ..EngineConfig::prototype()
    };
    vec![
        ("prototype", EngineConfig::prototype()),
        ("prototype-detailed", EngineConfig::prototype_detailed()),
        ("outlook-v2", EngineConfig::outlook_v2()),
        ("fmax", fmax()),
        (
            "interleaved",
            EngineConfig {
                inter_overlap: InterOverlap::Interleaved,
                ..EngineConfig::prototype()
            },
        ),
        (
            "fmax-interleaved",
            EngineConfig {
                inter_overlap: InterOverlap::Interleaved,
                ..fmax()
            },
        ),
        (
            "early-gate",
            EngineConfig {
                output_latency_fraction: 0.125,
                ..EngineConfig::prototype()
            },
        ),
        (
            "late-gate",
            EngineConfig {
                output_latency_fraction: 0.5,
                ..EngineConfig::prototype()
            },
        ),
    ]
}

/// The addressing modes swept for a frame of `dims`.
fn modes_for(dims: Dims) -> Vec<CallKind> {
    let n = dims.pixel_count() as u64;
    vec![
        CallKind::Intra { radius: 0 },
        CallKind::Intra { radius: 1 },
        CallKind::Intra { radius: 2 },
        CallKind::Intra { radius: 4 },
        CallKind::Inter,
        CallKind::Segment { pixels: 1 },
        CallKind::Segment { pixels: n / 2 },
        CallKind::Segment { pixels: n },
        CallKind::SegmentIndexed { entries: 1 },
        CallKind::SegmentIndexed { entries: n.div_ceil(4) },
    ]
}

/// The full must-pass sweep: family × dims × modes (> 500 scenarios).
#[must_use]
pub fn must_pass_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (label, config) in must_pass_configs() {
        for (w, h) in SWEEP_DIMS {
            let dims = Dims::new(w, h);
            for mode in modes_for(dims) {
                out.push(Scenario::new(label, config.clone(), dims, mode));
            }
        }
    }
    out
}

/// Deliberately broken configurations, each expected to produce at
/// least one violation with a concrete witness.
#[must_use]
pub fn adversarial_scenarios() -> Vec<Scenario> {
    let cif = Dims::new(352, 288);
    let mut out = Vec::new();

    // 133 MHz PCI doubles the DMA duty on the input banks: 1.0 + 0.5
    // accesses per engine cycle.
    let fast_pci = EngineConfig {
        pci_clock: ClockDomain::new("pci", 133e6),
        ..EngineConfig::prototype()
    };
    out.push(Scenario::new("fast-pci", fast_pci, cif, CallKind::Intra { radius: 1 }));

    // A 33 MHz engine drains at half the outbound DMA rate: the read
    // pointer overtakes the drain (§3.1 ordering broken).
    let slow_engine = EngineConfig {
        engine_clock: ClockDomain::new("engine", 33e6),
        ..EngineConfig::prototype()
    };
    out.push(Scenario::new("slow-engine", slow_engine, cif, CallKind::Intra { radius: 1 }));

    // Draining every cycle needs the full input-bank port: 0.5 + 1.0.
    let drain_one = EngineConfig {
        oim_drain_cycles_per_pixel: 1,
        ..EngineConfig::prototype()
    };
    out.push(Scenario::new("drain-1", drain_one, cif, CallKind::Intra { radius: 1 }));

    // Three IIM line blocks cannot hold a radius-2 (five-line) window:
    // transmission unit and fetch stage deadlock.
    let tiny_iim = EngineConfig {
        iim_lines: 3,
        ..EngineConfig::prototype()
    };
    out.push(Scenario::new(
        "tiny-iim",
        tiny_iim,
        Dims::new(32, 32),
        CallKind::Intra { radius: 2 },
    ));

    // A single line block is below the engine's structural minimum.
    let one_iim = EngineConfig {
        iim_lines: 1,
        ..EngineConfig::prototype()
    };
    out.push(Scenario::new("one-iim", one_iim, Dims::new(16, 16), CallKind::Intra { radius: 0 }));

    // Zero OIM lines: every push fails, the call never completes.
    let zero_oim = EngineConfig {
        oim_lines: 0,
        ..EngineConfig::prototype()
    };
    out.push(Scenario::new("zero-oim", zero_oim, Dims::new(16, 16), CallKind::Inter));

    // Detailed fidelity with a declared depth the hard-wired 4-stage
    // datapath cannot honour.
    let deep = EngineConfig {
        pipeline_stages: 5,
        ..EngineConfig::prototype_detailed()
    };
    out.push(Scenario::new("deep-detailed", deep, Dims::new(16, 16), CallKind::Inter));

    // No drain gate: on frames where the processing lead exceeds the
    // input transfer, the ungated DMA starts before the first drained
    // pixel.
    let no_gate = EngineConfig {
        output_latency_fraction: 0.0,
        ..EngineConfig::prototype()
    };
    out.push(Scenario::new("no-gate", no_gate, Dims::new(3, 3), CallKind::Intra { radius: 1 }));

    // A megapixel frame overflows the 256 Ki-word banks.
    out.push(Scenario::new(
        "megapixel",
        EngineConfig::prototype(),
        Dims::new(1024, 1024),
        CallKind::Inter,
    ));

    // Four banks cannot host the fig. 3 six-bank map.
    let four_banks = EngineConfig {
        zbt_banks: 4,
        ..EngineConfig::prototype()
    };
    out.push(Scenario::new("four-banks", four_banks, Dims::new(16, 16), CallKind::Inter));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_model;

    #[test]
    fn sweep_is_large_and_labelled() {
        let scenarios = must_pass_scenarios();
        assert!(scenarios.len() > 500, "{} scenarios", scenarios.len());
        assert!(scenarios.iter().any(|s| s.label == "prototype"));
        assert!(scenarios.iter().any(|s| s.label == "fmax-interleaved"));
    }

    #[test]
    fn every_adversarial_config_is_caught() {
        for s in adversarial_scenarios() {
            let report = check_model(std::slice::from_ref(&s));
            assert!(
                !report.is_clean(),
                "adversarial scenario `{s}` produced no violation"
            );
        }
    }

    #[test]
    fn adversarial_witnesses_name_the_broken_field() {
        let report = check_model(&adversarial_scenarios());
        let witnesses: Vec<&str> =
            report.violations.iter().map(|v| v.witness.as_str()).collect();
        assert!(witnesses.iter().any(|w| w.contains("pci_clock=133.0MHz")), "{witnesses:?}");
        assert!(witnesses.iter().any(|w| w.contains("engine_clock=33.0MHz")), "{witnesses:?}");
        assert!(witnesses.iter().any(|w| w.contains("iim_lines=3")), "{witnesses:?}");
        assert!(witnesses.iter().any(|w| w.contains("1024")), "{witnesses:?}");
    }
}
