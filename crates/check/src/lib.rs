//! # vip-check — static schedule/hazard verifier and workspace lint
//!
//! The simulator in `vip-engine` *exercises* the structural invariants the
//! DATE 2005 paper's correctness story rests on; this crate *proves* them
//! statically, without cycle-stepping a single pixel, and reports a
//! concrete witness configuration for every violation it finds.
//!
//! The crate has two halves:
//!
//! 1. **Model checker** ([`schedule`], [`occupancy`], [`zbt`],
//!    [`pipeline`]) — an abstract/interval analysis over the
//!    [`EngineConfig`](vip_engine::config::EngineConfig) parameter space
//!    plus exhaustive sweeps over small frame dimensions:
//!    * monotone, non-negative gaps between the seven §4.1 call-timeline
//!      instants, for all four addressing modes,
//!    * IIM deadlock freedom and OIM occupancy bounds (no
//!      overflow/underflow for any legal dims and
//!      `output_latency_fraction`),
//!    * ZBT bank-map disjointness, input-bank port-duty feasibility
//!      between the inbound DMA and the Process-Unit reads, and the §3.1
//!      guarantee that the outbound DMA never overtakes the OIM drain
//!      pointer,
//!    * hazard freedom of the 4-stage Process-Unit pipeline against the
//!      PLC start-pipeline, exhaustively over all short control sequences.
//! 2. **Source lint** ([`lint`]) — a token-level scanner over
//!    `crates/**/*.rs` and every `Cargo.toml` enforcing workspace
//!    invariants: metric-key agreement with `vip-engine::report::keys`,
//!    no wall-clock (`std::time::Instant`/`SystemTime`) inside the
//!    simulation crates, no external dependencies (the offline-build
//!    invariant), and `#![forbid(unsafe_code)]` in every crate root.
//!
//! Run it as `vip-check` (or `vipctl check`); `scripts/verify.sh` and CI
//! run it on every push. The static verdicts are validated against the
//! cycle-stepped simulator in `tests/static_vs_detailed.rs`.
//!
//! ## Quick start
//!
//! ```
//! use vip_check::sweep;
//!
//! let report = vip_check::check_model(&sweep::must_pass_scenarios());
//! assert!(report.is_clean(), "{report}");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod lint;
pub mod occupancy;
pub mod pipeline;
pub mod schedule;
pub mod sweep;
pub mod witness;
pub mod zbt;

use core::fmt;

pub use witness::{CallKind, Scenario};

/// One violated invariant, with the concrete witness that violates it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable identifier of the check that fired (e.g. `timeline.order`).
    pub check: &'static str,
    /// Human-readable description of the violated invariant.
    pub message: String,
    /// The concrete witness: a configuration/dims/mode triple for model
    /// checks, a `file:line` location for lints.
    pub witness: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}\n    witness: {}", self.check, self.message, self.witness)
    }
}

/// The outcome of a verification pass: how many cases were examined and
/// every violation found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Scenario/file cases examined.
    pub cases: u64,
    /// Violations found, in discovery order.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether the pass found no violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: CheckReport) {
        self.cases += other.cases;
        self.violations.extend(other.violations);
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "OK: {} cases, no violations", self.cases);
        }
        writeln!(f, "{} violation(s) in {} cases:", self.violations.len(), self.cases)?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Every model check over one scenario, in stable discovery order.
fn check_scenario(s: &Scenario) -> Vec<Violation> {
    let mut violations = Vec::new();
    violations.extend(schedule::check_timeline(s));
    violations.extend(occupancy::check_iim(s));
    violations.extend(occupancy::check_oim(s));
    violations.extend(zbt::check_bank_map(s));
    violations.extend(zbt::check_capacity(s));
    violations.extend(zbt::check_input_duty(s));
    violations.extend(zbt::check_output_overtake(s));
    violations.extend(pipeline::check_pipeline_depth(s));
    violations
}

/// Runs every model check over the given scenarios. Scenarios are
/// independent, so they fan out across the `vip-par` work pool; results
/// merge in scenario order, keeping the report identical to a serial
/// pass at any thread count.
#[must_use]
pub fn check_model(scenarios: &[Scenario]) -> CheckReport {
    let per_scenario = vip_par::map(scenarios, vip_par::default_threads(), check_scenario);
    let mut report = CheckReport::default();
    for violations in per_scenario {
        report.cases += 1;
        report.violations.extend(violations);
    }
    // The start-pipeline hazard check is scenario-independent: one
    // exhaustive pass over every control sequence.
    report.merge(pipeline::check_start_pipeline(pipeline::DEFAULT_SEQUENCE_LEN));
    report
}

/// Runs the full verifier — model checks over the must-pass sweep plus
/// the workspace lint — exactly what the `vip-check` binary and
/// `vipctl check` execute.
#[must_use]
pub fn check_workspace(root: &std::path::Path) -> CheckReport {
    let mut report = check_model(&sweep::must_pass_scenarios());
    report.merge(lint::lint_workspace(root));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_carries_witness() {
        let v = Violation {
            check: "timeline.order",
            message: "instants out of order".to_string(),
            witness: "prototype, 16x16, intra r=1".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("timeline.order"));
        assert!(s.contains("witness: prototype"));
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = CheckReport { cases: 2, violations: vec![] };
        let b = CheckReport {
            cases: 3,
            violations: vec![Violation {
                check: "x",
                message: "m".into(),
                witness: "w".into(),
            }],
        };
        a.merge(b);
        assert_eq!(a.cases, 5);
        assert!(!a.is_clean());
        assert!(a.to_string().contains("1 violation"));
    }

    #[test]
    fn must_pass_sweep_is_clean() {
        let report = check_model(&sweep::must_pass_scenarios());
        assert!(report.is_clean(), "{report}");
        assert!(report.cases > 500, "sweep too small: {} cases", report.cases);
    }

    #[test]
    fn adversarial_sweep_finds_witnesses() {
        let report = check_model(&sweep::adversarial_scenarios());
        assert!(!report.is_clean(), "adversarial sweep must surface violations");
        // Every violation names a concrete witness.
        for v in &report.violations {
            assert!(!v.witness.is_empty(), "{v}");
        }
    }
}
