//! # vip-gme — MPEG-7-style global motion estimation and mosaicing
//!
//! The test algorithm of the DATE 2005 AddressEngine paper (§4.3): a
//! hierarchical global motion estimator in the spirit of the MPEG-7
//! eXperimentation Model, used for mosaicing. Structured exactly along
//! the paper's hardware/software split — high-level control stays on the
//! host, while every whole-frame pixel pass is an AddressLib call
//! dispatched through a pluggable [`backend::GmeBackend`]:
//!
//! * [`backend::SoftwareBackend`] — the pure-software AddressLib
//!   (Table 3's Pentium-M column),
//! * [`backend::EngineBackend`] — the simulated AddressEngine
//!   coprocessor (Table 3's FPGA column), counting intra/inter calls and
//!   accumulating the modelled FPGA time.
//!
//! ## Quick start
//!
//! ```
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::pixel::Pixel;
//! use vip_gme::backend::SoftwareBackend;
//! use vip_gme::estimate::{Estimator, GmeConfig};
//! use vip_gme::model::Motion;
//! use vip_gme::warp::warp_frame;
//!
//! # fn main() -> Result<(), vip_core::error::CoreError> {
//! let reference = Frame::from_fn(Dims::new(64, 64), |p| {
//!     let v = 120.0 + 60.0 * ((p.x as f64 / 6.0).sin() * (p.y as f64 / 8.0).cos());
//!     Pixel::from_luma(v as u8)
//! });
//! let current = warp_frame(&reference, &Motion::translation(-1.0, -1.0)).frame;
//! let mut backend = SoftwareBackend::new();
//! let result = Estimator::new(GmeConfig::translational())
//!     .estimate(&reference, &current, Motion::identity(), &mut backend)?;
//! let (dx, dy) = result.motion.translation_part();
//! assert!((dx - 1.0).abs() < 0.5 && (dy - 1.0).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod estimate;
pub mod metrics;
pub mod model;
pub mod mosaic;
pub mod pyramid;
pub mod runner;
pub mod warp;

pub use backend::{CallTally, EngineBackend, GmeBackend, SoftwareBackend};
pub use estimate::{Estimator, GmeConfig, GmeResult};
pub use metrics::{drift_report, luma_psnr, DriftReport};
pub use model::{Motion, MotionModel};
pub use mosaic::Mosaic;
pub use pyramid::Pyramid;
pub use runner::{FrameRecord, SequenceReport, SequenceRunner};
