//! Global motion estimation: hierarchical Gauss-Newton minimisation of
//! the luminance difference between a warped current frame and the
//! reference frame, in the style of the MPEG-7 eXperimentation Model's
//! GME used by the paper (§4.3, ref. \[6\]).
//!
//! The estimator is split along the paper's hardware/software boundary:
//! high-level control (parameter updates, normal equations, coordinate
//! arithmetic) runs on the host, while every whole-frame pixel pass —
//! pyramid smoothing, gradient computation, residual evaluation, outlier
//! mask clean-up — is an AddressLib call dispatched through a
//! [`GmeBackend`].
//!
//! # Examples
//!
//! ```
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::pixel::Pixel;
//! use vip_gme::backend::SoftwareBackend;
//! use vip_gme::estimate::{Estimator, GmeConfig};
//! use vip_gme::model::Motion;
//! use vip_gme::warp::warp_frame;
//!
//! // A textured reference and a shifted current frame.
//! let reference = Frame::from_fn(Dims::new(64, 64), |p| {
//!     Pixel::from_luma(((p.x * 7 + p.y * 13) % 200) as u8)
//! });
//! let current = warp_frame(&reference, &Motion::translation(-2.0, 0.0)).frame;
//!
//! let mut backend = SoftwareBackend::new();
//! let estimator = Estimator::new(GmeConfig::default());
//! let result = estimator.estimate(&reference, &current, Motion::identity(), &mut backend)?;
//! let (dx, _) = result.motion.translation_part();
//! assert!((dx - 2.0).abs() < 0.5, "recovered dx = {dx}");
//! # Ok::<(), vip_core::error::CoreError>(())
//! ```

use vip_core::error::{CoreError, CoreResult};
use vip_core::frame::Frame;
use vip_core::geometry::Point;
use vip_core::ops::arith::AbsDiff;
use vip_core::ops::filter::CentralGradient;
use vip_core::ops::morph::AlphaMajority;
use vip_obs::{Recorder, Track};

use crate::backend::GmeBackend;
use crate::model::{solve_linear, Motion, MotionModel};
use crate::pyramid::{level_scale, Pyramid};
use crate::warp::{centre_of, sample_bilinear, warp_frame};

/// Estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmeConfig {
    /// Motion model family to fit.
    pub model: MotionModel,
    /// Pyramid levels (coarse-to-fine).
    pub levels: usize,
    /// Maximum Gauss-Newton iterations per level.
    pub max_iterations: usize,
    /// Convergence threshold: mean parameter-induced displacement (px).
    pub epsilon: f64,
    /// Residuals above this magnitude are treated as outliers.
    pub outlier_threshold: f64,
    /// Accumulate normal equations from every `subsample`-th pixel in
    /// each direction (1 = all pixels).
    pub subsample: usize,
}

impl Default for GmeConfig {
    fn default() -> Self {
        GmeConfig {
            model: MotionModel::Affine,
            levels: 3,
            max_iterations: 4,
            epsilon: 0.03,
            outlier_threshold: 48.0,
            subsample: 1,
        }
    }
}

impl GmeConfig {
    /// A translational-only configuration (fast, for tests and demos).
    #[must_use]
    pub fn translational() -> Self {
        GmeConfig {
            model: MotionModel::Translational,
            ..GmeConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for zero levels,
    /// iterations or subsample.
    pub fn validate(&self) -> CoreResult<()> {
        if self.levels == 0 {
            return Err(CoreError::InvalidParameter {
                name: "levels",
                reason: "at least one pyramid level required",
            });
        }
        if self.max_iterations == 0 {
            return Err(CoreError::InvalidParameter {
                name: "max_iterations",
                reason: "at least one iteration required",
            });
        }
        if self.subsample == 0 {
            return Err(CoreError::InvalidParameter {
                name: "subsample",
                reason: "subsample must be at least 1",
            });
        }
        Ok(())
    }
}

/// The result of estimating one frame pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GmeResult {
    /// Estimated motion mapping reference coordinates to current-frame
    /// coordinates (centred).
    pub motion: Motion,
    /// Mean absolute luminance residual over valid pixels after
    /// convergence.
    pub residual: f64,
    /// Gauss-Newton iterations actually performed (all levels).
    pub iterations: usize,
    /// Fraction of pixels that survived warping + outlier rejection in
    /// the final iteration.
    pub inlier_fraction: f64,
}

/// The hierarchical global motion estimator.
#[derive(Debug, Clone, Default)]
pub struct Estimator {
    config: GmeConfig,
    recorder: Recorder,
}

impl Estimator {
    /// Creates an estimator.
    #[must_use]
    pub fn new(config: GmeConfig) -> Self {
        Estimator {
            config,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder: estimation runs emit
    /// per-pyramid-level spans on the GME track, timed on the backend's
    /// modelled clock.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configuration.
    #[must_use]
    pub const fn config(&self) -> &GmeConfig {
        &self.config
    }

    /// Estimates the motion from `reference` to `current`, starting from
    /// `initial` (use the previous frame's motion for warm starts).
    ///
    /// # Errors
    ///
    /// Returns AddressLib errors for invalid frames and
    /// [`CoreError::InvalidParameter`] for invalid configurations.
    pub fn estimate(
        &self,
        reference: &Frame,
        current: &Frame,
        initial: Motion,
        backend: &mut dyn GmeBackend,
    ) -> CoreResult<GmeResult> {
        self.config.validate()?;
        if reference.dims() != current.dims() {
            return Err(CoreError::DimsMismatch {
                left: reference.dims(),
                right: current.dims(),
            });
        }
        let t0 = modelled_ns(backend);
        let ref_pyr = Pyramid::build(reference, self.config.levels, backend)?;
        let cur_pyr = Pyramid::build(current, self.config.levels, backend)?;
        self.recorder.span(
            Track::Gme,
            "pyramid_build",
            t0,
            modelled_ns(backend),
            &[("levels", (self.config.levels as u64).into())],
        );
        self.estimate_with_pyramids(&ref_pyr, &cur_pyr, initial, backend)
    }

    /// Estimates using prebuilt pyramids (lets sequence runners reuse the
    /// previous frame's pyramid, as XM does).
    ///
    /// # Errors
    ///
    /// Returns AddressLib errors surfaced by the backend calls.
    pub fn estimate_with_pyramids(
        &self,
        ref_pyr: &Pyramid,
        cur_pyr: &Pyramid,
        initial: Motion,
        backend: &mut dyn GmeBackend,
    ) -> CoreResult<GmeResult> {
        self.config.validate()?;
        let levels = ref_pyr.levels().min(cur_pyr.levels());
        let top = levels - 1;
        let mut motion = initial.scaled_down(level_scale(top));
        let mut total_iters = 0usize;
        let mut last_residual = f64::INFINITY;
        let mut last_inliers = 0.0f64;

        for li in (0..levels).rev() {
            let ref_level = ref_pyr.level(li);
            let cur_level = cur_pyr.level(li);
            let level_t0 = modelled_ns(backend);
            let level_iters_before = total_iters;
            // AddressLib intra call: spatial gradients of the current
            // level (signed central differences into y/aux).
            let grad = backend.intra(cur_level, &CentralGradient::new())?;

            for _ in 0..self.config.max_iterations {
                total_iters += 1;
                // warp_frame(cur, motion): output(p) = cur(motion(p)) ≈ ref(p).
                let warped = warp_frame(cur_level, &motion);
                // AddressLib inter call: residual magnitude image — the
                // convergence measure XM evaluates per iteration.
                let residual_img = backend.inter(ref_level, &warped.frame, &AbsDiff::luma())?;
                // AddressLib intra call: clean the inlier mask
                // (majority vote removes speckle outliers).
                let mask = backend.intra(&tag_inliers(&residual_img, &warped.frame,
                    self.config.outlier_threshold), &AlphaMajority::new())?;

                let step = self.accumulate_step(ref_level, cur_level, &grad, &mask, &motion);
                let Some((delta, stats)) = step else { break };
                last_residual = stats.mean_residual;
                last_inliers = stats.inlier_fraction;
                motion = apply_delta(&motion, &delta, self.config.model);
                if stats.mean_displacement(&delta) < self.config.epsilon {
                    break;
                }
            }

            self.recorder.span(
                Track::Gme,
                "pyramid_level",
                level_t0,
                modelled_ns(backend),
                &[
                    ("level", (li as u64).into()),
                    ("iterations", ((total_iters - level_iters_before) as u64).into()),
                ],
            );
            if li > 0 {
                motion = motion.scaled_up(2.0);
            }
        }

        Ok(GmeResult {
            motion,
            residual: if last_residual.is_finite() { last_residual } else { 0.0 },
            iterations: total_iters,
            inlier_fraction: last_inliers,
        })
    }

    /// Accumulates one Gauss-Newton step. Returns `None` when the system
    /// is singular or no inliers survive.
    fn accumulate_step(
        &self,
        ref_level: &Frame,
        cur_level: &Frame,
        grad: &Frame,
        mask: &Frame,
        motion: &Motion,
    ) -> Option<(Vec<f64>, StepStats)> {
        let np = self.config.model.parameter_count();
        let mut ata = vec![vec![0.0f64; np]; np];
        let mut atb = vec![0.0f64; np];
        let (cx, cy) = centre_of(ref_level.dims());
        let mut n = 0usize;
        let mut considered = 0usize;
        let mut resid_sum = 0.0f64;
        let step = self.config.subsample;

        let mut jac = vec![0.0f64; np];
        for py in (1..ref_level.height().saturating_sub(1)).step_by(step) {
            for px in (1..ref_level.width().saturating_sub(1)).step_by(step) {
                let p = Point::new(px as i32, py as i32);
                considered += 1;
                if mask.get(p).alpha == 0 {
                    continue;
                }
                let x = px as f64 - cx;
                let y = py as f64 - cy;
                let (wx, wy) = motion.apply(x, y);
                let Some(cur_val) = sample_bilinear(cur_level, wx + cx, wy + cy) else {
                    continue;
                };
                let r = cur_val - f64::from(ref_level.get(p).y);
                if r.abs() > self.config.outlier_threshold {
                    continue;
                }
                // Gradient of the current level, sampled at the warped
                // position (nearest sample of the backend gradient call).
                let gp = Point::new(
                    (wx + cx).round().clamp(0.0, (cur_level.width() - 1) as f64) as i32,
                    (wy + cy).round().clamp(0.0, (cur_level.height() - 1) as f64) as i32,
                );
                let (gx, gy) = CentralGradient::decode(grad.get(gp));
                let (gx, gy) = (f64::from(gx), f64::from(gy));

                fill_jacobian(&mut jac, self.config.model, x, y, wx, wy, gx, gy, motion);
                for i in 0..np {
                    for j in i..np {
                        ata[i][j] += jac[i] * jac[j];
                    }
                    atb[i] -= jac[i] * r;
                }
                resid_sum += r.abs();
                n += 1;
            }
        }
        if n < np * 4 {
            return None;
        }
        #[allow(clippy::needless_range_loop)] // symmetric-matrix fill reads ata[j][i]
        for i in 0..np {
            for j in 0..i {
                ata[i][j] = ata[j][i];
            }
            // Levenberg damping for stability.
            ata[i][i] *= 1.0 + 1e-4;
            ata[i][i] += 1e-9;
        }
        let delta = solve_linear(&mut ata, &mut atb)?;
        Some((
            delta,
            StepStats {
                mean_residual: resid_sum / n as f64,
                inlier_fraction: n as f64 / considered.max(1) as f64,
            },
        ))
    }
}

/// The backend's modelled clock as virtual nanoseconds — the shared
/// timebase of the GME track (spans inherit the backend's timing model,
/// so engine-backed runs line up with the engine's own trace windows).
pub(crate) fn modelled_ns(backend: &dyn GmeBackend) -> u64 {
    (backend.modelled_seconds() * 1e9).round().max(0.0) as u64
}

/// Per-step statistics.
#[derive(Debug, Clone, Copy)]
struct StepStats {
    mean_residual: f64,
    inlier_fraction: f64,
}

impl StepStats {
    /// Mean displacement induced by a parameter delta (rough: the
    /// translation components dominate).
    fn mean_displacement(&self, delta: &[f64]) -> f64 {
        match delta.len() {
            2 => (delta[0].powi(2) + delta[1].powi(2)).sqrt(),
            6 => (delta[2].powi(2) + delta[5].powi(2)).sqrt()
                + 30.0 * (delta[0].abs() + delta[1].abs() + delta[3].abs() + delta[4].abs()),
            8 => {
                (delta[2].powi(2) + delta[5].powi(2)).sqrt()
                    + 30.0 * (delta[0].abs() + delta[1].abs() + delta[3].abs() + delta[4].abs())
                    + 900.0 * (delta[6].abs() + delta[7].abs())
            }
            _ => f64::INFINITY,
        }
    }
}

/// Marks inliers (|residual| ≤ threshold on valid warp pixels) in the
/// alpha channel for the majority-vote clean-up call.
fn tag_inliers(residual: &Frame, warped: &Frame, threshold: f64) -> Frame {
    Frame::from_fn(residual.dims(), |p| {
        let valid = warped.get(p).alpha != 0;
        let inlier = valid && f64::from(residual.get(p).y) <= threshold;
        residual.get(p).with_alpha(u16::from(inlier))
    })
}

/// Writes the Jacobian row of the chosen model at centred point `(x, y)`
/// with image gradients `(gx, gy)` sampled at the warped position.
#[allow(clippy::too_many_arguments)]
fn fill_jacobian(
    jac: &mut [f64],
    model: MotionModel,
    x: f64,
    y: f64,
    wx: f64,
    wy: f64,
    gx: f64,
    gy: f64,
    motion: &Motion,
) {
    match model {
        MotionModel::Translational => {
            jac[0] = gx;
            jac[1] = gy;
        }
        MotionModel::Affine => {
            jac[0] = gx * x;
            jac[1] = gx * y;
            jac[2] = gx;
            jac[3] = gy * x;
            jac[4] = gy * y;
            jac[5] = gy;
        }
        MotionModel::Perspective => {
            let h = &motion.h;
            let w = h[6] * x + h[7] * y + 1.0;
            let w = if w.abs() < 1e-9 { 1e-9 } else { w };
            jac[0] = gx * x / w;
            jac[1] = gx * y / w;
            jac[2] = gx / w;
            jac[3] = gy * x / w;
            jac[4] = gy * y / w;
            jac[5] = gy / w;
            jac[6] = -(gx * wx + gy * wy) * x / w;
            jac[7] = -(gx * wx + gy * wy) * y / w;
        }
    }
}

/// Applies a parameter delta to the motion (additive update).
fn apply_delta(motion: &Motion, delta: &[f64], model: MotionModel) -> Motion {
    let mut h = motion.h;
    match model {
        MotionModel::Translational => {
            h[2] += delta[0];
            h[5] += delta[1];
        }
        MotionModel::Affine => {
            h[0] += delta[0];
            h[1] += delta[1];
            h[2] += delta[2];
            h[3] += delta[3];
            h[4] += delta[4];
            h[5] += delta[5];
        }
        MotionModel::Perspective => {
            for (hi, di) in h.iter_mut().zip(delta) {
                *hi += di;
            }
        }
    }
    Motion { h }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SoftwareBackend;
    use vip_core::geometry::Dims;
    use vip_core::pixel::Pixel;

    fn textured(dims: Dims) -> Frame {
        Frame::from_fn(dims, |p| {
            let x = p.x as f64;
            let y = p.y as f64;
            let v = 110.0
                + 60.0 * ((x / 7.0).sin() * (y / 9.0).cos())
                + 40.0 * ((x / 23.0 + y / 17.0).sin());
            Pixel::from_luma(v.clamp(0.0, 255.0) as u8)
        })
    }

    /// Renders the current frame as the reference warped by `true_motion`
    /// (current = ref content moved by the motion).
    fn make_pair(dims: Dims, true_motion: &Motion) -> (Frame, Frame) {
        let reference = textured(dims);
        // current(p) = reference(inv(true)(p)): content moves BY true.
        let current = warp_frame(&reference, &true_motion.inverse().unwrap()).frame;
        (reference, current)
    }

    fn recover(dims: Dims, true_motion: &Motion, config: GmeConfig) -> (Motion, GmeResult) {
        let (reference, current) = make_pair(dims, true_motion);
        let mut backend = SoftwareBackend::new();
        let est = Estimator::new(config);
        let r = est
            .estimate(&reference, &current, Motion::identity(), &mut backend)
            .unwrap();
        (r.motion, r)
    }

    #[test]
    fn recovers_pure_translation() {
        let truth = Motion::translation(3.0, -2.0);
        let (m, r) = recover(Dims::new(96, 80), &truth, GmeConfig::translational());
        let err = m.displacement_error(&truth, 96.0, 80.0);
        assert!(err < 0.35, "error {err}, got {m}");
        assert!(r.iterations >= 2);
        assert!(r.inlier_fraction > 0.6);
    }

    #[test]
    fn recovers_affine_zoom() {
        let truth = Motion::similarity(1.03, 0.0, 1.0, 0.5);
        let (m, _) = recover(Dims::new(96, 96), &truth, GmeConfig::default());
        let err = m.displacement_error(&truth, 96.0, 96.0);
        assert!(err < 0.4, "error {err}, got {m}");
    }

    #[test]
    fn recovers_small_rotation() {
        let truth = Motion::similarity(1.0, 0.02, -1.5, 1.0);
        let (m, _) = recover(Dims::new(96, 96), &truth, GmeConfig::default());
        let err = m.displacement_error(&truth, 96.0, 96.0);
        assert!(err < 0.4, "error {err}, got {m}");
    }

    #[test]
    fn perspective_model_runs_and_recovers_affine_truth() {
        let truth = Motion::translation(2.0, 1.0);
        let cfg = GmeConfig {
            model: MotionModel::Perspective,
            ..GmeConfig::default()
        };
        let (m, _) = recover(Dims::new(96, 96), &truth, cfg);
        let err = m.displacement_error(&truth, 96.0, 96.0);
        assert!(err < 0.6, "error {err}, got {m}");
    }

    #[test]
    fn identity_pair_stays_near_identity() {
        let truth = Motion::identity();
        let (m, r) = recover(Dims::new(64, 64), &truth, GmeConfig::default());
        assert!(m.displacement_error(&truth, 64.0, 64.0) < 0.1, "{m}");
        assert!(r.residual < 2.0);
    }

    #[test]
    fn warm_start_converges_faster() {
        let truth = Motion::translation(4.0, 3.0);
        let (reference, current) = make_pair(Dims::new(96, 96), &truth);
        let est = Estimator::new(GmeConfig::translational());
        let mut b1 = SoftwareBackend::new();
        let cold = est
            .estimate(&reference, &current, Motion::identity(), &mut b1)
            .unwrap();
        let mut b2 = SoftwareBackend::new();
        let warm = est
            .estimate(&reference, &current, truth, &mut b2)
            .unwrap();
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn backend_call_pattern() {
        let truth = Motion::translation(1.0, 0.0);
        let (reference, current) = make_pair(Dims::new(64, 64), &truth);
        let mut backend = SoftwareBackend::new();
        let est = Estimator::new(GmeConfig::default());
        let _ = est
            .estimate(&reference, &current, Motion::identity(), &mut backend)
            .unwrap();
        let t = backend.tally();
        assert!(t.intra > 0, "pyramids + gradients + masks are intra calls");
        assert!(t.inter > 0, "residual evaluations are inter calls");
        // The paper's workload is intra-heavy (Table 3: ≈1.4×).
        let ratio = t.intra as f64 / t.inter as f64;
        assert!(ratio > 0.8 && ratio < 3.5, "intra:inter ratio {ratio}");
    }

    #[test]
    fn recorder_captures_pyramid_levels() {
        let truth = Motion::translation(1.0, 0.0);
        let (reference, current) = make_pair(Dims::new(64, 64), &truth);
        let session = vip_obs::Session::new();
        let mut backend = SoftwareBackend::new();
        let est = Estimator::new(GmeConfig::default()).with_recorder(session.recorder());
        est.estimate(&reference, &current, Motion::identity(), &mut backend)
            .unwrap();
        let recording = session.finish();
        let gme = recording.on_track(Track::Gme);
        assert!(gme.iter().any(|e| e.name == "pyramid_build"));
        assert_eq!(
            gme.iter().filter(|e| e.name == "pyramid_level").count(),
            GmeConfig::default().levels
        );
        // Spans ride the backend's modelled clock, so they nest inside it.
        let end = modelled_ns(&backend);
        assert!(gme.iter().all(|e| e.end_ns() <= end));
    }

    #[test]
    fn mismatched_dims_rejected() {
        let a = textured(Dims::new(32, 32));
        let b = textured(Dims::new(64, 32));
        let mut backend = SoftwareBackend::new();
        let est = Estimator::new(GmeConfig::default());
        assert!(matches!(
            est.estimate(&a, &b, Motion::identity(), &mut backend),
            Err(CoreError::DimsMismatch { .. })
        ));
    }

    #[test]
    fn invalid_configs_rejected() {
        for cfg in [
            GmeConfig { levels: 0, ..GmeConfig::default() },
            GmeConfig { max_iterations: 0, ..GmeConfig::default() },
            GmeConfig { subsample: 0, ..GmeConfig::default() },
        ] {
            let f = textured(Dims::new(32, 32));
            let mut backend = SoftwareBackend::new();
            assert!(Estimator::new(cfg)
                .estimate(&f, &f, Motion::identity(), &mut backend)
                .is_err());
        }
    }

    #[test]
    fn subsampling_still_converges() {
        let truth = Motion::translation(2.0, -1.0);
        let cfg = GmeConfig {
            subsample: 2,
            ..GmeConfig::translational()
        };
        let (m, _) = recover(Dims::new(96, 96), &truth, cfg);
        assert!(m.displacement_error(&truth, 96.0, 96.0) < 0.5, "{m}");
    }
}
