//! Quality metrics: PSNR, drift and mosaic fidelity.
//!
//! Because the synthetic sequences carry exact ground truth (scene +
//! camera script), the reproduction can quantify estimator quality in
//! ways the paper's real clips could not: per-pair translation error,
//! accumulated drift of the absolute motion, and PSNR of reconstructed
//! content.
//!
//! # Examples
//!
//! ```
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::pixel::Pixel;
//! use vip_gme::metrics::luma_psnr;
//!
//! let a = Frame::filled(Dims::new(8, 8), Pixel::from_luma(100));
//! let b = Frame::filled(Dims::new(8, 8), Pixel::from_luma(102));
//! let psnr = luma_psnr(&a, &b).unwrap();
//! assert!(psnr > 35.0);
//! ```

use vip_core::error::{CoreError, CoreResult};
use vip_core::frame::Frame;

use crate::model::Motion;
use crate::runner::SequenceReport;

/// Peak signal-to-noise ratio of the luminance channel, in dB.
/// Returns `f64::INFINITY` for identical frames.
///
/// # Errors
///
/// Returns [`CoreError::DimsMismatch`] when the frames differ in size and
/// [`CoreError::EmptyFrame`] for zero-area frames.
pub fn luma_psnr(a: &Frame, b: &Frame) -> CoreResult<f64> {
    if a.dims() != b.dims() {
        return Err(CoreError::DimsMismatch {
            left: a.dims(),
            right: b.dims(),
        });
    }
    if a.pixel_count() == 0 {
        return Err(CoreError::EmptyFrame);
    }
    let mse: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(pa, pb)| {
            let d = f64::from(pa.y) - f64::from(pb.y);
            d * d
        })
        .sum::<f64>()
        / a.pixel_count() as f64;
    if mse == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (255.0 * 255.0 / mse).log10())
}

/// Masked PSNR: only positions with non-zero alpha in `mask` contribute.
/// Returns `None` when the mask selects nothing.
///
/// # Errors
///
/// Returns [`CoreError::DimsMismatch`] when any frame differs in size.
pub fn masked_luma_psnr(a: &Frame, b: &Frame, mask: &Frame) -> CoreResult<Option<f64>> {
    if a.dims() != b.dims() || a.dims() != mask.dims() {
        return Err(CoreError::DimsMismatch {
            left: a.dims(),
            right: b.dims(),
        });
    }
    let mut mse = 0.0;
    let mut n = 0usize;
    for ((pa, pb), pm) in a.pixels().iter().zip(b.pixels()).zip(mask.pixels()) {
        if pm.alpha != 0 {
            let d = f64::from(pa.y) - f64::from(pb.y);
            mse += d * d;
            n += 1;
        }
    }
    if n == 0 {
        return Ok(None);
    }
    let mse = mse / n as f64;
    Ok(Some(if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0 * 255.0 / mse).log10()
    }))
}

/// Drift analysis of a sequence run against ground-truth absolute poses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// Mean per-pair displacement error (px over the frame grid).
    pub mean_pair_error: f64,
    /// Displacement error of the *final* absolute motion — accumulated
    /// drift over the whole sequence.
    pub final_drift: f64,
    /// Frames analysed.
    pub pairs: usize,
}

/// Computes drift of estimated motions against a ground-truth provider.
///
/// `truth(t)` must return the ground-truth relative motion from frame
/// `t` to `t+1` (e.g. from `TestSequence::script().ground_truth`),
/// expressed in the same convention as the estimator output.
#[must_use]
pub fn drift_report(
    report: &SequenceReport,
    frame_w: f64,
    frame_h: f64,
    mut truth: impl FnMut(usize) -> Motion,
) -> DriftReport {
    let mut pair_sum = 0.0;
    let mut true_absolute = Motion::identity();
    let mut final_drift = 0.0;
    for rec in &report.records {
        let t = truth(rec.index - 1);
        pair_sum += rec.relative.displacement_error(&t, frame_w, frame_h);
        true_absolute = t.compose(&true_absolute);
        final_drift = rec
            .absolute
            .displacement_error(&true_absolute, frame_w, frame_h);
    }
    DriftReport {
        mean_pair_error: if report.records.is_empty() {
            0.0
        } else {
            pair_sum / report.records.len() as f64
        },
        final_drift,
        pairs: report.records.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SoftwareBackend;
    use crate::estimate::GmeConfig;
    use crate::runner::SequenceRunner;
    use vip_core::geometry::{Dims, Point};
    use vip_core::pixel::Pixel;

    #[test]
    fn psnr_basics() {
        let a = Frame::filled(Dims::new(4, 4), Pixel::from_luma(100));
        assert_eq!(luma_psnr(&a, &a).unwrap(), f64::INFINITY);
        let mut b = a.clone();
        b.set(Point::new(0, 0), Pixel::from_luma(110));
        let p = luma_psnr(&a, &b).unwrap();
        // MSE = 100/16 = 6.25 → PSNR ≈ 40.2 dB.
        assert!((p - 40.17).abs() < 0.1, "{p}");
        assert!(luma_psnr(&a, &Frame::new(Dims::new(2, 2))).is_err());
        assert!(luma_psnr(&Frame::new(Dims::new(0, 0)), &Frame::new(Dims::new(0, 0))).is_err());
    }

    #[test]
    fn psnr_orders_quality() {
        let a = Frame::filled(Dims::new(8, 8), Pixel::from_luma(128));
        let slightly = Frame::filled(Dims::new(8, 8), Pixel::from_luma(130));
        let badly = Frame::filled(Dims::new(8, 8), Pixel::from_luma(200));
        assert!(luma_psnr(&a, &slightly).unwrap() > luma_psnr(&a, &badly).unwrap());
    }

    #[test]
    fn masked_psnr_selects() {
        let a = Frame::filled(Dims::new(2, 2), Pixel::from_luma(100));
        let mut b = a.clone();
        b.set(Point::new(0, 0), Pixel::from_luma(0)); // big error at (0,0)
        let mut mask = Frame::new(Dims::new(2, 2));
        mask.get_mut(Point::new(1, 1)).alpha = 1; // exclude the error
        let p = masked_luma_psnr(&a, &b, &mask).unwrap().unwrap();
        assert_eq!(p, f64::INFINITY);
        // Empty mask → None.
        let none = masked_luma_psnr(&a, &b, &Frame::new(Dims::new(2, 2))).unwrap();
        assert!(none.is_none());
        // Mismatched mask → error.
        assert!(masked_luma_psnr(&a, &b, &Frame::new(Dims::new(1, 1))).is_err());
    }

    #[test]
    fn drift_zero_for_perfect_estimates() {
        // Run the estimator on an exact synthetic pan and compare to the
        // same truth that generated it.
        let dims = Dims::new(72, 56);
        let frames: Vec<Frame> = (0..5)
            .map(|t| {
                Frame::from_fn(dims, |p| {
                    let x = p.x as f64 + t as f64 * 1.0;
                    let y = p.y as f64;
                    let v = 120.0 + 55.0 * ((x / 6.0).sin() * (y / 8.0).cos());
                    Pixel::from_luma(v.clamp(0.0, 255.0) as u8)
                })
            })
            .collect();
        let runner = SequenceRunner::new(GmeConfig::translational());
        let mut backend = SoftwareBackend::new();
        let report = runner.run(frames, &mut backend).unwrap();
        let drift = drift_report(&report, 72.0, 56.0, |_| Motion::translation(-1.0, 0.0));
        assert_eq!(drift.pairs, 4);
        assert!(drift.mean_pair_error < 0.3, "{drift:?}");
        assert!(drift.final_drift < 1.0, "{drift:?}");
    }

    #[test]
    fn drift_detects_bias() {
        // Compare against a deliberately wrong truth: drift accumulates.
        let dims = Dims::new(72, 56);
        let frames: Vec<Frame> = (0..5)
            .map(|t| {
                Frame::from_fn(dims, |p| {
                    let x = p.x as f64 + t as f64 * 1.0;
                    let v = 120.0 + 55.0 * ((x / 6.0).sin() * (p.y as f64 / 8.0).cos());
                    Pixel::from_luma(v.clamp(0.0, 255.0) as u8)
                })
            })
            .collect();
        let runner = SequenceRunner::new(GmeConfig::translational());
        let mut backend = SoftwareBackend::new();
        let report = runner.run(frames, &mut backend).unwrap();
        let wrong = drift_report(&report, 72.0, 56.0, |_| Motion::translation(-2.0, 0.0));
        let right = drift_report(&report, 72.0, 56.0, |_| Motion::translation(-1.0, 0.0));
        assert!(wrong.final_drift > right.final_drift + 2.0);
        assert!(wrong.mean_pair_error > right.mean_pair_error);
    }

    #[test]
    fn empty_report_drift() {
        let report = SequenceReport {
            frames: 1,
            records: vec![],
            tally: crate::backend::CallTally::default(),
            backend_seconds: 0.0,
            pm_seconds: 0.0,
            mosaic: None,
        };
        let d = drift_report(&report, 10.0, 10.0, |_| Motion::identity());
        assert_eq!(d.mean_pair_error, 0.0);
        assert_eq!(d.pairs, 0);
    }
}
