//! Image pyramids for coarse-to-fine estimation.
//!
//! Each level is produced by a binomial smoothing pass — an AddressLib
//! intra call dispatched through the backend, exactly the FIR-filter
//! workload of §2.1 — followed by host-side 2× decimation.
//!
//! # Examples
//!
//! ```
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::pixel::Pixel;
//! use vip_gme::backend::SoftwareBackend;
//! use vip_gme::pyramid::Pyramid;
//!
//! let f = Frame::filled(Dims::new(64, 48), Pixel::from_luma(70));
//! let mut backend = SoftwareBackend::new();
//! let pyr = Pyramid::build(&f, 3, &mut backend)?;
//! assert_eq!(pyr.levels(), 3);
//! assert_eq!(pyr.level(2).width(), 16);
//! # Ok::<(), vip_core::error::CoreError>(())
//! ```

use vip_core::error::{CoreError, CoreResult};
use vip_core::frame::Frame;
use vip_core::geometry::Point;
use vip_core::ops::filter::Binomial3;

use crate::backend::GmeBackend;

/// Minimum side length of the coarsest pyramid level.
pub const MIN_LEVEL_SIDE: usize = 8;

/// A Gaussian image pyramid, level 0 being the full resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct Pyramid {
    levels: Vec<Frame>,
}

impl Pyramid {
    /// Builds a pyramid of up to `max_levels` levels, stopping early when
    /// the next level would fall below [`MIN_LEVEL_SIDE`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyFrame`] for zero-area frames and
    /// [`CoreError::InvalidParameter`] when `max_levels` is zero.
    pub fn build(
        frame: &Frame,
        max_levels: usize,
        backend: &mut dyn GmeBackend,
    ) -> CoreResult<Pyramid> {
        if max_levels == 0 {
            return Err(CoreError::InvalidParameter {
                name: "max_levels",
                reason: "a pyramid needs at least one level",
            });
        }
        if frame.dims().is_empty() {
            return Err(CoreError::EmptyFrame);
        }
        let mut levels = vec![frame.clone()];
        while levels.len() < max_levels {
            let prev = levels.last().expect("non-empty");
            let next_dims = prev.dims().halved();
            if next_dims.width < MIN_LEVEL_SIDE || next_dims.height < MIN_LEVEL_SIDE {
                break;
            }
            // AddressLib intra call: binomial smoothing before decimation.
            let smoothed = backend.intra(prev, &Binomial3::new())?;
            levels.push(decimate(&smoothed));
        }
        Ok(Pyramid { levels })
    }

    /// Number of levels actually built.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Level `i` (0 = full resolution).
    ///
    /// # Panics
    ///
    /// Panics when `i >= levels()`.
    #[must_use]
    pub fn level(&self, i: usize) -> &Frame {
        &self.levels[i]
    }

    /// Iterates coarse → fine: `(level index, frame)` starting at the
    /// coarsest level.
    pub fn coarse_to_fine(&self) -> impl Iterator<Item = (usize, &Frame)> {
        (0..self.levels.len()).rev().map(move |i| (i, &self.levels[i]))
    }
}

/// 2× decimation (every second pixel of every second line).
#[must_use]
pub fn decimate(frame: &Frame) -> Frame {
    let dims = frame.dims().halved();
    Frame::from_fn(dims, |p| frame.get(Point::new(p.x * 2, p.y * 2)))
}

/// The scale factor between level `i` and level 0.
#[must_use]
pub fn level_scale(i: usize) -> f64 {
    (1u64 << i) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SoftwareBackend;
    use vip_core::geometry::Dims;
    use vip_core::pixel::Pixel;

    fn textured(dims: Dims) -> Frame {
        Frame::from_fn(dims, |p| {
            Pixel::from_luma(((p.x * 13 + p.y * 29) % 256) as u8)
        })
    }

    #[test]
    fn pyramid_halves_dimensions() {
        let f = textured(Dims::new(64, 48));
        let mut b = SoftwareBackend::new();
        let p = Pyramid::build(&f, 3, &mut b).unwrap();
        assert_eq!(p.levels(), 3);
        assert_eq!(p.level(0).dims(), Dims::new(64, 48));
        assert_eq!(p.level(1).dims(), Dims::new(32, 24));
        assert_eq!(p.level(2).dims(), Dims::new(16, 12));
    }

    #[test]
    fn pyramid_counts_intra_calls() {
        let f = textured(Dims::new(64, 64));
        let mut b = SoftwareBackend::new();
        let _ = Pyramid::build(&f, 3, &mut b).unwrap();
        assert_eq!(b.tally().intra, 2, "one smoothing call per built level");
    }

    #[test]
    fn pyramid_stops_at_min_side() {
        let f = textured(Dims::new(40, 20));
        let mut b = SoftwareBackend::new();
        let p = Pyramid::build(&f, 10, &mut b).unwrap();
        // 40×20 → 20×10 → next would be 10×5 < MIN_LEVEL_SIDE.
        assert_eq!(p.levels(), 2);
    }

    #[test]
    fn single_level_pyramid_issues_no_calls() {
        let f = textured(Dims::new(16, 16));
        let mut b = SoftwareBackend::new();
        let p = Pyramid::build(&f, 1, &mut b).unwrap();
        assert_eq!(p.levels(), 1);
        assert_eq!(b.tally().intra, 0);
    }

    #[test]
    fn errors() {
        let mut b = SoftwareBackend::new();
        assert!(Pyramid::build(&textured(Dims::new(16, 16)), 0, &mut b).is_err());
        assert!(Pyramid::build(&Frame::new(Dims::new(0, 0)), 2, &mut b).is_err());
    }

    #[test]
    fn decimate_picks_even_samples() {
        let f = textured(Dims::new(8, 6));
        let d = decimate(&f);
        assert_eq!(d.dims(), Dims::new(4, 3));
        assert_eq!(d.get(Point::new(1, 1)).y, f.get(Point::new(2, 2)).y);
    }

    #[test]
    fn coarse_to_fine_order() {
        let f = textured(Dims::new(64, 64));
        let mut b = SoftwareBackend::new();
        let p = Pyramid::build(&f, 3, &mut b).unwrap();
        let order: Vec<usize> = p.coarse_to_fine().map(|(i, _)| i).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn level_scales() {
        assert_eq!(level_scale(0), 1.0);
        assert_eq!(level_scale(3), 8.0);
    }

    #[test]
    fn smoothing_reduces_aliasing() {
        // The decimated level of a smoothed frame has lower variance than
        // naive decimation of the raw frame.
        let f = textured(Dims::new(64, 64));
        let mut b = SoftwareBackend::new();
        let p = Pyramid::build(&f, 2, &mut b).unwrap();
        let naive = decimate(&f);
        let smooth_var = vip_core::ops::reduce::LumaStats::of(p.level(1)).unwrap().variance;
        let naive_var = vip_core::ops::reduce::LumaStats::of(&naive).unwrap().variance;
        assert!(smooth_var < naive_var);
    }
}
