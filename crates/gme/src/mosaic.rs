//! Mosaicing: accumulating motion-compensated frames into a panorama.
//!
//! §4.3: *"This global motion estimation software is used for Mosaicing
//! purposes … as a result this software creates a Mosaic with the global
//! motion of the scene."* Each added frame is aligned with the absolute
//! (composed) motion and blended into the canvas; the frame-sized blend
//! pass is an AddressLib inter call dispatched through the backend.
//!
//! # Examples
//!
//! ```
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::pixel::Pixel;
//! use vip_gme::backend::SoftwareBackend;
//! use vip_gme::model::Motion;
//! use vip_gme::mosaic::Mosaic;
//!
//! let mut mosaic = Mosaic::new(Dims::new(64, 48), Dims::new(32, 24));
//! let mut backend = SoftwareBackend::new();
//! let frame = Frame::filled(Dims::new(32, 24), Pixel::from_luma(90));
//! mosaic.add_frame(&frame, &Motion::identity(), &mut backend)?;
//! assert!(mosaic.coverage() > 0.0);
//! # Ok::<(), vip_core::error::CoreError>(())
//! ```

use vip_core::error::{CoreError, CoreResult};
use vip_core::frame::Frame;
use vip_core::geometry::{Dims, Point};
use vip_core::ops::arith::Blend;
use vip_core::pixel::Pixel;

use crate::backend::GmeBackend;
use crate::model::Motion;
use crate::warp::{centre_of, sample_bilinear};

/// A mosaic canvas accumulating aligned frames.
#[derive(Debug, Clone)]
pub struct Mosaic {
    canvas: Frame,
    /// Per-pixel accumulation count (0 = never written).
    weights: Vec<u32>,
    frame_dims: Dims,
    frames_added: usize,
}

impl Mosaic {
    /// Creates an empty mosaic canvas of `canvas_dims` for frames of
    /// `frame_dims`. The canvas centre corresponds to the centre of the
    /// first (reference) frame.
    ///
    /// # Panics
    ///
    /// Panics when either dimension set is empty.
    #[must_use]
    pub fn new(canvas_dims: Dims, frame_dims: Dims) -> Self {
        assert!(!canvas_dims.is_empty() && !frame_dims.is_empty());
        Mosaic {
            canvas: Frame::new(canvas_dims),
            weights: vec![0; canvas_dims.pixel_count()],
            frame_dims,
            frames_added: 0,
        }
    }

    /// A canvas sized to hold the whole excursion of a camera whose
    /// absolute translation stays within `(max_dx, max_dy)`.
    #[must_use]
    pub fn sized_for(frame_dims: Dims, max_dx: f64, max_dy: f64) -> Self {
        let canvas = Dims::new(
            frame_dims.width + 2 * (max_dx.abs().ceil() as usize + 8),
            frame_dims.height + 2 * (max_dy.abs().ceil() as usize + 8),
        );
        Mosaic::new(canvas, frame_dims)
    }

    /// The accumulated canvas.
    #[must_use]
    pub fn canvas(&self) -> &Frame {
        &self.canvas
    }

    /// Frames blended so far.
    #[must_use]
    pub const fn frames_added(&self) -> usize {
        self.frames_added
    }

    /// Fraction of canvas pixels written at least once.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let written = self.weights.iter().filter(|&&w| w > 0).count();
        written as f64 / self.weights.len() as f64
    }

    /// Blends `frame` into the canvas. `absolute` maps *canvas/frame-0*
    /// centred coordinates to the coordinates of `frame`.
    ///
    /// The blend of the overlapping, frame-sized patch is executed as an
    /// AddressLib inter call through `backend`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimsMismatch`] when `frame` does not match
    /// the mosaic's frame size, plus backend call errors.
    pub fn add_frame(
        &mut self,
        frame: &Frame,
        absolute: &Motion,
        backend: &mut dyn GmeBackend,
    ) -> CoreResult<()> {
        if frame.dims() != self.frame_dims {
            return Err(CoreError::DimsMismatch {
                left: frame.dims(),
                right: self.frame_dims,
            });
        }
        let (ccx, ccy) = centre_of(self.canvas.dims());
        let (_fcx, _fcy) = centre_of(frame.dims());

        // Bounding box of the frame's footprint in canvas coordinates.
        let inv = absolute.inverse().ok_or(CoreError::InvalidParameter {
            name: "absolute",
            reason: "absolute motion must be invertible",
        })?;
        let (fw, fh) = (frame.width() as f64, frame.height() as f64);
        let corners = [
            (-fw / 2.0, -fh / 2.0),
            (fw / 2.0, -fh / 2.0),
            (-fw / 2.0, fh / 2.0),
            (fw / 2.0, fh / 2.0),
        ];
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for (x, y) in corners {
            let (cxp, cyp) = inv.apply(x, y);
            min_x = min_x.min(cxp + ccx);
            max_x = max_x.max(cxp + ccx);
            min_y = min_y.min(cyp + ccy);
            max_y = max_y.max(cyp + ccy);
        }
        let x0 = (min_x.floor().max(0.0)) as usize;
        let y0 = (min_y.floor().max(0.0)) as usize;
        let x1 = (max_x.ceil().min(self.canvas.width() as f64 - 1.0)) as usize;
        let y1 = (max_y.ceil().min(self.canvas.height() as f64 - 1.0)) as usize;
        if x0 > x1 || y0 > y1 {
            self.frames_added += 1;
            return Ok(()); // footprint entirely outside the canvas
        }

        // Render the incoming content and the existing canvas content
        // over the footprint as frame-dims patches, blend via an
        // AddressLib inter call, and write back.
        let patch_dims = self.frame_dims;
        let scale_x = (x1 - x0).max(1) as f64 / patch_dims.width as f64;
        let scale_y = (y1 - y0).max(1) as f64 / patch_dims.height as f64;
        let canvas_pos = |p: Point| -> (f64, f64) {
            (
                x0 as f64 + p.x as f64 * scale_x,
                y0 as f64 + p.y as f64 * scale_y,
            )
        };

        let incoming = Frame::from_fn(patch_dims, |p| {
            let (cxp, cyp) = canvas_pos(p);
            let (fx, fy) = absolute.apply(cxp - ccx, cyp - ccy);
            let (fcx2, fcy2) = centre_of(frame.dims());
            match sample_bilinear(frame, fx + fcx2, fy + fcy2) {
                Some(v) => Pixel::from_luma(v.round().clamp(0.0, 255.0) as u8).with_alpha(1),
                None => Pixel::BLACK.with_alpha(0),
            }
        });
        let existing = Frame::from_fn(patch_dims, |p| {
            let (cxp, cyp) = canvas_pos(p);
            let q = Point::new(cxp.round() as i32, cyp.round() as i32);
            let idx = self.canvas.dims().index_of(q);
            let mut px = self.canvas.get(q);
            px.alpha = u16::from(self.weights[idx] > 0);
            px
        });

        // AddressLib inter call: blend incoming over existing.
        let blended = backend.inter(&incoming, &existing, &Blend::average())?;

        // Write back: new content where the canvas was empty, blended
        // content where both exist.
        for (p, bpx) in blended.enumerate() {
            let inc = incoming.get(p);
            if inc.alpha == 0 {
                continue;
            }
            let (cxp, cyp) = canvas_pos(p);
            let q = Point::new(cxp.round() as i32, cyp.round() as i32);
            if !self.canvas.dims().contains(q) {
                continue;
            }
            let idx = self.canvas.dims().index_of(q);
            let exists = self.weights[idx] > 0;
            let value = if exists { bpx.y } else { inc.y };
            self.canvas.set(q, Pixel::from_luma(value));
            self.weights[idx] += 1;
        }
        self.frames_added += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{GmeBackend, SoftwareBackend};

    fn textured(dims: Dims) -> Frame {
        Frame::from_fn(dims, |p| {
            Pixel::from_luma(((p.x * 11 + p.y * 23) % 256) as u8)
        })
    }

    #[test]
    fn first_frame_lands_centred() {
        let mut m = Mosaic::new(Dims::new(64, 48), Dims::new(32, 24));
        let mut b = SoftwareBackend::new();
        let f = textured(Dims::new(32, 24));
        m.add_frame(&f, &Motion::identity(), &mut b).unwrap();
        assert_eq!(m.frames_added(), 1);
        // Centre pixel of the canvas carries the frame's centre value.
        let centre_canvas = m.canvas().get(Point::new(32, 24));
        let centre_frame = f.get(Point::new(16, 12));
        assert_eq!(centre_canvas.y, centre_frame.y);
        // Coverage ≈ frame area / canvas area.
        let expected = (32.0 * 24.0) / (64.0 * 48.0);
        assert!((m.coverage() - expected).abs() < 0.06, "{}", m.coverage());
    }

    #[test]
    fn panning_extends_coverage() {
        let mut m = Mosaic::new(Dims::new(96, 48), Dims::new(32, 24));
        let mut b = SoftwareBackend::new();
        let f = textured(Dims::new(32, 24));
        m.add_frame(&f, &Motion::identity(), &mut b).unwrap();
        let c1 = m.coverage();
        // Camera panned right by 20: canvas point maps 20 further left in
        // the new frame.
        m.add_frame(&f, &Motion::translation(-20.0, 0.0), &mut b)
            .unwrap();
        let c2 = m.coverage();
        assert!(c2 > c1 * 1.3, "coverage {c1} → {c2}");
        assert_eq!(m.frames_added(), 2);
    }

    #[test]
    fn blend_counts_one_inter_call_per_frame() {
        let mut m = Mosaic::new(Dims::new(64, 48), Dims::new(32, 24));
        let mut b = SoftwareBackend::new();
        let f = textured(Dims::new(32, 24));
        for i in 0..3 {
            m.add_frame(&f, &Motion::translation(-(i as f64) * 4.0, 0.0), &mut b)
                .unwrap();
        }
        assert_eq!(b.tally().inter, 3);
    }

    #[test]
    fn overlapping_content_blends() {
        let mut m = Mosaic::new(Dims::new(64, 48), Dims::new(32, 24));
        let mut b = SoftwareBackend::new();
        let bright = Frame::filled(Dims::new(32, 24), Pixel::from_luma(200));
        let dark = Frame::filled(Dims::new(32, 24), Pixel::from_luma(100));
        m.add_frame(&bright, &Motion::identity(), &mut b).unwrap();
        m.add_frame(&dark, &Motion::identity(), &mut b).unwrap();
        let centre = m.canvas().get(Point::new(32, 24)).y;
        assert!(centre > 120 && centre < 180, "blended value {centre}");
    }

    #[test]
    fn wrong_frame_size_rejected() {
        let mut m = Mosaic::new(Dims::new(64, 48), Dims::new(32, 24));
        let mut b = SoftwareBackend::new();
        let f = textured(Dims::new(16, 16));
        assert!(matches!(
            m.add_frame(&f, &Motion::identity(), &mut b),
            Err(CoreError::DimsMismatch { .. })
        ));
    }

    #[test]
    fn footprint_outside_canvas_is_noop() {
        let mut m = Mosaic::new(Dims::new(64, 48), Dims::new(32, 24));
        let mut b = SoftwareBackend::new();
        let f = textured(Dims::new(32, 24));
        m.add_frame(&f, &Motion::translation(-500.0, 0.0), &mut b)
            .unwrap();
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.frames_added(), 1);
    }

    #[test]
    fn sized_for_fits_excursion() {
        let m = Mosaic::sized_for(Dims::new(32, 24), 50.0, 10.0);
        assert!(m.canvas().width() >= 32 + 100);
        assert!(m.canvas().height() >= 24 + 20);
    }

    #[test]
    fn mosaic_reconstructs_scene_strip() {
        // Pan a window over a wide scene; the mosaic should recover a
        // wider strip faithful to the scene.
        let scene = textured(Dims::new(96, 24));
        let frame_at = |off: usize| {
            Frame::from_fn(Dims::new(32, 24), |p| {
                scene.get(Point::new(p.x + off as i32, p.y))
            })
        };
        let mut m = Mosaic::new(Dims::new(120, 32), Dims::new(32, 24));
        let mut b = SoftwareBackend::new();
        for step in 0..5 {
            let off = step * 12;
            // Camera at +off: canvas(frame-0) coords map to frame coords
            // by subtracting the pan.
            m.add_frame(&frame_at(off), &Motion::translation(-(off as f64), 0.0), &mut b)
                .unwrap();
        }
        // Coverage spans well beyond one frame: 5 pans × 12 px ≈ 80 px of
        // the 120-px canvas width.
        assert!(m.coverage() > 0.45, "coverage {}", m.coverage());
        // Single frame alone would cover 32×24 / (120×32) ≈ 0.2.
        assert!(m.frames_added() == 5);
    }
}
