//! Frame warping under a global motion model, with bilinear
//! interpolation and validity masking.
//!
//! Warping is the host-side geometric step of the GME loop (the
//! coordinate arithmetic the AddressLib's structured addressing cannot
//! express); the subsequent pixel-wise comparison *is* an AddressLib
//! inter call and goes through the backend.
//!
//! # Examples
//!
//! ```
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_core::pixel::Pixel;
//! use vip_gme::model::Motion;
//! use vip_gme::warp::warp_frame;
//!
//! let f = Frame::filled(Dims::new(16, 16), Pixel::from_luma(80));
//! let w = warp_frame(&f, &Motion::translation(2.0, 0.0));
//! assert_eq!(w.frame.dims(), f.dims());
//! ```

use vip_core::frame::Frame;
use vip_core::geometry::{Dims, Point};
use vip_core::pixel::Pixel;

use crate::model::Motion;

/// A warped frame plus its validity mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Warped {
    /// The warped frame; invalid pixels are black with `alpha = 0`.
    pub frame: Frame,
    /// Number of valid (in-source) pixels.
    pub valid: usize,
}

impl Warped {
    /// Fraction of the frame covered by valid pixels.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.frame.pixel_count() == 0 {
            return 0.0;
        }
        self.valid as f64 / self.frame.pixel_count() as f64
    }
}

/// Samples `frame`'s luminance at real coordinates with bilinear
/// interpolation. Returns `None` outside the frame.
#[must_use]
pub fn sample_bilinear(frame: &Frame, x: f64, y: f64) -> Option<f64> {
    let w = frame.width() as f64;
    let h = frame.height() as f64;
    if x < 0.0 || y < 0.0 || x > w - 1.0 || y > h - 1.0 {
        return None;
    }
    let x0 = x.floor();
    let y0 = y.floor();
    let tx = x - x0;
    let ty = y - y0;
    let xi = x0 as i32;
    let yi = y0 as i32;
    let at = |dx: i32, dy: i32| -> f64 {
        let p = Point::new(
            (xi + dx).min(frame.width() as i32 - 1),
            (yi + dy).min(frame.height() as i32 - 1),
        );
        f64::from(frame.get(p).y)
    };
    let a = at(0, 0) + (at(1, 0) - at(0, 0)) * tx;
    let b = at(0, 1) + (at(1, 1) - at(0, 1)) * tx;
    Some(a + (b - a) * ty)
}

/// Centre of a frame (the origin of the centred motion coordinates).
#[must_use]
pub fn centre_of(dims: Dims) -> (f64, f64) {
    (dims.width as f64 / 2.0, dims.height as f64 / 2.0)
}

/// Warps `src` by `motion`: output pixel `p` takes the value of
/// `src` at `motion(p)` (centred coordinates). Pixels mapping outside
/// the source get `alpha = 0`; valid pixels get `alpha = 1`.
#[must_use]
pub fn warp_frame(src: &Frame, motion: &Motion) -> Warped {
    let (cx, cy) = centre_of(src.dims());
    let mut valid = 0usize;
    let frame = Frame::from_fn(src.dims(), |p| {
        let (mx, my) = motion.apply(p.x as f64 - cx, p.y as f64 - cy);
        match sample_bilinear(src, mx + cx, my + cy) {
            Some(y) => {
                valid += 1;
                Pixel::from_luma(y.round().clamp(0.0, 255.0) as u8).with_alpha(1)
            }
            None => Pixel::BLACK.with_alpha(0),
        }
    });
    Warped { frame, valid }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dims: Dims) -> Frame {
        Frame::from_fn(dims, |p| Pixel::from_luma((p.x * 10) as u8))
    }

    #[test]
    fn bilinear_exact_at_integers() {
        let f = ramp(Dims::new(8, 8));
        assert_eq!(sample_bilinear(&f, 3.0, 2.0), Some(30.0));
    }

    #[test]
    fn bilinear_interpolates_halfway() {
        let f = ramp(Dims::new(8, 8));
        assert_eq!(sample_bilinear(&f, 2.5, 4.0), Some(25.0));
    }

    #[test]
    fn bilinear_outside_is_none() {
        let f = ramp(Dims::new(8, 8));
        assert_eq!(sample_bilinear(&f, -0.1, 0.0), None);
        assert_eq!(sample_bilinear(&f, 7.5, 0.0), None);
        assert_eq!(sample_bilinear(&f, 0.0, 8.0), None);
    }

    #[test]
    fn identity_warp_preserves_luma() {
        let f = ramp(Dims::new(10, 6));
        let w = warp_frame(&f, &Motion::identity());
        assert_eq!(w.valid, 60);
        assert!((w.coverage() - 1.0).abs() < 1e-12);
        for (p, px) in w.frame.enumerate() {
            assert_eq!(px.y, f.get(p).y, "at {p}");
            assert_eq!(px.alpha, 1);
        }
    }

    #[test]
    fn translation_warp_shifts_content() {
        let f = ramp(Dims::new(10, 6));
        // motion maps output coords → source coords offset +2 in x.
        let w = warp_frame(&f, &Motion::translation(2.0, 0.0));
        // Output pixel (3, y) samples source (5, y) → luma 50.
        assert_eq!(w.frame.get(Point::new(3, 2)).y, 50);
        // Rightmost columns fall outside → invalid.
        assert_eq!(w.frame.get(Point::new(9, 0)).alpha, 0);
        assert!(w.coverage() < 1.0);
    }

    #[test]
    fn zoom_warp_valid_region() {
        let f = ramp(Dims::new(16, 16));
        // Zoom > 1 maps output into a larger source area → borders invalid.
        let w = warp_frame(&f, &Motion::similarity(1.5, 0.0, 0.0, 0.0));
        assert!(w.coverage() < 1.0);
        assert!(w.coverage() > 0.3);
        // Centre stays valid.
        assert_eq!(w.frame.get(Point::new(8, 8)).alpha, 1);
    }

    #[test]
    fn warp_consistency_with_inverse() {
        // Warping by m then by m⁻¹ approximately restores the interior.
        let f = Frame::from_fn(Dims::new(32, 32), |p| {
            Pixel::from_luma((((p.x * p.x + p.y * 3) / 2) % 256) as u8)
        });
        let m = Motion::translation(1.0, -2.0);
        let there = warp_frame(&f, &m);
        let back = warp_frame(&there.frame, &m.inverse().unwrap());
        let mut err = 0u64;
        let mut n = 0u64;
        for y in 6..26 {
            for x in 6..26 {
                let p = Point::new(x, y);
                if back.frame.get(p).alpha == 1 {
                    err += u64::from(back.frame.get(p).y.abs_diff(f.get(p).y));
                    n += 1;
                }
            }
        }
        assert!(n > 100);
        assert!(err / n <= 1, "mean roundtrip error {}", err as f64 / n as f64);
    }

    #[test]
    fn empty_coverage() {
        let w = Warped {
            frame: Frame::new(Dims::new(0, 0)),
            valid: 0,
        };
        assert_eq!(w.coverage(), 0.0);
    }
}
