//! Global motion models: translational, affine and perspective, as used
//! by the MPEG-7 eXperimentation Model's global motion estimation.
//!
//! A model maps coordinates of the *reference* frame into the *current*
//! frame: `x' = W(x; p)`. Coordinates are centred (origin at the frame
//! centre) for numerical conditioning.
//!
//! # Examples
//!
//! ```
//! use vip_gme::model::Motion;
//!
//! let m = Motion::translation(2.0, -1.0);
//! assert_eq!(m.apply(10.0, 5.0), (12.0, 4.0));
//! let inv = m.inverse().unwrap();
//! assert_eq!(inv.apply(12.0, 4.0), (10.0, 5.0));
//! ```

use core::fmt;

/// The motion-model family (MPEG-7 GME supports a hierarchy of models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MotionModel {
    /// 2 parameters: pure translation.
    Translational,
    /// 6 parameters: full affine.
    Affine,
    /// 8 parameters: planar perspective (homography).
    Perspective,
}

impl MotionModel {
    /// Number of free parameters.
    #[must_use]
    pub const fn parameter_count(self) -> usize {
        match self {
            MotionModel::Translational => 2,
            MotionModel::Affine => 6,
            MotionModel::Perspective => 8,
        }
    }
}

impl fmt::Display for MotionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MotionModel::Translational => f.write_str("translational"),
            MotionModel::Affine => f.write_str("affine"),
            MotionModel::Perspective => f.write_str("perspective"),
        }
    }
}

/// A concrete global motion: a homography stored as nine coefficients
/// (row-major 3×3, `h22` fixed at 1), degenerating gracefully to affine
/// and translational forms.
///
/// `x' = (h0·x + h1·y + h2) / (h6·x + h7·y + 1)`,
/// `y' = (h3·x + h4·y + h5) / (h6·x + h7·y + 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Motion {
    /// The eight free coefficients `[h0, h1, h2, h3, h4, h5, h6, h7]`.
    pub h: [f64; 8],
}

impl Motion {
    /// The identity motion.
    #[must_use]
    pub const fn identity() -> Self {
        Motion {
            h: [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
        }
    }

    /// A pure translation.
    #[must_use]
    pub const fn translation(dx: f64, dy: f64) -> Self {
        Motion {
            h: [1.0, 0.0, dx, 0.0, 1.0, dy, 0.0, 0.0],
        }
    }

    /// An affine motion from `x' = a0 + a1·x + a2·y`,
    /// `y' = a3 + a4·x + a5·y` (the coefficient order of
    /// `CameraPose::affine` in `vip-video`).
    #[must_use]
    pub const fn affine(a: [f64; 6]) -> Self {
        Motion {
            h: [a[1], a[2], a[0], a[4], a[5], a[3], 0.0, 0.0],
        }
    }

    /// A similarity motion: zoom, rotation and translation.
    #[must_use]
    pub fn similarity(zoom: f64, rot: f64, dx: f64, dy: f64) -> Self {
        let (s, c) = rot.sin_cos();
        Motion {
            h: [zoom * c, -zoom * s, dx, zoom * s, zoom * c, dy, 0.0, 0.0],
        }
    }

    /// The tightest family containing this motion.
    #[must_use]
    pub fn model(&self) -> MotionModel {
        let h = &self.h;
        if h[6] != 0.0 || h[7] != 0.0 {
            MotionModel::Perspective
        } else if h[0] != 1.0 || h[1] != 0.0 || h[3] != 0.0 || h[4] != 1.0 {
            MotionModel::Affine
        } else {
            MotionModel::Translational
        }
    }

    /// Whether the motion is (numerically) the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        let id = Motion::identity();
        self.h
            .iter()
            .zip(&id.h)
            .all(|(a, b)| (a - b).abs() < 1e-12)
    }

    /// Applies the motion to a point.
    #[must_use]
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        let h = &self.h;
        let w = h[6] * x + h[7] * y + 1.0;
        let w = if w.abs() < 1e-12 { 1e-12 } else { w };
        (
            (h[0] * x + h[1] * y + h[2]) / w,
            (h[3] * x + h[4] * y + h[5]) / w,
        )
    }

    /// The translation component `(h2, h5)`.
    #[must_use]
    pub const fn translation_part(&self) -> (f64, f64) {
        (self.h[2], self.h[5])
    }

    /// Composition `self ∘ other`: applies `other` first.
    #[must_use]
    pub fn compose(&self, other: &Motion) -> Motion {
        let a = self.to_matrix();
        let b = other.to_matrix();
        let mut m = [[0.0f64; 3]; 3];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| a[i][k] * b[k][j]).sum();
            }
        }
        Motion::from_matrix(m)
    }

    /// The inverse motion, or `None` when singular.
    #[must_use]
    pub fn inverse(&self) -> Option<Motion> {
        let m = self.to_matrix();
        let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
        if det.abs() < 1e-12 {
            return None;
        }
        let inv = [
            [
                (m[1][1] * m[2][2] - m[1][2] * m[2][1]) / det,
                (m[0][2] * m[2][1] - m[0][1] * m[2][2]) / det,
                (m[0][1] * m[1][2] - m[0][2] * m[1][1]) / det,
            ],
            [
                (m[1][2] * m[2][0] - m[1][0] * m[2][2]) / det,
                (m[0][0] * m[2][2] - m[0][2] * m[2][0]) / det,
                (m[0][2] * m[1][0] - m[0][0] * m[1][2]) / det,
            ],
            [
                (m[1][0] * m[2][1] - m[1][1] * m[2][0]) / det,
                (m[0][1] * m[2][0] - m[0][0] * m[2][1]) / det,
                (m[0][0] * m[1][1] - m[0][1] * m[1][0]) / det,
            ],
        ];
        Some(Motion::from_matrix(inv))
    }

    /// Scales the motion to a pyramid level `factor` times smaller
    /// (coordinates divide by `factor`): translations shrink, the linear
    /// part is preserved, perspective terms grow.
    #[must_use]
    pub fn scaled_down(&self, factor: f64) -> Motion {
        let h = &self.h;
        Motion {
            h: [
                h[0],
                h[1],
                h[2] / factor,
                h[3],
                h[4],
                h[5] / factor,
                h[6] * factor,
                h[7] * factor,
            ],
        }
    }

    /// Scales the motion to a pyramid level `factor` times larger.
    #[must_use]
    pub fn scaled_up(&self, factor: f64) -> Motion {
        self.scaled_down(1.0 / factor)
    }

    /// The parameter-space distance to another motion, evaluated as mean
    /// displacement difference over a `w×h` centred grid — the metric the
    /// validation tests use against ground truth.
    #[must_use]
    pub fn displacement_error(&self, other: &Motion, w: f64, hgt: f64) -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        let steps = 8;
        for iy in 0..=steps {
            for ix in 0..=steps {
                let x = -w / 2.0 + w * ix as f64 / steps as f64;
                let y = -hgt / 2.0 + hgt * iy as f64 / steps as f64;
                let (ax, ay) = self.apply(x, y);
                let (bx, by) = other.apply(x, y);
                total += ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
                n += 1;
            }
        }
        total / f64::from(n)
    }

    fn to_matrix(self) -> [[f64; 3]; 3] {
        let h = &self.h;
        [
            [h[0], h[1], h[2]],
            [h[3], h[4], h[5]],
            [h[6], h[7], 1.0],
        ]
    }

    fn from_matrix(m: [[f64; 3]; 3]) -> Motion {
        let s = m[2][2];
        let s = if s.abs() < 1e-12 { 1e-12 } else { s };
        Motion {
            h: [
                m[0][0] / s,
                m[0][1] / s,
                m[0][2] / s,
                m[1][0] / s,
                m[1][1] / s,
                m[1][2] / s,
                m[2][0] / s,
                m[2][1] / s,
            ],
        }
    }
}

impl Default for Motion {
    fn default() -> Self {
        Motion::identity()
    }
}

impl fmt::Display for Motion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = &self.h;
        write!(
            f,
            "[{:.4} {:.4} {:.3}; {:.4} {:.4} {:.3}; {:.6} {:.6} 1]",
            h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]
        )
    }
}

/// Solves the `n×n` linear system `A·x = b` in place by Gaussian
/// elimination with partial pivoting. Returns `None` for singular
/// systems.
#[must_use]
pub fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for (row, cols) in a.iter().enumerate() {
        debug_assert_eq!(cols.len(), n, "row {row} has wrong width");
    }
    #[allow(clippy::needless_range_loop)] // gaussian elimination indexes rows and columns
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(core::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_behaviour() {
        let id = Motion::identity();
        assert!(id.is_identity());
        assert_eq!(id.apply(3.0, -7.0), (3.0, -7.0));
        assert_eq!(id.model(), MotionModel::Translational);
        assert_eq!(Motion::default(), id);
    }

    #[test]
    fn translation_apply_and_model() {
        let t = Motion::translation(5.0, -2.0);
        assert_eq!(t.apply(0.0, 0.0), (5.0, -2.0));
        assert_eq!(t.model(), MotionModel::Translational);
        assert_eq!(t.translation_part(), (5.0, -2.0));
        assert!(!t.is_identity());
    }

    #[test]
    fn affine_model_detection() {
        let a = Motion::affine([1.0, 1.1, 0.0, 2.0, 0.0, 1.0]);
        assert_eq!(a.model(), MotionModel::Affine);
        let p = Motion {
            h: [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1e-4, 0.0],
        };
        assert_eq!(p.model(), MotionModel::Perspective);
        assert_eq!(MotionModel::Perspective.parameter_count(), 8);
    }

    #[test]
    fn similarity_matches_manual() {
        let m = Motion::similarity(2.0, std::f64::consts::FRAC_PI_2, 1.0, 2.0);
        let (x, y) = m.apply(1.0, 0.0);
        assert!((x - 1.0).abs() < 1e-12);
        assert!((y - 4.0).abs() < 1e-12);
    }

    #[test]
    fn compose_order() {
        let t = Motion::translation(1.0, 0.0);
        let s = Motion::similarity(2.0, 0.0, 0.0, 0.0);
        // s ∘ t: translate first, then scale.
        let st = s.compose(&t);
        assert_eq!(st.apply(0.0, 0.0), (2.0, 0.0));
        // t ∘ s: scale first, then translate.
        let ts = t.compose(&s);
        assert_eq!(ts.apply(0.0, 0.0), (1.0, 0.0));
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Motion::affine([3.0, 1.2, 0.1, -2.0, -0.05, 0.9]);
        let inv = m.inverse().unwrap();
        for (x, y) in [(0.0, 0.0), (10.0, -5.0), (100.0, 30.0)] {
            let (fx, fy) = m.apply(x, y);
            let (bx, by) = inv.apply(fx, fy);
            assert!((bx - x).abs() < 1e-9, "{bx} vs {x}");
            assert!((by - y).abs() < 1e-9);
        }
    }

    #[test]
    fn perspective_inverse_roundtrip() {
        let m = Motion {
            h: [1.02, 0.01, 2.0, -0.01, 0.99, -1.0, 1e-5, -2e-5],
        };
        let inv = m.inverse().unwrap();
        let (fx, fy) = m.apply(30.0, -40.0);
        let (bx, by) = inv.apply(fx, fy);
        assert!((bx - 30.0).abs() < 1e-7);
        assert!((by + 40.0).abs() < 1e-7);
    }

    #[test]
    fn singular_inverse_is_none() {
        let m = Motion {
            h: [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        assert!(m.inverse().is_none());
    }

    #[test]
    fn pyramid_scaling_roundtrip() {
        let m = Motion::affine([4.0, 1.1, 0.2, -3.0, -0.1, 0.95]);
        let down = m.scaled_down(2.0);
        assert!((down.h[2] - 2.0).abs() < 1e-12, "translation halves");
        assert!((down.h[0] - 1.1).abs() < 1e-12, "linear part preserved");
        let up = down.scaled_up(2.0);
        for (a, b) in up.h.iter().zip(&m.h) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn scaling_consistency_with_apply() {
        // Applying the scaled-down motion to scaled-down coordinates
        // equals scaling down the full-resolution result.
        let m = Motion::affine([6.0, 1.05, -0.02, 2.0, 0.03, 0.97]);
        let d = m.scaled_down(2.0);
        let (fx, fy) = m.apply(40.0, 20.0);
        let (dx, dy) = d.apply(20.0, 10.0);
        assert!((fx / 2.0 - dx).abs() < 1e-9);
        assert!((fy / 2.0 - dy).abs() < 1e-9);
    }

    #[test]
    fn displacement_error_zero_for_equal() {
        let m = Motion::translation(3.0, 4.0);
        assert!(m.displacement_error(&m, 100.0, 100.0) < 1e-12);
        let n = Motion::translation(4.0, 4.0);
        assert!((m.displacement_error(&n, 100.0, 100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_linear_2x2() {
        let mut a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut b = vec![5.0, 10.0];
        let x = solve_linear(&mut a, &mut b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_needs_pivoting() {
        let mut a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut b = vec![2.0, 3.0];
        let x = solve_linear(&mut a, &mut b).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_linear_singular() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(solve_linear(&mut a, &mut b).is_none());
    }

    #[test]
    fn solve_linear_6x6_identityish() {
        let n = 6;
        let mut a: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 2.0 } else { 0.1 }).collect())
            .collect();
        let expect: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let mut b: Vec<f64> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| if i == j { 2.0 * expect[j] } else { 0.1 * expect[j] })
                    .sum()
            })
            .collect();
        let x = solve_linear(&mut a, &mut b).unwrap();
        for (xi, ei) in x.iter().zip(&expect) {
            assert!((xi - ei).abs() < 1e-9);
        }
    }

    #[test]
    fn display() {
        let s = Motion::identity().to_string();
        assert!(s.starts_with('['));
        assert_eq!(MotionModel::Affine.to_string(), "affine");
    }
}
