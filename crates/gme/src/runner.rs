//! Sequence-level GME: the top-level software layer of §4.3, estimating
//! frame-to-frame global motion over a whole clip, composing absolute
//! motion and (optionally) building the mosaic.

use vip_core::error::{CoreError, CoreResult};
use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_obs::{Recorder, Track};

use crate::backend::{CallTally, GmeBackend};
use crate::estimate::{modelled_ns, Estimator, GmeConfig, GmeResult};
use crate::model::Motion;
use crate::mosaic::Mosaic;
use crate::pyramid::Pyramid;

/// Per-frame estimation record.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRecord {
    /// Frame index within the sequence (the *current* frame; motion is
    /// estimated from frame `index − 1`).
    pub index: usize,
    /// Relative motion from the previous frame to this frame.
    pub relative: Motion,
    /// Absolute motion from frame 0 to this frame.
    pub absolute: Motion,
    /// Estimator diagnostics.
    pub gme: GmeResult,
}

/// The outcome of running GME over a sequence.
#[derive(Debug, Clone)]
pub struct SequenceReport {
    /// Number of frames processed.
    pub frames: usize,
    /// One record per estimated frame pair (`frames − 1` entries).
    pub records: Vec<FrameRecord>,
    /// AddressLib call tallies accumulated by the backend.
    pub tally: CallTally,
    /// Seconds the backend's timing model attributes to its calls
    /// (engine time for [`crate::backend::EngineBackend`], PM time for
    /// [`crate::backend::SoftwareBackend`]).
    pub backend_seconds: f64,
    /// Seconds the same calls would take on the paper's Pentium-M
    /// software platform (the Table 3 "Time in PM" column), priced per
    /// call at its actual frame size.
    pub pm_seconds: f64,
    /// The mosaic, when requested.
    pub mosaic: Option<Mosaic>,
}

impl SequenceReport {
    /// Mean residual over all estimated pairs.
    #[must_use]
    pub fn mean_residual(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.gme.residual).sum::<f64>() / self.records.len() as f64
    }

    /// Mean iterations per frame pair.
    #[must_use]
    pub fn mean_iterations(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.gme.iterations as f64).sum::<f64>()
            / self.records.len() as f64
    }
}

/// Runs GME (and optional mosaicing) over a sequence of frames.
#[derive(Debug, Clone)]
pub struct SequenceRunner {
    estimator: Estimator,
    recorder: Recorder,
    build_mosaic: bool,
    mosaic_margin: (f64, f64),
}

impl SequenceRunner {
    /// Creates a runner with the given estimator configuration.
    #[must_use]
    pub fn new(config: GmeConfig) -> Self {
        SequenceRunner {
            estimator: Estimator::new(config),
            recorder: Recorder::disabled(),
            build_mosaic: false,
            mosaic_margin: (64.0, 48.0),
        }
    }

    /// Enables mosaic construction with the given canvas margins (world
    /// units each side beyond the frame).
    #[must_use]
    pub fn with_mosaic(mut self, margin_x: f64, margin_y: f64) -> Self {
        self.build_mosaic = true;
        self.mosaic_margin = (margin_x, margin_y);
        self
    }

    /// Attaches an observability recorder: the run emits one span per
    /// estimated frame pair plus running call-count samples on the GME
    /// track, and the estimator emits its per-level spans onto the same
    /// bus. All timed on the backend's modelled clock.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.estimator = self.estimator.with_recorder(recorder.clone());
        self.recorder = recorder;
        self
    }

    /// Processes the frames, estimating motion between consecutive pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyFrame`] when the iterator yields no
    /// frames, [`CoreError::DimsMismatch`] when frame sizes vary, and
    /// propagates estimator/backend errors.
    pub fn run<I>(&self, frames: I, backend: &mut dyn GmeBackend) -> CoreResult<SequenceReport>
    where
        I: IntoIterator<Item = Frame>,
    {
        let mut it = frames.into_iter();
        let first = it.next().ok_or(CoreError::EmptyFrame)?;
        let dims: Dims = first.dims();
        if dims.is_empty() {
            return Err(CoreError::EmptyFrame);
        }

        let mut mosaic = self
            .build_mosaic
            .then(|| Mosaic::sized_for(dims, self.mosaic_margin.0, self.mosaic_margin.1));

        let levels = self.estimator.config().levels;
        let mut ref_pyr = Pyramid::build(&first, levels, backend)?;
        if let Some(m) = mosaic.as_mut() {
            m.add_frame(&first, &Motion::identity(), backend)?;
        }

        let mut records = Vec::new();
        let mut absolute = Motion::identity();
        let mut prediction = Motion::identity();
        let mut count = 1usize;

        for frame in it {
            if frame.dims() != dims {
                return Err(CoreError::DimsMismatch {
                    left: dims,
                    right: frame.dims(),
                });
            }
            let frame_t0 = modelled_ns(backend);
            let cur_pyr = Pyramid::build(&frame, levels, backend)?;
            let gme =
                self.estimator
                    .estimate_with_pyramids(&ref_pyr, &cur_pyr, prediction, backend)?;
            if self.recorder.is_enabled() {
                let now = modelled_ns(backend);
                self.recorder.span(
                    Track::Gme,
                    "frame_pair",
                    frame_t0,
                    now,
                    &[
                        ("frame", (count as u64).into()),
                        ("iterations", (gme.iterations as u64).into()),
                    ],
                );
                self.recorder
                    .counter(Track::Gme, "calls_total", now, backend.tally().total() as f64);
            }
            let relative = gme.motion;
            // Warm-start the next pair with this pair's motion.
            prediction = relative;
            // absolute_t maps frame-0 coords → frame-t coords.
            absolute = relative.compose(&absolute);
            if let Some(m) = mosaic.as_mut() {
                m.add_frame(&frame, &absolute, backend)?;
            }
            records.push(FrameRecord {
                index: count,
                relative,
                absolute,
                gme,
            });
            ref_pyr = cur_pyr;
            count += 1;
        }

        Ok(SequenceReport {
            frames: count,
            records,
            tally: backend.tally(),
            backend_seconds: backend.modelled_seconds(),
            pm_seconds: backend.pm_modelled_seconds(),
            mosaic,
        })
    }

    /// Processes several independent clips concurrently on the `vip-par`
    /// work pool, one fresh backend per clip.
    ///
    /// Frames *within* a clip are warm-start dependent (each pair's
    /// prediction seeds the next), so the parallel grain is the clip:
    /// `make_backend(i)` builds clip `i`'s private backend and each clip
    /// runs exactly as [`SequenceRunner::run`] would serially. Outcomes
    /// come back in clip order, identical at any thread count (asserted
    /// by `batch_matches_serial_runs_at_any_thread_count`).
    pub fn run_batch<B, M>(
        &self,
        clips: &[Vec<Frame>],
        threads: usize,
        make_backend: M,
    ) -> Vec<CoreResult<SequenceReport>>
    where
        B: GmeBackend,
        M: Fn(usize) -> B + Sync,
    {
        vip_par::map_indexed(clips.len(), threads, |i| {
            let mut backend = make_backend(i);
            self.run(clips[i].iter().cloned(), &mut backend)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{EngineBackend, SoftwareBackend};
    
    use vip_core::pixel::Pixel;

    fn textured(dims: Dims) -> Frame {
        Frame::from_fn(dims, |p| {
            let x = p.x as f64;
            let y = p.y as f64;
            let v = 120.0 + 55.0 * ((x / 6.0).sin() * (y / 8.0).cos())
                + 35.0 * ((x / 19.0 + y / 23.0).sin());
            Pixel::from_luma(v.clamp(0.0, 255.0) as u8)
        })
    }

    /// A synthetic pan: frame t samples an analytic texture at
    /// `p + t·(dx, dy)` — no border artefacts, exact sub-pixel motion.
    fn pan_sequence(dims: Dims, n: usize, dx: f64, dy: f64) -> Vec<Frame> {
        (0..n)
            .map(|t| {
                let ox = t as f64 * dx;
                let oy = t as f64 * dy;
                Frame::from_fn(dims, |p| {
                    let x = p.x as f64 + ox;
                    let y = p.y as f64 + oy;
                    let v = 120.0
                        + 55.0 * ((x / 6.0).sin() * (y / 8.0).cos())
                        + 35.0 * ((x / 19.0 + y / 23.0).sin());
                    Pixel::from_luma(v.clamp(0.0, 255.0) as u8)
                })
            })
            .collect()
    }

    #[test]
    fn tracks_constant_pan() {
        let frames = pan_sequence(Dims::new(80, 64), 5, 1.5, -0.5);
        let runner = SequenceRunner::new(GmeConfig::translational());
        let mut backend = SoftwareBackend::new();
        let report = runner.run(frames, &mut backend).unwrap();
        assert_eq!(report.frames, 5);
        assert_eq!(report.records.len(), 4);
        // frame t samples base at p + t·(1.5, −0.5), so the ref→cur
        // mapping is a translation by −(1.5, −0.5).
        for rec in &report.records {
            let (dx, dy) = rec.relative.translation_part();
            assert!((dx + 1.5).abs() < 0.4, "frame {}: dx {dx}", rec.index);
            assert!((dy - 0.5).abs() < 0.4, "frame {}: dy {dy}", rec.index);
        }
        // Absolute motion accumulates.
        let (adx, _) = report.records.last().unwrap().absolute.translation_part();
        assert!((adx + 6.0).abs() < 1.2, "absolute dx {adx}");
    }

    #[test]
    fn empty_sequence_rejected() {
        let runner = SequenceRunner::new(GmeConfig::default());
        let mut backend = SoftwareBackend::new();
        assert!(matches!(
            runner.run(Vec::<Frame>::new(), &mut backend),
            Err(CoreError::EmptyFrame)
        ));
    }

    #[test]
    fn dims_change_rejected() {
        let runner = SequenceRunner::new(GmeConfig::default());
        let mut backend = SoftwareBackend::new();
        let frames = vec![textured(Dims::new(32, 32)), textured(Dims::new(64, 32))];
        assert!(matches!(
            runner.run(frames, &mut backend),
            Err(CoreError::DimsMismatch { .. })
        ));
    }

    #[test]
    fn call_tally_intra_heavier_than_inter() {
        let frames = pan_sequence(Dims::new(64, 64), 6, 1.0, 0.0);
        let runner = SequenceRunner::new(GmeConfig::default());
        let mut backend = SoftwareBackend::new();
        let report = runner.run(frames, &mut backend).unwrap();
        let t = report.tally;
        assert!(t.intra > 0 && t.inter > 0);
        let ratio = t.intra as f64 / t.inter as f64;
        // Table 3's workload is intra-heavy (≈1.4×).
        assert!(ratio > 0.9 && ratio < 3.0, "ratio {ratio} ({t})");
    }

    #[test]
    fn engine_backend_accumulates_fpga_time() {
        let frames = pan_sequence(Dims::new(48, 48), 3, 1.0, 0.0);
        let runner = SequenceRunner::new(GmeConfig::translational());
        let mut backend = EngineBackend::prototype();
        let report = runner.run(frames, &mut backend).unwrap();
        assert!(report.backend_seconds > 0.0);
        assert_eq!(report.tally.total(), backend.tally().total());
    }

    #[test]
    fn mosaic_grows_with_pan() {
        let frames = pan_sequence(Dims::new(64, 48), 5, 3.0, 0.0);
        let runner = SequenceRunner::new(GmeConfig::translational()).with_mosaic(40.0, 16.0);
        let mut backend = SoftwareBackend::new();
        let report = runner.run(frames, &mut backend).unwrap();
        let mosaic = report.mosaic.expect("mosaic requested");
        assert_eq!(mosaic.frames_added(), 5);
        assert!(mosaic.coverage() > 0.2);
    }

    #[test]
    fn report_statistics() {
        let frames = pan_sequence(Dims::new(64, 64), 4, 0.5, 0.5);
        let runner = SequenceRunner::new(GmeConfig::translational());
        let mut backend = SoftwareBackend::new();
        let report = runner.run(frames, &mut backend).unwrap();
        assert!(report.mean_iterations() >= 1.0);
        assert!(report.mean_residual() < 20.0);
    }

    #[test]
    fn recorder_spans_per_frame_and_engine_subsystems() {
        let frames = pan_sequence(Dims::new(48, 48), 3, 1.0, 0.0);
        let session = vip_obs::Session::new();
        let runner =
            SequenceRunner::new(GmeConfig::translational()).with_recorder(session.recorder());
        let mut backend = EngineBackend::prototype();
        // Wire the same bus into the engine so its call spans share the
        // trace. (Timebases differ only by interleaving of PM pricing.)
        backend.engine_mut().set_recorder(session.recorder());
        runner.run(frames, &mut backend).unwrap();
        let recording = session.finish();
        let gme = recording.on_track(Track::Gme);
        assert_eq!(
            gme.iter().filter(|e| e.name == "frame_pair").count(),
            2,
            "3 frames = 2 estimated pairs"
        );
        assert!(gme.iter().any(|e| e.name == "calls_total"));
        // The engine contributed its own call spans on the engine track.
        assert!(recording
            .on_track(Track::Engine)
            .iter()
            .any(|e| e.name == "intra_call" || e.name == "inter_call"));
    }

    #[test]
    fn batch_matches_serial_runs_at_any_thread_count() {
        let dims = Dims::new(48, 48);
        let clips: Vec<Vec<Frame>> = [(1.0, 0.0), (0.0, 1.0), (1.5, -0.5), (0.5, 0.5)]
            .iter()
            .map(|&(dx, dy)| pan_sequence(dims, 4, dx, dy))
            .collect();
        let runner = SequenceRunner::new(GmeConfig::translational());

        let serial: Vec<SequenceReport> = clips
            .iter()
            .map(|clip| {
                let mut backend = SoftwareBackend::new();
                runner.run(clip.iter().cloned(), &mut backend).unwrap()
            })
            .collect();

        for threads in [1, 4, 8] {
            let batch = runner.run_batch(&clips, threads, |_| SoftwareBackend::new());
            assert_eq!(batch.len(), clips.len());
            for (i, (b, s)) in batch.iter().zip(&serial).enumerate() {
                let b = b.as_ref().unwrap_or_else(|e| panic!("clip {i}: {e}"));
                assert_eq!(b.records, s.records, "clip {i} at {threads} threads");
                assert_eq!(b.tally, s.tally, "clip {i} at {threads} threads");
                assert_eq!(b.backend_seconds, s.backend_seconds, "clip {i}");
                assert_eq!(b.pm_seconds, s.pm_seconds, "clip {i}");
            }
        }
    }

    #[test]
    fn batch_surfaces_per_clip_errors_in_order() {
        let dims = Dims::new(32, 32);
        let clips = vec![
            pan_sequence(dims, 3, 1.0, 0.0),
            Vec::new(), // empty clip must fail, others must still succeed
            pan_sequence(dims, 3, 0.0, 1.0),
        ];
        let runner = SequenceRunner::new(GmeConfig::translational());
        let batch = runner.run_batch(&clips, 4, |_| SoftwareBackend::new());
        assert!(batch[0].is_ok());
        assert!(matches!(batch[1], Err(CoreError::EmptyFrame)));
        assert!(batch[2].is_ok());
    }

    #[test]
    fn software_and_engine_backends_agree_on_motion() {
        let frames = pan_sequence(Dims::new(64, 64), 3, 2.0, 1.0);
        let runner = SequenceRunner::new(GmeConfig::translational());
        let mut sw = SoftwareBackend::new();
        let mut hw = EngineBackend::prototype();
        let a = runner.run(frames.clone(), &mut sw).unwrap();
        let b = runner.run(frames, &mut hw).unwrap();
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.relative, rb.relative, "frame {}", ra.index);
        }
        // Identical call pattern on both backends.
        assert_eq!(a.tally.intra, b.tally.intra);
        assert_eq!(a.tally.inter, b.tally.inter);
    }
}
